#!/usr/bin/env python3
"""Run a campaign study — resumable, observable, and always reporting.

The default (reduced) manifest is a two-sweep study: a small attack ×
defense matrix (both poisoning vectors against the classic and
fragment-rejection stacks, with the §V mitigation columns so the section5
analysis applies) and a transport-overhead grid over udp/tcp/dot/doh.
The campaign directory accumulates everything observable:

* ``state.json`` — the atomic checkpoint journal (step status, digests,
  merged metrics, telemetry, digest history);
* ``progress.json`` — live machine-readable progress, updated while the
  campaign runs;
* ``cache/`` — the content-addressed run cache that makes resume exact;
* ``report/`` — the self-contained report (markdown, SVG figures,
  telemetry appendix).

Kill the process at any point — including with SIGKILL — and re-run the
same command: the campaign resumes from the checkpoint, computes only the
missing cells, and emits a byte-identical report.

Run with:  python examples/campaign_study.py --dir ./campaign-out [--workers N]
           python examples/campaign_study.py --dir ./campaign-out --status
           python examples/campaign_study.py --dir ./campaign-out --kill-after 5

``--kill-after N`` SIGKILLs the process after N completed tasks — the
hostile half of the resume demo (and what the checkpoint tests run).
``--manifest FILE`` swaps in your own manifest JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import Any

from repro.campaign import CampaignManifest, CampaignRunner, campaign_status

#: §V-capable matrix rows: both chronos variants plus the frag vector.
REDUCED_ATTACKS = [
    {"label": "chronos_poisoning", "scenario": "chronos_pool_attack",
     "params": {"poison_at_query": 1, "run_time_shift": False,
                "benign_server_count": 120}},
    {"label": "chronos_24h_hijack", "scenario": "chronos_pool_attack",
     "params": {"poison_at_query": 1, "run_time_shift": False,
                "benign_server_count": 120, "hijack_duration": 90000.0,
                "malicious_ttl": 300, "attacker_record_count": 4}},
    {"label": "frag_poisoning", "scenario": "frag_poisoning", "params": {}},
]

REDUCED_STACKS = [
    {"name": "classic", "defenses": []},
    {"name": "frag_reject", "defenses": ["fragment_rejection"]},
    {"name": "address_cap", "defenses": ["address_cap"]},
    {"name": "ttl_discard", "defenses": ["ttl_discard"]},
    {"name": "section5", "defenses": ["ttl_discard", "address_cap"]},
]


def reduced_manifest(seeds: int) -> dict[str, Any]:
    """The two-sweep study the README, tests, and CI job all run."""
    return {
        "name": "reduced-study",
        "seeds": seeds,
        "sweeps": {
            "grid": {"kind": "matrix", "attacks": REDUCED_ATTACKS,
                     "stacks": REDUCED_STACKS},
            "overhead": {"kind": "grid", "scenario": "transport_overhead",
                         "base_params": {"queries": 3,
                                         "benign_server_count": 30},
                         "grid": {"transport": ["udp", "tcp", "dot", "doh"]},
                         "seeds": [1, 2]},
        },
        "analyses": {
            "section5": {"kind": "section5", "sweep": "grid"},
            "summary": {"kind": "success_summary", "sweep": "grid"},
        },
        "figures": {
            "heatmap": {"kind": "heatmap", "sweep": "grid",
                        "title": "Attack success by defense stack"},
            "overhead": {"kind": "curve", "sweep": "overhead",
                         "x": "transport", "y": "mean_time_to_answer",
                         "title": "Transport handshake overhead"},
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dir", type=Path, default=Path("./campaign-out"))
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seeds", type=int, default=2,
                        help="seed budget for the reduced manifest")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="manifest JSON (default: built-in reduced study)")
    parser.add_argument("--status", action="store_true",
                        help="print campaign status and exit")
    parser.add_argument("--kill-after", type=int, default=None, metavar="N",
                        help="SIGKILL this process after N completed tasks")
    parser.add_argument("--quiet", action="store_true")
    options = parser.parse_args(argv)

    if options.status:
        print(campaign_status(options.dir))
        return 0

    if options.manifest is not None:
        spec = json.loads(options.manifest.read_text(encoding="utf-8"))
    else:
        spec = reduced_manifest(options.seeds)
    manifest = CampaignManifest.from_spec(spec)

    completed = 0

    def on_progress(step: str, done: int, total: int) -> None:
        nonlocal completed
        completed = done
        if not options.quiet:
            print(f"\r{step}: {done}/{total}    ", end="", file=sys.stderr,
                  flush=True)
            if done >= total:
                print(file=sys.stderr)
        if (options.kill_after is not None and step.startswith("sweep:")
                and done >= options.kill_after):
            # The hostile resume demo: die the way an OOM kill or a lost
            # node would, with no chance to flush anything.
            os.kill(os.getpid(), signal.SIGKILL)

    runner = CampaignRunner(manifest, options.dir, workers=options.workers,
                            on_progress=on_progress)
    result = runner.run()
    print(result.formatted())
    print(f"report: {result.report_dir / 'report.md'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
