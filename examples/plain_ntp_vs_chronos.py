#!/usr/bin/env python3
"""Compare the DNS attack surface of plain NTP and Chronos (experiments E6/E9).

The paper's headline: Chronos was designed to make time shifting dramatically
harder than plain NTP, yet its DNS-based pool generation gives an off-path
attacker *more* poisoning opportunities and a *stronger* outcome per success.

This example runs both victims end to end:

* a traditional 4-server NTP client whose single start-up DNS lookup is
  poisoned;
* a Chronos client whose pool generation is poisoned at query #3;

and also prints the analytical effort comparison (per-race opportunities and
the expected years to shift the clock by 100 ms, before and after the attack).

Run with:  python examples/plain_ntp_vs_chronos.py
"""

from __future__ import annotations

from repro.analysis import (
    DNSAttackComparisonRow,
    ShiftEffortRow,
    dns_attack_comparison,
    shift_effort_table,
)
from repro.attacks import (
    BaselineAttackConfig,
    ChronosPoolAttackScenario,
    PoolAttackConfig,
    TraditionalClientAttackScenario,
)

TARGET_SHIFT = 600.0  # seconds


def run_traditional() -> None:
    print("== Traditional NTP client, poisoned start-up lookup ==")
    scenario = TraditionalClientAttackScenario(BaselineAttackConfig(seed=11))
    result = scenario.run(target_shift=TARGET_SHIFT)
    print(f"  upstream servers used:        {len(result.servers_used)}")
    print(f"  of which attacker-controlled: {result.malicious_servers_used}")
    print(f"  victim clock error:           {result.achieved_error:.1f} s")
    print(f"  attack succeeded:             {result.attack_succeeded}\n")


def run_chronos() -> None:
    print("== Chronos client, pool generation poisoned at query #3 ==")
    scenario = ChronosPoolAttackScenario(PoolAttackConfig(seed=11, poison_at_query=3))
    pool_result = scenario.run_pool_generation()
    shift = scenario.run_time_shift(target_shift=TARGET_SHIFT, update_rounds=6)
    print(f"  pool composition:             {pool_result.composition.benign} benign / "
          f"{pool_result.composition.malicious} malicious")
    print(f"  victim clock error:           {shift.achieved_error:.1f} s")
    print(f"  attack succeeded:             {shift.shift_achieved}\n")


def print_tables() -> None:
    print("== DNS attack-surface comparison (E6) ==")
    print(DNSAttackComparisonRow.header())
    for row in dns_attack_comparison():
        print(row.formatted())

    print("\n== Expected effort to shift the clock by 100 ms (E3) ==")
    print(ShiftEffortRow.header())
    for row in shift_effort_table():
        print(row.formatted())


def main() -> None:
    run_traditional()
    run_chronos()
    print_tables()


if __name__ == "__main__":
    main()
