#!/usr/bin/env python3
"""Compare the DNS attack surface of plain NTP and Chronos (experiments E6/E9).

The paper's headline: Chronos was designed to make time shifting dramatically
harder than plain NTP, yet its DNS-based pool generation gives an off-path
attacker *more* poisoning opportunities and a *stronger* outcome per success.

Both victims are addressed through the scenario registry and swept over the
same seeds by the experiment runner:

* ``traditional_client_attack`` — a 4-server NTP client whose single
  start-up DNS lookup is poisoned;
* ``chronos_pool_attack`` — a Chronos client whose pool generation is
  poisoned at query #3;

followed by the analytical effort comparison (per-race opportunities and the
expected years to shift the clock by 100 ms, before and after the attack).

Run with:  python examples/plain_ntp_vs_chronos.py
"""

from __future__ import annotations

from repro.analysis import (
    DNSAttackComparisonRow,
    ShiftEffortRow,
    dns_attack_comparison,
    shift_effort_table,
)
from repro.experiments import ExperimentRunner

SEEDS = (11, 12, 13)
TARGET_SHIFT = 600.0  # seconds


def run_victim(title: str, scenario: str, base_params: dict,
               success_key: str) -> None:
    # success_key differs per victim: the baseline's attack_succeeded is
    # already shift-based, while for Chronos the end-to-end outcome this
    # comparison is about is the time-shifting phase, not the pool majority.
    print(f"== {title} ==")
    result = ExperimentRunner(scenario, seeds=SEEDS,
                              base_params=base_params).run()
    rate = result.success_rate(success_key)
    interval = result.success_interval(success_key)
    print(f"  seeds swept:                  {len(SEEDS)}")
    print(f"  shift success rate:           {rate:.2f} {interval.formatted()}")
    print(f"  victim clock error (mean):    {result.mean('achieved_shift'):.1f} s "
          f"(target {TARGET_SHIFT:.0f} s)\n")


def print_tables() -> None:
    print("== DNS attack-surface comparison (E6) ==")
    print(DNSAttackComparisonRow.header())
    for row in dns_attack_comparison():
        print(row.formatted())

    print("\n== Expected effort to shift the clock by 100 ms (E3) ==")
    print(ShiftEffortRow.header())
    for row in shift_effort_table():
        print(row.formatted())


def main() -> None:
    run_victim("Traditional NTP client, poisoned start-up lookup",
               "traditional_client_attack",
               {"target_shift": TARGET_SHIFT},
               success_key="attack_succeeded")
    run_victim("Chronos client, pool generation poisoned at query #3",
               "chronos_pool_attack",
               {"poison_at_query": 3, "target_shift": TARGET_SHIFT,
                "update_rounds": 6},
               success_key="shift_achieved")
    print_tables()


if __name__ == "__main__":
    main()
