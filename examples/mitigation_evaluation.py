#!/usr/bin/env python3
"""Evaluate the §V mitigations and the residual 24-hour-hijack attack (E8).

The paper recommends two changes to Chronos' pool generation — accept at most
4 addresses from a single DNS response, and discard responses with high TTL
values — while noting that the DNS dependency itself remains exploitable by
an attacker who keeps the victim's DNS hijacked for the full 24-hour window.

This example prints the closed-form evaluation and then re-runs the
packet-level scenario with each mitigation enabled; the packet-level table is
an explicit ``param_sets`` sweep through the experiment runner (see
:data:`repro.analysis.mitigations.MITIGATION_CASES`).

Run with:  python examples/mitigation_evaluation.py [--simulate] [--workers N]
"""

from __future__ import annotations

import sys

from repro.analysis import MitigationRow, analytic_mitigation_table, simulated_mitigation_table


def main(simulate: bool = False, workers: int = 1) -> None:
    print("== Closed-form mitigation evaluation (single poisoning at query 1) ==")
    print(MitigationRow.header())
    for row in analytic_mitigation_table():
        print(row.formatted())

    if simulate:
        print(f"\n== Packet-level mitigation evaluation (workers={workers}) ==")
        print(MitigationRow.header())
        for row in simulated_mitigation_table(workers=workers):
            print(row.formatted())
    else:
        print("\n(pass --simulate to also run the packet-level evaluation)")


if __name__ == "__main__":
    argv = sys.argv[1:]
    worker_count = 1
    if "--workers" in argv:
        try:
            worker_count = int(argv[argv.index("--workers") + 1])
        except (IndexError, ValueError):
            sys.exit("usage: mitigation_evaluation.py [--simulate] [--workers N]")
    main(simulate="--simulate" in argv, workers=worker_count)
