#!/usr/bin/env python3
"""Watch the §IV poisoning race, one upstream query at a time.

Cache poisoning is a race: the attacker plants spoofed trailing fragments
*before* the resolver even asks its question, the legitimate nameserver's
response arrives, the resolver's reassembly splices the two — and the
defense stack referees.  The observability layer records every leg of that
race stamped with **simulated** time; this example replays it as a readable
timeline twice:

1. **Undefended** — the spoofed fragments splice into the legitimate
   response and the attacker's records win the cache.
2. **fragment_rejection** — the same burst, the same splice, but the
   defense rejects the reassembled response; the timeline names the
   defense and the reason, and the retry over intact paths wins instead.

Both runs also export a Chrome-trace JSON (open it at https://ui.perfetto.dev)
so the same race can be scrubbed on a real timeline UI.

Run with:  python examples/race_timeline.py [trace.json]
"""

from __future__ import annotations

import sys

from repro import obs
from repro.attacks.frag_poisoning import FragPoisoningConfig, FragPoisoningScenario
from repro.obs.timeline import format_races


def traced_run(defenses: tuple[str, ...]):
    with obs.capture() as ob:
        scenario = FragPoisoningScenario(FragPoisoningConfig(defenses=defenses))
        result = scenario.run()
    return result, ob


def main(trace_path: str | None = None) -> None:
    print("== 1. undefended: the spoofed fragments win the race ==")
    result, ob = traced_run(())
    print(format_races(ob.trace.events()))
    print(f"\ncache poisoned: {result.cache_poisoned} "
          f"({result.poisoned_records_cached}/{result.records_cached} cached "
          f"records are the attacker's)")

    print("\n== 2. fragment_rejection: same burst, the defense referees ==")
    result, ob = traced_run(("fragment_rejection",))
    print(format_races(ob.trace.events()))
    print(f"\ncache poisoned: {result.cache_poisoned}")

    snapshot = ob.metrics.snapshot()
    print("\n== counters of the defended run ==")
    for line in snapshot.formatted():
        print(f"  {line}")

    if trace_path:
        ob.trace.write_chrome_trace(trace_path)
        print(f"\nChrome trace written to {trace_path} "
              f"— open at https://ui.perfetto.dev")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
