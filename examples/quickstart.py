#!/usr/bin/env python3
"""Quickstart: run Chronos in a benign simulated Internet via the runner.

Every experiment in this repo goes through the same engine: pick a scenario
from the registry, hand :class:`repro.experiments.ExperimentRunner` a seed
list and a parameter dict, and read the aggregate.  Here the attacker is
disabled (``poison_at_query=None``), so the sweep simply shows a healthy
Chronos client across several randomized worlds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner, available_scenarios


def main() -> None:
    print("== registered scenarios ==")
    for name, description in available_scenarios().items():
        print(f"  {name:<28} {description}")

    print("\n== benign Chronos, 4-seed sweep (no attacker) ==")
    result = ExperimentRunner(
        "chronos_pool_attack",
        seeds=[42, 43, 44, 45],
        base_params={"poison_at_query": None, "target_shift": 0.0,
                     "update_rounds": 6},
    ).run()
    for record in result.records:
        print(f"  seed {record.seed}: pool size {record.metrics['pool_size']}, "
              f"{record.metrics['benign']} benign / "
              f"{record.metrics['malicious']} malicious, "
              f"clock error {record.metrics['achieved_shift'] * 1000.0:.3f} ms")

    print("\n== aggregate ==")
    for line in result.summary_lines():
        print(f"  {line}")
    print(f"  runs with any malicious pool member: "
          f"{sum(1 for record in result.records if record.metrics['malicious'])}")


if __name__ == "__main__":
    main()
