#!/usr/bin/env python3
"""Quickstart: run a Chronos client in a benign simulated Internet.

Builds the pool.ntp.org infrastructure (authoritative nameserver + volunteer
NTP servers), a recursive resolver and a Chronos client; runs the 24-hour
pool-generation phase and a few time updates with *no attacker present*, and
reports the pool size and the client's clock error.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.attacks import ChronosPoolAttackScenario, PoolAttackConfig


def main() -> None:
    # poison_at_query=None disables the attacker entirely; everything else is
    # the default Figure-1 topology.
    config = PoolAttackConfig(seed=42, poison_at_query=None)
    scenario = ChronosPoolAttackScenario(config)

    print("== Chronos pool generation (24 hourly DNS queries) ==")
    result = scenario.run_pool_generation()
    print(f"pool size:            {result.pool.size} servers")
    print(f"benign / malicious:   {result.composition.benign} / {result.composition.malicious}")
    print(f"queries issued:       {len(result.pool.queries)}")
    print(f"answered from cache:  {result.cache_hits_during_generation}")

    print("\n== Chronos time updates (no attacker) ==")
    shift = scenario.run_time_shift(target_shift=0.0, update_rounds=6)
    print(f"updates run:          {shift.updates_run}")
    print(f"panic rounds:         {shift.panic_rounds}")
    print(f"victim clock error:   {shift.achieved_error * 1000.0:.3f} ms")

    applied = [f"{offset * 1000.0:.3f} ms" for offset in shift.applied_offsets]
    print(f"applied offsets:      {applied}")


if __name__ == "__main__":
    main()
