#!/usr/bin/env python3
"""Encrypted DNS transports: what strict DoT closes, and what fallback reopens.

Three acts on the new connection-oriented netsim layer:

1. **A DoT query, watched from the wire.**  A resolver resolves the pool
   zone over DNS-over-TLS while an on-path tap records every packet: the
   TCP handshake and TLS hello exchange are visible, the question and the
   answer are not — taps see only ciphertext.
2. **Strict DoT against every off-path vector.**  Each attack row of the
   matrix runs against the ``dot_strict`` stack: blind spoofing, the
   fragment splice, the BGP hijack and even the sustained 24-hour hijack
   all land at 0.0 — the hijacker can complete a TCP handshake for the
   diverted address, but holds no certificate key, so resolution fails
   *closed* instead of poisoned.
3. **Opportunistic DoT and the downgrade race.**  The same attacker floods
   the nameserver's stream listeners with spoofed-source SYNs, the
   opportunistic resolver's connect attempt dies at a full backlog, the
   query falls back to plaintext UDP — and the classic fragmentation race
   wins again.  Policy, not cryptography, decides whether the protection
   is real.
4. **What the handshake tax costs — and the serving layer that removes
   it.**  The same 20 queries over cold-per-query DoT, a reused RFC 7766
   stream, and 0-RTT session resumption: reuse collapses 3 round trips to
   1, putting encrypted transport at plaintext-UDP latency parity warm.

Run with:  python examples/encrypted_transport.py [seeds]
"""

from __future__ import annotations

import sys

from repro.dns.records import RecordType
from repro.dns.wire import encode_name
from repro.experiments import (
    ExperimentSpec,
    SweepScheduler,
    TestbedConfig,
    build_testbed,
)
from repro.experiments.runner import resolve_spec_tasks

ZONE = "pool.ntp.org"

ATTACKS = (
    ("frag_poisoning", {}),
    ("bgp_hijack", {}),
    ("traditional_client_attack", {}),
    ("chronos_pool_attack", {"poison_at_query": 1, "run_time_shift": False,
                             "benign_server_count": 120}),
    ("downgrade", {}),
)

STACKS = (
    ("plaintext UDP", ()),
    ("dot_strict", ("encrypted_transport",)),
    ("dot_opportunistic", ("encrypted_transport_opportunistic",)),
)


def act_one() -> None:
    print("== 1. a DoT query, watched from the wire ==")
    testbed = build_testbed(TestbedConfig(
        seed=1, benign_server_count=50, records_per_response=30,
        defenses=("encrypted_transport",), with_attacker=False))
    wire = bytearray()
    packets = []
    testbed.network.add_tap(lambda packet, now: (wire.extend(packet.payload),
                                                 packets.append(packet)))
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=5.0)
    entry = testbed.resolver.cache.peek(ZONE, RecordType.A)
    print(f"resolved over DoT: {len(entry.records)} records cached")
    print(f"packets on the wire: {len(packets)} "
          f"(handshake + TLS hellos + framed query/answer)")
    leaked = encode_name(ZONE) in bytes(wire)
    print(f"question name visible to the on-path tap: {leaked}")
    assert not leaked


def _progress(done: int, total: int) -> None:
    print(f"\r  sweep: {done}/{total} tasks", end="" if done < total else "\n",
          file=sys.stderr, flush=True)


def act_two_and_three(seed_count: int) -> None:
    print("\n== 2+3. every off-path vector × transport policy ==")
    seeds = tuple(range(1, seed_count + 1))
    # One flat task stream for the whole grid on a single shared scheduler
    # (rather than one ExperimentRunner per cell) so progress is reported
    # over the entire sweep and nothing idles at per-cell barriers.
    tasks = [task
             for attack, params in ATTACKS
             for _, defenses in STACKS
             for task in resolve_spec_tasks(ExperimentSpec(
                 scenario=attack, seeds=seeds,
                 base_params={**params, "defenses": defenses}))]
    scheduler = SweepScheduler(on_progress=_progress)
    records, stats = scheduler.run_tasks(tasks)
    print(f"  {stats.formatted()}", file=sys.stderr)

    width = max(len(name) for name, _ in ATTACKS)
    header = " " * width + "".join(f" {label:>20}" for label, _ in STACKS)
    print(header)
    cursor = 0
    for attack, _ in ATTACKS:
        row = f"{attack:<{width}}"
        for _ in STACKS:
            cell = records[cursor:cursor + len(seeds)]
            cursor += len(seeds)
            rate = sum(1 for r in cell if r.metrics["attack_succeeded"]) / len(cell)
            row += f" {rate:>20.2f}"
        print(row)
    print("\nstrict DoT clears every row (the 24h-hijack residual included);")
    print("opportunistic DoT falls to every attack that can force a downgrade.")


def act_four(queries: int = 20) -> None:
    print("\n== 4. the handshake tax: cold vs reused vs 0-RTT ==")
    from repro.defenses.transport import EncryptedTransport

    configs = (
        ("udp", ()),
        ("dot cold", ("encrypted_transport",)),
        ("dot reused", (EncryptedTransport(reuse_connections=True,
                                           idle_timeout=60.0),)),
        ("dot 0-rtt", (EncryptedTransport(zero_rtt=True, idle_timeout=5.0),)),
    )
    print(f"{'transport':<12} {'mean answer':>12} {'conns':>6} "
          f"{'reused':>7} {'0-rtt':>6}")
    for label, defenses in configs:
        testbed = build_testbed(TestbedConfig(
            seed=42, benign_server_count=50, records_per_response=30,
            defenses=defenses, with_attacker=False))
        times = []
        for index in range(queries):
            at = index * 10.0
            testbed.simulator.schedule_at(
                at, lambda: testbed.resolver.trigger_lookup(ZONE))
            testbed.simulator.run(until=at + 9.0)
            entry = testbed.resolver.cache.peek(ZONE, RecordType.A)
            times.append(entry.inserted_at - at)
        upstream = testbed.resolver.upstream_transport
        print(f"{label:<12} {sum(times) / len(times) * 1000:>10.1f}ms "
              f"{getattr(upstream, 'connections_opened', 0):>6} "
              f"{getattr(upstream, 'connections_reused', 0):>7} "
              f"{getattr(upstream, 'zero_rtt_queries', 0):>6}")
    print("\na warm reused stream answers in 1 RTT — encrypted transport at")
    print("plaintext parity; 0-RTT buys the same without keeping streams open.")


def main(seed_count: int = 2) -> None:
    act_one()
    act_two_and_three(seed_count)
    act_four()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
