#!/usr/bin/env python3
"""Sweep the poisoning attacks across a fault grid: chaos as an experiment axis.

The fault-injection layer (``repro.faults``) turns network misbehaviour —
packet loss ramps, link flaps, reordering, duplication — into a declarative,
seeded experiment parameter.  This example runs the two DNS poisoning rows
(fragmentation splice and the downgrade vector) across increasing fault
intensity and prints attack success with Wilson confidence intervals:
degraded networks change the race geometry the attacker exploits, and the
effect is measurable, reproducible, and worker-count-independent.

A second table runs the fragmentation row under the heaviest fault level
with the *resilience* defense stacks (RFC 8767 serve-stale, upstream query
retries).  These are availability hardenings, not security mechanisms — the
table makes their double edge visible: retries keep resolution alive through
the chaos, while serve-stale also keeps whatever was poisoned alive.

Run with:  python examples/chaos_matrix.py [seeds] [workers]
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentSpec, SweepScheduler
from repro.experiments.matrix import RESILIENCE_STACKS

ENDLESS = 9e9

LOSS = {"kind": "link_loss", "loss_rate": 0.35, "src": "@nameserver",
        "dst": "@resolver", "start": 0.0, "end": ENDLESS, "ramp": 20.0}
FLAP = {"kind": "link_flap", "down_time": 4.0, "up_time": 9.0,
        "src": "@resolver", "dst": "@nameserver", "start": 5.0, "end": ENDLESS}
REORDER = {"kind": "reorder_jitter", "jitter": 0.05, "start": 0.0, "end": ENDLESS}
DUPLICATE = {"kind": "duplicate", "probability": 0.1, "delay": 0.02,
             "start": 0.0, "end": ENDLESS}

#: Fault intensity columns, mildest first.  ``clean`` omits the ``faults``
#: parameter entirely, so its cells are byte-identical to a sweep that has
#: never heard of fault injection.
FAULT_GRID: tuple[tuple[str, tuple[dict, ...]], ...] = (
    ("clean", ()),
    ("loss", (LOSS,)),
    ("flap", (FLAP,)),
    ("storm", (LOSS, FLAP, REORDER, DUPLICATE)),
)

#: Attack rows: scenario name and its cheap-grid base parameters.
ATTACK_ROWS: tuple[tuple[str, dict], ...] = (
    ("frag_poisoning", {"benign_server_count": 40}),
    ("downgrade", {}),
)


def _spec(scenario: str, base: dict, faults: tuple[dict, ...],
          seeds) -> ExperimentSpec:
    params = dict(base)
    if faults:
        params["faults"] = faults
    return ExperimentSpec(scenario=scenario, seeds=tuple(seeds),
                          base_params=params)


def _progress(done: int, total: int) -> None:
    print(f"\r  sweep: {done}/{total} tasks", end="" if done < total else "\n",
          file=sys.stderr, flush=True)


def main(seed_count: int = 4, workers: int = 1) -> None:
    seeds = range(1, seed_count + 1)
    scheduler = SweepScheduler(workers=workers, on_progress=_progress)

    # One spec per grid cell, executed as a single flattened task stream on
    # one shared pool; the results list maps 1:1 onto the grid.
    cells = [(scenario, base, label, faults)
             for scenario, base in ATTACK_ROWS
             for label, faults in FAULT_GRID]
    specs = [_spec(scenario, base, faults, seeds)
             for scenario, base, _, faults in cells]
    results, stats = scheduler.run_specs(specs)

    print(f"== attack success across fault intensity "
          f"({len(seeds)} seeds, workers={workers}) ==")
    print(f"sweep: {stats.formatted()}")
    width = max(len(scenario) for scenario, _ in ATTACK_ROWS)
    for (scenario, _, label, _), result in zip(cells, results):
        interval = result.success_interval()
        print(f"  {scenario:<{width}}  {label:<6} "
              f"{result.success_rate():.2f}  {interval.formatted()}")

    print("\n== resilience stacks under the storm (availability vs security) ==")
    stacks = [("classic", ())] + [(s.name, s.defenses) for s in RESILIENCE_STACKS]
    storm = dict(FAULT_GRID)["storm"]
    stack_specs = [
        _spec("frag_poisoning",
              {"benign_server_count": 40, "defenses": defenses}, storm, seeds)
        for _, defenses in stacks
    ]
    stack_results, stack_stats = scheduler.run_specs(stack_specs)
    print(f"sweep: {stack_stats.formatted()}")
    name_width = max(len(name) for name, _ in stacks)
    for (name, _), result in zip(stacks, stack_results):
        interval = result.success_interval()
        print(f"  {name:<{name_width}}  poisoning success "
              f"{result.success_rate():.2f}  {interval.formatted()}")
    print("\nserve-stale keeps answers flowing through the chaos — including "
          "the poisoned ones; only the retry stack is tradeoff-free here.")


if __name__ == "__main__":
    argv = sys.argv[1:]
    try:
        seed_count = int(argv[0]) if argv else 4
        worker_count = int(argv[1]) if len(argv) > 1 else 1
    except ValueError:
        sys.exit("usage: chaos_matrix.py [seeds] [workers]")
    main(seed_count=seed_count, workers=worker_count)
