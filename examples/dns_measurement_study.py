#!/usr/bin/env python3
"""Reproduce the §II DNS measurement statistics (experiment E4).

The paper's attack rests on a companion measurement of how fragile the DNS
ecosystem around pool.ntp.org is: how many nameservers fragment responses
(and skip DNSSEC), how many resolvers accept fragments, and how many can be
made to issue queries by a third party.  The populations here are synthetic
(see DESIGN.md for the substitution rationale), but the probe/classify/
aggregate pipeline is the same one a live measurement would run.

Run with:  python examples/dns_measurement_study.py
"""

from __future__ import annotations

from repro.analysis import VectorFeasibilityRow, mtu_sweep, vulnerable_pair_fraction
from repro.measurement import (
    generate_nameserver_population,
    generate_resolver_population,
    run_nameserver_study,
    run_resolver_study,
)


def main() -> None:
    print("== pool.ntp.org nameserver study ==")
    nameservers = generate_nameserver_population(seed=1)
    ns_report = run_nameserver_study(nameservers)
    print("  " + ns_report.summary_row())
    print(f"  (fragmenting at all: {ns_report.fragmenting}, "
          f"DNSSEC-enabled: {ns_report.dnssec_enabled})")

    print("\n== resolver study (ad-network style) ==")
    resolvers = generate_resolver_population(seed=1, total=5000)
    resolver_report = run_resolver_study(resolvers)
    for line in resolver_report.summary_rows():
        print("  " + line)
    print(f"  trigger methods: {resolver_report.by_trigger_method}")

    print("\n== fragmentation-vector feasibility vs nameserver MTU (E7) ==")
    print("  " + VectorFeasibilityRow.header())
    for row in mtu_sweep():
        print("  " + row.formatted())

    fraction = vulnerable_pair_fraction(nameservers, resolvers[:200])
    print(f"\n  fraction of (nameserver, resolver) pairs where the "
          f"fragmentation vector is feasible: {fraction:.2%}")


if __name__ == "__main__":
    main()
