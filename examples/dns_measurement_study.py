#!/usr/bin/env python3
"""Reproduce the §II DNS measurement statistics (experiment E4).

The paper's attack rests on a companion measurement of how fragile the DNS
ecosystem around pool.ntp.org is: how many nameservers fragment responses
(and skip DNSSEC), how many resolvers accept fragments, and how many can be
made to issue queries by a third party.  The populations here are synthetic
(see DESIGN.md for the substitution rationale), but the probe/classify/
aggregate pipeline is the same one a live measurement would run.

The study is registered as the ``dns_measurement`` scenario, so this example
drives it through the experiment engine: a multi-seed (optionally parallel)
sweep whose aggregates carry confidence intervals for every fraction.

Run with:  python examples/dns_measurement_study.py [seeds] [workers]
"""

from __future__ import annotations

import sys

from repro.analysis import VectorFeasibilityRow, mtu_sweep
from repro.experiments import ExperimentRunner


def main(seed_count: int = 8, workers: int = 1) -> None:
    result = ExperimentRunner(
        "dns_measurement",
        seeds=range(seed_count),
        workers=workers,
    ).run()

    print(f"== §II measurement study: {len(result)} synthetic populations "
          f"({result.elapsed_seconds:.2f}s, workers={workers}) ==")
    first = result.records[0].metrics
    print(f"  nameservers usable for fragmentation poisoning: "
          f"{first['nameservers_fragmenting_without_dnssec']} of 30 (every seed: "
          f"{sorted(set(result.values('nameservers_fragmenting_without_dnssec')))})")
    for key in ("accept_any_fraction", "accept_minimum_fraction",
                "triggerable_fraction", "vulnerable_pair_fraction"):
        interval = result.mean_interval(key)
        print(f"  {key}: mean {result.mean(key):.3f} {interval.formatted()}")
    print(f"  digest: {result.digest()}")

    print("\n== fragmentation-vector feasibility vs nameserver MTU (E7) ==")
    print("  " + VectorFeasibilityRow.header())
    for row in mtu_sweep():
        print("  " + row.formatted())


if __name__ == "__main__":
    argv = sys.argv[1:]
    try:
        seed_count = int(argv[0]) if argv else 8
        worker_count = int(argv[1]) if len(argv) > 1 else 1
    except ValueError:
        sys.exit("usage: dns_measurement_study.py [seeds] [workers]")
    main(seed_count=seed_count, workers=worker_count)
