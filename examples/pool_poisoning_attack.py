#!/usr/bin/env python3
"""The paper's Figure-1 attack, end to end.

1. The attacker stands up 89 NTP servers (the maximum that fits in a single
   unfragmented DNS response) and waits for the Chronos client to start its
   pool generation.
2. During the k-th hourly pool.ntp.org query it poisons the victim
   resolver's cache (here via a short BGP hijack window) with all 89
   addresses under a 48-hour TTL.
3. Every later hourly query is answered from cache, so the finished pool is
   at most 4·(k-1) benign addresses against 89 malicious ones — a two-thirds
   attacker majority for any k ≤ 12.
4. The attacker's servers then serve time shifted by 10 minutes, and the
   Chronos client follows.

Run with:  python examples/pool_poisoning_attack.py [poison_query_index]
"""

from __future__ import annotations

import sys

from repro.attacks import (
    ChronosPoolAttackScenario,
    PoolAttackConfig,
    analytic_pool_composition,
)


def main(poison_at_query: int = 3) -> None:
    print(f"== DNS poisoning lands at pool-generation query #{poison_at_query} ==\n")

    analytic = analytic_pool_composition(poison_at_query)
    print("closed-form expectation (paper arithmetic):")
    print(f"  benign addresses:    {analytic.benign}")
    print(f"  malicious addresses: {analytic.malicious}")
    print(f"  attacker fraction:   {analytic.malicious_fraction:.3f}")
    print(f"  attacker >= 2/3:     {analytic.attacker_has_two_thirds}\n")

    config = PoolAttackConfig(seed=7, poison_at_query=poison_at_query)
    scenario = ChronosPoolAttackScenario(config)
    result = scenario.run_pool_generation()

    print("packet-level simulation:")
    print(f"  pool size:           {result.pool.size}")
    print(f"  benign / malicious:  {result.composition.benign} / {result.composition.malicious}")
    print(f"  attacker fraction:   {result.attacker_fraction:.3f}")
    print(f"  poisoned queries:    {result.poisoned_queries}")
    print(f"  attack succeeded:    {result.attack_succeeded}\n")

    target_shift = 600.0  # ten minutes
    shift = scenario.run_time_shift(target_shift=target_shift, update_rounds=6)
    print("time-shifting phase (attacker servers report +10 min):")
    print(f"  Chronos updates run: {shift.updates_run}")
    print(f"  panic rounds:        {shift.panic_rounds}")
    print(f"  victim clock error:  {shift.achieved_error:.1f} s "
          f"(target {target_shift:.0f} s)")
    print(f"  shift achieved:      {shift.shift_achieved}")


if __name__ == "__main__":
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    main(index)
