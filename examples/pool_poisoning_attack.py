#!/usr/bin/env python3
"""The paper's Figure-1 attack, end to end, as a multi-seed sweep.

1. The attacker stands up 89 NTP servers (the maximum that fits in a single
   unfragmented DNS response) and waits for the Chronos client to start its
   pool generation.
2. During the k-th hourly pool.ntp.org query it poisons the victim
   resolver's cache (here via a short BGP hijack window) with all 89
   addresses under a 48-hour TTL.
3. Every later hourly query is answered from cache, so the finished pool is
   at most 4·(k-1) benign addresses against 89 malicious ones — a two-thirds
   attacker majority for any k ≤ 12.
4. The attacker's servers then serve time shifted by 10 minutes, and the
   Chronos client follows.

The paper reports these outcomes as probabilities over randomized runs, so
this example sweeps the scenario over several seeds through the experiment
runner and prints the success rate with a Wilson confidence interval.

Run with:  python examples/pool_poisoning_attack.py [poison_query_index] [workers]
"""

from __future__ import annotations

import sys

from repro.attacks import analytic_pool_composition
from repro.experiments import ExperimentRunner

SEEDS = tuple(range(1, 11))
TARGET_SHIFT = 600.0  # ten minutes


def main(poison_at_query: int = 3, workers: int = 1) -> None:
    print(f"== DNS poisoning lands at pool-generation query #{poison_at_query} ==\n")

    analytic = analytic_pool_composition(poison_at_query)
    print("closed-form expectation (paper arithmetic):")
    print(f"  benign addresses:    {analytic.benign}")
    print(f"  malicious addresses: {analytic.malicious}")
    print(f"  attacker fraction:   {analytic.malicious_fraction:.3f}")
    print(f"  attacker >= 2/3:     {analytic.attacker_has_two_thirds}\n")

    result = ExperimentRunner(
        "chronos_pool_attack",
        seeds=SEEDS,
        base_params={"poison_at_query": poison_at_query,
                     "target_shift": TARGET_SHIFT,
                     "update_rounds": 6},
        workers=workers,
    ).run()

    print(f"packet-level sweep over {len(SEEDS)} seeds "
          f"(workers={workers}, {result.elapsed_seconds:.2f}s):")
    pool_rate = result.success_rate("attack_succeeded")
    pool_ci = result.success_interval("attack_succeeded")
    shift_rate = result.success_rate("shift_achieved")
    print(f"  2/3-majority success rate: {pool_rate:.2f} {pool_ci.formatted()}")
    print(f"  time-shift success rate:   {shift_rate:.2f}")
    print(f"  attacker fraction:         mean {result.mean('attacker_fraction'):.3f} "
          f"median {result.median('attacker_fraction'):.3f}")
    print(f"  achieved shift (s):        mean {result.mean('achieved_shift'):.1f} "
          f"{result.mean_interval('achieved_shift').formatted()} "
          f"(target {TARGET_SHIFT:.0f})")
    print(f"  sweep digest:              {result.digest()[:16]}… "
          f"(byte-identical across worker counts)")


if __name__ == "__main__":
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    worker_count = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    main(index, worker_count)
