#!/usr/bin/env python3
"""Run the attack × defense matrix and reproduce the §V mitigation table.

Every attack scenario (both poisoning vectors, the end-to-end Chronos pool
attack, the sustained 24-hour-hijack variant, and the traditional-client
baseline) runs under every named defense stack — from the bare classic
defenses through DNS-0x20/cookies, fragment handling, the §V mitigations,
vantage cross-checking and DNSSEC-style signing.  The printed grid *is* the
paper's argument:

* the classic defenses and the entropy hardenings stop neither vector;
* fragment rejection stops only the defragmentation splice;
* the §V mitigations stop a single poisoning but the sustained-hijack row
  stays at 1.0 — the residual risk the paper concedes;
* only content authentication (the ``dnssec`` column) clears every row.

Run with:  python examples/defense_matrix.py [seeds] [workers] [--cache]

With ``--cache`` the grid runs through the persistent run cache
(``$REPRO_CACHE_DIR`` or ``./.repro-cache``): re-run the example with more
seeds and only the new seeds are computed — the rest replays from disk,
digest-identically.

A second, serving-layer grid follows the default one: the sustained-load
fragmentation racer and the downgrade attacker against the response-rate-
limiting columns (``rrl``, ``rrl_plus_dot``, ``rrl_plus_dot_opp``) — RRL
throttles the sustained race, but only the strict DoT pairing stops the
downgrade.
"""

from __future__ import annotations

import sys

from repro.analysis import section5_from_matrix
from repro.experiments import AttackSpec, RunCache, run_defense_matrix
from repro.experiments.matrix import SERVING_ATTACKS, SERVING_STACKS


def _progress(done: int, total: int) -> None:
    print(f"\r  sweep: {done}/{total} tasks", end="" if done < total else "\n",
          file=sys.stderr, flush=True)


def main(seed_count: int = 2, workers: int = 1, use_cache: bool = False) -> None:
    cache = RunCache() if use_cache else None
    matrix = run_defense_matrix(seeds=range(1, seed_count + 1), workers=workers,
                                cache=cache, on_progress=_progress)
    print(f"== attack × defense matrix: success rates "
          f"({matrix.elapsed_seconds:.1f}s, workers={workers}) ==")
    prefix = f"cache [{cache.path}]" if cache is not None else "sweep"
    print(f"{prefix}: {matrix.sweep_stats.formatted()}")
    for line in matrix.formatted():
        print(line)
    print(f"\nmatrix digest (byte-identical across worker counts): {matrix.digest()}")

    print("\n== the §V mitigation table as a matrix cell-slice ==")
    comparisons = section5_from_matrix(matrix)
    for comparison in comparisons:
        print(comparison.formatted())
    agree = all(c.verdict_agrees and c.fraction_agrees for c in comparisons)
    print(f"\nanalytic table reproduced: {agree}")
    print(f"residual 24h-hijack success under both mitigations: "
          f"{matrix.residual_hijack_rate():.2f}  (the paper's point: the DNS "
          f"dependency itself remains the pitfall)")

    print("\n== serving layer: sustained load × response-rate limiting ==")
    serving = run_defense_matrix(
        attacks=(*SERVING_ATTACKS, AttackSpec("downgrade", "downgrade", {})),
        stacks=SERVING_STACKS,
        seeds=range(1, seed_count + 1), workers=workers,
        cache=cache, on_progress=_progress)
    for line in serving.formatted():
        print(line)
    sustained = serving.cell("sustained_load", "rrl")
    races = sustained.mean("races_poisoned")
    total = sustained.mean("races_run")
    print(f"\nRRL throttles the sustained racer to {races:.0f}/{total:.0f} "
          f"poisoned races; the downgrade row shows only the strict DoT "
          f"pairing (rrl_plus_dot) closes the plaintext fallback.")
    print(f"serving matrix digest: {serving.digest()}")


if __name__ == "__main__":
    argv = sys.argv[1:]
    with_cache = "--cache" in argv
    argv = [arg for arg in argv if arg != "--cache"]
    try:
        seed_count = int(argv[0]) if argv else 2
        worker_count = int(argv[1]) if len(argv) > 1 else 1
    except ValueError:
        sys.exit("usage: defense_matrix.py [seeds] [workers] [--cache]")
    main(seed_count=seed_count, workers=worker_count, use_cache=with_cache)
