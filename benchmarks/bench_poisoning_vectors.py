"""E7: both poisoning vectors produce the same pool compromise; MTU sweep."""

from __future__ import annotations

from conftest import emit

from repro.analysis.poisoning_vectors import VectorFeasibilityRow, mtu_sweep
from repro.attacks import build_attacker_infrastructure
from repro.attacks.bgp_hijack import BGPHijackPoisoner
from repro.attacks.frag_poisoning import FragmentationPoisoner
from repro.dns.message import DNSMessage
from repro.dns.nameserver import PoolNTPNameserver
from repro.dns.records import RecordType, a_record
from repro.dns.resolver import RecursiveResolver, ResolverPolicy
from repro.netsim.network import LinkProperties, Network
from repro.netsim.simulator import Simulator


def run_both_vectors():
    """Run the BGP-hijack vector and the fragmentation vector mechanically."""
    outcomes = {}

    # Vector 1: BGP hijack.
    simulator = Simulator(seed=3)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=[f"10.0.0.{i + 1}" for i in range(60)])
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address})
    attacker = build_attacker_infrastructure(network)
    hijacker = BGPHijackPoisoner(network, attacker, target_nameserver=nameserver.address)
    hijacker.announce()
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    entry = resolver.cache.peek("pool.ntp.org", RecordType.A)
    outcomes["bgp"] = {
        "poisoned": hijacker.poisoning_succeeded(resolver),
        "records": len(entry.records) if entry else 0,
        "ttl": entry.ttl if entry else 0,
    }

    # Vector 2: defragmentation-cache injection against a fragmenting server.
    simulator = Simulator(seed=3)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=[f"10.0.0.{i + 1}" for i in range(60)],
                                   records_per_response=40, min_supported_mtu=548)
    network.set_path_mtu(nameserver.address, 548)
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address},
                                 policy=ResolverPolicy())
    attacker = build_attacker_infrastructure(network)
    poisoner = FragmentationPoisoner(network, attacker, resolver, nameserver,
                                     checksum_oracle=True)
    expected = DNSMessage.query(0, "pool.ntp.org").make_response(
        [a_record("pool.ntp.org", f"10.0.0.{i + 1}", 150) for i in range(40)])
    poisoner.plant_fragments(expected)
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    entry = resolver.cache.peek("pool.ntp.org", RecordType.A)
    attacker_addresses = set(attacker.ntp_addresses)
    poisoned_count = sum(1 for record in (entry.records if entry else [])
                         if record.rdata in attacker_addresses)
    outcomes["fragmentation"] = {
        "poisoned": poisoner.verify_poisoning(),
        "records": poisoned_count,
        "ttl": max((record.ttl for record in entry.records), default=0) if entry else 0,
    }
    return outcomes


def test_poisoning_vectors(benchmark):
    outcomes = benchmark.pedantic(run_both_vectors, rounds=1, iterations=1)
    sweep = mtu_sweep()
    lines = ["vector        poisoned  attacker records in cache   max TTL cached"]
    lines.extend(f"{vector:<13} {str(data['poisoned']):<9} {data['records']:<27} "
                 f"{data['ttl']}" for vector, data in outcomes.items())
    lines.append("")
    lines.append("-- fragmentation-vector feasibility vs nameserver MTU --")
    lines.append(VectorFeasibilityRow.header())
    lines += [row.formatted() for row in sweep]
    lines.append("(paper: the choice of poisoning vector is immaterial to the Chronos attack)")
    emit("E7 — poisoning vectors: BGP hijack vs fragmentation injection", lines)
    assert outcomes["bgp"]["poisoned"]
    assert outcomes["fragmentation"]["poisoned"]
    assert outcomes["bgp"]["ttl"] > 24 * 3600
