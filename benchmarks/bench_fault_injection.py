"""Fault-injection overhead and the chaos determinism gate.

Two properties keep the fault layer honest:

* **Zero-cost when unused** — the transmit path pays one attribute check
  when no injector is armed, and an armed-but-idle plan (every window in
  the future) costs only its event-boundary timers, not per-packet work.
* **Deterministic when used** — a faulted sweep is still a pure function of
  its seeds: the pinned chaos grid (both poisoning vectors faulted, plus a
  population shard) reproduces its digest run after run.
"""

from __future__ import annotations

import hashlib
import json

from conftest import emit

from repro.experiments.runner import ExperimentSpec
from repro.experiments.scheduler import SweepScheduler
from repro.faults import FaultInjector, FaultPlan, LinkLoss
from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.packets import UDPDatagram
from repro.netsim.simulator import Simulator

PACKETS = 3000

CHAOS_FAULTS = (
    {"kind": "link_loss", "loss_rate": 0.4, "src": "@nameserver",
     "dst": "@resolver", "start": 0.0, "end": 9e9, "ramp": 30.0},
    {"kind": "link_flap", "down_time": 3.0, "up_time": 11.0,
     "src": "@resolver", "dst": "@nameserver", "start": 10.0, "end": 600.0},
    {"kind": "reorder_jitter", "jitter": 0.05, "start": 0.0, "end": 9e9},
    {"kind": "duplicate", "probability": 0.1, "delay": 0.02,
     "start": 0.0, "end": 9e9},
)

#: Same pin as tests/test_faults.py: the contract that faulted sweeps are
#: deterministic across releases, worker counts, and backends.
CHAOS_GRID_DIGEST = "b7789500e91733242db1daea42721960e4a8d69f050c929523a52d83243c2178"


class _Sink(Host):
    def handle_datagram(self, datagram):
        pass


def _pump(plan_events) -> int:
    """Send a burst through a two-host network, optionally with a plan armed."""
    simulator = Simulator(seed=1)
    network = Network(simulator, default_link=LinkProperties(latency=0.001))
    _Sink(network, "10.0.0.1")
    _Sink(network, "10.0.0.2")
    if plan_events is not None:
        FaultInjector(network, FaultPlan(events=plan_events)).arm()
    for index in range(PACKETS):
        network.send_datagram(UDPDatagram(
            src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1000,
            dst_port=2000, payload=bytes([index % 256])))
        simulator.run()
    return network.packets_sent


def _chaos_digest() -> str:
    specs = [
        ExperimentSpec(scenario="frag_poisoning", seeds=(1, 2),
                       base_params={"benign_server_count": 40},
                       param_sets=({"faults": CHAOS_FAULTS}, {"faults": ()})),
        ExperimentSpec(scenario="downgrade", seeds=(1,),
                       param_sets=({"faults": CHAOS_FAULTS},)),
        ExperimentSpec(scenario="population_sweep", seeds=(1,),
                       base_params={"clients": 200, "update_rounds": 2}),
    ]
    results, _ = SweepScheduler(workers=1).run_specs(specs)
    digest = hashlib.sha256()
    for result in results:
        for record in result.records:
            digest.update(json.dumps(record.canonical(), sort_keys=True).encode())
    return digest.hexdigest()


def test_transmit_overhead_of_an_idle_fault_plan(benchmark):
    import timeit

    bare = timeit.timeit(lambda: _pump(None), number=3)
    # Armed, but every window opens far beyond the burst: per-packet cost is
    # the injector's pass-through path, not fault evaluation.
    idle_plan = (LinkLoss(start=1e6, end=2e6, loss_rate=0.9),)
    idle = benchmark.pedantic(lambda: _pump(idle_plan), rounds=3, iterations=1)
    armed = timeit.timeit(lambda: _pump(idle_plan), number=3)
    assert idle == PACKETS
    emit("fault injection — idle-plan transmit overhead", [
        f"{PACKETS} datagrams, no injector:   {bare / 3:.4f}s per burst",
        f"{PACKETS} datagrams, idle plan:     {armed / 3:.4f}s per burst",
        f"overhead factor:                  {armed / bare:.2f}x",
    ])
    # Generous bound: the single-CPU CI box is noisy, but pass-through must
    # never degenerate into per-packet plan evaluation.
    assert armed < bare * 3


def test_faulted_sweep_digest_is_reproducible(benchmark):
    first = benchmark.pedantic(_chaos_digest, rounds=1, iterations=1)
    second = _chaos_digest()
    emit("fault injection — chaos grid determinism", [
        f"run 1: {first}",
        f"run 2: {second}",
        f"pin:   {CHAOS_GRID_DIGEST}",
    ])
    assert first == second == CHAOS_GRID_DIGEST
