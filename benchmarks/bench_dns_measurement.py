"""E4: the §II DNS measurement statistics (16/30, 90 %, 64 %, 14 %)."""

from __future__ import annotations

from conftest import emit

from repro.measurement import (
    generate_nameserver_population,
    generate_resolver_population,
    run_nameserver_study,
    run_resolver_study,
)


def run_studies():
    nameservers = generate_nameserver_population(seed=1)
    resolvers = generate_resolver_population(seed=1, total=5000)
    return run_nameserver_study(nameservers), run_resolver_study(resolvers)


def test_dns_measurement_study(benchmark):
    ns_report, resolver_report = benchmark.pedantic(run_studies, rounds=3, iterations=1)
    lines = [ns_report.summary_row()]
    lines += resolver_report.summary_rows()
    lines.append(f"trigger-method breakdown: {resolver_report.by_trigger_method}")
    lines.append("paper: 16/30 nameservers; 90% / 64% / 14% of resolvers")
    emit("E4 — DNS measurement statistics (synthetic population, same pipeline)", lines)
    assert ns_report.fragmenting_without_dnssec == 16
    assert ns_report.total == 30
    assert abs(resolver_report.accept_any_fraction - 0.90) < 0.005
    assert abs(resolver_report.accept_minimum_fraction - 0.64) < 0.005
    assert abs(resolver_report.triggerable_fraction - 0.14) < 0.005
