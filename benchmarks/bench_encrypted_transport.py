"""E-transport: encrypted-transport overhead and determinism gates.

Three measurements on the new connection-oriented path:

1. **Handshake overhead** — resolve the pool zone N times over plaintext
   UDP, plain DNS-over-TCP, DoT and DoH in otherwise identical worlds, and
   compare both the simulated time-to-answer of a single query (the
   protocol's round trips made visible: UDP 1 RTT, TCP +1 handshake RTT,
   DoT/DoH +1 more for the TLS hello exchange) and the wall-clock cost per
   simulated query.
2. **Determinism** — a multi-seed ``downgrade`` sweep (the scenario
   exercising SYN floods, connect timeouts, fallback *and* the frag race)
   must be byte-identical between ``workers=1`` and ``workers=4``, and its
   digest at the default seeds is pinned.
3. **Policy table** — the one-line summary the subsystem exists for:
   strict DoT blocks the downgrade, opportunistic DoT does not.

A JSON artifact (``BENCH_encrypted_transport.json``, override via
``TRANSPORT_JSON``) records the numbers for CI archiving.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.dns.records import RecordType
from repro.experiments import ExperimentRunner, TestbedConfig, build_testbed

#: Digest of the downgrade sweep at seeds 1..8 across the three policy
#: stacks, pinned at its introduction (PR 4).
DOWNGRADE_SWEEP_DIGEST = (
    "3434dd5189891d0cbc2d03a413e63d6df70c15c7ef8f2fef54d44d83c6205711")

SEED_COUNT = int(os.environ.get("TRANSPORT_SEED_COUNT", "8"))
QUERIES = int(os.environ.get("TRANSPORT_QUERY_COUNT", "50"))

TRANSPORT_CONFIGS = {
    "udp": {},
    "tcp": {"udp_limit": 512},          # every answer truncates -> TCP retry
    "dot": {"defenses": ("encrypted_transport",)},
    "doh": {"defenses": ("encrypted_transport_doh",)},
}


def resolve_many(label, queries):
    """Resolve ``queries`` cache-missing lookups; returns timing figures."""
    overrides = TRANSPORT_CONFIGS[label]
    config = TestbedConfig(
        seed=42,
        benign_server_count=50,
        records_per_response=30,
        nameserver_udp_payload_limit=overrides.get("udp_limit"),
        nameserver_transports=("tcp",) if label == "tcp" else (),
        defenses=overrides.get("defenses", ()),
        with_attacker=False,
    )
    testbed = build_testbed(config)
    answer_times = []

    started = time.perf_counter()
    for index in range(queries):
        at = index * 10.0
        # trigger_lookup bypasses the cache, so every query reaches the
        # nameserver; the inserted_at >= at check proves *this* query was
        # answered (peek would happily return the previous query's entry).
        testbed.simulator.schedule_at(
            at, lambda: testbed.resolver.trigger_lookup("pool.ntp.org"))
        testbed.simulator.run(until=at + 9.0)
        entry = testbed.resolver.cache.peek("pool.ntp.org", RecordType.A)
        assert entry is not None and entry.inserted_at >= at, (
            f"{label}: query {index} went unanswered")
        answer_times.append(entry.inserted_at - at)
    wall = time.perf_counter() - started
    return {
        "simulated_time_to_answer": sum(answer_times) / len(answer_times),
        "wall_seconds_per_query": wall / queries,
    }


def test_encrypted_transport_gates(benchmark):
    def workload():
        timings = {label: resolve_many(label, QUERIES)
                   for label in TRANSPORT_CONFIGS}
        sequential = ExperimentRunner(
            "downgrade", seeds=range(1, SEED_COUNT + 1),
            param_sets=[{"defenses": ()},
                        {"defenses": ("encrypted_transport",)},
                        {"defenses": ("encrypted_transport_opportunistic",)}],
            workers=1).run()
        parallel = ExperimentRunner(
            "downgrade", seeds=range(1, SEED_COUNT + 1),
            param_sets=[{"defenses": ()},
                        {"defenses": ("encrypted_transport",)},
                        {"defenses": ("encrypted_transport_opportunistic",)}],
            workers=4).run()
        return timings, sequential, parallel

    timings, sequential, parallel = benchmark.pedantic(workload, rounds=1,
                                                       iterations=1)
    per_stack = SEED_COUNT
    rates = {
        "plain": sequential.records[:per_stack],
        "dot_strict": sequential.records[per_stack:2 * per_stack],
        "dot_opportunistic": sequential.records[2 * per_stack:],
    }
    success = {name: sum(r.metrics["attack_succeeded"] for r in records) / per_stack
               for name, records in rates.items()}

    udp_rtt = timings["udp"]["simulated_time_to_answer"]
    report = {
        "seed_count": SEED_COUNT,
        "queries_per_transport": QUERIES,
        "simulated_time_to_answer": {
            label: round(figures["simulated_time_to_answer"], 4)
            for label, figures in timings.items()},
        "handshake_overhead_rtts": {
            label: round((figures["simulated_time_to_answer"] - udp_rtt) / udp_rtt, 2)
            for label, figures in timings.items()},
        "wall_seconds_per_query": {
            label: round(figures["wall_seconds_per_query"], 6)
            for label, figures in timings.items()},
        "downgrade_success": success,
        "digest": sequential.digest(),
        "digest_pinned": DOWNGRADE_SWEEP_DIGEST if SEED_COUNT == 8 else None,
        "workers_identical": sequential.digest() == parallel.digest(),
    }
    json_path = os.environ.get("TRANSPORT_JSON", "BENCH_encrypted_transport.json")
    with Path(json_path).open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    emit("E-transport — encrypted DNS transports: handshake overhead, "
         "downgrade sweep determinism", [
             "time-to-answer (simulated): " + ", ".join(
                 f"{label}={figures['simulated_time_to_answer'] * 1000:.0f}ms"
                 for label, figures in timings.items()),
             "wall clock per query: " + ", ".join(
                 f"{label}={figures['wall_seconds_per_query'] * 1000:.2f}ms"
                 for label, figures in timings.items()),
             f"downgrade success rates: {success}",
             f"digest identical across workers: {report['workers_identical']}",
             f"report: {json_path}",
         ])

    # Gate (a): the protocol round trips are visible and ordered — each
    # transport pays at least one more RTT than its predecessor.
    assert udp_rtt > 0
    assert timings["tcp"]["simulated_time_to_answer"] >= udp_rtt * 2.5
    assert (timings["dot"]["simulated_time_to_answer"]
            > timings["tcp"]["simulated_time_to_answer"] * 0.99)
    assert (timings["doh"]["simulated_time_to_answer"]
            >= timings["dot"]["simulated_time_to_answer"] * 0.99)
    # Gate (b): byte-identical across worker counts; pinned at full size.
    assert report["workers_identical"], "downgrade sweep diverged across workers"
    if SEED_COUNT == 8:
        assert sequential.digest() == DOWNGRADE_SWEEP_DIGEST, (
            f"downgrade sweep digest drifted: {sequential.digest()}")
    # Gate (c): the policy table the subsystem exists to demonstrate.
    assert success["plain"] == 1.0
    assert success["dot_strict"] == 0.0
    assert success["dot_opportunistic"] == 1.0
