"""E1 (Figure 1): the full DNS-poisoning attack on the Chronos pool.

Regenerates the figure's arithmetic — 4·11 = 44 benign vs 89 malicious
addresses, a two-thirds attacker majority — both from the closed form and
from the packet-level simulation, and reports the end-to-end time shift the
attacker subsequently achieves.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.pool_composition import figure1_report
from repro.attacks import ChronosPoolAttackScenario, PoolAttackConfig, analytic_pool_composition


def run_figure1(poison_at_query: int = 3, seed: int = 7) -> dict:
    scenario = ChronosPoolAttackScenario(PoolAttackConfig(seed=seed,
                                                          poison_at_query=poison_at_query))
    pool = scenario.run_pool_generation()
    shift = scenario.run_time_shift(target_shift=600.0, update_rounds=5)
    return {
        "pool": pool,
        "shift": shift,
    }


def test_figure1_pool_attack(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=3, iterations=1)
    pool, shift = result["pool"], result["shift"]
    analytic = analytic_pool_composition(12)
    report = figure1_report(poison_at_query=3, seed=7)
    emit("E1 / Figure 1 — DNS poisoning attack on the Chronos pool", [
        f"paper arithmetic at crossover (query 12): "
        f"{analytic.benign} benign vs {analytic.malicious} malicious "
        f"(attacker fraction {analytic.malicious_fraction:.3f})",
        f"simulated pool (poisoning at query 3):    "
        f"{pool.composition.benign} benign vs {pool.composition.malicious} malicious "
        f"(attacker fraction {pool.attacker_fraction:.3f})",
        f"attacker >= 2/3 of pool:                  {pool.attack_succeeded}",
        f"poisoned queries observed:                {pool.poisoned_queries[:3]}...",
        f"generation queries answered from cache:   {pool.cache_hits_during_generation} of 24",
        f"time shift achieved on victim clock:      {shift.achieved_error:.1f} s "
        f"(target 600 s, panic rounds {shift.panic_rounds})",
        f"cross-check via figure1_report():         "
        f"simulated fraction {report['simulated_fraction']:.3f}",
    ])
    assert pool.attack_succeeded
    assert shift.shift_achieved
