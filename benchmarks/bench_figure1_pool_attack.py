"""E1 (Figure 1): the full DNS-poisoning attack on the Chronos pool.

Regenerates the figure's arithmetic — 4·11 = 44 benign vs 89 malicious
addresses, a two-thirds attacker majority — both from the closed form and
from the packet-level simulation (driven through the experiment runner), and
reports the end-to-end time shift the attacker subsequently achieves.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.pool_composition import figure1_report
from repro.attacks import analytic_pool_composition
from repro.experiments import ExperimentResult, ExperimentRunner


def run_figure1(poison_at_query: int = 3, seed: int = 7) -> ExperimentResult:
    return ExperimentRunner(
        "chronos_pool_attack",
        seeds=[seed],
        base_params={"poison_at_query": poison_at_query,
                     "target_shift": 600.0,
                     "update_rounds": 5},
    ).run()


def test_figure1_pool_attack(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=3, iterations=1)
    metrics = result.records[0].metrics
    analytic = analytic_pool_composition(12)
    report = figure1_report(poison_at_query=3, seed=7)
    emit("E1 / Figure 1 — DNS poisoning attack on the Chronos pool", [
        f"paper arithmetic at crossover (query 12): "
        f"{analytic.benign} benign vs {analytic.malicious} malicious "
        f"(attacker fraction {analytic.malicious_fraction:.3f})",
        f"simulated pool (poisoning at query 3):    "
        f"{metrics['benign']} benign vs {metrics['malicious']} malicious "
        f"(attacker fraction {metrics['attacker_fraction']:.3f})",
        f"attacker >= 2/3 of pool:                  {metrics['attack_succeeded']}",
        f"poisoned queries observed:                {metrics['poisoned_queries'][:3]}...",
        f"generation queries answered from cache:   {metrics['cache_hits']} of 24",
        f"time shift achieved on victim clock:      {metrics['achieved_shift']:.1f} s "
        f"(target 600 s, panic rounds {metrics['panic_rounds']})",
        f"cross-check via figure1_report():         "
        f"simulated fraction {report['simulated_fraction']:.3f}",
    ])
    assert metrics["attack_succeeded"]
    assert metrics["shift_achieved"]
