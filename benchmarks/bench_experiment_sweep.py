"""E-sweep: the parallel experiment engine on a 16-seed pool-attack sweep.

Runs the same sweep with ``workers=1`` and ``workers=4`` and checks the two
aggregates are byte-identical (SHA-256 over the canonical record encoding).
The wall-clock comparison is also emitted; the speedup assertion (default
≥2x, override with ``SWEEP_MIN_SPEEDUP``) only applies on hosts whose CPU
*affinity mask* spans at least 4 cores — on smaller hosts parallelism cannot
beat the fork overhead and only the determinism contract is enforced.
Shared CI runners with cgroup CPU quotas should relax the threshold via the
environment variable rather than inherit wall-clock flakiness.
"""

from __future__ import annotations

import os

from conftest import emit, usable_cpus

from repro.experiments import ExperimentRunner

SEEDS = tuple(range(1, 17))
PARAMS = {"poison_at_query": 3, "run_time_shift": False}


def _sweep(workers: int):
    return ExperimentRunner("chronos_pool_attack", seeds=SEEDS,
                            base_params=PARAMS, workers=workers).run()


def run_pair():
    return _sweep(1), _sweep(4)


def test_parallel_sweep_is_deterministic_and_faster(benchmark):
    sequential, parallel = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    speedup = sequential.elapsed_seconds / max(parallel.elapsed_seconds, 1e-9)
    cpus = usable_cpus()
    min_speedup = float(os.environ.get("SWEEP_MIN_SPEEDUP", "2.0"))
    emit("E-sweep — 16-seed pool-attack sweep, workers=1 vs workers=4", [
        *sequential.summary_lines(),
        f"workers=1 wall-clock: {sequential.elapsed_seconds:.2f}s",
        f"workers=4 wall-clock: {parallel.elapsed_seconds:.2f}s "
        f"(speedup {speedup:.2f}x on {cpus} usable CPUs)",
        f"digests equal: {sequential.digest() == parallel.digest()}",
    ])
    assert sequential.digest() == parallel.digest()
    assert [record.metrics for record in sequential.records] == \
        [record.metrics for record in parallel.records]
    assert sequential.success_rate() == parallel.success_rate() == 1.0
    if cpus >= 4:
        assert speedup >= min_speedup, (
            f"expected >={min_speedup}x speedup with 4 workers on {cpus} usable "
            f"CPUs, got {speedup:.2f}x")
