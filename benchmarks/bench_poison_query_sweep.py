"""E2: attacker pool fraction versus the poisoned query index (crossover at 12)."""

from __future__ import annotations

from conftest import emit

from repro.analysis.pool_composition import (
    PoolCompositionRow,
    analytic_sweep,
    crossover_query_index,
    simulated_composition,
)


def run_sweep():
    analytic = analytic_sweep()
    simulated = [simulated_composition(index, seed=4) for index in (1, 6, 12, 13, 18)]
    return analytic, simulated


def test_poison_query_sweep(benchmark):
    analytic, simulated = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    crossover = crossover_query_index(analytic)
    lines = [PoolCompositionRow.header()]
    lines += [row.formatted() for row in analytic]
    lines.append("-- packet-level spot checks --")
    lines += [row.formatted() for row in simulated]
    lines.append(f"latest poisoning index still yielding a 2/3 majority: {crossover} "
                 "(paper: 12)")
    emit("E2 — pool composition vs poisoned query index", lines)
    assert crossover == 12
    assert all(row.attacker_has_two_thirds for row in analytic
               if row.poison_at_query is not None and row.poison_at_query <= 12)
    assert all(not row.attacker_has_two_thirds for row in analytic
               if row.poison_at_query is not None and row.poison_at_query > 12)
