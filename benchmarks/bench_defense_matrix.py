"""E-matrix: the attack × defense grid as a determinism + wall-clock gate.

Runs the full default matrix (6 attacks × 12 stacks) twice — ``workers=1``
and ``workers=4`` — and asserts the two grids are byte-identical (SHA-256
over every cell's canonical record encoding) and that the §V residual-hijack
cell stays at 1.0.  On hosts with at least 4 usable CPUs the parallel run
must also beat the sequential one (default ≥1.5x, override with
``MATRIX_MIN_SPEEDUP``), and the parallel wall-clock must stay under a smoke
budget (default 60 s, override with ``MATRIX_MAX_SECONDS``) so grid growth
that would make matrix sweeps impractical fails loudly.
"""

from __future__ import annotations

import os

from conftest import emit, usable_cpus

from repro.experiments import run_defense_matrix

SEEDS = (1, 2)


def run_pair():
    return (run_defense_matrix(seeds=SEEDS, workers=1),
            run_defense_matrix(seeds=SEEDS, workers=4))


def test_defense_matrix_is_deterministic_and_fast(benchmark):
    sequential, parallel = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    speedup = sequential.elapsed_seconds / max(parallel.elapsed_seconds, 1e-9)
    cpus = usable_cpus()
    min_speedup = float(os.environ.get("MATRIX_MIN_SPEEDUP", "1.5"))
    max_seconds = float(os.environ.get("MATRIX_MAX_SECONDS", "60"))
    emit("E-matrix — 6-attack × 12-stack defense grid, workers=1 vs workers=4", [
        *parallel.formatted(),
        f"workers=1 wall-clock: {sequential.elapsed_seconds:.2f}s",
        f"workers=4 wall-clock: {parallel.elapsed_seconds:.2f}s "
        f"(speedup {speedup:.2f}x on {cpus} usable CPUs)",
        f"digests equal: {sequential.digest() == parallel.digest()}",
        f"residual 24h-hijack success: {parallel.residual_hijack_rate():.2f}",
    ])
    assert sequential.digest() == parallel.digest()
    assert sequential.success_table() == parallel.success_table()
    assert parallel.residual_hijack_rate() == 1.0
    if cpus >= 4:
        assert speedup >= min_speedup, (
            f"expected >={min_speedup}x speedup with 4 workers on {cpus} usable "
            f"CPUs, got {speedup:.2f}x")
        assert parallel.elapsed_seconds <= max_seconds, (
            f"matrix smoke budget exceeded: {parallel.elapsed_seconds:.1f}s "
            f"> {max_seconds:.0f}s")
