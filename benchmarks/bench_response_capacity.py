"""E5: maximum number of A records per DNS response ("up to 89")."""

from __future__ import annotations

from conftest import emit

from repro.analysis.response_capacity import (
    CapacityRow,
    capacity_table,
    paper_capacity_claim,
    verify_capacity_by_encoding,
)


def run_capacity():
    return capacity_table(), verify_capacity_by_encoding()


def test_response_capacity(benchmark):
    table, verification = benchmark.pedantic(run_capacity, rounds=5, iterations=1)
    lines = [CapacityRow.header()]
    lines += [row.formatted() for row in table]
    lines.append(f"paper claim (non-fragmented response): {paper_capacity_claim()} A records "
                 "(paper: 89)")
    lines.append(f"encoder cross-check: {verification['record_count']} records encode to "
                 f"{verification['encoded_size']} bytes; one more overflows: "
                 f"{verification['one_more_overflows']}")
    emit("E5 — A-record capacity of a single DNS response", lines)
    assert paper_capacity_claim() == 89
    assert verification["fits"] and verification["one_more_overflows"]
