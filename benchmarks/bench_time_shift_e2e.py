"""E9: the shift actually achieved on the victim clock, across victims and targets."""

from __future__ import annotations

from conftest import emit

from repro.attacks import (
    BaselineAttackConfig,
    ChronosPoolAttackScenario,
    PoolAttackConfig,
    TraditionalClientAttackScenario,
)

TARGETS = (0.1, 600.0)  # the paper's 100 ms reference and a ten-minute shift


def run_matrix():
    rows = []
    for target in TARGETS:
        baseline = TraditionalClientAttackScenario(BaselineAttackConfig(seed=19)).run(target)
        rows.append(("traditional NTP, poisoned lookup", target, baseline.achieved_error,
                     baseline.attack_succeeded))

        benign_chronos = ChronosPoolAttackScenario(PoolAttackConfig(seed=19, poison_at_query=None))
        benign_chronos.run_pool_generation()
        benign_shift = benign_chronos.run_time_shift(target, update_rounds=5)
        rows.append(("Chronos, no DNS attack", target, benign_shift.achieved_error,
                     benign_shift.shift_achieved))

        attacked = ChronosPoolAttackScenario(PoolAttackConfig(seed=19, poison_at_query=2))
        attacked.run_pool_generation()
        attacked_shift = attacked.run_time_shift(target, update_rounds=6)
        rows.append(("Chronos, pool attack at query 2", target, attacked_shift.achieved_error,
                     attacked_shift.shift_achieved))
    return rows


def test_time_shift_end_to_end(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    lines = [f"{'victim':<36} {'target (s)':>11} {'achieved (s)':>13} {'shifted?':>9}"]
    for victim, target, achieved, succeeded in rows:
        lines.append(f"{victim:<36} {target:>11.3f} {achieved:>13.3f} {str(succeeded):>9}")
    lines.append("(expected shape: both poisoned victims follow the attacker; "
                 "un-attacked Chronos does not)")
    emit("E9 — end-to-end time shift on the victim clock", lines)

    outcomes = {(victim, target): succeeded for victim, target, _, succeeded in rows}
    assert outcomes[("traditional NTP, poisoned lookup", 600.0)]
    assert outcomes[("Chronos, pool attack at query 2", 600.0)]
    assert not outcomes[("Chronos, no DNS attack", 600.0)]
