"""E9: the shift actually achieved on the victim clock, across victims and targets.

Each victim row is an :class:`ExperimentRunner` sweep over the target-shift
grid; the victims themselves are addressed through the scenario registry.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import ExperimentRunner

TARGETS = (0.1, 600.0)  # the paper's 100 ms reference and a ten-minute shift

#: (row label, scenario name, base params, success metric)
VICTIMS = (
    ("traditional NTP, poisoned lookup", "traditional_client_attack",
     {"poll_rounds": 4}, "attack_succeeded"),
    ("Chronos, no DNS attack", "chronos_pool_attack",
     {"poison_at_query": None, "update_rounds": 5}, "shift_achieved"),
    ("Chronos, pool attack at query 2", "chronos_pool_attack",
     {"poison_at_query": 2, "update_rounds": 6}, "shift_achieved"),
)


def run_matrix():
    rows = []
    for label, scenario, base_params, success_key in VICTIMS:
        result = ExperimentRunner(
            scenario,
            seeds=[19],
            base_params=base_params,
            grid={"target_shift": list(TARGETS)},
        ).run()
        rows.extend((label, record.params["target_shift"],
                     record.metrics["achieved_shift"],
                     record.metrics[success_key])
                    for record in result.records)
    return rows


def test_time_shift_end_to_end(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    lines = [f"{'victim':<36} {'target (s)':>11} {'achieved (s)':>13} {'shifted?':>9}"]
    lines.extend(f"{victim:<36} {target:>11.3f} {achieved:>13.3f} {str(succeeded):>9}"
                 for victim, target, achieved, succeeded in rows)
    lines.append("(expected shape: both poisoned victims follow the attacker; "
                 "un-attacked Chronos does not)")
    emit("E9 — end-to-end time shift on the victim clock", lines)

    outcomes = {(victim, target): succeeded for victim, target, _, succeeded in rows}
    assert outcomes[("traditional NTP, poisoned lookup", 600.0)]
    assert outcomes[("Chronos, pool attack at query 2", 600.0)]
    assert not outcomes[("Chronos, no DNS attack", 600.0)]
