"""E-serving: high-QPS serving-layer gates — reuse, 0-RTT, RRL.

Four measurements on the serving layer this subsystem added:

1. **Per-query cost** — resolve the pool zone N times over plaintext UDP,
   cold-per-query strict DoT, pooled/reused DoT (RFC 7766 §6.2) and
   0-RTT-resumed DoT, in otherwise identical worlds.  The gates assert the
   arithmetic the pooling exists for: a reused stream answers ≥ 2× faster
   (simulated) than a cold handshake per query, and a 0-RTT resumption
   lands within 1.5× of plaintext UDP.
2. **Attack success vs offered load** — the sustained-load fragmentation
   racer against a rate-limited nameserver at increasing trigger rates:
   the faster the attacker races, the larger the fraction of its races the
   token bucket starves.
3. **Serving matrix** — ``sustained_load`` and ``downgrade`` rows against
   the ``rrl`` / ``rrl_plus_dot`` / ``rrl_plus_dot_opp`` columns, run at
   ``workers=1`` and ``workers=2``; byte-identical digests, pinned at the
   default seeds.  The policy table inside it is the point: RRL throttles
   the sustained race but only the *strict* DoT pairing stops the
   downgrade attacker.

A JSON artifact (``BENCH_serving_throughput.json``, override via
``SERVING_JSON``) records the numbers for CI archiving.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.defenses.transport import EncryptedTransport
from repro.dns.records import RecordType
from repro.experiments import AttackSpec, TestbedConfig, build_testbed, run_scenario
from repro.experiments.matrix import SERVING_ATTACKS, SERVING_STACKS, run_defense_matrix

#: Digest of the serving matrix (sustained_load + downgrade rows ×
#: rrl / rrl_plus_dot / rrl_plus_dot_opp columns) at seeds (1, 2), pinned
#: at its introduction.
SERVING_MATRIX_DIGEST = (
    "39aa4ded83c452642a3bb727802460a26475c0cb8a00574d0a8ac5cb32041927")

SEED_COUNT = int(os.environ.get("SERVING_SEED_COUNT", "2"))
QUERIES = int(os.environ.get("SERVING_QUERY_COUNT", "50"))

#: The timing worlds.  Queries are spaced 10 s apart, so the pooled config
#: needs an idle timeout that outlives the gap, while the 0-RTT config uses
#: a short one on purpose: every query finds the pool cold and must resume
#: from its session ticket — the path being measured.
SERVING_CONFIGS = {
    "udp": (),
    "dot_cold": ("encrypted_transport",),
    "dot_reused": (EncryptedTransport(reuse_connections=True, idle_timeout=60.0),),
    "dot_0rtt": (EncryptedTransport(zero_rtt=True, idle_timeout=5.0),),
}

#: Offered-load sweep: seconds between sustained-load races.
LOAD_INTERVALS = (2.0, 1.0, 0.5, 0.25)


def resolve_many(label, queries):
    """Resolve ``queries`` cache-missing lookups; returns timing figures."""
    config = TestbedConfig(
        seed=42,
        benign_server_count=50,
        records_per_response=30,
        defenses=SERVING_CONFIGS[label],
        with_attacker=False,
    )
    testbed = build_testbed(config)
    answer_times = []

    started = time.perf_counter()
    for index in range(queries):
        at = index * 10.0
        testbed.simulator.schedule_at(
            at, lambda: testbed.resolver.trigger_lookup("pool.ntp.org"))
        testbed.simulator.run(until=at + 9.0)
        entry = testbed.resolver.cache.peek("pool.ntp.org", RecordType.A)
        assert entry is not None and entry.inserted_at >= at, (
            f"{label}: query {index} went unanswered")
        answer_times.append(entry.inserted_at - at)
    wall = time.perf_counter() - started
    upstream = testbed.resolver.upstream_transport
    return {
        "simulated_time_to_answer": sum(answer_times) / len(answer_times),
        "wall_seconds_per_query": wall / queries,
        "wall_qps": queries / wall,
        "connections_opened": getattr(upstream, "connections_opened", 0),
        "connections_reused": getattr(upstream, "connections_reused", 0),
        "zero_rtt_queries": getattr(upstream, "zero_rtt_queries", 0),
    }


def offered_load_sweep():
    """Sustained-load race success vs trigger rate, behind RRL."""
    rows = []
    for interval in LOAD_INTERVALS:
        metrics = run_scenario(
            "frag_poisoning", seed=3,
            params={"trigger_count": 12, "trigger_interval": interval,
                    "defenses": ("response_rate_limit",)})
        rows.append({
            "offered_qps": round(1.0 / interval, 2),
            "races_run": metrics["races_run"],
            "races_poisoned": metrics["races_poisoned"],
            "rrl_dropped": metrics["rrl_dropped"],
            "rrl_slipped": metrics["rrl_slipped"],
        })
    return rows


def test_serving_throughput_gates(benchmark):
    seeds = tuple(range(1, SEED_COUNT + 1))
    attacks = (*SERVING_ATTACKS, AttackSpec("downgrade", "downgrade", {}))

    def workload():
        timings = {label: resolve_many(label, QUERIES)
                   for label in SERVING_CONFIGS}
        loads = offered_load_sweep()
        sequential = run_defense_matrix(attacks=attacks, stacks=SERVING_STACKS,
                                        seeds=seeds, workers=1)
        parallel = run_defense_matrix(attacks=attacks, stacks=SERVING_STACKS,
                                      seeds=seeds, workers=2)
        return timings, loads, sequential, parallel

    timings, loads, sequential, parallel = benchmark.pedantic(
        workload, rounds=1, iterations=1)

    downgrade = sequential.success_table()["downgrade"]
    udp_time = timings["udp"]["simulated_time_to_answer"]
    cold_time = timings["dot_cold"]["simulated_time_to_answer"]
    reused_time = timings["dot_reused"]["simulated_time_to_answer"]
    zero_rtt_time = timings["dot_0rtt"]["simulated_time_to_answer"]
    report = {
        "seed_count": SEED_COUNT,
        "queries_per_config": QUERIES,
        "simulated_time_to_answer": {
            label: round(figures["simulated_time_to_answer"], 4)
            for label, figures in timings.items()},
        "wall_seconds_per_query": {
            label: round(figures["wall_seconds_per_query"], 6)
            for label, figures in timings.items()},
        "wall_qps": {label: round(figures["wall_qps"], 1)
                     for label, figures in timings.items()},
        "pool_counters": {
            label: {key: figures[key] for key in
                    ("connections_opened", "connections_reused", "zero_rtt_queries")}
            for label, figures in timings.items()},
        "attack_success_vs_offered_load": loads,
        "serving_matrix": sequential.success_table(),
        "digest": sequential.digest(),
        "digest_pinned": SERVING_MATRIX_DIGEST if seeds == (1, 2) else None,
        "workers_identical": sequential.digest() == parallel.digest(),
    }
    json_path = os.environ.get("SERVING_JSON", "BENCH_serving_throughput.json")
    with Path(json_path).open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    emit("E-serving — high-QPS serving layer: connection reuse, 0-RTT, "
         "response-rate limiting", [
             "time-to-answer (simulated): " + ", ".join(
                 f"{label}={figures['simulated_time_to_answer'] * 1000:.1f}ms"
                 for label, figures in timings.items()),
             "wall clock per query: " + ", ".join(
                 f"{label}={figures['wall_seconds_per_query'] * 1000:.2f}ms"
                 for label, figures in timings.items()),
             "sustained race vs offered load: " + ", ".join(
                 f"{row['offered_qps']}qps={row['races_poisoned']}/{row['races_run']}"
                 for row in loads),
             f"downgrade success: {downgrade}",
             f"digest identical across workers: {report['workers_identical']}",
             f"report: {json_path}",
         ])

    # Gate (a): the pooling arithmetic.  A reused stream answers at least
    # twice as fast as a cold handshake per query, and a 0-RTT resumption
    # is within 1.5x of plaintext UDP.
    assert cold_time >= reused_time * 2, (
        f"reused DoT not >= 2x faster than cold: {cold_time} vs {reused_time}")
    assert zero_rtt_time <= udp_time * 1.5, (
        f"0-RTT not within 1.5x of UDP: {zero_rtt_time} vs {udp_time}")
    # Gate (b): the counters prove the paths actually ran — one connection
    # serving every reused query, one resumption per 0-RTT query.
    assert timings["dot_reused"]["connections_opened"] == 1
    assert timings["dot_reused"]["connections_reused"] == QUERIES - 1
    assert timings["dot_0rtt"]["zero_rtt_queries"] == QUERIES - 1
    # Gate (c): RRL starves the sustained racer as offered load grows.
    poison_rates = [row["races_poisoned"] / row["races_run"] for row in loads]
    assert all(earlier >= later for earlier, later
               in zip(poison_rates, poison_rates[1:])), poison_rates
    assert poison_rates[-1] < poison_rates[0], poison_rates
    # Gate (d): byte-identical across worker counts; pinned at full size.
    assert report["workers_identical"], "serving matrix diverged across workers"
    if seeds == (1, 2):
        assert sequential.digest() == SERVING_MATRIX_DIGEST, (
            f"serving matrix digest drifted: {sequential.digest()}")
    # Gate (e): the policy table — RRL alone (and RRL + opportunistic DoT)
    # stays downgradeable; only the strict pairing closes the row.
    assert downgrade["rrl"] == 1.0
    assert downgrade["rrl_plus_dot"] == 0.0
    assert downgrade["rrl_plus_dot_opp"] == 1.0
    sustained = sequential.success_table()["sustained_load"]
    assert sustained["rrl_plus_dot"] == 0.0
