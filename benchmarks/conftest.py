"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series behind one of the paper's
experiments (see DESIGN.md, experiment index E1-E9) and prints them, so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as the reproduction
report.  Printing goes through :func:`emit` so the output stays readable when
pytest captures it.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterable
from pathlib import Path


def emit(title: str, lines: Iterable[str]) -> None:
    """Print one experiment block (title + rows)."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(line)


def cgroup_cpu_quota() -> float:
    """Effective CPU limit from cgroup v2/v1 quotas (inf when unlimited).

    Containers commonly expose the host's full affinity mask while a CFS
    quota caps actual parallelism; gating speedup assertions on the mask
    alone would then fail for pure timing reasons.
    """
    with contextlib.suppress(OSError, ValueError):  # cgroup v2
        with Path("/sys/fs/cgroup/cpu.max").open() as handle:
            quota, period = handle.read().split()[:2]
        if quota != "max":
            return float(quota) / float(period)
    with contextlib.suppress(OSError, ValueError):  # cgroup v1
        with Path("/sys/fs/cgroup/cpu/cpu.cfs_quota_us").open() as handle:
            quota = int(handle.read())
        with Path("/sys/fs/cgroup/cpu/cpu.cfs_period_us").open() as handle:
            period = int(handle.read())
        if quota > 0:
            return quota / period
    return float("inf")


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity- and quota-aware)."""
    import os

    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        affinity = os.cpu_count() or 1
    return int(min(affinity, cgroup_cpu_quota()))
