"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series behind one of the paper's
experiments (see DESIGN.md, experiment index E1-E9) and prints them, so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as the reproduction
report.  Printing goes through :func:`emit` so the output stays readable when
pytest captures it.
"""

from __future__ import annotations

from typing import Iterable


def emit(title: str, lines: Iterable[str]) -> None:
    """Print one experiment block (title + rows)."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(line)
