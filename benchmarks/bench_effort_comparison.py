"""E6: the headline comparison — the DNS route makes Chronos the easier target."""

from __future__ import annotations

from conftest import emit

from repro.analysis.effort import (
    DNSAttackComparisonRow,
    dns_attack_comparison,
    end_to_end_success_table,
)
from repro.attacks import (
    BaselineAttackConfig,
    ChronosPoolAttackScenario,
    PoolAttackConfig,
    TraditionalClientAttackScenario,
)


def run_comparison():
    comparison = dns_attack_comparison()
    success = end_to_end_success_table()
    baseline = TraditionalClientAttackScenario(BaselineAttackConfig(seed=13)).run(600.0)
    chronos_scenario = ChronosPoolAttackScenario(PoolAttackConfig(seed=13, poison_at_query=4))
    chronos_pool = chronos_scenario.run_pool_generation()
    chronos_shift = chronos_scenario.run_time_shift(600.0, update_rounds=5)
    return comparison, success, baseline, chronos_pool, chronos_shift


def test_effort_comparison(benchmark):
    comparison, success, baseline, chronos_pool, chronos_shift = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1)
    lines = [DNSAttackComparisonRow.header()]
    lines += [row.formatted() for row in comparison]
    lines.append("")
    lines.append("per-race success rate -> overall DNS-stage success probability")
    lines.extend(f"  p={row['per_query_success']:.2f}:  traditional "
                 f"{row['traditional_overall']:.3f}   chronos {row['chronos_overall']:.3f}"
                 for row in success)
    lines.append("")
    lines.append(f"end-to-end, poisoned traditional client: shift achieved = "
                 f"{baseline.attack_succeeded} (err {baseline.achieved_error:.1f} s)")
    lines.append(f"end-to-end, poisoned Chronos client:     shift achieved = "
                 f"{chronos_shift.shift_achieved} (err {chronos_shift.achieved_error:.1f} s, "
                 f"pool {chronos_pool.composition.benign}/{chronos_pool.composition.malicious})")
    emit("E6 — attack-surface and effort comparison, plain NTP vs Chronos", lines)
    assert all(row["chronos_overall"] >= row["traditional_overall"] for row in success)
    assert baseline.attack_succeeded and chronos_shift.shift_achieved
