"""E-scaleout: the matrix sweep-execution layer as a perf + determinism gate.

Four runs of the default 6-attack × 12-stack grid, plus one run of the
PR-2/PR-3 legacy sub-grid:

1. **per-row** — the legacy path (one ``ExperimentRunner`` and one pool per
   attack row, full barrier between rows) at ``workers=4``;
2. **shared** — all rows flattened into one task stream on a single shared
   pool at ``workers=4``;
3. **cold** — shared scheduler writing a fresh persistent run cache;
4. **warm** — the same sweep replayed entirely from that cache;
5. **legacy** — the pre-transport rows/columns only, whose digest must
   still equal the PR-2 baseline.

Gates:

* the four full-grid digests are byte-identical and equal to the pinned
  PR-4 value at seeds ``(1, 2)``, and the legacy sub-grid digest equals the
  pinned PR-2 baseline — neither the execution-layer refactors nor the
  encrypted-transport subsystem are visible in the output;
* warm ≥ 10× faster than cold (``SCALEOUT_MIN_CACHE_SPEEDUP``) — the cache
  actually makes re-runs incremental;
* on hosts with ≥ 4 usable CPUs, shared ≥ 1.3× faster than per-row
  (``SCALEOUT_MIN_POOL_SPEEDUP``) — eliminating per-row pool spawns and
  inter-row barriers is worth real wall-clock.

The measured numbers are also written to ``BENCH_matrix_scaleout.json``
(path override: ``SCALEOUT_JSON``) so CI can archive the run.  Reduced CI
form: fewer seeds via ``SCALEOUT_SEED_COUNT`` (digest pinning then only
applies when the grid is the pinned one).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit, usable_cpus

from repro.experiments import (
    LEGACY_ATTACKS,
    LEGACY_STACKS,
    RunCache,
    run_defense_matrix,
)

#: Digest of the PR-2/PR-3 grid (now the LEGACY_* sub-grid) at seeds (1, 2)
#: as produced by the PR-2 per-row implementation — pinned so neither the
#: shared scheduler, the cache replay path, the hot-path work, nor the
#: encrypted-transport subsystem can drift the earlier science.
PR2_BASELINE_DIGEST = "8fd76ec98cd658b56371cb3f35fb48bf040423c0b4b819d05a6b8377f4bbe0de"
#: Digest of the full default grid — legacy rows/columns plus the
#: ``downgrade`` row and the ``dot_strict``/``dot_opportunistic`` columns —
#: at seeds (1, 2), pinned at its introduction (PR 4).
PR4_FULL_DIGEST = "7ae32a72cca2adb6b2b62fbf2dd6cd30e97e0eb27a678b975502e7dda9c8d4b4"

SEEDS = tuple(range(1, int(os.environ.get("SCALEOUT_SEED_COUNT", "2")) + 1))
WORKERS = 4


def _timed(**kwargs):
    start = time.perf_counter()
    matrix = run_defense_matrix(seeds=SEEDS, **kwargs)
    return matrix, time.perf_counter() - start


def run_quartet(cache_dir):
    per_row, per_row_s = _timed(workers=WORKERS, shared_scheduler=False)
    shared, shared_s = _timed(workers=WORKERS)
    cold, cold_s = _timed(workers=1, cache=RunCache(cache_dir))
    warm, warm_s = _timed(workers=1, cache=RunCache(cache_dir))
    legacy, legacy_s = _timed(attacks=LEGACY_ATTACKS, stacks=LEGACY_STACKS,
                              workers=WORKERS)
    return {
        "per_row": (per_row, per_row_s),
        "shared": (shared, shared_s),
        "cold": (cold, cold_s),
        "warm": (warm, warm_s),
        "legacy": (legacy, legacy_s),
    }


def test_matrix_scaleout_gates(benchmark, tmp_path):
    runs = benchmark.pedantic(run_quartet, args=(tmp_path / "run-cache",),
                              rounds=1, iterations=1)
    timings = {name: seconds for name, (_, seconds) in runs.items()}
    digests = {name: matrix.digest() for name, (matrix, _) in runs.items()}
    legacy_digest = digests.pop("legacy")
    pool_speedup = timings["per_row"] / max(timings["shared"], 1e-9)
    cache_speedup = timings["cold"] / max(timings["warm"], 1e-9)
    warm_stats = runs["warm"][0].sweep_stats
    cpus = usable_cpus()
    min_pool = float(os.environ.get("SCALEOUT_MIN_POOL_SPEEDUP", "1.3"))
    min_cache = float(os.environ.get("SCALEOUT_MIN_CACHE_SPEEDUP", "10.0"))
    pinnable = SEEDS == (1, 2)

    report = {
        "seeds": list(SEEDS),
        "workers": WORKERS,
        "usable_cpus": cpus,
        "timings_seconds": {name: round(seconds, 4) for name, seconds in timings.items()},
        "pool_speedup": round(pool_speedup, 3),
        "cache_speedup": round(cache_speedup, 3),
        "warm_cache": {"hits": warm_stats.cache_hits, "executed": warm_stats.executed},
        "digest": digests["shared"],
        "legacy_digest": legacy_digest,
        "pr2_baseline_digest": PR2_BASELINE_DIGEST if pinnable else None,
        "pr4_full_digest": PR4_FULL_DIGEST if pinnable else None,
        "digests_identical": len(set(digests.values())) == 1,
    }
    json_path = os.environ.get("SCALEOUT_JSON", "BENCH_matrix_scaleout.json")
    with Path(json_path).open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    emit("E-scaleout — shared scheduler + persistent run cache on the "
         f"6-attack × 12-stack grid, seeds={list(SEEDS)}", [
             f"per-row pools (workers={WORKERS}): {timings['per_row']:.2f}s",
             f"shared pool   (workers={WORKERS}): {timings['shared']:.2f}s "
             f"(speedup {pool_speedup:.2f}x on {cpus} usable CPUs)",
             f"cold cache    (workers=1): {timings['cold']:.2f}s",
             f"warm cache    (workers=1): {timings['warm']:.3f}s "
             f"(speedup {cache_speedup:.1f}x, "
             f"{warm_stats.cache_hits} hits / {warm_stats.executed} executed)",
             f"legacy sub-grid (workers={WORKERS}): {timings['legacy']:.2f}s",
             f"digests identical: {report['digests_identical']}",
             f"PR-2 legacy digest match: "
             f"{legacy_digest == PR2_BASELINE_DIGEST if pinnable else 'n/a'}",
             f"PR-4 full-grid digest match: "
             f"{digests['shared'] == PR4_FULL_DIGEST if pinnable else 'n/a'}",
             f"report: {json_path}",
         ])

    # Gate (c): the refactor is invisible in the output.
    assert len(set(digests.values())) == 1, f"digests diverged: {digests}"
    if pinnable:
        assert legacy_digest == PR2_BASELINE_DIGEST, (
            "legacy-grid digest drifted from the PR-2 baseline: "
            f"{legacy_digest} != {PR2_BASELINE_DIGEST}")
        assert digests["shared"] == PR4_FULL_DIGEST, (
            "full-grid digest drifted from its PR-4 pin: "
            f"{digests['shared']} != {PR4_FULL_DIGEST}")
    # Gate (a): warm replay computed nothing and is an order of magnitude
    # faster than the cold run.
    assert warm_stats.executed == 0
    assert warm_stats.cache_hits == warm_stats.tasks_total
    assert cache_speedup >= min_cache, (
        f"expected warm-cache re-run >= {min_cache}x faster than cold, "
        f"got {cache_speedup:.2f}x")
    # Gate (b): the shared pool beats per-row pools where parallelism exists.
    if cpus >= 4:
        assert pool_speedup >= min_pool, (
            f"expected shared scheduler >= {min_pool}x faster than per-row "
            f"pools with {WORKERS} workers on {cpus} usable CPUs, "
            f"got {pool_speedup:.2f}x")
