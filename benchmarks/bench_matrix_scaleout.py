"""E-scaleout: the matrix sweep-execution layer as a perf + determinism gate.

Four runs of the default 5-attack × 10-stack grid:

1. **per-row** — the legacy path (one ``ExperimentRunner`` and one pool per
   attack row, full barrier between rows) at ``workers=4``;
2. **shared** — all rows flattened into one task stream on a single shared
   pool at ``workers=4``;
3. **cold** — shared scheduler writing a fresh persistent run cache;
4. **warm** — the same sweep replayed entirely from that cache.

Gates:

* every digest is byte-identical, and equal to the pinned PR-2 baseline for
  the default grid at seeds ``(1, 2)`` — the refactor and the cache are
  invisible in the output;
* warm ≥ 10× faster than cold (``SCALEOUT_MIN_CACHE_SPEEDUP``) — the cache
  actually makes re-runs incremental;
* on hosts with ≥ 4 usable CPUs, shared ≥ 1.3× faster than per-row
  (``SCALEOUT_MIN_POOL_SPEEDUP``) — eliminating per-row pool spawns and
  inter-row barriers is worth real wall-clock.

The measured numbers are also written to ``BENCH_matrix_scaleout.json``
(path override: ``SCALEOUT_JSON``) so CI can archive the run.  Reduced CI
form: fewer seeds via ``SCALEOUT_SEED_COUNT`` (digest pinning then only
applies when the grid is the pinned one).
"""

from __future__ import annotations

import json
import os
import time

from conftest import emit, usable_cpus

from repro.experiments import RunCache, run_defense_matrix

#: Digest of the default grid at seeds (1, 2) as produced by the PR-2
#: per-row implementation — pinned so neither the shared scheduler, the
#: cache replay path, nor the simulator/encode hot-path work can drift the
#: science.
PR2_BASELINE_DIGEST = "8fd76ec98cd658b56371cb3f35fb48bf040423c0b4b819d05a6b8377f4bbe0de"

SEEDS = tuple(range(1, int(os.environ.get("SCALEOUT_SEED_COUNT", "2")) + 1))
WORKERS = 4


def _timed(**kwargs):
    start = time.perf_counter()
    matrix = run_defense_matrix(seeds=SEEDS, **kwargs)
    return matrix, time.perf_counter() - start


def run_quartet(cache_dir):
    per_row, per_row_s = _timed(workers=WORKERS, shared_scheduler=False)
    shared, shared_s = _timed(workers=WORKERS)
    cold, cold_s = _timed(workers=1, cache=RunCache(cache_dir))
    warm, warm_s = _timed(workers=1, cache=RunCache(cache_dir))
    return {
        "per_row": (per_row, per_row_s),
        "shared": (shared, shared_s),
        "cold": (cold, cold_s),
        "warm": (warm, warm_s),
    }


def test_matrix_scaleout_gates(benchmark, tmp_path):
    runs = benchmark.pedantic(run_quartet, args=(tmp_path / "run-cache",),
                              rounds=1, iterations=1)
    timings = {name: seconds for name, (_, seconds) in runs.items()}
    digests = {name: matrix.digest() for name, (matrix, _) in runs.items()}
    pool_speedup = timings["per_row"] / max(timings["shared"], 1e-9)
    cache_speedup = timings["cold"] / max(timings["warm"], 1e-9)
    warm_stats = runs["warm"][0].sweep_stats
    cpus = usable_cpus()
    min_pool = float(os.environ.get("SCALEOUT_MIN_POOL_SPEEDUP", "1.3"))
    min_cache = float(os.environ.get("SCALEOUT_MIN_CACHE_SPEEDUP", "10.0"))
    pinnable = SEEDS == (1, 2)

    report = {
        "seeds": list(SEEDS),
        "workers": WORKERS,
        "usable_cpus": cpus,
        "timings_seconds": {name: round(seconds, 4) for name, seconds in timings.items()},
        "pool_speedup": round(pool_speedup, 3),
        "cache_speedup": round(cache_speedup, 3),
        "warm_cache": {"hits": warm_stats.cache_hits, "executed": warm_stats.executed},
        "digest": digests["shared"],
        "pr2_baseline_digest": PR2_BASELINE_DIGEST if pinnable else None,
        "digests_identical": len(set(digests.values())) == 1,
    }
    json_path = os.environ.get("SCALEOUT_JSON", "BENCH_matrix_scaleout.json")
    with open(json_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    emit("E-scaleout — shared scheduler + persistent run cache on the "
         f"5-attack × 10-stack grid, seeds={list(SEEDS)}", [
             f"per-row pools (workers={WORKERS}): {timings['per_row']:.2f}s",
             f"shared pool   (workers={WORKERS}): {timings['shared']:.2f}s "
             f"(speedup {pool_speedup:.2f}x on {cpus} usable CPUs)",
             f"cold cache    (workers=1): {timings['cold']:.2f}s",
             f"warm cache    (workers=1): {timings['warm']:.3f}s "
             f"(speedup {cache_speedup:.1f}x, "
             f"{warm_stats.cache_hits} hits / {warm_stats.executed} executed)",
             f"digests identical: {report['digests_identical']}",
             f"PR-2 baseline digest match: "
             f"{digests['shared'] == PR2_BASELINE_DIGEST if pinnable else 'n/a'}",
             f"report: {json_path}",
         ])

    # Gate (c): the refactor is invisible in the output.
    assert len(set(digests.values())) == 1, f"digests diverged: {digests}"
    if pinnable:
        assert digests["shared"] == PR2_BASELINE_DIGEST, (
            "matrix digest drifted from the PR-2 baseline: "
            f"{digests['shared']} != {PR2_BASELINE_DIGEST}")
    # Gate (a): warm replay computed nothing and is an order of magnitude
    # faster than the cold run.
    assert warm_stats.executed == 0
    assert warm_stats.cache_hits == warm_stats.tasks_total
    assert cache_speedup >= min_cache, (
        f"expected warm-cache re-run >= {min_cache}x faster than cold, "
        f"got {cache_speedup:.2f}x")
    # Gate (b): the shared pool beats per-row pools where parallelism exists.
    if cpus >= 4:
        assert pool_speedup >= min_pool, (
            f"expected shared scheduler >= {min_pool}x faster than per-row "
            f"pools with {WORKERS} workers on {cpus} usable CPUs, "
            f"got {pool_speedup:.2f}x")
