"""E3: the Chronos security bound ("20 years for 100 ms") and its collapse.

Regenerates the expected-effort series: per-round success probability and
expected years to shift the victim clock by 100 ms, across attacker pool
fractions — including the exact post-attack composition of Figure 1
(89 malicious of 133).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.effort import (
    EffortRow,
    ShiftEffortRow,
    chronos_security_bound_table,
    fraction_sweep_table,
    shift_effort_table,
)


def run_tables():
    return (chronos_security_bound_table(),
            shift_effort_table(),
            fraction_sweep_table(fractions=[i / 10 for i in range(0, 8)]))


def test_chronos_security_bound(benchmark):
    single_round, shift_100ms, sweep = benchmark.pedantic(run_tables, rounds=3, iterations=1)
    lines = ["-- per-round control probability --", EffortRow.header()]
    lines += [row.formatted() for row in single_round]
    lines += ["", "-- expected effort to shift the clock by 100 ms --",
              ShiftEffortRow.header()]
    lines += [row.formatted() for row in shift_100ms]
    lines += ["", "-- fine-grained sweep over attacker pool fraction --", EffortRow.header()]
    lines += [row.formatted() for row in sweep]
    emit("E3 — Chronos security bound before/after the DNS attack", lines)

    by_scenario = {row.scenario: row for row in shift_100ms}
    pre = by_scenario["MitM, just under 1/3 (Chronos bound)"]
    post = by_scenario["After DNS pool attack (89 of 133)"]
    assert pre.expected_years > 1.0          # years-to-decades regime (paper: ~20 years)
    assert post.expected_years < 1e-3        # minutes-to-hours after the attack
