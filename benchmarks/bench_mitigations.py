"""E8: the §V mitigations and the residual 24-hour-hijack attack.

The packet-level table is an explicit ``param_sets`` sweep through the
experiment runner (one ``chronos_pool_attack`` run per mitigation case).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.mitigations import (
    MitigationRow,
    analytic_mitigation_table,
    simulated_mitigation_table,
)


def run_tables():
    return analytic_mitigation_table(), simulated_mitigation_table(seed=3)


def test_mitigations(benchmark):
    analytic, simulated = benchmark.pedantic(run_tables, rounds=1, iterations=1)
    lines = [MitigationRow.header()]
    lines += [row.formatted() for row in analytic]
    lines.append("-- packet-level --")
    lines += [row.formatted() for row in simulated]
    lines.append("(paper §V: cap records per reply and discard high TTLs; the DNS "
                 "dependency itself remains — a 24 h hijack still wins)")
    emit("E8 — mitigation evaluation and residual attack", lines)

    analytic_by = {row.scenario: row for row in analytic}
    simulated_by = {row.scenario: row for row in simulated}
    assert not analytic_by["both mitigations (single poisoning)"].attacker_has_two_thirds
    assert analytic_by["both mitigations, 24h DNS hijack (residual)"].attacker_has_two_thirds
    assert not simulated_by["both mitigations (single poisoning)"].attacker_has_two_thirds
    assert simulated_by["both mitigations, 24h DNS hijack (residual)"].attacker_has_two_thirds
