"""E-population: a million Chronos clients per sweep, with determinism gates.

Three measurements over the ``population_sweep`` scenario:

1. **vectorized fleet** — the full fleet (default 10⁶ clients) sharded into
   cohorts on the shared :class:`SweepScheduler` at ``workers=1``, with a
   clients/sec trajectory sampled from the scheduler's ``on_progress``
   callback;
2. **worker stability** — the identical cohort stream at ``workers=4``
   (pooled path) must produce a byte-identical
   :class:`ExperimentResult` digest;
3. **packet baseline** — a few packet-level ``chronos_pool_attack`` runs
   (the testbed simulates one victim per run), timing the per-client cost
   the fleet engine replaces.

Gates:

* vectorized rate ≥ ``POPULATION_MIN_RATE`` clients/sec (default 10⁵; the
  packet baseline sits around 10¹–10² — a 10³–10⁴× scale-out);
* ``workers=1`` and ``workers=4`` digests byte-identical;
* fleet totals are self-consistent (histogram sums to the population).

The measurements are written to ``BENCH_population_scale.json``
(override: ``POPULATION_JSON``) so CI can archive the run.  Reduced CI
form: ``POPULATION_SCALE_CLIENTS`` / ``POPULATION_MIN_RATE``.  The numpy
backend is required for the rate gate (the pure-python fallback is for
digest parity, not speed) — the benchmark skips without it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from conftest import emit

from repro.experiments import SweepScheduler
from repro.experiments.runner import run_scenario
from repro.population.rng import numpy_or_none
from repro.population.scenario import combine_cohort_metrics, population_specs

CLIENTS = int(os.environ.get("POPULATION_SCALE_CLIENTS", "1000000"))
COHORT = max(1, CLIENTS // 8)  # 8 cohorts: exercises the pooled path
MIN_RATE = float(os.environ.get("POPULATION_MIN_RATE", "100000"))
PACKET_RUNS = int(os.environ.get("POPULATION_PACKET_RUNS", "3"))
SEED = 1

FLEET_PARAMS = {
    "resolvers": 1024,
    "stagger_window": 86400.0,
    "update_rounds": 5,
    "backend": "auto",
}


def run_fleet(workers: int, trajectory=None):
    specs = population_specs(clients=CLIENTS, cohort_size=COHORT,
                             seeds=(SEED,), base_params=FLEET_PARAMS)
    started = time.perf_counter()

    def on_progress(done, total):
        if trajectory is not None:
            trajectory.append({
                "cohorts_done": done,
                "cohorts_total": total,
                "elapsed_seconds": round(time.perf_counter() - started, 3),
            })

    scheduler = SweepScheduler(workers=workers, on_progress=on_progress)
    (result,), stats = scheduler.run_specs(specs)
    elapsed = time.perf_counter() - started
    return result, stats, elapsed


def test_population_scale(benchmark):
    pytest.importorskip("numpy")
    assert numpy_or_none() is not None

    trajectory = []
    result, stats, elapsed = benchmark.pedantic(
        lambda: run_fleet(1, trajectory), rounds=1, iterations=1)
    rate = CLIENTS / elapsed
    fleet = combine_cohort_metrics([r.metrics for r in result.records])

    pooled_result, pooled_stats, pooled_elapsed = run_fleet(4)

    packet_started = time.perf_counter()
    for seed in range(1, PACKET_RUNS + 1):
        run_scenario("chronos_pool_attack", seed, {
            "poison_at_query": 3, "dedupe": False, "run_time_shift": True})
    packet_elapsed = time.perf_counter() - packet_started
    packet_rate = PACKET_RUNS / packet_elapsed if packet_elapsed else 0.0

    report = {
        "clients": CLIENTS,
        "cohorts": len(result.records),
        "vectorized_elapsed_seconds": round(elapsed, 3),
        "vectorized_clients_per_second": round(rate, 1),
        "trajectory": trajectory,
        "workers1_digest": result.digest(),
        "workers4_digest": pooled_result.digest(),
        "workers4_elapsed_seconds": round(pooled_elapsed, 3),
        "packet_runs": PACKET_RUNS,
        "packet_clients_per_second": round(packet_rate, 2),
        "scaleout_factor": round(rate / packet_rate, 1) if packet_rate else None,
        "fleet": {
            "clients_poisoned": fleet["clients_poisoned"],
            "poisoned_resolvers": fleet["poisoned_resolvers"],
            "mean_attacker_fraction": round(fleet["mean_attacker_fraction"], 6),
            "clients_attacker_two_thirds": fleet["clients_attacker_two_thirds"],
            "clients_shift_achieved": fleet["clients_shift_achieved"],
            "panic_rounds_total": fleet["panic_rounds_total"],
        },
    }
    json_path = os.environ.get("POPULATION_JSON", "BENCH_population_scale.json")
    with Path(json_path).open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    emit("E-population — vectorized fleet vs packet baseline", [
        f"fleet: {CLIENTS:,} clients in {len(result.records)} cohorts "
        f"({stats.formatted()})",
        f"vectorized: {elapsed:.2f}s -> {rate:,.0f} clients/sec",
        f"workers=4:  {pooled_elapsed:.2f}s "
        f"({'inline' if pooled_stats.executed_inline else 'pooled'}), "
        f"digest {'==' if report['workers1_digest'] == report['workers4_digest'] else '!='} workers=1",
        f"packet baseline: {PACKET_RUNS} runs in {packet_elapsed:.2f}s "
        f"-> {packet_rate:.1f} clients/sec "
        f"(scale-out x{report['scaleout_factor']:,})",
        f"poisoned: {fleet['clients_poisoned']:,} clients via "
        f"{fleet['poisoned_resolvers']} resolvers; "
        f"attacker fraction {fleet['mean_attacker_fraction']:.3f}; "
        f"shift achieved for {fleet['clients_shift_achieved']:,}",
        f"report: {json_path}",
    ])

    # Determinism: the pooled stream reassembles byte-identically.
    assert report["workers1_digest"] == report["workers4_digest"]
    # Self-consistency: every client lands in exactly one histogram bucket.
    histogram_total = sum(fleet["poison_histogram"])
    assert histogram_total == CLIENTS
    assert fleet["clients"] == CLIENTS
    # The headline gate: population scale-out is real.
    assert rate >= MIN_RATE, (
        f"vectorized rate {rate:,.0f} clients/sec below gate {MIN_RATE:,.0f}")
