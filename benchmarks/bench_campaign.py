"""E-campaign: campaign observatory determinism and resume-economy gates.

Runs the reduced two-sweep study (the one ``examples/campaign_study.py``
and the CI ``campaign`` job use) three ways in fresh directories:

1. **cold** — empty cache, every cell executes;
2. **interrupted** — a run whose journal and cache were primed by a
   partial pass over the first sweep (the in-process stand-in for the
   SIGKILL demo the tests run out-of-process), then resumed;
3. **warm** — a straight re-run of the cold directory.

Gates: all three produce identical step digests and byte-identical
``report.md``/SVG artifacts; the interrupted run executes only the cells
its primer did not persist; the warm run executes nothing and replays
every cell from cache.  A JSON artifact (``BENCH_campaign.json``,
override via ``CAMPAIGN_JSON``) records the numbers for CI archiving.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from conftest import emit

from repro.campaign import CampaignManifest, CampaignRunner

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))
from campaign_study import reduced_manifest  # noqa: E402

SEEDS = int(os.environ.get("CAMPAIGN_SEED_COUNT", "2"))
PRIME_TASKS = int(os.environ.get("CAMPAIGN_PRIME_TASKS", "5"))


def _run(directory: Path, manifest: CampaignManifest):
    return CampaignRunner(manifest, directory).run()


def _prime_partial(directory: Path, manifest: CampaignManifest) -> int:
    """Persist the first few matrix cells, as a killed run would have.

    Drives the first sweep's tasks directly through a scheduler that
    shares the campaign directory's cache, stopping after
    ``PRIME_TASKS`` cells — the same on-disk situation a SIGKILL at task
    N leaves behind (journal absent/mid-step, cache partially filled).
    """
    from repro.experiments.cache import RunCache
    from repro.experiments.matrix import matrix_specs
    from repro.experiments.runner import resolve_spec_tasks
    from repro.experiments.scheduler import SweepScheduler

    sweep = manifest.sweep("grid")
    specs = matrix_specs(sweep.attacks, sweep.stacks, sweep.seeds)
    tasks = [task for spec in specs for task in resolve_spec_tasks(spec)]
    cache = RunCache(directory / "cache")
    scheduler = SweepScheduler(workers=1, cache=cache, collect_metrics=True)
    scheduler.run_tasks(tasks[:PRIME_TASKS])
    return PRIME_TASKS


def _artifact_bytes(result) -> dict[str, bytes]:
    return {path.name: path.read_bytes()
            for path in sorted(result.report_dir.iterdir())
            if path.name != "telemetry.json"}


def test_campaign_gates(benchmark, tmp_path):
    manifest = CampaignManifest.from_spec(reduced_manifest(SEEDS))

    def workload():
        cold = _run(tmp_path / "cold", manifest)
        primed = _prime_partial(tmp_path / "interrupted", manifest)
        interrupted = _run(tmp_path / "interrupted", manifest)
        warm = _run(tmp_path / "cold", manifest)
        return cold, primed, interrupted, warm

    cold, primed, interrupted, warm = benchmark.pedantic(workload, rounds=1,
                                                         iterations=1)

    # Gate 1: digests independent of interruption and cache temperature.
    assert cold.step_digests() == interrupted.step_digests()
    assert cold.step_digests() == warm.step_digests()

    # Gate 2: report artifacts byte-identical across all three runs.
    assert _artifact_bytes(cold) == _artifact_bytes(interrupted)
    assert _artifact_bytes(cold) == _artifact_bytes(warm)

    # Gate 3: resume economy — the interrupted run recomputed only the
    # cells its primer did not persist; the warm run recomputed nothing.
    grid_cold = cold.outcome("sweep:grid").telemetry
    grid_resumed = interrupted.outcome("sweep:grid").telemetry
    assert grid_cold["executed"] == grid_cold["tasks"]
    assert grid_resumed["cache_hits"] == primed
    assert grid_resumed["executed"] == grid_resumed["tasks"] - primed
    for outcome in warm.outcomes:
        if outcome.kind == "sweep":
            assert outcome.telemetry["executed"] == 0

    report = {
        "seeds": SEEDS,
        "cells_total": manifest.cell_count,
        "primed_tasks": primed,
        "step_digests": {name: digest[:16]
                         for name, digest in cold.step_digests().items()},
        "cold_wall_seconds": round(
            sum(o.telemetry.get("wall_seconds", 0.0) for o in cold.outcomes), 3),
        "warm_wall_seconds": round(
            sum(o.telemetry.get("wall_seconds", 0.0) for o in warm.outcomes), 3),
        "resumed_executed": grid_resumed["executed"],
    }
    Path(os.environ.get("CAMPAIGN_JSON", "BENCH_campaign.json")).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8")
    emit("E-campaign: resumable study gates", [
        f"cells total            : {report['cells_total']}",
        f"cold wall              : {report['cold_wall_seconds']}s",
        f"warm wall              : {report['warm_wall_seconds']}s",
        f"interrupted: primed {primed}, resumed executed "
        f"{grid_resumed['executed']} of {grid_resumed['tasks']}",
        "digests: cold == interrupted == warm "
        f"({report['step_digests']['report'][:12]} report)",
    ])
