"""Unit tests for IPv4 fragmentation, reassembly and the defrag cache."""

from __future__ import annotations

import pytest

from repro.netsim.fragmentation import (
    OverlapPolicy,
    ReassemblyBuffer,
    fragment_datagram,
    parse_udp_wire,
)
from repro.netsim.packets import IPPacket, PacketError, UDPDatagram


def make_datagram(size=1200, src="192.0.2.53", dst="192.0.2.1"):
    payload = bytes((i * 7) % 256 for i in range(size))
    return UDPDatagram(src_ip=src, dst_ip=dst, src_port=53, dst_port=4242,
                       payload=payload).with_valid_checksum()


def test_small_datagram_not_fragmented():
    datagram = make_datagram(size=100)
    fragments = fragment_datagram(datagram, ip_id=1, mtu=1500)
    assert len(fragments) == 1
    assert not fragments[0].is_fragment


def test_large_datagram_fragmented_at_low_mtu():
    datagram = make_datagram(size=1200)
    fragments = fragment_datagram(datagram, ip_id=1, mtu=548)
    assert len(fragments) >= 2
    assert fragments[0].first_fragment()
    assert fragments[-1].more_fragments is False
    assert all(f.more_fragments for f in fragments[:-1])


def test_fragment_payloads_fit_mtu():
    datagram = make_datagram(size=3000)
    for fragment in fragment_datagram(datagram, ip_id=9, mtu=576):
        assert fragment.total_size <= 576


def test_fragment_offsets_are_contiguous_and_aligned():
    datagram = make_datagram(size=2000)
    fragments = fragment_datagram(datagram, ip_id=1, mtu=548)
    position = 0
    for fragment in fragments:
        assert fragment.fragment_offset == position
        assert fragment.fragment_offset % 8 == 0
        position += len(fragment.payload)
    assert position == 8 + len(datagram.payload)  # UDP header + payload


def test_fragments_share_ip_id_and_addresses():
    datagram = make_datagram(size=2000)
    fragments = fragment_datagram(datagram, ip_id=321, mtu=548)
    assert len({f.ip_id for f in fragments}) == 1
    assert len({f.reassembly_key for f in fragments}) == 1


def test_too_small_mtu_rejected():
    with pytest.raises(PacketError):
        fragment_datagram(make_datagram(100), ip_id=1, mtu=20)


def test_parse_udp_wire_roundtrip():
    datagram = make_datagram(size=64)
    fragments = fragment_datagram(datagram, ip_id=1, mtu=1500)
    parsed = parse_udp_wire(datagram.src_ip, datagram.dst_ip, fragments[0].payload)
    assert parsed.payload == datagram.payload
    assert parsed.src_port == datagram.src_port
    assert parsed.dst_port == datagram.dst_port
    assert parsed.checksum == datagram.checksum


def reassemble_all(fragments, buffer=None, now=0.0):
    buffer = buffer or ReassemblyBuffer()
    result = None
    for fragment in fragments:
        result = buffer.add_fragment(fragment, now)
        if result.datagram is not None:
            return result
    return result


def test_reassembly_in_order():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    result = reassemble_all(fragments)
    assert result.datagram is not None
    assert result.datagram.payload == datagram.payload
    assert result.datagram.checksum_valid()
    assert not result.poisoned


def test_reassembly_out_of_order():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    result = reassemble_all(list(reversed(fragments)))
    assert result.datagram is not None
    assert result.datagram.payload == datagram.payload


def test_incomplete_reassembly_returns_nothing():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    buffer = ReassemblyBuffer()
    result = buffer.add_fragment(fragments[0], 0.0)
    assert result.datagram is None
    assert len(buffer) == 1


def test_non_fragment_passes_straight_through():
    datagram = make_datagram(size=100)
    [packet] = fragment_datagram(datagram, ip_id=5, mtu=1500)
    buffer = ReassemblyBuffer()
    result = buffer.add_fragment(packet, 0.0)
    assert result.datagram is not None
    assert result.datagram.payload == datagram.payload
    assert len(buffer) == 0


def test_different_ip_ids_do_not_mix():
    datagram = make_datagram(size=1500)
    a = fragment_datagram(datagram, ip_id=1, mtu=548)
    b = fragment_datagram(datagram, ip_id=2, mtu=548)
    buffer = ReassemblyBuffer()
    assert buffer.add_fragment(a[0], 0.0).datagram is None
    assert buffer.add_fragment(b[1], 0.0).datagram is None
    assert len(buffer) == 2


def test_expiry_clears_stale_entries():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=1, mtu=548)
    buffer = ReassemblyBuffer(timeout=30.0)
    buffer.add_fragment(fragments[0], now=0.0)
    buffer.expire(now=31.0)
    assert len(buffer) == 0
    assert buffer.expired == 1


def test_stale_entry_does_not_complete_after_timeout():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=1, mtu=548)
    buffer = ReassemblyBuffer(timeout=30.0)
    buffer.add_fragment(fragments[0], now=0.0)
    # the rest arrive after the timeout: the first fragment is gone
    result = None
    for fragment in fragments[1:]:
        result = buffer.add_fragment(fragment, now=40.0)
    assert result.datagram is None


def test_capacity_eviction_of_oldest():
    buffer = ReassemblyBuffer(capacity=2)
    datagram = make_datagram(size=1500)
    for ip_id, when in ((1, 0.0), (2, 1.0), (3, 2.0)):
        fragments = fragment_datagram(datagram, ip_id=ip_id, mtu=548)
        buffer.add_fragment(fragments[0], now=when)
    assert len(buffer) == 2


def test_spoofed_fragment_marks_result_poisoned():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    spoofed_tail = IPPacket(
        src_ip=fragments[1].src_ip,
        dst_ip=fragments[1].dst_ip,
        ip_id=fragments[1].ip_id,
        payload=fragments[1].payload,
        fragment_offset=fragments[1].fragment_offset,
        more_fragments=fragments[1].more_fragments,
        spoofed=True,
    )
    buffer = ReassemblyBuffer()
    buffer.add_fragment(spoofed_tail, 0.0)       # planted ahead of time
    result = buffer.add_fragment(fragments[0], 0.1)
    if len(fragments) > 2:
        for fragment in fragments[2:]:
            result = buffer.add_fragment(fragment, 0.1)
    assert result.datagram is not None
    assert result.poisoned


def test_first_wins_overlap_keeps_planted_data():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    genuine_tail = fragments[1]
    forged_payload = bytes(b ^ 0xFF for b in genuine_tail.payload)
    forged_tail = IPPacket(
        src_ip=genuine_tail.src_ip,
        dst_ip=genuine_tail.dst_ip,
        ip_id=genuine_tail.ip_id,
        payload=forged_payload,
        fragment_offset=genuine_tail.fragment_offset,
        more_fragments=genuine_tail.more_fragments,
        spoofed=True,
    )
    buffer = ReassemblyBuffer(overlap_policy=OverlapPolicy.FIRST_WINS)
    buffer.add_fragment(forged_tail, 0.0)
    result = None
    for fragment in fragments:
        result = buffer.add_fragment(fragment, 0.1)
        if result.datagram is not None:
            break
    assert result.datagram is not None
    # The forged bytes survived the overlap with the genuine tail.  The
    # fragment starts at wire offset 520; the UDP header occupies the first
    # 8 wire bytes, so in the application payload it covers [512, 512+len).
    start = genuine_tail.fragment_offset - 8
    assert result.datagram.payload[start:start + len(forged_payload)] == forged_payload
    assert result.poisoned


def test_drop_policy_discards_overlapping_reassembly():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    duplicate_tail = fragments[1]
    buffer = ReassemblyBuffer(overlap_policy=OverlapPolicy.DROP)
    buffer.add_fragment(duplicate_tail, 0.0)
    results = [buffer.add_fragment(fragment, 0.1) for fragment in fragments]
    assert all(result.datagram is None for result in results)


def test_last_wins_overlap_overwrites():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    genuine_tail = fragments[1]
    forged_payload = bytes(b ^ 0xAA for b in genuine_tail.payload)
    forged_tail = IPPacket(
        src_ip=genuine_tail.src_ip,
        dst_ip=genuine_tail.dst_ip,
        ip_id=genuine_tail.ip_id,
        payload=forged_payload,
        fragment_offset=genuine_tail.fragment_offset,
        more_fragments=genuine_tail.more_fragments,
        spoofed=True,
    )
    buffer = ReassemblyBuffer(overlap_policy=OverlapPolicy.LAST_WINS)
    # genuine tail first, forged second: LAST_WINS keeps the forged bytes
    buffer.add_fragment(genuine_tail, 0.0)
    buffer.add_fragment(forged_tail, 0.0)
    result = buffer.add_fragment(fragments[0], 0.1)
    for fragment in fragments[2:]:
        if result.datagram is None:
            result = buffer.add_fragment(fragment, 0.1)
    assert result.datagram is not None
    assert result.poisoned


def test_completed_counter_increments():
    datagram = make_datagram(size=1500)
    buffer = ReassemblyBuffer()
    for ip_id in (1, 2, 3):
        for fragment in fragment_datagram(datagram, ip_id=ip_id, mtu=548):
            buffer.add_fragment(fragment, 0.0)
    assert buffer.completed == 3


def test_checksum_compensated_flag_propagates():
    datagram = make_datagram(size=1500)
    fragments = fragment_datagram(datagram, ip_id=5, mtu=548)
    compensated = IPPacket(
        src_ip=fragments[1].src_ip,
        dst_ip=fragments[1].dst_ip,
        ip_id=fragments[1].ip_id,
        payload=fragments[1].payload,
        fragment_offset=fragments[1].fragment_offset,
        more_fragments=fragments[1].more_fragments,
        spoofed=True,
        checksum_compensated=True,
    )
    buffer = ReassemblyBuffer()
    buffer.add_fragment(compensated, 0.0)
    result = buffer.add_fragment(fragments[0], 0.1)
    for fragment in fragments[2:]:
        if result.datagram is None:
            result = buffer.add_fragment(fragment, 0.1)
    assert result.datagram is not None
    assert result.checksum_compensated
