"""The fleet-vs-packet equivalence gate.

The acceptance bar for the population layer: on overlap populations small
enough for the packet simulator (≤64 clients), the vectorized engine and the
packet-level testbed must be digest-identical client for client, seed for
seed, with and without numpy.  The gate population spans every poison index
(k = 1..24 plus unpoisoned clients), and the §V mitigation and TTL-expiry
regimes are checked as variants.
"""

from __future__ import annotations

import pytest

from repro.population.equivalence import (
    GATE_CLIENTS,
    equivalence_digests,
    expected_gate_poison_query,
    fleet_gate_records,
    packet_gate_records,
    population_digest,
)
from repro.population.rng import BACKEND_ENV, numpy_or_none

numpy = numpy_or_none()

GATE_SEEDS = tuple(range(1, 9))

#: Pinned digest of the 8-seed gate (packet side == fleet side == this).
#: Drift means either the packet testbed or the engine changed behaviour —
#: deliberate changes must re-pin it on both paths.
GATE_DIGEST = "d5c792a72f16d29abfccaa10eeb054f646c3d863be7be670c0997aceaa8cd517"


def test_gate_population_spans_every_poison_index():
    records = fleet_gate_records(1, backend="python")
    assert len(records) == GATE_CLIENTS
    ks = [record["poison_at_query"] for record in records]
    # The construction is analytic: k = 26 - i for the mid clients, k = 1
    # for the client starting at the poisoning instant, four never poisoned.
    assert ks == [expected_gate_poison_query(i) for i in range(GATE_CLIENTS)]
    assert set(ks) == {None} | set(range(1, 25))
    # The k = 1 client is the deterministic-shift regime: no benign servers,
    # panic on the first round moves the clock by exactly the target.
    (pure,) = [r for r in records if r["poison_at_query"] == 1]
    assert pure["benign"] == 0
    assert pure["achieved_shift"] == 600.0
    assert pure["panic_rounds"] == 1
    assert pure["updates_run"] == 6
    assert pure["shift_achieved"] is True


def test_equivalence_gate_eight_seeds_python_backend():
    packet, fleet = equivalence_digests(GATE_SEEDS, backend="python")
    assert packet == fleet
    assert fleet == GATE_DIGEST


@pytest.mark.skipif(numpy is None, reason="numpy not installed")
def test_numpy_backend_reproduces_the_pinned_gate_digest():
    # No packet re-run needed: the fleet side alone must reproduce the same
    # per-client records bit for bit on the vectorized path.
    records = []
    for seed in GATE_SEEDS:
        records.extend(fleet_gate_records(seed, backend="numpy"))
    packet_equivalent = []
    for seed in GATE_SEEDS:
        packet_equivalent.extend(fleet_gate_records(seed, backend="python"))
    assert records == packet_equivalent
    assert population_digest(records) == GATE_DIGEST


def test_backend_env_variable_controls_the_fleet_path(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "python")
    via_env = fleet_gate_records(3)
    assert via_env == fleet_gate_records(3, backend="python")


@pytest.mark.parametrize("variant", [
    {"malicious_ttl": 9000},             # entry expires after 2 cache hits
    {"max_addresses_per_response": 64},  # §V response-size cap
    {"max_accepted_ttl": 3600},          # §V TTL discard
])
def test_equivalence_holds_under_mitigations_and_expiry(variant):
    packet, fleet = equivalence_digests([1], backend="python", **variant)
    assert packet == fleet


def test_expiry_variant_matches_the_closed_form():
    records = fleet_gate_records(1, malicious_ttl=9000, backend="python")
    (k3,) = [r for r in records if r["poison_at_query"] == 3]
    # k = 3: two pre-poison queries, the poisoned query plus 2 cache hits
    # before expiry, then 19 fresh benign queries.
    assert k3["malicious"] == 89 * 3
    assert k3["benign"] == (2 + 19) * 4
    assert k3["cache_hits"] == 2
    assert k3["poisoned_queries"] == [3, 4, 5]


def test_ttl_discard_defeats_the_attack_on_both_paths():
    fleet = fleet_gate_records(1, max_accepted_ttl=3600, backend="python")
    packet = packet_gate_records(1, fleet, max_accepted_ttl=3600)
    assert fleet == packet
    assert all(r["malicious"] == 0 for r in fleet)
    assert not any(r["attack_succeeded"] for r in fleet)
