"""Campaign layer: manifest compilation, state journal, figures, reports."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignManifest,
    CampaignRunner,
    CampaignState,
    Step,
    campaign_status,
    dependency_order,
    run_campaign,
)
from repro.campaign.figures import (
    render_curve_svg,
    render_heatmap_markdown,
    render_heatmap_svg,
    sequential_color,
)
from repro.experiments.matrix import DEFAULT_ATTACKS, LEGACY_STACKS

#: A deliberately tiny but representative study: one 2x2 matrix sweep, one
#: transport grid, one analysis, both figure kinds.
TINY_SPEC = {
    "name": "tiny",
    "seeds": 2,
    "sweeps": {
        "grid": {
            "kind": "matrix",
            "attacks": [{"label": "frag_poisoning", "scenario": "frag_poisoning",
                         "params": {}}],
            "stacks": [{"name": "classic", "defenses": []},
                       {"name": "frag_reject",
                        "defenses": ["fragment_rejection"]}],
        },
        "overhead": {
            "kind": "grid",
            "scenario": "transport_overhead",
            "base_params": {"queries": 2, "benign_server_count": 20},
            "grid": {"transport": ["udp", "dot"]},
            "seeds": [1],
        },
    },
    "analyses": {"summary": {"kind": "success_summary", "sweep": "grid"}},
    "figures": {
        "heatmap": {"kind": "heatmap", "sweep": "grid"},
        "overhead": {"kind": "curve", "sweep": "overhead",
                     "x": "transport", "y": "mean_time_to_answer"},
    },
}


# -- manifest ----------------------------------------------------------------
class TestManifest:
    def test_roundtrip_preserves_fingerprint(self):
        manifest = CampaignManifest.from_spec(TINY_SPEC)
        again = CampaignManifest.from_spec(manifest.to_spec())
        assert manifest.fingerprint() == again.fingerprint()

    def test_fingerprint_ignores_expected_digests(self):
        pinned = dict(TINY_SPEC)
        pinned["expected_digests"] = {"sweep:grid": "ab" * 32}
        assert (CampaignManifest.from_spec(TINY_SPEC).fingerprint()
                == CampaignManifest.from_spec(pinned).fingerprint())

    def test_fingerprint_moves_with_seed_budget(self):
        grown = json.loads(json.dumps(TINY_SPEC))
        grown["seeds"] = 3
        assert (CampaignManifest.from_spec(TINY_SPEC).fingerprint()
                != CampaignManifest.from_spec(grown).fingerprint())

    def test_named_groups_resolve_to_matrix_constants(self):
        manifest = CampaignManifest.from_spec({
            "name": "groups",
            "sweeps": {"grid": {"kind": "matrix", "attacks": "default",
                                "stacks": "legacy"}},
        })
        sweep = manifest.sweep("grid")
        assert sweep.attacks == DEFAULT_ATTACKS
        assert sweep.stacks == LEGACY_STACKS

    def test_seed_budget_forms(self):
        base = {"name": "seeds", "sweeps": {
            "grid": {"kind": "matrix", "attacks": "legacy", "stacks": "legacy"}}}
        assert CampaignManifest.from_spec(
            {**base, "seeds": 3}).sweep("grid").seeds == (1, 2, 3)
        assert CampaignManifest.from_spec(
            {**base, "seeds": [7, 9]}).sweep("grid").seeds == (7, 9)

    @pytest.mark.parametrize("mutation, match", [
        ({"sweeps": {}}, "non-empty 'sweeps'"),
        ({"sweeps": {"g": {"kind": "nope"}}}, "unknown kind"),
        ({"sweeps": {"g": {"kind": "matrix", "attacks": "marsattacks"}}},
         "unknown attack group"),
        ({"sweeps": {"g": {"kind": "grid", "scenario": "no_such_scenario"}}},
         "unknown scenario"),
        ({"analyses": {"a": {"kind": "section5", "sweep": "nope"}}},
         "unknown sweep"),
        ({"figures": {"f": {"kind": "curve", "sweep": "overhead",
                            "x": "not_a_param", "y": "whatever"}}},
         "not a grid param"),
    ])
    def test_validation_fails_fast(self, mutation, match):
        spec = json.loads(json.dumps(TINY_SPEC))
        spec.update(mutation)
        with pytest.raises(ValueError, match=match):
            CampaignManifest.from_spec(spec)

    def test_section5_requires_its_cells(self):
        spec = json.loads(json.dumps(TINY_SPEC))
        spec["analyses"] = {"s5": {"kind": "section5", "sweep": "grid"}}
        with pytest.raises(ValueError, match="section5 needs cell"):
            CampaignManifest.from_spec(spec)

    def test_steps_are_dependency_ordered_report_last(self):
        steps = CampaignManifest.from_spec(TINY_SPEC).steps()
        names = [step.name for step in steps]
        assert names[-1] == "report"
        for step in steps:
            for dep in step.depends:
                assert names.index(dep) < names.index(step.name)

    def test_dependency_cycle_detected(self):
        loop = [Step(name="a", kind="sweep", depends=("b",)),
                Step(name="b", kind="sweep", depends=("a",))]
        with pytest.raises(ValueError, match="cycle"):
            dependency_order(loop)


# -- state journal -----------------------------------------------------------
class TestState:
    def test_corrupt_state_file_recovers_fresh(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text('{"version": 1, "steps": {"x"', encoding="utf-8")
        state = CampaignState(path, "c", "fp", ["x"])
        assert state.recovered_from_corruption
        assert state.status("x") == "pending"

    def test_fingerprint_drift_marks_steps_stale(self, tmp_path):
        path = tmp_path / "state.json"
        first = CampaignState(path, "c", "fp1", ["x"])
        first.begin_run()
        first.step_started("x", 4)
        first.step_completed("x", "d" * 64)
        second = CampaignState(path, "c", "fp2", ["x"])
        assert second.stale_checkpoint
        assert second.status("x") == "stale"
        # The digest history survives for the drift ledger.
        assert second.step("x")["history"]

    def test_running_step_in_loaded_journal_means_killed(self, tmp_path):
        path = tmp_path / "state.json"
        first = CampaignState(path, "c", "fp", ["x"])
        first.begin_run()
        first.step_started("x", 4)
        second = CampaignState(path, "c", "fp", ["x"])
        assert second.status("x") == "pending"

    def test_previous_digest_needs_two_runs(self, tmp_path):
        path = tmp_path / "state.json"
        state = CampaignState(path, "c", "fp", ["x"])
        state.begin_run()
        state.step_completed("x", "a" * 64)
        assert state.previous_digest("x") is None
        state.begin_run()
        state.step_completed("x", "b" * 64)
        assert state.previous_digest("x") == "a" * 64


# -- figures -----------------------------------------------------------------
class TestFigures:
    def test_heatmap_is_deterministic_and_labels_cells(self):
        values = [[0.0, 1.0], [0.5, None]]
        svg = render_heatmap_svg("t", ["a1", "a2"], ["s1", "s2"], values)
        assert svg == render_heatmap_svg("t", ["a1", "a2"], ["s1", "s2"],
                                         values)
        # Direct labels: every present value printed in the cell.
        assert ">0.00<" in svg and ">1.00<" in svg and ">0.50<" in svg

    def test_sequential_ramp_clamps_and_orders(self):
        assert sequential_color(-1.0) == sequential_color(0.0)
        assert sequential_color(2.0) == sequential_color(1.0)
        assert sequential_color(0.0) != sequential_color(1.0)

    def test_heatmap_markdown_table(self):
        table = render_heatmap_markdown(["a"], ["s1", "s2"], [[1.0, None]])
        assert "| a | 1.00 | -- |" in table

    def test_curve_handles_single_tick(self):
        svg = render_curve_svg("t", "x", "y", [("y", [("only", 3.0)])])
        assert "polyline" in svg and ">3<" in svg

    def test_curve_rejects_empty_series(self):
        with pytest.raises(ValueError):
            render_curve_svg("t", "x", "y", [])


# -- end to end --------------------------------------------------------------
class TestCampaignEndToEnd:
    def test_run_report_and_warm_replay(self, tmp_path):
        result = run_campaign(TINY_SPEC, tmp_path / "c")
        digests = result.step_digests()
        assert set(digests) == {"sweep:grid", "sweep:overhead",
                                "analysis:summary", "figure:heatmap",
                                "figure:overhead", "report"}
        report_dir = result.report_dir
        report = (report_dir / "report.md").read_text(encoding="utf-8")
        assert "Digest ledger" in report
        assert "DRIFT" not in report
        assert (report_dir / "heatmap.svg").exists()
        assert (report_dir / "overhead.svg").exists()
        assert (report_dir / "telemetry.json").exists()

        # Warm replay: identical digests and report bytes, zero executions.
        again = run_campaign(TINY_SPEC, tmp_path / "c")
        assert again.step_digests() == digests
        assert (again.report_dir / "report.md").read_text(
            encoding="utf-8") == report
        grid = again.outcome("sweep:grid")
        assert grid.telemetry["executed"] == 0
        assert grid.telemetry["cache_hits"] == grid.telemetry["tasks"]
        # Replayed metrics come back from the cache's sidecar, bit-exact.
        assert grid.metrics == result.outcome("sweep:grid").metrics

    def test_progress_surface_and_status_view(self, tmp_path):
        seen: list[tuple[str, int, int]] = []
        run_campaign(TINY_SPEC, tmp_path / "c", on_progress=lambda *a:
                     seen.append(a))
        assert any(step == "sweep:grid" and done == total == 4
                   for step, done, total in seen)
        progress = json.loads((tmp_path / "c" / "progress.json").read_text(
            encoding="utf-8"))
        assert progress["tasks_done"] == progress["tasks_total"]
        status = campaign_status(tmp_path / "c")
        assert "sweep:grid" in status and "done" in status

    def test_status_on_missing_directory(self, tmp_path):
        assert "no readable campaign state" in campaign_status(tmp_path)

    def test_pin_mismatch_is_highlighted(self, tmp_path):
        result = run_campaign(TINY_SPEC, tmp_path / "c")
        pinned = json.loads(json.dumps(TINY_SPEC))
        pinned["expected_digests"] = {
            "sweep:grid": result.step_digests()["sweep:grid"],
            "sweep:overhead": "0" * 64,
        }
        again = run_campaign(pinned, tmp_path / "c")
        assert again.outcome("sweep:grid").pin_ok is True
        assert again.outcome("sweep:overhead").pin_ok is False
        report = (again.report_dir / "report.md").read_text(encoding="utf-8")
        assert "PIN MISMATCH" in report and "pinned" in report

    def test_failed_step_is_journaled_and_resumable(self, tmp_path,
                                                    monkeypatch):
        import repro.campaign.runner as runner_module
        from repro.campaign import CampaignError

        directory = tmp_path / "c"

        def exploding(*args, **kwargs):
            raise RuntimeError("analysis exploded")

        monkeypatch.setattr(runner_module, "_success_summary", exploding)
        runner = CampaignRunner(CampaignManifest.from_spec(TINY_SPEC),
                                directory)
        with pytest.raises(CampaignError, match="analysis:summary"):
            runner.run()
        status = campaign_status(directory)
        assert "failed" in status and "analysis exploded" in status
        # The journal survives; a healthy re-run completes from the cache.
        monkeypatch.undo()
        result = run_campaign(TINY_SPEC, directory)
        assert result.outcome("sweep:grid").telemetry["executed"] == 0
        assert result.outcome("analysis:summary").status == "done"
