"""Shared fixtures for the test suite.

Most tests build small, fully deterministic topologies: a simulator, a
network, a handful of NTP servers, a pool.ntp.org nameserver, a recursive
resolver and a victim client.  The fixtures here provide those pieces with
fixed seeds so every test is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.dns.nameserver import PoolNTPNameserver
from repro.dns.resolver import RecursiveResolver, ResolverPolicy
from repro.netsim.addresses import AddressAllocator
from repro.netsim.network import LinkProperties, Network
from repro.netsim.simulator import Simulator
from repro.ntp.server import NTPServer


@pytest.fixture
def simulator() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def network(simulator: Simulator) -> Network:
    """A network with a small fixed latency and no loss."""
    return Network(simulator, default_link=LinkProperties(latency=0.01))


@dataclass
class SmallInternet:
    """A miniature benign Internet used by DNS/NTP integration tests."""

    simulator: Simulator
    network: Network
    ntp_servers: list[NTPServer]
    nameserver: PoolNTPNameserver
    resolver: RecursiveResolver
    zone: str = "pool.ntp.org"


@pytest.fixture
def small_internet(simulator: Simulator, network: Network) -> SmallInternet:
    """Twenty benign NTP servers, a pool nameserver and a resolver."""
    allocator = AddressAllocator("10.0.0.0/24")
    servers = [NTPServer(network, allocator.allocate()) for _ in range(20)]
    nameserver = PoolNTPNameserver(
        network,
        "192.0.2.53",
        zone_name="pool.ntp.org",
        pool_servers=[server.address for server in servers],
    )
    resolver = RecursiveResolver(
        network,
        "192.0.2.1",
        nameserver_map={"pool.ntp.org": nameserver.address},
        policy=ResolverPolicy(),
    )
    return SmallInternet(
        simulator=simulator,
        network=network,
        ntp_servers=servers,
        nameserver=nameserver,
        resolver=resolver,
    )
