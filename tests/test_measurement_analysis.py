"""Tests for the measurement studies (E4) and the analysis/experiment modules."""

from __future__ import annotations

import pytest

from repro.analysis.effort import (
    chronos_security_bound_table,
    dns_attack_comparison,
    end_to_end_success_table,
    fraction_sweep_table,
    poisoning_success_probability,
    shift_effort_table,
)
from repro.analysis.mitigations import analytic_mitigation_table
from repro.analysis.poisoning_vectors import feasibility_row, mtu_sweep, vulnerable_pair_fraction
from repro.analysis.pool_composition import (
    analytic_sweep,
    crossover_query_index,
    figure1_report,
    simulated_composition,
)
from repro.analysis.response_capacity import (
    capacity_table,
    paper_capacity_claim,
    verify_capacity_by_encoding,
)
from repro.measurement.nameserver_study import probe_nameserver, run_nameserver_study
from repro.measurement.population import (
    NameserverProfile,
    ResolverProfile,
    generate_nameserver_population,
    generate_resolver_population,
)
from repro.measurement.resolver_study import run_resolver_study


# -- populations -----------------------------------------------------------------------

def test_nameserver_population_matches_16_of_30():
    population = generate_nameserver_population(seed=0)
    assert len(population) == 30
    vulnerable = [p for p in population if p.vulnerable_to_fragmentation_poisoning]
    assert len(vulnerable) == 16


def test_nameserver_population_is_seed_deterministic():
    a = generate_nameserver_population(seed=5)
    b = generate_nameserver_population(seed=5)
    assert a == b


def test_nameserver_population_rejects_bad_counts():
    with pytest.raises(ValueError):
        generate_nameserver_population(fragmenting=40, total=30)


def test_populations_accept_an_injected_rng():
    """An injected generator takes precedence over ``seed`` and composes with
    experiment-level seeding (same stream, same population)."""
    import random

    assert (generate_nameserver_population(seed=0, rng=random.Random(9))
            == generate_nameserver_population(seed=9))
    assert (generate_resolver_population(seed=0, total=200,
                                         rng=random.Random(9))
            == generate_resolver_population(seed=9, total=200))
    # A shared generator advances across calls: two draws differ.
    shared = random.Random(4)
    first = generate_nameserver_population(rng=shared)
    second = generate_nameserver_population(rng=shared)
    assert first != second


def test_default_seed_populations_are_pinned():
    """The rng-injection refactor must not move the historical default-seed
    populations (other pinned results are derived from them)."""
    import hashlib

    ns = hashlib.sha256(repr(generate_nameserver_population()).encode()).hexdigest()
    rs = hashlib.sha256(repr(generate_resolver_population()).encode()).hexdigest()
    assert ns == "7d3b7de4bf7d5da1683bf1d843d9821e2da67cc4080ae3a612050a4caf3a54f5"
    assert rs == "80a58f28a4fcbcca80a936bf0111735f9630c67440fb26d6748a69e92ee670bc"


def test_resolver_population_matches_published_fractions():
    population = generate_resolver_population(seed=0, total=1000)
    accept_any = sum(1 for p in population if p.accepts_any_fragments)
    accept_min = sum(1 for p in population if p.accepts_minimum_fragments)
    triggerable = sum(1 for p in population if p.externally_triggerable)
    assert accept_any == 900
    assert accept_min == 640
    assert triggerable == 140


def test_resolver_population_fraction_validation():
    with pytest.raises(ValueError):
        generate_resolver_population(accept_any_fraction=0.5, accept_minimum_fraction=0.9)


def test_resolver_profile_fragment_acceptance_logic():
    profile = ResolverProfile("r", min_accepted_fragment_mtu=296,
                              triggerable_via_smtp=False, open_resolver=False)
    assert profile.accepts_any_fragments
    assert profile.accepts_fragment_mtu(548)
    assert not profile.accepts_fragment_mtu(68)
    assert not profile.accepts_minimum_fragments
    rejecting = ResolverProfile("r2", min_accepted_fragment_mtu=None,
                                triggerable_via_smtp=False, open_resolver=True)
    assert not rejecting.accepts_any_fragments
    assert rejecting.externally_triggerable


# -- studies ------------------------------------------------------------------------------

def test_nameserver_study_reproduces_paper_row():
    report = run_nameserver_study(generate_nameserver_population(seed=0))
    assert report.total == 30
    assert report.fragmenting_without_dnssec == 16
    assert "16 out of 30" in report.summary_row()
    assert "548" in report.summary_row()


def test_probe_classifies_single_profiles():
    fragmenting = NameserverProfile("a", min_fragmentation_mtu=548, supports_dnssec=False)
    rigid = NameserverProfile("b", min_fragmentation_mtu=1500, supports_dnssec=False)
    signed = NameserverProfile("c", min_fragmentation_mtu=548, supports_dnssec=True)
    assert probe_nameserver(fragmenting).usable_for_fragmentation_poisoning
    assert not probe_nameserver(rigid).usable_for_fragmentation_poisoning
    assert not probe_nameserver(signed).usable_for_fragmentation_poisoning


def test_resolver_study_reproduces_paper_fractions():
    report = run_resolver_study(generate_resolver_population(seed=0, total=2000))
    assert report.accept_any_fraction == pytest.approx(0.90, abs=0.005)
    assert report.accept_minimum_fraction == pytest.approx(0.64, abs=0.005)
    assert report.triggerable_fraction == pytest.approx(0.14, abs=0.005)
    rows = report.summary_rows()
    assert any("90%" in row for row in rows)
    assert any("64%" in row for row in rows)
    assert any("14%" in row for row in rows)
    assert sum(report.by_trigger_method.values()) == report.triggerable


# -- E5: response capacity ------------------------------------------------------------------

def test_paper_capacity_claim_is_89():
    assert paper_capacity_claim() == 89


def test_capacity_verification_by_encoding():
    result = verify_capacity_by_encoding()
    assert result["record_count"] == 89
    assert result["fits"]
    assert result["one_more_overflows"]


def test_capacity_table_is_monotone():
    rows = capacity_table()
    capacities = [row.max_a_records for row in rows]
    assert capacities == sorted(capacities)
    assert all(row.exact_response_size <= row.payload_limit for row in rows)


# -- E1/E2: pool composition sweeps -----------------------------------------------------------

def test_analytic_sweep_covers_every_query_and_no_attack():
    rows = analytic_sweep()
    assert len(rows) == 25
    assert rows[0].poison_at_query is None
    assert rows[0].malicious == 0


def test_crossover_query_index_is_12():
    assert crossover_query_index(analytic_sweep()) == 12


def test_sweep_fraction_decreases_with_later_poisoning():
    rows = [row for row in analytic_sweep() if row.poison_at_query is not None]
    fractions = [row.malicious_fraction for row in rows]
    assert fractions == sorted(fractions, reverse=True)


def test_simulated_composition_agrees_with_analytic_at_query_1():
    row = simulated_composition(1, seed=2)
    assert row.malicious == 89
    assert row.attacker_has_two_thirds


def test_figure1_report_contents():
    report = figure1_report(poison_at_query=2, seed=3)
    assert report["analytic_benign_at_query_12"] == 44
    assert report["analytic_malicious"] == 89
    assert report["attack_succeeded"]


def test_row_formatting_is_printable():
    rows = analytic_sweep()
    header = rows[0].header()
    assert "benign" in header
    assert all(isinstance(row.formatted(), str) for row in rows[:3])


# -- E3/E6: effort tables ----------------------------------------------------------------------

def test_security_bound_table_shows_collapse_after_attack():
    rows = chronos_security_bound_table()
    by_scenario = {row.scenario: row for row in rows}
    before = by_scenario["MitM, just under 1/3 (Chronos bound)"]
    after = by_scenario["After DNS pool attack (89 of 133)"]
    assert after.per_round_probability > 0.5
    assert before.per_round_probability < 0.01
    assert before.expected_years > after.expected_years * 100


def test_shift_effort_table_years_vs_minutes():
    rows = shift_effort_table()
    pre = [row for row in rows if not row.panic_controlled]
    post = [row for row in rows if row.panic_controlled]
    assert pre and post
    assert all(row.expected_years > 1.0 or row.expected_years == float("inf") for row in pre[1:])
    assert all(row.expected_years < 0.01 for row in post)


def test_fraction_sweep_is_monotone_in_probability():
    rows = fraction_sweep_table(fractions=[0.1, 0.2, 0.3, 0.4, 0.5])
    probabilities = [row.per_round_probability for row in rows]
    assert probabilities == sorted(probabilities)


def test_dns_attack_comparison_rows():
    rows = dns_attack_comparison()
    traditional = next(row for row in rows if row.client == "traditional NTP")
    chronos = next(row for row in rows if row.client == "Chronos")
    assert traditional.poisoning_opportunities == 1
    assert chronos.poisoning_opportunities == 12
    assert chronos.dns_queries_observable == 24


def test_poisoning_success_probability_math():
    assert poisoning_success_probability(0.1, 1) == pytest.approx(0.1)
    assert poisoning_success_probability(0.1, 12) == pytest.approx(1 - 0.9 ** 12)
    assert poisoning_success_probability(0.0, 12) == 0.0
    with pytest.raises(ValueError):
        poisoning_success_probability(1.5, 1)


def test_end_to_end_success_table_chronos_always_easier():
    for row in end_to_end_success_table():
        assert row["chronos_overall"] >= row["traditional_overall"]


# -- E7: vector feasibility ---------------------------------------------------------------------

def test_mtu_sweep_feasible_only_when_fragmenting():
    rows = mtu_sweep()
    by_mtu = {row.nameserver_min_mtu: row for row in rows}
    assert not by_mtu[1500].feasible
    assert by_mtu[548].feasible
    assert by_mtu[548].success_probability == 1.0


def test_feasibility_row_respects_resolver_rejection():
    nameserver = NameserverProfile("ns", min_fragmentation_mtu=548, supports_dnssec=False)
    rejecting = ResolverProfile("r", min_accepted_fragment_mtu=None,
                                triggerable_via_smtp=True, open_resolver=False)
    row = feasibility_row(nameserver, rejecting)
    assert not row.feasible
    assert row.success_probability == 0.0


def test_vulnerable_pair_fraction_bounds():
    nameservers = generate_nameserver_population(seed=2)
    resolvers = generate_resolver_population(seed=2, total=50)
    fraction = vulnerable_pair_fraction(nameservers, resolvers)
    assert 0.0 <= fraction <= 1.0
    assert fraction > 0.2  # a substantial share of pairs is attackable
    assert vulnerable_pair_fraction([], resolvers) == 0.0


# -- E8: mitigation table -----------------------------------------------------------------------

def test_analytic_mitigation_table_shapes():
    rows = analytic_mitigation_table()
    by_scenario = {row.scenario: row for row in rows}
    assert by_scenario["no mitigation, poisoning at query 1"].attacker_has_two_thirds
    assert by_scenario["max 4 addresses per response (alone)"].attacker_has_two_thirds
    assert not by_scenario["high-TTL responses discarded"].attacker_has_two_thirds
    assert not by_scenario["both mitigations (single poisoning)"].attacker_has_two_thirds
    residual = by_scenario["both mitigations, 24h DNS hijack (residual)"]
    assert residual.attacker_has_two_thirds
    assert residual.malicious_fraction == 1.0
