"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.security_analysis import hypergeometric_pmf, hypergeometric_tail
from repro.core.selection import ChronosConfig, chronos_select, panic_select, trim_offsets
from repro.dns.message import (
    DNSMessage,
    max_a_records_for_payload,
    response_size_for_a_records,
)
from repro.dns.records import a_record
from repro.dns.wire import decode_name, encode_name
from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.netsim.fragmentation import ReassemblyBuffer, fragment_datagram
from repro.netsim.packets import UDPDatagram
from repro.ntp.packet import NTPMode, NTPPacket
from repro.ntp.timestamps import ntp_to_unix, unix_to_ntp

# -- strategies --------------------------------------------------------------------------

ip_addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(int_to_ip)

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
                 max_size=20).filter(lambda s: not s.startswith("-"))
domain_names = st.lists(labels, min_size=1, max_size=4).map(".".join)

offsets = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


# -- addresses ----------------------------------------------------------------------------

@given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ip_int_roundtrip(value):
    assert ip_to_int(int_to_ip(value)) == value


@given(address=ip_addresses)
def test_ip_string_roundtrip(address):
    assert int_to_ip(ip_to_int(address)) == address


# -- DNS names and messages ------------------------------------------------------------------

@given(name=domain_names)
def test_name_encode_decode_roundtrip(name):
    decoded, consumed = decode_name(encode_name(name), 0)
    assert decoded == name
    assert consumed == len(encode_name(name))


@given(name=domain_names, count=st.integers(min_value=0, max_value=60),
       ttl=st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_dns_response_roundtrip(name, count, ttl):
    query = DNSMessage.query(0x0102, name)
    answers = [a_record(name, int_to_ip(1000 + i), ttl) for i in range(count)]
    response = query.make_response(answers)
    decoded = DNSMessage.decode(response.encode())
    assert decoded.transaction_id == 0x0102
    assert decoded.question.name == name
    assert len(decoded.answers) == count
    assert all(rr.ttl == ttl for rr in decoded.answers)
    assert decoded.answer_addresses == [int_to_ip(1000 + i) for i in range(count)]


@given(name=domain_names, count=st.integers(min_value=0, max_value=120))
def test_response_size_formula_matches_encoder(name, count):
    query = DNSMessage.query(1, name)
    answers = [a_record(name, int_to_ip(i + 1), 300) for i in range(count)]
    assert query.make_response(answers).wire_size == response_size_for_a_records(name, count)


@given(name=domain_names, budget=st.integers(min_value=0, max_value=4096))
def test_capacity_is_maximal(name, budget):
    count = max_a_records_for_payload(name, budget)
    if count > 0:
        assert response_size_for_a_records(name, count) <= budget
    assert response_size_for_a_records(name, count + 1) > budget


# -- NTP timestamps and packets -----------------------------------------------------------------

@given(value=st.floats(min_value=0.0, max_value=2.0e9, allow_nan=False,
                       allow_infinity=False))
def test_ntp_timestamp_roundtrip_precision(value):
    # 2.0e9 (year 2033) stays inside NTP era 0, which ends in 2036.
    assert abs(ntp_to_unix(unix_to_ntp(value)) - value) < 1e-6


@given(origin=st.floats(min_value=1e9, max_value=2e9, allow_nan=False),
       shift=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
def test_ntp_packet_roundtrip_and_origin_echo(origin, shift):
    request = NTPPacket.client_request(transmit_time=origin)
    reply = request.server_reply(receive_time=origin + abs(shift), transmit_time=origin + abs(shift),
                                 stratum=2, reference_time=origin)
    decoded = NTPPacket.decode(reply.encode())
    assert decoded.mode == NTPMode.SERVER
    assert decoded.valid_server_reply_to(origin)


# -- fragmentation ---------------------------------------------------------------------------------

@given(size=st.integers(min_value=0, max_value=4000),
       mtu=st.sampled_from([296, 548, 576, 1280, 1500]),
       ip_id=st.integers(min_value=0, max_value=0xFFFF))
@settings(max_examples=60)
def test_fragmentation_reassembly_roundtrip(size, mtu, ip_id):
    payload = bytes(i % 251 for i in range(size))
    datagram = UDPDatagram("10.0.0.1", "10.0.0.2", 53, 9999, payload).with_valid_checksum()
    fragments = fragment_datagram(datagram, ip_id=ip_id, mtu=mtu)
    assert all(f.total_size <= mtu for f in fragments)
    buffer = ReassemblyBuffer()
    result = None
    for fragment in fragments:
        result = buffer.add_fragment(fragment, now=0.0)
    assert result.datagram is not None
    assert result.datagram.payload == payload
    assert result.datagram.checksum_valid()
    assert not result.poisoned


# -- Chronos selection invariants -------------------------------------------------------------------

@given(values=st.lists(offsets, min_size=0, max_size=60),
       trim=st.integers(min_value=0, max_value=10))
def test_trim_offsets_invariants(values, trim):
    survivors, discarded = trim_offsets(values, trim)
    assert len(survivors) + len(discarded) == len(values)
    assert sorted(survivors + discarded) == sorted(values)
    if survivors and discarded:
        lower = sorted(values)[:trim]
        upper = sorted(values)[-trim:] if trim else []
        assert min(survivors) >= max(lower) if lower else True
        assert max(survivors) <= min(upper) if upper else True


@given(values=st.lists(offsets, min_size=15, max_size=15))
def test_chronos_offset_is_bounded_by_sample_range(values):
    config = ChronosConfig()
    result = chronos_select(values, config, enforce_checks=False)
    assert result.accepted
    assert min(values) - 1e-9 <= result.offset <= max(values) + 1e-9


@given(values=st.lists(offsets, min_size=3, max_size=200))
def test_panic_offset_is_bounded_by_middle_third(values):
    result = panic_select(values, ChronosConfig())
    assert result.accepted
    ordered = sorted(values)
    trim = len(values) // 3
    survivors = ordered[trim:len(ordered) - trim] if len(ordered) > 2 * trim else ordered
    assert min(survivors) - 1e-9 <= result.offset <= max(survivors) + 1e-9


@given(honest=st.lists(st.floats(min_value=-0.01, max_value=0.01, allow_nan=False),
                       min_size=10, max_size=10),
       attack_value=st.floats(min_value=10.0, max_value=1e4, allow_nan=False))
def test_minority_attacker_never_moves_chronos(honest, attack_value):
    """Security invariant: 5 of 15 malicious samples can never drag the
    accepted offset beyond the honest range."""
    config = ChronosConfig()
    result = chronos_select(honest + [attack_value] * 5, config, enforce_checks=False)
    assert result.accepted
    assert result.offset <= max(honest) + 1e-9


# -- hypergeometric invariants --------------------------------------------------------------------------

@given(population=st.integers(min_value=1, max_value=200),
       data=st.data())
@settings(max_examples=50)
def test_hypergeometric_pmf_normalises(population, data):
    successes = data.draw(st.integers(min_value=0, max_value=population))
    draws = data.draw(st.integers(min_value=0, max_value=population))
    total = sum(hypergeometric_pmf(population, successes, draws, k) for k in range(draws + 1))
    assert math.isclose(total, 1.0, rel_tol=1e-9)


@given(population=st.integers(min_value=1, max_value=200), data=st.data())
@settings(max_examples=50)
def test_hypergeometric_tail_monotone_and_bounded(population, data):
    successes = data.draw(st.integers(min_value=0, max_value=population))
    draws = data.draw(st.integers(min_value=0, max_value=population))
    previous = 1.0
    for threshold in range(0, draws + 2):
        value = hypergeometric_tail(population, successes, draws, threshold)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value <= previous + 1e-12
        previous = value
