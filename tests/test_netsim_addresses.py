"""Unit tests for IPv4 address and prefix utilities."""

from __future__ import annotations

import pytest

from repro.netsim.addresses import (
    AddressAllocator,
    AddressError,
    Prefix,
    int_to_ip,
    ip_to_int,
    is_valid_ip,
)


def test_ip_to_int_known_values():
    assert ip_to_int("0.0.0.0") == 0
    assert ip_to_int("0.0.0.1") == 1
    assert ip_to_int("1.0.0.0") == 1 << 24
    assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
    assert ip_to_int("192.0.2.53") == (192 << 24) | (0 << 16) | (2 << 8) | 53


def test_int_to_ip_known_values():
    assert int_to_ip(0) == "0.0.0.0"
    assert int_to_ip(0xFFFFFFFF) == "255.255.255.255"
    assert int_to_ip((10 << 24) + 5) == "10.0.0.5"


@pytest.mark.parametrize("address", ["1.2.3.4", "10.0.0.1", "203.0.113.254"])
def test_roundtrip(address):
    assert int_to_ip(ip_to_int(address)) == address


@pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-1"])
def test_malformed_addresses_rejected(bad):
    with pytest.raises(AddressError):
        ip_to_int(bad)
    assert not is_valid_ip(bad)


def test_int_out_of_range_rejected():
    with pytest.raises(AddressError):
        int_to_ip(1 << 32)
    with pytest.raises(AddressError):
        int_to_ip(-1)


def test_is_valid_ip_true_for_good_address():
    assert is_valid_ip("198.51.100.7")


def test_prefix_parse_and_str():
    prefix = Prefix.parse("203.0.113.0/24")
    assert prefix.length == 24
    assert str(prefix) == "203.0.113.0/24"


def test_prefix_parse_bare_address_is_slash_32():
    prefix = Prefix.parse("192.0.2.53")
    assert prefix.length == 32
    assert prefix.contains("192.0.2.53")
    assert not prefix.contains("192.0.2.54")


def test_prefix_normalises_host_bits():
    prefix = Prefix.parse("203.0.113.77/24")
    assert str(prefix) == "203.0.113.0/24"


def test_prefix_contains():
    prefix = Prefix.parse("10.0.0.0/8")
    assert prefix.contains("10.255.0.1")
    assert not prefix.contains("11.0.0.1")


def test_prefix_zero_length_contains_everything():
    prefix = Prefix.parse("0.0.0.0/0")
    assert prefix.contains("1.2.3.4")
    assert prefix.contains("255.255.255.255")


def test_prefix_invalid_length_rejected():
    with pytest.raises(AddressError):
        Prefix.parse("10.0.0.0/33")
    with pytest.raises(AddressError):
        Prefix.parse("10.0.0.0/abc")


def test_allocator_sequential_and_unique():
    allocator = AddressAllocator("198.51.100.0/24")
    first = allocator.allocate()
    second = allocator.allocate()
    assert first == "198.51.100.1"
    assert second == "198.51.100.2"
    batch = allocator.allocate_many(10)
    assert len(set(batch)) == 10
    assert first not in batch


def test_allocator_exhaustion():
    allocator = AddressAllocator("192.0.2.0/30")  # only 2 usable host slots
    allocator.allocate()
    allocator.allocate()
    with pytest.raises(AddressError):
        allocator.allocate()


def test_allocator_many_allocations_stay_in_prefix():
    allocator = AddressAllocator("10.10.0.0/16")
    prefix = Prefix.parse("10.10.0.0/16")
    for address in allocator.allocate_many(300):
        assert prefix.contains(address)
