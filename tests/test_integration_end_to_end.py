"""Cross-module integration tests: the paper's narrative, start to finish."""

from __future__ import annotations

from repro.attacks import (
    BaselineAttackConfig,
    ChronosPoolAttackScenario,
    PoolAttackConfig,
    TraditionalClientAttackScenario,
    analytic_pool_composition,
)
from repro.core.pool_generation import PoolGenerationPolicy
from repro.core.security_analysis import cumulative_shift_bound, shift_attack_bound
from repro.core.selection import ChronosConfig


def test_paper_narrative_end_to_end():
    """The complete story of the paper in one test.

    1. Chronos without an attacker keeps good time on a ~96-server pool.
    2. The same client whose pool generation was poisoned at an early query
       ends up with a two-thirds-malicious pool (Figure 1).
    3. The attacker's servers then shift the victim clock by ten minutes —
       something the analysis says a MitM without the DNS attack would need
       years to achieve.
    """
    benign = ChronosPoolAttackScenario(PoolAttackConfig(seed=31, poison_at_query=None))
    benign_pool = benign.run_pool_generation()
    benign_shift = benign.run_time_shift(target_shift=600.0, update_rounds=5)
    assert benign_pool.composition.malicious == 0
    assert abs(benign_shift.achieved_error) < 0.1

    attacked = ChronosPoolAttackScenario(PoolAttackConfig(seed=31, poison_at_query=2))
    attacked_pool = attacked.run_pool_generation()
    attacked_shift = attacked.run_time_shift(target_shift=600.0, update_rounds=6)
    assert attacked_pool.attack_succeeded
    assert attacked_pool.composition.malicious == 89
    assert attacked_shift.shift_achieved

    # The analytical bound agrees with what the simulation just demonstrated.
    composition = attacked_pool.composition
    bound = shift_attack_bound(composition.total, composition.malicious, 15)
    assert bound.per_round_probability > 0.3
    pre_attack_bound = cumulative_shift_bound(96, 31)
    assert pre_attack_bound.expected_years > 1.0


def test_dns_attack_easier_against_chronos_than_plain_ntp():
    """E6 in executable form: a single poisoning anywhere in the first 12
    queries defeats Chronos, whereas the traditional client only exposes a
    single query — and both end in full control once poisoned."""
    opportunities = [k for k in range(1, 25)
                     if analytic_pool_composition(k).attacker_has_two_thirds]
    assert opportunities == list(range(1, 13))

    baseline = TraditionalClientAttackScenario(BaselineAttackConfig(seed=32))
    baseline_result = baseline.run(target_shift=600.0)
    assert baseline_result.attack_succeeded

    chronos = ChronosPoolAttackScenario(PoolAttackConfig(seed=32, poison_at_query=12,
                                                         benign_server_count=400))
    pool = chronos.run_pool_generation()
    assert pool.attack_succeeded


def test_mitigated_chronos_survives_single_poisoning_but_not_full_hijack():
    """E8 in executable form."""
    mitigated = PoolGenerationPolicy(max_addresses_per_response=4, max_accepted_ttl=3600)
    single = ChronosPoolAttackScenario(PoolAttackConfig(seed=33, poison_at_query=1,
                                                        pool_policy=mitigated))
    single_result = single.run_pool_generation()
    assert not single_result.attack_succeeded

    full = ChronosPoolAttackScenario(PoolAttackConfig(seed=33, poison_at_query=1,
                                                      pool_policy=mitigated,
                                                      hijack_duration=24 * 3600.0 + 1200.0,
                                                      malicious_ttl=300))
    full_result = full.run_pool_generation()
    assert full_result.attack_succeeded
    assert full_result.composition.benign == 0


def test_chronos_panic_mode_is_controlled_after_pool_attack():
    """§III/§IV interplay: with 2/3 of the pool the attacker controls panic
    mode too, so the large shift lands even though the per-round checks fire."""
    scenario = ChronosPoolAttackScenario(
        PoolAttackConfig(seed=34, poison_at_query=1,
                         chronos=ChronosConfig(max_retries=1)))
    pool = scenario.run_pool_generation()
    assert pool.attack_succeeded
    shift = scenario.run_time_shift(target_shift=3600.0, update_rounds=6)
    assert shift.shift_achieved
    assert shift.panic_rounds >= 1


def test_determinism_same_seed_same_outcome():
    results = []
    for _ in range(2):
        scenario = ChronosPoolAttackScenario(PoolAttackConfig(seed=77, poison_at_query=5))
        result = scenario.run_pool_generation()
        results.append((result.composition.benign, result.composition.malicious,
                        tuple(result.pool.servers)))
    assert results[0] == results[1]


def test_different_seeds_change_benign_rotation_but_not_the_conclusion():
    compositions = []
    for seed in (1, 2, 3):
        scenario = ChronosPoolAttackScenario(PoolAttackConfig(seed=seed, poison_at_query=6))
        compositions.append(scenario.run_pool_generation().composition)
    assert all(c.attacker_has_two_thirds for c in compositions)
    assert len({c.benign for c in compositions}) >= 1
