"""Unit tests for DNS message encoding/decoding and response-capacity maths."""

from __future__ import annotations

import pytest

from repro.dns.message import (
    COMPRESSED_A_RECORD_SIZE,
    DNS_HEADER_SIZE,
    MAX_UNFRAGMENTED_UDP_PAYLOAD,
    OPT_RECORD_SIZE,
    DNSMessage,
    Question,
    ResponseCode,
    max_a_records_for_payload,
    response_size_for_a_records,
)
from repro.dns.records import RecordType, a_record
from repro.dns.wire import WireFormatError


def make_query(name="pool.ntp.org", txid=0x1234):
    return DNSMessage.query(txid, name)


def test_query_constructor_defaults():
    query = make_query()
    assert query.transaction_id == 0x1234
    assert not query.is_response
    assert query.recursion_desired
    assert query.question.name == "pool.ntp.org"
    assert query.question.qtype == RecordType.A
    assert len(query.additional) == 1  # EDNS OPT record


def test_query_without_edns_has_no_additional():
    query = DNSMessage.query(1, "pool.ntp.org", edns_payload=0)
    assert query.additional == ()


def test_transaction_id_range_enforced():
    with pytest.raises(WireFormatError):
        DNSMessage.query(0x10000, "pool.ntp.org")


def test_make_response_echoes_id_and_question():
    query = make_query()
    response = query.make_response([a_record("pool.ntp.org", "10.0.0.1", 150)])
    assert response.is_response
    assert response.transaction_id == query.transaction_id
    assert response.question == query.question
    assert response.answer_addresses == ["10.0.0.1"]
    assert response.matches_query(query)


def test_response_with_wrong_id_does_not_match():
    query = make_query()
    other = DNSMessage.query(0x9999, "pool.ntp.org")
    response = other.make_response([a_record("pool.ntp.org", "10.0.0.1", 150)])
    assert not response.matches_query(query)


def test_response_with_wrong_question_does_not_match():
    query = make_query()
    other = DNSMessage.query(query.transaction_id, "evil.example")
    response = other.make_response([a_record("evil.example", "10.0.0.1", 150)])
    assert not response.matches_query(query)


def test_nxdomain_response():
    query = make_query("unknown.example")
    response = query.make_response([], rcode=ResponseCode.NXDOMAIN)
    assert response.rcode == ResponseCode.NXDOMAIN
    assert response.answer_addresses == []


def test_encode_decode_roundtrip_query():
    query = make_query()
    decoded = DNSMessage.decode(query.encode())
    assert decoded.transaction_id == query.transaction_id
    assert decoded.question == query.question
    assert not decoded.is_response
    assert decoded.recursion_desired


def test_encode_decode_roundtrip_response():
    query = make_query()
    answers = [a_record("pool.ntp.org", f"10.0.0.{i + 1}", 150) for i in range(4)]
    response = query.make_response(answers)
    decoded = DNSMessage.decode(response.encode())
    assert decoded.is_response
    assert decoded.authoritative
    assert decoded.answer_addresses == [f"10.0.0.{i + 1}" for i in range(4)]
    assert decoded.rcode == ResponseCode.NOERROR
    assert [rr.ttl for rr in decoded.answers] == [150] * 4


def test_roundtrip_preserves_large_ttl():
    query = make_query()
    response = query.make_response([a_record("pool.ntp.org", "10.0.0.1", 2 * 86400)])
    decoded = DNSMessage.decode(response.encode())
    assert decoded.answers[0].ttl == 2 * 86400


def test_decode_truncated_header_rejected():
    with pytest.raises(WireFormatError):
        DNSMessage.decode(b"\x00\x01\x02")


def test_decode_multi_question_rejected():
    query = make_query()
    wire = bytearray(query.encode())
    wire[5] = 2  # QDCOUNT = 2
    with pytest.raises(WireFormatError):
        DNSMessage.decode(bytes(wire))


def test_header_flag_bits():
    query = make_query()
    assert query.flags() & 0x8000 == 0
    response = query.make_response([a_record("pool.ntp.org", "10.0.0.1", 1)])
    assert response.flags() & 0x8000
    assert response.flags() & 0x0400  # authoritative
    assert response.flags() & 0x0080  # recursion available


def test_question_encoded_size():
    assert Question("pool.ntp.org").encoded_size() == 14 + 4


# -- the E5 capacity claim -------------------------------------------------------

def test_analytic_size_matches_real_encoder():
    query = make_query()
    for count in (1, 4, 20, 89):
        answers = [a_record("pool.ntp.org", f"198.51.100.{(i % 254) + 1}", 172800)
                   for i in range(count)]
        response = query.make_response(answers)
        assert response.wire_size == response_size_for_a_records("pool.ntp.org", count)


def test_paper_claim_89_records_fit_unfragmented():
    assert max_a_records_for_payload("pool.ntp.org", MAX_UNFRAGMENTED_UDP_PAYLOAD) == 89


def test_one_more_record_overflows_the_frame():
    size_89 = response_size_for_a_records("pool.ntp.org", 89)
    size_90 = response_size_for_a_records("pool.ntp.org", 90)
    assert size_89 <= MAX_UNFRAGMENTED_UDP_PAYLOAD < size_90


def test_capacity_for_subpool_names_matches_paper_too():
    # The numbered sub-pools (0..3.pool.ntp.org) have a slightly longer
    # question name but the capacity is still 89.
    assert max_a_records_for_payload("2.pool.ntp.org", MAX_UNFRAGMENTED_UDP_PAYLOAD) == 89


def test_capacity_at_classic_512_byte_limit_is_much_smaller():
    classic = max_a_records_for_payload("pool.ntp.org", 512)
    assert classic < 32
    assert classic == (512 - DNS_HEADER_SIZE - 18 - OPT_RECORD_SIZE) // COMPRESSED_A_RECORD_SIZE


def test_capacity_zero_when_budget_below_fixed_overhead():
    assert max_a_records_for_payload("pool.ntp.org", 20) == 0


def test_capacity_monotonic_in_budget():
    budgets = [256, 512, 1232, 1472, 4096]
    capacities = [max_a_records_for_payload("pool.ntp.org", b) for b in budgets]
    assert capacities == sorted(capacities)


def test_encoded_89_record_response_decodes_back():
    query = make_query()
    answers = [a_record("pool.ntp.org", f"198.51.100.{(i % 254) + 1}", 172800)
               for i in range(89)]
    response = query.make_response(answers)
    decoded = DNSMessage.decode(response.encode())
    assert len(decoded.answers) == 89
    assert decoded.answer_addresses[0] == "198.51.100.1"
