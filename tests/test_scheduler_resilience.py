"""Crash-proof sweeps: task isolation, retries, watchdog, cache degradation.

The centrepiece is the worker-kill chaos gate: a pool worker is SIGKILLed
mid-sweep and the sweep must still complete — via the watchdog timeout and
inline degradation — reproducing the records a healthy run produces, because
every task is a pure function of ``(scenario, seed, params)``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from collections.abc import Mapping
from pathlib import Path
from typing import Any

import pytest

from repro.experiments.cache import RunCache
from repro.experiments.registry import merge_params, register_scenario
from repro.experiments.runner import ExperimentSpec
from repro.experiments.scheduler import (
    SweepError,
    SweepScheduler,
    TaskFailure,
    _execute_chunk,
)

# -- test-only scenarios ------------------------------------------------------
# Registered at module import; the pool's forked workers inherit them.


@register_scenario
class SleepProbeScenario:
    """Test-only: sleeps, then returns a seed-pure metric (chaos timing pad)."""

    name = "sleep_probe"
    description = "test-only scenario that sleeps then returns seed-derived metrics"

    def default_params(self) -> dict[str, Any]:
        return {"sleep": 0.0}

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params)
        time.sleep(p["sleep"])
        return {"value": seed * 7 % 13}


@register_scenario
class FlakyProbeScenario:
    """Test-only: fails until its per-seed marker file exists, then succeeds.

    The marker lives on disk so the flakiness is consistent across the pool's
    worker processes and the parent's retry pass: the *first* attempt
    anywhere fails, every later attempt succeeds.
    """

    name = "flaky_probe"
    description = "test-only scenario that fails its first attempt per seed"

    def default_params(self) -> dict[str, Any]:
        return {"marker_dir": ""}

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params)
        marker = Path(p["marker_dir"]) / f"attempted-{seed}"
        if not marker.exists():
            marker.write_text("first attempt\n")
            raise RuntimeError(f"transient failure for seed {seed}")
        return {"ok": seed}


def records_digest(results) -> str:
    digest = hashlib.sha256()
    for result in results:
        for record in result.records:
            digest.update(json.dumps(record.canonical(), sort_keys=True).encode())
    return digest.hexdigest()


# -- task isolation and retries -----------------------------------------------

def test_transient_failure_is_retried_inline_and_recovers(tmp_path):
    spec = ExperimentSpec(scenario="flaky_probe", seeds=(1, 2, 3),
                          base_params={"marker_dir": str(tmp_path)})
    scheduler = SweepScheduler(workers=1)
    results, stats = scheduler.run_specs([spec])
    assert [r.metrics["ok"] for r in results[0].records] == [1, 2, 3]
    assert stats.tasks_retried == 3
    assert stats.tasks_failed == 0


def test_transient_failures_in_pool_workers_recover_via_parent_retry(tmp_path):
    spec = ExperimentSpec(scenario="flaky_probe", seeds=tuple(range(1, 9)),
                          base_params={"marker_dir": str(tmp_path)})
    scheduler = SweepScheduler(workers=2, task_timeout=30.0)
    results, stats = scheduler.run_specs([spec])
    assert [r.metrics["ok"] for r in results[0].records] == list(range(1, 9))
    assert not stats.executed_inline
    assert stats.tasks_retried >= 1
    assert stats.tasks_failed == 0


def test_permanent_failure_raises_sweep_error_with_failures_attached(tmp_path):
    # A marker dir that cannot be created: every attempt raises.
    spec = ExperimentSpec(scenario="flaky_probe", seeds=(1,),
                          base_params={"marker_dir": str(tmp_path / "missing" / "x")})
    with pytest.raises(SweepError) as excinfo:
        SweepScheduler(workers=1, task_retries=2).run_specs([spec])
    error = excinfo.value
    assert len(error.failures) == 1
    assert isinstance(error.failures[0], TaskFailure)
    assert error.failures[0].attempts == 3      # initial + 2 retries
    assert error.stats.tasks_retried == 2
    assert error.stats.tasks_failed == 1


def test_task_retries_zero_disables_the_retry_pass(tmp_path):
    spec = ExperimentSpec(scenario="flaky_probe", seeds=(1,),
                          base_params={"marker_dir": str(tmp_path)})
    with pytest.raises(SweepError) as excinfo:
        SweepScheduler(workers=1, task_retries=0).run_specs([spec])
    assert excinfo.value.stats.tasks_retried == 0


def test_failing_task_does_not_poison_its_chunk_mates(tmp_path):
    # One chunk containing a permanently-failing task still returns its
    # healthy siblings' records.
    bad_dir = str(tmp_path / "missing" / "x")
    start, records, seconds, snapshot = _execute_chunk((0, [
        ("sleep_probe", 1, {"sleep": 0.0}),
        ("flaky_probe", 1, {"marker_dir": bad_dir}),
        ("sleep_probe", 2, {"sleep": 0.0}),
    ], False))
    assert start == 0
    assert records[0].metrics == {"value": 7}
    assert isinstance(records[1], TaskFailure)
    assert "FileNotFoundError" in records[1].error
    assert records[2].metrics == {"value": 1}


# -- progress-callback guarding -----------------------------------------------

def test_raising_progress_callback_never_aborts_the_sweep():
    calls = []

    def bad_callback(done, total):
        calls.append((done, total))
        raise RuntimeError("observer blew up")

    spec = ExperimentSpec(scenario="sleep_probe", seeds=(1, 2, 3))
    results, stats = SweepScheduler(workers=1,
                                    on_progress=bad_callback).run_specs([spec])
    assert len(results[0].records) == 3
    assert stats.callback_errors == len(calls) == 3


def test_raising_progress_callback_is_counted_on_the_pooled_path():
    def bad_callback(done, total):
        raise RuntimeError("observer blew up")

    spec = ExperimentSpec(scenario="sleep_probe", seeds=tuple(range(8)))
    results, stats = SweepScheduler(workers=2, task_timeout=30.0,
                                    on_progress=bad_callback).run_specs([spec])
    assert len(results[0].records) == 8
    assert stats.callback_errors == stats.chunks


# -- pool-loss degradation ----------------------------------------------------

def test_pool_start_failure_degrades_to_inline(monkeypatch):
    import repro.experiments.scheduler as scheduler_module

    class BrokenMP:
        TimeoutError = multiprocessing.TimeoutError

        @staticmethod
        def Pool(processes):
            raise OSError("fork failed")

    monkeypatch.setattr(scheduler_module, "multiprocessing", BrokenMP)
    spec = ExperimentSpec(scenario="sleep_probe", seeds=tuple(range(8)))
    results, stats = SweepScheduler(workers=2).run_specs([spec])
    assert [r.metrics["value"] for r in results[0].records] == [
        s * 7 % 13 for s in range(8)]
    assert stats.degraded_to_inline
    assert stats.pool_losses == 0       # the pool never existed to lose


def test_sigkilled_pool_worker_degrades_and_reproduces_the_digest():
    """The chaos gate: SIGKILL a pool worker mid-sweep.

    ``multiprocessing.Pool`` respawns the process but silently never
    redelivers its in-flight chunk, so without the watchdog the sweep hangs
    forever.  With it, the pool is declared lost, the missing chunks re-run
    inline, and — tasks being pure — the records match a healthy inline
    run byte for byte.
    """
    spec = ExperimentSpec(scenario="sleep_probe", seeds=tuple(range(10)),
                          base_params={"sleep": 0.25})
    baseline, _ = SweepScheduler(workers=1).run_specs([spec])

    first_chunk_done = threading.Event()
    killed = threading.Event()

    def kill_one_worker():
        # Wait until the stream is demonstrably mid-flight, then SIGKILL a
        # live pool worker (workers hold in-flight chunks at that point).
        if not first_chunk_done.wait(timeout=30.0):
            return
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            children = multiprocessing.active_children()
            if children:
                os.kill(children[0].pid, signal.SIGKILL)
                killed.set()
                return
            time.sleep(0.01)

    killer = threading.Thread(target=kill_one_worker, daemon=True)
    killer.start()
    scheduler = SweepScheduler(workers=2, task_timeout=3.0,
                               on_progress=lambda done, total: first_chunk_done.set())
    chaotic, stats = scheduler.run_specs([spec])
    killer.join(timeout=30.0)

    assert killed.is_set(), "chaos harness never found a worker to kill"
    assert records_digest(chaotic) == records_digest(baseline)
    assert stats.pool_losses >= 1
    assert stats.degraded_to_inline
    assert stats.tasks_failed == 0
    # The formatted stats surface the degradation for humans.
    assert "pool loss" in stats.formatted()


# -- run-cache degradation ----------------------------------------------------

def test_cache_with_uncreatable_directory_degrades_to_uncached(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where the cache dir should go\n")
    with pytest.warns(RuntimeWarning, match="continuing without persistence"):
        cache = RunCache(blocker / "cache")
    assert cache.stats.write_errors == 1
    # The sweep still runs, uncached but correct.
    spec = ExperimentSpec(scenario="sleep_probe", seeds=(1, 2))
    results, stats = SweepScheduler(workers=1, cache=cache).run_specs([spec])
    assert [r.metrics["value"] for r in results[0].records] == [7, 14 % 13]
    assert stats.cache_hits == 0


def test_write_error_mid_sweep_warns_once_and_continues(tmp_path, monkeypatch):
    cache = RunCache(tmp_path / "rc")
    # Redirect shard files into a directory that does not exist: every
    # append fails with ENOENT (any OSError takes the same path — ENOSPC
    # and EACCES included; tests run as root, so an actual chmod would not
    # refuse anything).
    monkeypatch.setattr(cache, "_shard_path",
                        lambda shard: tmp_path / "gone" / f"runs-{shard}.jsonl")
    spec = ExperimentSpec(scenario="sleep_probe", seeds=(1, 2, 3))
    with pytest.warns(RuntimeWarning, match="continuing without persistence") as warned:
        results, _ = SweepScheduler(workers=1, cache=cache).run_specs([spec])
    assert len(results[0].records) == 3
    assert len(warned) == 1                   # warned once, not per record
    assert cache.stats.write_errors == 1
    assert cache.stats.writes == 0
    assert "persistence disabled" in cache.stats.formatted()


def test_degraded_cache_still_hits_in_memory_within_the_process(tmp_path, monkeypatch):
    cache = RunCache(tmp_path / "rc")
    monkeypatch.setattr(cache, "_shard_path",
                        lambda shard: tmp_path / "gone" / f"runs-{shard}.jsonl")
    spec = ExperimentSpec(scenario="sleep_probe", seeds=(1, 2))
    with pytest.warns(RuntimeWarning):
        SweepScheduler(workers=1, cache=cache).run_specs([spec])
    # Same sweep again through the same cache object: pure in-memory replay.
    results, stats = SweepScheduler(workers=1, cache=cache).run_specs([spec])
    assert stats.cache_hits == 2
    assert stats.executed == 0
    assert [r.metrics["value"] for r in results[0].records] == [7, 1]


def test_healthy_cache_is_unaffected_by_the_degradation_seam(tmp_path):
    cache = RunCache(tmp_path / "rc")
    spec = ExperimentSpec(scenario="sleep_probe", seeds=(1, 2))
    SweepScheduler(workers=1, cache=cache).run_specs([spec])
    assert cache.stats.write_errors == 0
    assert cache.stats.writes == 2
    survivor = RunCache(tmp_path / "rc")
    assert len(survivor) == 2
