"""Tests for the attack × defense matrix and its §V reproduction.

The expensive full-grid properties (every attack × every stack, §V analytic
agreement, residual-hijack rate) run once on a single seed; determinism is
checked on a trimmed grid across worker counts, which must be byte-identical
because the matrix inherits the runner's ordering guarantees.
"""

from __future__ import annotations

import pytest

from repro.analysis import section5_from_matrix
from repro.experiments import (
    DEFAULT_ATTACKS,
    DEFAULT_STACKS,
    AttackSpec,
    DefenseStackSpec,
    run_defense_matrix,
)

#: A cheap grid for determinism checks: both poisoning vectors under three
#: stacks with tiny populations.
TRIMMED_ATTACKS = (
    AttackSpec("bgp_hijack", "bgp_hijack", {"benign_server_count": 10}),
    AttackSpec("frag_poisoning", "frag_poisoning", {"benign_server_count": 40}),
)
TRIMMED_STACKS = (
    DefenseStackSpec("classic", ()),
    DefenseStackSpec("dnssec", ("response_signing",)),
    DefenseStackSpec("multi_vantage", ("multi_vantage",)),
)

#: Digest of the trimmed legacy grid at seeds (1, 2) as produced by the
#: PR-3 code, pinned so the encrypted-transport subsystem (and anything
#: after it) provably leaves the pre-transport cells byte-identical.  The
#: full-grid PR-2 pin lives in benchmarks/bench_matrix_scaleout.py.
TRIMMED_LEGACY_DIGEST = "dc79b9c580fe3132cbce6a489bd2745dd291c73e9ff73e04a5611b5f08e39fde"


@pytest.fixture(scope="module")
def full_matrix():
    """The default 5-attack × 10-stack grid, one seed, run once per module."""
    return run_defense_matrix(seeds=(1,), workers=2)


def test_attack_spec_rejects_a_defenses_param():
    with pytest.raises(ValueError, match="must not set 'defenses'"):
        AttackSpec("bad", "bgp_hijack", {"defenses": ("dns_0x20",)})


def test_default_grid_covers_all_attacks_and_enough_stacks(full_matrix):
    scenario_names = {attack.scenario for attack in DEFAULT_ATTACKS}
    assert {"chronos_pool_attack", "traditional_client_attack",
            "bgp_hijack", "frag_poisoning", "downgrade"} <= scenario_names
    assert len(DEFAULT_STACKS) >= 5
    assert len(full_matrix.cells) == len(DEFAULT_ATTACKS) * len(DEFAULT_STACKS)
    for attack in DEFAULT_ATTACKS:
        for stack in DEFAULT_STACKS:
            assert full_matrix.cell(attack.label, stack.name).runs == 1


def test_default_grid_extends_the_legacy_grid_in_place():
    from repro.experiments import LEGACY_ATTACKS, LEGACY_STACKS

    assert DEFAULT_ATTACKS[:len(LEGACY_ATTACKS)] == LEGACY_ATTACKS
    assert DEFAULT_STACKS[:len(LEGACY_STACKS)] == LEGACY_STACKS
    assert [a.label for a in DEFAULT_ATTACKS[len(LEGACY_ATTACKS):]] == ["downgrade"]
    assert [s.name for s in DEFAULT_STACKS[len(LEGACY_STACKS):]] == [
        "dot_strict", "dot_opportunistic"]


def test_matrix_blocking_pattern_matches_the_paper(full_matrix):
    table = full_matrix.success_table()
    # The classic defenses stop neither vector.
    assert table["bgp_hijack"]["classic"] == 1.0
    assert table["frag_poisoning"]["classic"] == 1.0
    # Entropy hardenings stop neither vector either.
    for stack in ("dns_0x20", "dns_cookies"):
        assert table["bgp_hijack"][stack] == 1.0
        assert table["frag_poisoning"][stack] == 1.0
    # Fragment rejection stops exactly the splice.
    assert table["frag_poisoning"]["frag_reject"] == 0.0
    assert table["bgp_hijack"]["frag_reject"] == 1.0
    # Content authentication clears every row.
    assert all(rates["dnssec"] == 0.0 for rates in table.values())
    # Multi-vantage degrades the hijack vector end to end...
    assert table["bgp_hijack"]["multi_vantage"] == 0.0
    assert table["chronos_poisoning"]["multi_vantage"] == 0.0
    # ...but the §V residual threat model walks through everything that is
    # not content authentication.
    assert table["chronos_24h_hijack"]["section5"] == 1.0
    assert table["chronos_24h_hijack"]["multi_vantage"] == 1.0
    assert table["chronos_24h_hijack"]["hardened"] == 1.0


def test_strict_dot_column_clears_every_offpath_row(full_matrix):
    table = full_matrix.success_table()
    # Strict encrypted transport closes every off-path vector — including
    # the residual 24-hour hijack, which no legacy stack short of DNSSEC
    # stopped: the hijacker can blackhole resolution but no longer answer it.
    for attack, rates in table.items():
        assert rates["dot_strict"] == 0.0, attack


def test_downgrade_row_keeps_the_transport_columns_honest(full_matrix):
    table = full_matrix.success_table()
    # The downgrade vector walks through the opportunistic policy (fallback
    # is the vulnerability) and fails closed against strict DoT.
    assert table["downgrade"]["dot_opportunistic"] == 1.0
    assert table["downgrade"]["dot_strict"] == 0.0
    # Without a transport defense the scenario degenerates to the classic
    # fragmentation race, with the matching blocking pattern.
    assert table["downgrade"]["classic"] == 1.0
    assert table["downgrade"]["frag_reject"] == 0.0
    assert table["downgrade"]["dnssec"] == 0.0
    # Opportunistic DoT incidentally blocks the pure frag splice (the query
    # rides the stream) but reopens every hijack-driven row via fallback.
    assert table["frag_poisoning"]["dot_opportunistic"] == 0.0
    assert table["bgp_hijack"]["dot_opportunistic"] == 1.0
    assert table["chronos_24h_hijack"]["dot_opportunistic"] == 1.0


def test_matrix_reproduces_the_section5_analytic_table(full_matrix):
    comparisons = section5_from_matrix(full_matrix)
    assert [c.label for c in comparisons] == [
        "no mitigation, poisoning at query 1",
        "max 4 addresses per response (alone)",
        "high-TTL responses discarded",
        "both mitigations (single poisoning)",
        "both mitigations, 24h DNS hijack (residual)",
    ]
    for comparison in comparisons:
        assert comparison.verdict_agrees, comparison.formatted()
        assert comparison.fraction_agrees, comparison.formatted()
    # The unmitigated and cap-alone cells match the analytic counts exactly.
    assert comparisons[0].simulated_malicious == 89
    assert comparisons[0].simulated_benign == 0
    assert comparisons[1].simulated_malicious == 4
    assert full_matrix.residual_hijack_rate() == 1.0


def test_trimmed_matrix_is_byte_identical_across_worker_counts():
    sequential = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS,
                                    seeds=(1, 2), workers=1)
    parallel = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS,
                                  seeds=(1, 2), workers=2)
    assert sequential.digest() == parallel.digest()
    for key in sequential.cells:
        assert sequential.cells[key].result.records == parallel.cells[key].result.records
    # The transport subsystem is invisible to pre-transport cells: the
    # trimmed legacy grid still digests to its pinned PR-3 value.
    assert sequential.digest() == TRIMMED_LEGACY_DIGEST


def test_matrix_cell_addressing_and_reporting():
    matrix = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1,))
    assert matrix.cell("bgp_hijack", "dnssec").success_rate == 0.0
    assert len(matrix.row("bgp_hijack")) == len(TRIMMED_STACKS)
    assert len(matrix.column("dnssec")) == len(TRIMMED_ATTACKS)
    with pytest.raises(KeyError, match="no cell"):
        matrix.cell("bgp_hijack", "no_such_stack")
    lines = matrix.formatted()
    assert len(lines) == len(TRIMMED_ATTACKS) + 1
    assert "dnssec" in lines[0]
    interval = matrix.cell("frag_poisoning", "classic").success_interval
    assert interval.low <= 1.0 <= interval.high
