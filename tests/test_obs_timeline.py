"""Race-timeline reconstruction, end-to-end traced runs, and digest safety."""

from __future__ import annotations

from repro import obs
from repro.attacks.frag_poisoning import FragPoisoningConfig, FragPoisoningScenario
from repro.experiments import (
    LEGACY_ATTACKS,
    LEGACY_STACKS,
    SweepScheduler,
    run_defense_matrix,
)
from repro.obs.timeline import (
    build_race_timelines,
    format_races,
    poisoning_races,
)
from repro.obs.trace import TraceEvent


def _instant(name, ts, seq, **args):
    return TraceEvent(name=name, phase="i", ts=ts, category="t",
                      args=tuple(args.items()), seq=seq)


# -- reconstruction from synthetic events -------------------------------------------------

def test_races_keyed_by_txid_and_qname():
    events = [
        _instant("dns.query.sent", 0.0, 0, qname="a.org", txid=1),
        _instant("dns.query.sent", 0.0, 1, qname="b.org", txid=1),
        _instant("dns.response.accepted", 0.1, 2, qname="a.org", txid=1,
                 poisoned=False),
        _instant("dns.response.accepted", 0.2, 3, qname="b.org", txid=1,
                 poisoned=True),
    ]
    races = build_race_timelines(events)
    assert [(race.qname, race.winner) for race in races] == [
        ("a.org", "legitimate"), ("b.org", "attacker")]


def test_attack_events_attach_to_overlapping_races():
    events = [
        # fragments planted *before* the query they poison
        _instant("attack.frag_burst", 0.0, 0, fragments=16),
        _instant("dns.query.sent", 1.0, 1, qname="a.org", txid=9),
        _instant("dns.response.accepted", 1.5, 2, qname="a.org", txid=9,
                 poisoned=True),
        # a much later query the burst has nothing to do with
        _instant("dns.query.sent", 500.0, 3, qname="a.org", txid=10),
        _instant("dns.response.accepted", 500.5, 4, qname="a.org", txid=10,
                 poisoned=False),
    ]
    first, second = build_race_timelines(events)
    assert [entry.kind for entry in first.entries][:2] == [
        "attack: fragment burst", "query sent"]
    assert not second.attack_entries
    assert poisoning_races(events) == [first]


def test_deciding_verdict_prefers_the_poisoned_rejection():
    events = [
        _instant("dns.query.sent", 0.0, 0, qname="a.org", txid=1),
        _instant("dns.response.rejected", 0.1, 1, qname="a.org", txid=1,
                 defense="dns_0x20", reason="case mismatch", poisoned=True),
        _instant("dns.response.accepted", 0.2, 2, qname="a.org", txid=1,
                 poisoned=False),
    ]
    (race,) = build_race_timelines(events)
    assert race.winner == "legitimate"
    assert race.deciding_verdict.detail["defense"] == "dns_0x20"
    report = format_races(events)
    assert "decided by: dns_0x20 (case mismatch)" in report


def test_format_races_empty():
    assert format_races([]) == "no races recorded"


# -- the real thing: a traced frag-poisoning run ------------------------------------------

def test_traced_frag_poisoning_yields_ordered_race():
    with obs.capture() as ob:
        result = FragPoisoningScenario(FragPoisoningConfig()).run()
    assert result.cache_poisoned
    (race,) = poisoning_races(ob.trace.events())

    kinds = [entry.kind for entry in race.entries]
    assert "attack: fragment burst" in kinds
    assert "response candidate" in kinds
    assert "response accepted" in kinds
    # attacker burst lands no later than the legitimate response arrives,
    # and entries are in simulated-time order throughout
    burst = next(e for e in race.entries if e.kind == "attack: fragment burst")
    candidate = next(e for e in race.entries if e.kind == "response candidate")
    assert burst.ts <= candidate.ts
    assert [e.ts for e in race.entries] == sorted(e.ts for e in race.entries)
    assert race.winner == "attacker"


def test_traced_defended_run_names_the_deciding_defense():
    with obs.capture() as ob:
        result = FragPoisoningScenario(
            FragPoisoningConfig(defenses=("fragment_rejection",))).run()
    assert not result.cache_poisoned
    (race,) = poisoning_races(ob.trace.events())
    assert race.winner is None
    assert race.deciding_verdict.detail["defense"] == "fragment_rejection"
    snapshot = ob.metrics.snapshot()
    assert snapshot.counter("dns.responses_rejected",
                            defense="fragment_rejection") == 1


# -- digest safety ------------------------------------------------------------------------

SMALL = {"attacks": LEGACY_ATTACKS[3:4], "stacks": LEGACY_STACKS[:2], "seeds": (1,)}


def test_matrix_digest_identical_traced_and_untraced():
    untraced = run_defense_matrix(**SMALL).digest()
    with obs.capture() as ob:
        traced = run_defense_matrix(**SMALL).digest()
    assert traced == untraced
    assert not ob.metrics.snapshot().is_empty()
    assert len(ob.trace) > 0


def test_matrix_digest_identical_with_worker_metrics():
    baseline = run_defense_matrix(**SMALL)
    collected = run_defense_matrix(**SMALL, collect_metrics=True)
    assert collected.digest() == baseline.digest()
    merged = collected.sweep_stats.metrics
    assert merged is not None and not merged.is_empty()
    # per-task registries merged across the sweep: every executed run
    # contributes its simulator's event counter
    assert merged.counter("sim.events_executed") > 0


def test_scheduler_ships_metrics_through_the_pool():
    tasks = [("frag_poisoning", seed, {}) for seed in (1, 2, 3)]
    inline, inline_stats = SweepScheduler(
        workers=1, collect_metrics=True).run_tasks(tasks)
    pooled, pooled_stats = SweepScheduler(
        workers=2, collect_metrics=True).run_tasks(tasks)
    assert [r.canonical() for r in inline] == [r.canonical() for r in pooled]
    assert inline_stats.metrics.to_dict() == pooled_stats.metrics.to_dict()
    assert inline_stats.task_seconds_total > 0
    assert 0.0 <= inline_stats.worker_utilization <= 1.0
