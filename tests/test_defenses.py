"""Tests for the composable defense subsystem.

Three contracts:

* **composition** — stacks are ordered, buildable by name, and account for
  which defense rejected what;
* **vector fidelity** — each defense blocks exactly the vectors the paper
  says it blocks (0x20/cookies stop classic blind spoofing but neither the
  hijack nor the fragmentation vector; fragment rejection stops only the
  splice; multi-vantage degrades the hijack vector; signing stops both);
* **equivalence** — the §V mitigations behave identically whether they are
  configured through the legacy policy knobs or as stack members, because
  both paths run the same Defense instances.
"""

from __future__ import annotations

import pytest

from repro.defenses import (
    DefenseStack,
    HighTTLDiscard,
    MultiVantageCrossCheck,
    PerResponseAddressCap,
    PoolAcceptContext,
    available_defenses,
    build_defense,
    pool_policy_defenses,
)
from repro.defenses.registry import register_defense
from repro.dns.message import DNSMessage
from repro.dns.nameserver import DNS_PORT, PoolNTPNameserver
from repro.dns.records import RecordType, a_record
from repro.dns.resolver import RecursiveResolver, ResolverPolicy
from repro.experiments import TestbedConfig, build_testbed, get_scenario, run_scenario
from repro.netsim.network import LinkProperties, Network
from repro.netsim.packets import UDPDatagram
from repro.netsim.simulator import Simulator
from repro.ntp.query import TimeSample


# -- registry and composition -------------------------------------------------------

def test_every_builtin_defense_is_listed_with_a_description():
    listing = available_defenses()
    expected = {"random_txid", "random_source_port", "response_matching",
                "fragment_rejection", "response_record_cap", "cache_ttl_cap",
                "dns_0x20", "dns_cookies", "pmtu_floor", "response_signing",
                "address_cap", "ttl_discard", "multi_vantage"}
    assert expected <= set(listing)
    assert all(listing[name] for name in expected)


def test_unknown_defense_name_is_rejected():
    with pytest.raises(KeyError, match="unknown defense"):
        build_defense("no_such_defense")
    with pytest.raises(KeyError, match="unknown defense"):
        run_scenario("bgp_hijack", 1, {"defenses": ("no_such_defense",)})


def test_registry_rejects_nameless_and_duplicate_factories():
    class Nameless:
        pass

    with pytest.raises(ValueError, match="needs a class-level name"):
        register_defense(Nameless)
    with pytest.raises(ValueError, match="already registered"):
        register_defense(type("Dup", (), {"name": "dns_0x20"}))


def test_stack_builds_fresh_instances_and_preserves_order():
    first = DefenseStack.from_spec(("ttl_discard", "address_cap"))
    second = DefenseStack.from_spec(("ttl_discard", "address_cap"))
    assert first.names == second.names == ("ttl_discard", "address_cap")
    assert first.defenses[0] is not second.defenses[0]
    mixed = DefenseStack.from_spec((PerResponseAddressCap(limit=2), "ttl_discard"))
    assert mixed.names == ("address_cap", "ttl_discard")


def test_stack_pool_hooks_run_in_order_and_account_rejections():
    # Discard-then-cap: a high-TTL response never reaches the cap.
    stack = DefenseStack([HighTTLDiscard(3600), PerResponseAddressCap(4)])
    poisoned = PoolAcceptContext(addresses=[f"198.51.100.{i}" for i in range(10)],
                                 min_ttl=172800)
    stack.on_pool_accept(poisoned)
    assert poisoned.addresses == []
    assert poisoned.rejected_by == "ttl_discard"
    assert stack.rejections == {"ttl_discard": 1}
    benign = PoolAcceptContext(addresses=[f"10.0.0.{i}" for i in range(10)], min_ttl=150)
    stack.on_pool_accept(benign)
    assert len(benign.addresses) == 4
    assert benign.rejected_by is None


def test_policy_knobs_translate_to_the_same_defense_instances():
    from repro.core.pool_generation import PoolGenerationPolicy

    policy = PoolGenerationPolicy(max_addresses_per_response=4, max_accepted_ttl=3600)
    defenses = pool_policy_defenses(policy)
    assert [type(d) for d in defenses] == [HighTTLDiscard, PerResponseAddressCap]
    assert defenses[0].max_ttl == 3600
    assert defenses[1].limit == 4
    assert pool_policy_defenses(PoolGenerationPolicy()) == []


def test_every_scenario_accepts_a_defenses_key():
    for name in ("chronos_pool_attack", "traditional_client_attack",
                 "bgp_hijack", "frag_poisoning"):
        assert get_scenario(name).default_params()["defenses"] == ()


# -- blind spoofing: what the classic + entropy defenses are for ---------------------

def build_predictable_world(defenses=()):
    """A resolver with sequential TXIDs and a fixed source port — the
    pre-RFC 5452 resolver a blind off-path spoofer could actually beat."""
    simulator = Simulator(seed=11)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=[f"10.0.0.{i + 1}" for i in range(8)])
    resolver = RecursiveResolver(
        network, "192.0.2.1",
        nameserver_map={"pool.ntp.org": nameserver.address},
        policy=ResolverPolicy(randomise_source_port=False),
        defenses=DefenseStack.from_spec(defenses),
    )
    return simulator, network, nameserver, resolver


def blind_spoof_attempt(defenses=()):
    """Race the genuine response with a blindly forged one (txid/port known)."""
    simulator, network, nameserver, resolver = build_predictable_world(defenses)
    resolver.trigger_lookup("pool.ntp.org")
    forged = DNSMessage.query(2, "pool.ntp.org").make_response(
        [a_record("pool.ntp.org", "198.51.100.99", 172800)])

    def inject():
        network.send_datagram(UDPDatagram(
            src_ip=nameserver.address, dst_ip=resolver.address,
            src_port=DNS_PORT, dst_port=33333, payload=forged.encode()))

    # Injected right after the query leaves, so the forgery (one latency
    # away) beats the genuine answer (two latencies away) to the resolver.
    simulator.schedule(0.001, inject)
    simulator.run(until=5.0)
    entry = resolver.cache.peek("pool.ntp.org", RecordType.A)
    assert entry is not None
    return any(record.rdata == "198.51.100.99" for record in entry.records), resolver


def test_predictable_resolver_falls_to_blind_spoofing():
    # txid 1 goes to the synthetic trigger query, txid 2 upstream — the
    # attacker "predicts" both the sequential id and the fixed port.
    poisoned, _ = blind_spoof_attempt()
    assert poisoned


def test_dns_0x20_stops_blind_spoofing():
    poisoned, resolver = blind_spoof_attempt(("dns_0x20",))
    assert not poisoned
    assert resolver.defenses.rejections["dns_0x20"] == 1


def test_dns_cookies_stop_blind_spoofing():
    poisoned, resolver = blind_spoof_attempt(("dns_cookies",))
    assert not poisoned
    assert resolver.defenses.rejections["dns_cookies"] == 1


# -- vector fidelity: who blocks what ------------------------------------------------

def bgp_hijack_succeeds(defenses):
    return run_scenario("bgp_hijack", 3,
                        {"benign_server_count": 10,
                         "defenses": defenses})["attack_succeeded"]


def frag_poisoning_succeeds(defenses):
    return run_scenario("frag_poisoning", 3,
                        {"benign_server_count": 40,
                         "defenses": defenses})["attack_succeeded"]


def test_entropy_hardenings_do_not_stop_the_hijack_vector():
    assert bgp_hijack_succeeds(())
    assert bgp_hijack_succeeds(("dns_0x20",))
    assert bgp_hijack_succeeds(("dns_cookies",))
    assert bgp_hijack_succeeds(("fragment_rejection",))


def test_entropy_hardenings_do_not_stop_the_fragmentation_vector():
    assert frag_poisoning_succeeds(())
    assert frag_poisoning_succeeds(("dns_0x20",))
    assert frag_poisoning_succeeds(("dns_cookies",))


def test_fragment_rejection_stops_the_fragmentation_vector():
    assert not frag_poisoning_succeeds(("fragment_rejection",))


def test_pmtu_floor_stops_the_fragmentation_vector_at_the_source():
    assert not frag_poisoning_succeeds(("pmtu_floor",))


def test_response_signing_stops_both_vectors():
    assert not bgp_hijack_succeeds(("response_signing",))
    assert not frag_poisoning_succeeds(("response_signing",))


def test_multi_vantage_degrades_bgp_hijack():
    assert not bgp_hijack_succeeds(("multi_vantage",))
    metrics = run_scenario("bgp_hijack", 3,
                           {"benign_server_count": 10,
                            "defenses": ("multi_vantage",)})
    assert metrics["defense_rejections"] == {"multi_vantage": 1}
    assert metrics["malicious_records_cached"] == 0


def test_multi_vantage_also_catches_the_spliced_high_ttl_records():
    assert not frag_poisoning_succeeds(("multi_vantage",))


# -- §V equivalence: policy knobs vs. stack members -----------------------------------

CHRONOS_BASE = {"poison_at_query": 1, "run_time_shift": False,
                "benign_server_count": 30}


def test_section5_mitigations_same_result_via_policy_or_stack():
    by_policy = run_scenario("chronos_pool_attack", 5,
                             {**CHRONOS_BASE,
                              "max_addresses_per_response": 4,
                              "max_accepted_ttl": 3600})
    by_stack = run_scenario("chronos_pool_attack", 5,
                            {**CHRONOS_BASE,
                             "defenses": ("ttl_discard", "address_cap")})
    for key in ("attack_succeeded", "benign", "malicious", "pool_size"):
        assert by_policy[key] == by_stack[key]
    assert not by_stack["attack_succeeded"]
    assert by_stack["defense_rejections"] == {"ttl_discard": 24}


def test_address_cap_alone_leaves_attacker_majority():
    metrics = run_scenario("chronos_pool_attack", 5,
                           {**CHRONOS_BASE, "defenses": ("address_cap",)})
    assert metrics["malicious"] <= 4
    assert metrics["benign"] == 0
    assert metrics["attack_succeeded"]


def test_sustained_hijack_defeats_every_pool_side_stack():
    residual = {**CHRONOS_BASE,
                "hijack_duration": 24 * 3600.0 + 1200.0,
                "malicious_ttl": 300, "attacker_record_count": 4}
    for defenses in (("ttl_discard", "address_cap"),
                     ("multi_vantage", "ttl_discard", "address_cap")):
        metrics = run_scenario("chronos_pool_attack", 5,
                               {**residual, "defenses": defenses})
        assert metrics["attack_succeeded"]
        assert metrics["benign"] == 0


# -- NTP-side hook --------------------------------------------------------------------

def make_sample(offset):
    return TimeSample(server="10.0.0.1", offset=offset, delay=0.02,
                      stratum=2, root_dispersion=0.01, completed_at=1.0)


def test_multi_vantage_vetoes_implausible_ntp_samples():
    stack = DefenseStack([MultiVantageCrossCheck(max_sample_offset=60.0)])
    assert stack.on_ntp_sample(make_sample(0.005))
    assert not stack.on_ntp_sample(make_sample(600.0))
    assert stack.rejections == {"multi_vantage": 1}


# -- testbed lifecycle ----------------------------------------------------------------

def test_pmtu_floor_configures_the_testbed_without_mutating_the_caller_config():
    config = TestbedConfig(seed=1, benign_server_count=5, nameserver_min_mtu=548,
                           with_attacker=False, defenses=("pmtu_floor",))
    testbed = build_testbed(config)
    assert testbed.nameserver.min_supported_mtu == 1500
    assert testbed.config.nameserver_min_mtu == 1500
    # The caller's config object is untouched and reusable.
    assert config.nameserver_min_mtu == 548


def test_response_signing_provisions_a_zone_key_and_signed_answers():
    testbed = build_testbed(TestbedConfig(seed=1, benign_server_count=5,
                                          with_attacker=False,
                                          defenses=("response_signing",)))
    assert testbed.config.zone_key is not None
    assert testbed.nameserver.zone_key == testbed.config.zone_key
    testbed.resolver.trigger_lookup("pool.ntp.org")
    testbed.simulator.run(until=5.0)
    entry = testbed.resolver.cache.peek("pool.ntp.org", RecordType.A)
    assert entry is not None and len(entry.records) == 4
    assert all(record.rtype == RecordType.A for record in entry.records)


def test_testbed_defense_stack_is_shared_with_the_resolver():
    testbed = build_testbed(TestbedConfig(seed=1, benign_server_count=5,
                                          with_attacker=False,
                                          defenses=("multi_vantage",)))
    assert testbed.defenses.names == ("multi_vantage",)
    vantage = testbed.defenses.defenses[0]
    assert vantage in list(testbed.resolver.defenses)
    # attach_testbed captured the zone's published profile.
    assert vantage._expected_count == testbed.nameserver.records_per_response
    assert vantage._expected_ttl == testbed.nameserver.ttl
