"""Unit tests for the network (host registration, delivery, MTU, taps) and BGP."""

from __future__ import annotations

import pytest

from repro.netsim.bgp import BGPHijack, RoutingTable
from repro.netsim.network import Host, LinkProperties, Network, NetworkError
from repro.netsim.packets import IPPacket, UDPDatagram
from repro.netsim.simulator import Simulator


class RecordingHost(Host):
    """Collects every datagram it receives."""

    def __init__(self, network, address, **kwargs):
        super().__init__(network, address, **kwargs)
        self.inbox = []

    def handle_datagram(self, datagram):
        self.inbox.append(datagram)


def make_network(latency=0.01, loss=0.0):
    simulator = Simulator(seed=99)
    network = Network(simulator, default_link=LinkProperties(latency=latency, loss_rate=loss))
    return simulator, network


def test_duplicate_registration_rejected():
    _, network = make_network()
    RecordingHost(network, "10.0.0.1")
    with pytest.raises(NetworkError):
        RecordingHost(network, "10.0.0.1")


def test_datagram_delivered_after_latency():
    simulator, network = make_network(latency=0.5)
    RecordingHost(network, "10.0.0.1")
    receiver = RecordingHost(network, "10.0.0.2")
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, b"hello"))
    simulator.run(until=0.4)
    assert receiver.inbox == []
    simulator.run(until=0.6)
    assert len(receiver.inbox) == 1
    assert receiver.inbox[0].payload == b"hello"


def test_datagram_to_unknown_destination_dropped():
    simulator, network = make_network()
    RecordingHost(network, "10.0.0.1")
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.99", 1111, 53, b"x"))
    simulator.run()
    assert network.packets_dropped == 1


def test_loss_rate_drops_packets():
    simulator, network = make_network(loss=1.0)
    RecordingHost(network, "10.0.0.1")
    receiver = RecordingHost(network, "10.0.0.2")
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, b"x"))
    simulator.run()
    assert receiver.inbox == []
    assert network.packets_dropped == 1


def test_low_path_mtu_causes_fragmentation_and_reassembly():
    simulator, network = make_network()
    RecordingHost(network, "10.0.0.1")
    receiver = RecordingHost(network, "10.0.0.2")
    network.set_path_mtu("10.0.0.1", 548)
    payload = bytes(range(256)) * 5  # 1280 bytes
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, payload))
    simulator.run()
    assert network.packets_sent >= 2  # fragmented on the wire
    assert len(receiver.inbox) == 1   # but reassembled at the host
    assert receiver.inbox[0].payload == payload


def test_checksum_validated_after_reassembly():
    """A datagram whose spliced payload breaks the checksum is dropped."""
    simulator, network = make_network()
    receiver = RecordingHost(network, "10.0.0.2")
    # Hand-build two fragments whose combined payload does not match the
    # UDP checksum carried in the header bytes of the first fragment.
    good = UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, b"A" * 1200).with_valid_checksum()
    from repro.netsim.fragmentation import fragment_datagram

    fragments = fragment_datagram(good, ip_id=9, mtu=548)
    forged_tail = IPPacket(
        src_ip=fragments[1].src_ip,
        dst_ip=fragments[1].dst_ip,
        ip_id=fragments[1].ip_id,
        payload=bytes(b ^ 0xFF for b in fragments[1].payload),
        fragment_offset=fragments[1].fragment_offset,
        more_fragments=fragments[1].more_fragments,
        spoofed=True,
    )
    network.inject(forged_tail)
    for fragment in fragments:
        network.inject(fragment)
    simulator.run()
    assert receiver.inbox == []  # checksum mismatch, dropped
    assert receiver.poisoned_datagrams == 0


def test_tap_sees_all_packets():
    simulator, network = make_network()
    RecordingHost(network, "10.0.0.1")
    RecordingHost(network, "10.0.0.2")
    seen = []
    network.add_tap(lambda packet, now: seen.append(packet))
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, b"x"))
    simulator.run()
    assert len(seen) == 1


def test_inject_spoofed_packet_reaches_destination():
    simulator, network = make_network()
    receiver = RecordingHost(network, "10.0.0.2")
    packet = IPPacket(src_ip="10.0.0.99", dst_ip="10.0.0.2", ip_id=7,
                      payload=UDPDatagram("10.0.0.99", "10.0.0.2", 5, 6, b"spoof")
                      .with_valid_checksum().payload)
    # inject raw wire bytes: build via fragment_datagram to get UDP header
    from repro.netsim.fragmentation import fragment_datagram

    [wire_packet] = fragment_datagram(
        UDPDatagram("10.0.0.99", "10.0.0.2", 5, 6, b"spoof").with_valid_checksum(),
        ip_id=7, mtu=1500)
    network.inject(wire_packet)
    simulator.run()
    assert len(receiver.inbox) == 1
    assert network.packets_injected == 1


def test_ip_id_counter_is_sequential_per_source():
    _, network = make_network()
    first = network.next_ip_id("10.0.0.1")
    second = network.next_ip_id("10.0.0.1")
    other = network.next_ip_id("10.0.0.2")
    assert second == first + 1
    assert other == first  # independent counter per source


def test_ip_id_counter_wraps_without_zero():
    _, network = make_network()
    network._next_ip_id["10.0.0.1"] = 0xFFFF
    value = network.next_ip_id("10.0.0.1")
    assert value == 0xFFFF
    assert network.next_ip_id("10.0.0.1") == 1  # wrapped past zero


def test_per_link_properties_override_default():
    simulator, network = make_network(latency=0.01)
    RecordingHost(network, "10.0.0.1")
    receiver = RecordingHost(network, "10.0.0.2")
    network.set_link("10.0.0.1", "10.0.0.2", LinkProperties(latency=2.0))
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, b"x"))
    simulator.run(until=1.0)
    assert receiver.inbox == []
    simulator.run(until=2.5)
    assert len(receiver.inbox) == 1


def test_link_override_is_directional_and_mtu_aware():
    simulator, network = make_network()
    a = RecordingHost(network, "10.0.0.1")
    b = RecordingHost(network, "10.0.0.2")
    network.set_link("10.0.0.1", "10.0.0.2", LinkProperties(mtu=548))
    payload = b"Z" * 1200
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, payload))
    simulator.run()
    fragmented_count = network.packets_sent
    assert fragmented_count >= 3          # constrained direction fragments
    network.send_datagram(UDPDatagram("10.0.0.2", "10.0.0.1", 53, 1111, payload))
    simulator.run()
    assert network.packets_sent == fragmented_count + 1  # reverse path does not
    assert len(a.inbox) == 1 and len(b.inbox) == 1


def test_effective_mtu_combines_path_mtu_and_link_mtu():
    _, network = make_network()
    assert network.effective_mtu("10.0.0.1", "10.0.0.2") == 1500
    network.set_link("10.0.0.1", "10.0.0.2", LinkProperties(mtu=1200))
    assert network.effective_mtu("10.0.0.1", "10.0.0.2") == 1200
    network.set_path_mtu("10.0.0.1", 548)
    assert network.effective_mtu("10.0.0.1", "10.0.0.2") == 548
    # The path MTU follows the *source*, the link override the (src, dst) pair.
    assert network.effective_mtu("10.0.0.1", "10.0.0.9") == 548
    assert network.effective_mtu("10.0.0.2", "10.0.0.1") == 1500


def test_set_path_mtu_applies_per_source_not_per_destination():
    simulator, network = make_network()
    RecordingHost(network, "10.0.0.1")
    receiver = RecordingHost(network, "10.0.0.2")
    network.set_path_mtu("10.0.0.9", 548)  # someone else's path
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, b"Z" * 1200))
    simulator.run()
    assert network.packets_sent == 1  # our source is unconstrained
    assert len(receiver.inbox) == 1


def test_taps_run_in_attachment_order_for_every_packet():
    simulator, network = make_network()
    RecordingHost(network, "10.0.0.1")
    RecordingHost(network, "10.0.0.2")
    order = []
    network.add_tap(lambda packet, now: order.append("first"))
    network.add_tap(lambda packet, now: order.append("second"))
    network.set_path_mtu("10.0.0.1", 548)
    network.send_datagram(UDPDatagram("10.0.0.1", "10.0.0.2", 1111, 53, b"Z" * 1200))
    simulator.run()
    assert len(order) >= 4 and len(order) % 2 == 0
    assert order == ["first", "second"] * (len(order) // 2)


def test_taps_observe_only_ciphertext_for_secure_channel_traffic():
    from repro.netsim.transport import SecureChannel

    simulator, network = make_network()
    client = RecordingHost(network, "10.0.0.1")
    server = RecordingHost(network, "10.0.0.2")
    wire = bytearray()
    network.add_tap(lambda packet, now: wire.extend(packet.payload))

    def on_connection(conn):
        channel = SecureChannel.server(conn, simulator.rng,
                                       identity="pool.ntp.org", cert_key="zk")
        channel.on_data = lambda data, channel=channel: channel.send(b"CONFIDENTIAL-ANSWER")
    server.tcp.listen(853, on_connection)
    channel = SecureChannel.client(client.tcp.connect("10.0.0.2", 853),
                                   simulator.rng,
                                   expected_identity="pool.ntp.org",
                                   trust_anchor="zk")
    plaintexts = []
    channel.on_ready = lambda: channel.send(b"CONFIDENTIAL-QUERY")
    channel.on_data = plaintexts.append
    simulator.run(until=1.0)
    assert plaintexts == [b"CONFIDENTIAL-ANSWER"]   # endpoints see plaintext
    assert b"CONFIDENTIAL" not in bytes(wire)       # taps see only ciphertext


def test_tcp_segments_to_stackless_hosts_are_dropped_silently():
    from repro.netsim.packets import PROTO_TCP
    from repro.netsim.transport import FLAG_SYN, TCPSegment

    simulator, network = make_network()
    receiver = RecordingHost(network, "10.0.0.2")
    segment = TCPSegment(src_port=1234, dst_port=853, seq=1, ack=0, flags=FLAG_SYN)
    network.inject(IPPacket(src_ip="10.0.0.99", dst_ip="10.0.0.2", ip_id=1,
                            payload=segment.encode(), protocol=PROTO_TCP,
                            spoofed=True))
    simulator.run()
    assert receiver.inbox == []            # never reached the UDP path
    assert receiver.received_datagrams == 0
    assert receiver._tcp is None           # and no stack was conjured up


# -- BGP ---------------------------------------------------------------------

def test_routing_table_longest_prefix_wins():
    table = RoutingTable()
    table.announce("10.0.0.0/8", "10.0.0.1")
    table.announce("10.1.0.0/16", "10.1.0.1")
    assert table.lookup("10.1.2.3") == "10.1.0.1"
    assert table.lookup("10.2.2.3") == "10.0.0.1"


def test_routing_table_lookup_without_route_is_none():
    assert RoutingTable().lookup("8.8.8.8") is None


def test_hijack_announce_and_withdraw():
    table = RoutingTable()
    table.announce("203.0.113.0/24", "203.0.113.53")
    table.announce("203.0.113.53/32", "198.51.100.66", legitimate=False)
    assert table.lookup("203.0.113.53") == "198.51.100.66"
    assert table.hijacked_destinations() == {"203.0.113.53/32": "198.51.100.66"}
    table.withdraw("203.0.113.53/32", "198.51.100.66")
    assert table.lookup("203.0.113.53") == "203.0.113.53"


def test_hijack_context_manager_restores_route():
    table = RoutingTable()
    table.announce("203.0.113.0/24", "203.0.113.53")
    with BGPHijack(table, "203.0.113.0/25", hijacker="198.51.100.66"):
        assert table.lookup("203.0.113.53") == "198.51.100.66"
    assert table.lookup("203.0.113.53") == "203.0.113.53"


def test_equal_length_tie_goes_to_most_recent_announcement():
    table = RoutingTable()
    table.announce("203.0.113.0/24", "first")
    table.announce("203.0.113.0/24", "second")
    assert table.lookup("203.0.113.9") == "second"


def test_network_routing_diverts_to_hijacker_host():
    simulator, network = make_network()
    legitimate = RecordingHost(network, "192.0.2.53")
    hijacker = RecordingHost(network, "198.51.100.66")
    RecordingHost(network, "192.0.2.1")
    network.routing_table.announce("192.0.2.53/32", hijacker.address, legitimate=False)
    network.send_datagram(UDPDatagram("192.0.2.1", "192.0.2.53", 1111, 53, b"query"))
    simulator.run()
    assert len(hijacker.inbox) == 1
    assert legitimate.inbox == []
