"""Integration-style tests for the authoritative nameservers and the resolver."""

from __future__ import annotations

from repro.dns.message import DNSMessage
from repro.dns.nameserver import DNS_PORT, AuthoritativeNameserver, PoolNTPNameserver
from repro.dns.records import RecordType
from repro.dns.resolver import DNSStub, RecursiveResolver, ResolverPolicy
from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.packets import UDPDatagram
from repro.netsim.simulator import Simulator


class StubHost(Host):
    """A client host exposing only a DNS stub (for lookup tests)."""

    def __init__(self, network, address, resolver_address):
        super().__init__(network, address)
        self.dns = DNSStub(self, resolver_address)

    def handle_datagram(self, datagram):
        self.dns.handle_datagram(datagram)


def build_world(records_per_response=4, server_count=20, policy=None, seed=5):
    simulator = Simulator(seed=seed)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    pool_servers = [f"10.0.0.{i + 1}" for i in range(server_count)]
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=pool_servers,
                                   records_per_response=records_per_response)
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address},
                                 policy=policy or ResolverPolicy())
    client = StubHost(network, "192.0.2.100", resolver.address)
    return simulator, network, nameserver, resolver, client


# -- nameserver behaviour ----------------------------------------------------------

def test_pool_nameserver_returns_four_records():
    simulator, _, nameserver, resolver, client = build_world()
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=5.0)
    assert len(answers) == 1
    assert len(answers[0]) == 4
    assert nameserver.queries_received == 1


def test_pool_nameserver_rotates_answers():
    simulator, _, _, _, client = build_world(server_count=50)
    results = []
    client.dns.lookup("pool.ntp.org", results.append)
    simulator.run(until=5.0)
    # force a second upstream query by evicting the resolver cache: use a
    # fresh world with a different seed instead (rotation is per-query).
    simulator2, _, _, _, client2 = build_world(server_count=50, seed=6)
    client2.dns.lookup("pool.ntp.org", results.append)
    simulator2.run(until=5.0)
    assert results[0] != results[1]


def test_pool_nameserver_matches_subpool_names():
    simulator, _, _, resolver, client = build_world()
    resolver.nameserver_map["2.pool.ntp.org"] = "192.0.2.53"
    answers = []
    client.dns.lookup("2.pool.ntp.org", answers.append)
    simulator.run(until=5.0)
    assert len(answers[0]) == 4


def test_unknown_name_yields_empty_answer():
    simulator, _, _, resolver, client = build_world()
    resolver.nameserver_map["example.org"] = "192.0.2.53"
    answers = []
    client.dns.lookup("nonexistent.example.org", answers.append)
    simulator.run(until=10.0)
    assert answers == [[]]


def test_static_authoritative_server_answers_from_zone():
    simulator = Simulator(seed=1)
    network = Network(simulator)
    ns = AuthoritativeNameserver(network, "192.0.2.10",
                                 zone={"fixed.example": ["203.0.113.5"]}, ttl=600)
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"fixed.example": ns.address})
    client = StubHost(network, "192.0.2.100", resolver.address)
    answers = []
    client.dns.lookup("fixed.example", answers.append)
    simulator.run(until=5.0)
    assert answers == [["203.0.113.5"]]


# -- resolver behaviour -------------------------------------------------------------

def test_second_lookup_within_ttl_served_from_cache():
    simulator, _, nameserver, resolver, client = build_world()
    first, second = [], []
    client.dns.lookup("pool.ntp.org", first.append)
    simulator.run(until=5.0)
    client.dns.lookup("pool.ntp.org", second.append)
    simulator.run(until=10.0)
    assert nameserver.queries_received == 1
    assert resolver.queries_answered_from_cache == 1
    assert second[0] == first[0]


def test_lookup_after_ttl_expiry_goes_upstream_again():
    simulator, _, nameserver, resolver, client = build_world()
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=5.0)
    # pool.ntp.org TTL is 150 s; one hour later the entry is long gone.
    simulator.run(until=3600.0)
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=3610.0)
    assert nameserver.queries_received == 2


def test_cached_records_report_remaining_ttl():
    simulator, _, _, resolver, client = build_world()
    messages = []
    client.dns.lookup_message("pool.ntp.org", messages.append)
    simulator.run(until=5.0)
    simulator.run(until=100.0)
    client.dns.lookup_message("pool.ntp.org", messages.append)
    simulator.run(until=105.0)
    assert messages[0].answers[0].ttl == 150
    assert messages[1].answers[0].ttl <= 51  # ~50 seconds remaining


def test_resolver_rejects_response_from_wrong_source():
    simulator, network, nameserver, resolver, client = build_world()
    client.dns.lookup("pool.ntp.org", lambda a: None)
    # Off-path attacker blindly spams a response from its own address with a
    # guessed (wrong) transaction id: it must be rejected.
    bogus = DNSMessage.query(0x4242, "pool.ntp.org").make_response([])
    network.send_datagram(UDPDatagram("198.51.100.9", resolver.address, DNS_PORT, 33333,
                                      bogus.encode()))
    simulator.run(until=5.0)
    assert resolver.responses_rejected >= 1
    assert resolver.cache.peek("pool.ntp.org", RecordType.A) is not None  # benign answer cached


def test_resolver_timeout_reports_failure_to_client():
    simulator = Simulator(seed=2)
    network = Network(simulator)
    # nameserver address points at nothing
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": "192.0.2.250"},
                                 policy=ResolverPolicy(query_timeout=2.0))
    client = StubHost(network, "192.0.2.100", resolver.address)
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=30.0)
    assert answers == [[]]
    assert resolver.timeouts == 1


def test_resolver_servfail_for_unknown_zone():
    simulator, _, _, _, client = build_world()
    answers = []
    client.dns.lookup("unknown.zone.example", answers.append)
    simulator.run(until=5.0)
    assert answers == [[]]


def test_resolver_refuses_disallowed_clients():
    simulator = Simulator(seed=3)
    network = Network(simulator)
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=["10.0.0.1"])
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address},
                                 allowed_clients=["192.0.2.100"])
    allowed = StubHost(network, "192.0.2.100", resolver.address)
    outsider = StubHost(network, "198.51.100.77", resolver.address)
    got_allowed, got_outsider = [], []
    allowed.dns.lookup("pool.ntp.org", got_allowed.append)
    outsider.dns.lookup("pool.ntp.org", got_outsider.append)
    simulator.run(until=15.0)
    assert got_allowed and len(got_allowed[0]) > 0
    assert got_outsider == [[]]


def test_max_records_per_response_policy_caps_cache():
    policy = ResolverPolicy(max_records_per_response=2)
    simulator, _, _, resolver, client = build_world(records_per_response=4, policy=policy)
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=5.0)
    assert len(answers[0]) == 2
    entry = resolver.cache.peek("pool.ntp.org", RecordType.A)
    assert len(entry.records) == 2


def test_max_cache_ttl_policy_caps_entry_lifetime():
    policy = ResolverPolicy(max_cache_ttl=60)
    simulator, _, nameserver, resolver, client = build_world(policy=policy)
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=5.0)
    simulator.run(until=120.0)
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=125.0)
    assert nameserver.queries_received == 2  # capped entry expired after 60 s


def test_trigger_lookup_populates_cache_without_client():
    simulator, _, nameserver, resolver, _ = build_world()
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    assert nameserver.queries_received == 1
    assert resolver.cache.peek("pool.ntp.org", RecordType.A) is not None


def test_stub_timeout_returns_empty_answer():
    simulator = Simulator(seed=4)
    network = Network(simulator)
    client = StubHost(network, "192.0.2.100", "192.0.2.240")  # resolver does not exist
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=30.0)
    assert answers == [[]]
    assert client.dns.lookups_failed == 1
