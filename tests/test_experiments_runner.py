"""Tests for the unified experiment engine: testbed, registry, runner, results.

The two contracts the engine guarantees:

* **determinism** — a sweep is a pure function of its spec; a parallel run is
  bit-for-bit identical to a sequential one, and to the concatenation of the
  corresponding single-seed runs;
* **uniformity** — every attack scenario is runnable by name with a flat
  config dict, and unknown parameters are rejected rather than ignored.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    RunRecord,
    TestbedConfig,
    available_scenarios,
    build_testbed,
    get_scenario,
    merge_params,
    run_scenario,
    wilson_interval,
)

ALL_SCENARIOS = {"chronos_pool_attack", "traditional_client_attack",
                 "bgp_hijack", "frag_poisoning"}

#: Cheap parameters so packet-level sweeps stay fast in the tier-1 suite.
FAST_POOL_PARAMS = {"benign_server_count": 30, "run_time_shift": False}

#: Per-scenario overrides that keep a single smoke run cheap.
CHEAP_PARAMS = {
    "chronos_pool_attack": FAST_POOL_PARAMS,
    "traditional_client_attack": {"benign_server_count": 10, "poll_rounds": 2},
    "bgp_hijack": {"benign_server_count": 10},
    "frag_poisoning": {"benign_server_count": 40},
}


# -- registry ---------------------------------------------------------------------

def test_registry_lists_all_four_attack_scenarios():
    scenarios = available_scenarios()
    assert ALL_SCENARIOS <= set(scenarios)
    assert all(description for description in scenarios.values())


def test_registry_lookup_and_config_roundtrip():
    """Every scenario's full default config round-trips through merge_params."""
    for name in ALL_SCENARIOS:
        scenario = get_scenario(name)
        assert scenario.name == name
        defaults = scenario.default_params()
        assert merge_params(defaults, {}) == defaults
        assert merge_params(defaults, dict(defaults)) == defaults


def test_registry_rejects_unknown_scenario_and_parameter():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("no_such_attack")
    with pytest.raises(ValueError, match="unknown scenario parameter"):
        run_scenario("bgp_hijack", 1, {"no_such_knob": 1})


def test_every_scenario_runs_by_name_with_a_config_dict():
    for name in sorted(ALL_SCENARIOS):
        metrics = run_scenario(name, 2, CHEAP_PARAMS[name])
        assert isinstance(metrics["attack_succeeded"], bool)


# -- runner determinism ------------------------------------------------------------

def test_parallel_two_seed_sweep_matches_sequential_bit_for_bit():
    kwargs = {"seeds": (3, 4), "base_params": FAST_POOL_PARAMS}
    sequential = ExperimentRunner("chronos_pool_attack", workers=1, **kwargs).run()
    parallel = ExperimentRunner("chronos_pool_attack", workers=2, **kwargs).run()
    assert sequential.records == parallel.records
    assert sequential.digest() == parallel.digest()
    assert sequential.to_json() == parallel.to_json()


def test_parallel_sweep_equals_two_single_seed_runs():
    singles = [
        ExperimentRunner("chronos_pool_attack", seeds=(seed,),
                         base_params=FAST_POOL_PARAMS).run()
        for seed in (3, 4)
    ]
    swept = ExperimentRunner("chronos_pool_attack", seeds=(3, 4),
                             base_params=FAST_POOL_PARAMS, workers=2).run()
    assert swept.records == singles[0].records + singles[1].records


def test_same_spec_runs_are_reproducible():
    """Regression for the randomness audit: nothing outside the seeded RNGs."""
    spec = ExperimentSpec(scenario="traditional_client_attack", seeds=(5, 6, 7))
    first = ExperimentRunner(spec=spec).run()
    second = ExperimentRunner(spec=spec).run()
    assert first.digest() == second.digest()


def test_records_carry_fully_resolved_params():
    result = ExperimentRunner("bgp_hijack", seeds=(1,),
                              base_params={"hijack_duration": 10.0}).run()
    record = result.records[0]
    assert record.params["hijack_duration"] == 10.0
    # Defaults are materialised into the record, not left implicit.
    assert set(get_scenario("bgp_hijack").default_params()) <= set(record.params)


# -- grid expansion ----------------------------------------------------------------

def test_grid_expands_cartesian_in_declaration_order():
    spec = ExperimentSpec(scenario="chronos_pool_attack", seeds=(1, 2),
                          grid={"poison_at_query": [1, 3], "malicious_ttl": [300]})
    tasks = spec.tasks()
    assert len(tasks) == 4
    assert [(params["poison_at_query"], seed) for _, seed, params in tasks] == \
        [(1, 1), (1, 2), (3, 1), (3, 2)]


def test_param_sets_and_grid_are_mutually_exclusive():
    with pytest.raises(ValueError):
        ExperimentSpec(scenario="bgp_hijack", seeds=(1,),
                       grid={"lookup_time": [1.0]},
                       param_sets=({"lookup_time": 2.0},))


def test_grid_grouping_by_parameter():
    result = ExperimentRunner(
        "bgp_hijack", seeds=(1, 2),
        grid={"hijack_duration": [0.0, 30.0]},
        base_params={"benign_server_count": 10},
    ).run()
    groups = result.group_by("hijack_duration")
    assert list(groups) == [(0.0,), (30.0,)]
    # No hijack window -> the benign lookup cannot be poisoned.
    assert groups[(0.0,)].success_rate() == 0.0
    assert groups[(30.0,)].success_rate() == 1.0


# -- aggregates --------------------------------------------------------------------

def _synthetic_result() -> ExperimentResult:
    records = [
        RunRecord(scenario="s", seed=seed, params={},
                  metrics={"attack_succeeded": seed % 2 == 0,
                           "achieved_shift": float(seed)})
        for seed in range(1, 5)
    ]
    return ExperimentResult(scenario="s", records=records)


def test_success_rate_mean_median_aggregates():
    result = _synthetic_result()
    assert result.success_rate() == 0.5
    assert result.mean("achieved_shift") == 2.5
    assert result.median("achieved_shift") == 2.5
    interval = result.mean_interval("achieved_shift")
    assert interval.low < 2.5 < interval.high


def test_wilson_interval_properties():
    all_success = wilson_interval(10, 10)
    assert all_success.high == 1.0 and all_success.low > 0.6
    none = wilson_interval(0, 10)
    assert none.low == 0.0 and none.high < 0.4
    half = wilson_interval(5, 10)
    assert half.low < 0.5 < half.high
    wider = wilson_interval(5, 10, confidence=0.99)
    assert wider.width > half.width
    with pytest.raises(ValueError):
        wilson_interval(3, 0)


# -- testbed builder ---------------------------------------------------------------

def test_testbed_builder_is_deterministic():
    first = build_testbed(TestbedConfig(seed=9, benign_server_count=12))
    second = build_testbed(TestbedConfig(seed=9, benign_server_count=12))
    assert [s.address for s in first.benign_servers] == \
        [s.address for s in second.benign_servers]
    assert [s.clock.error for s in first.benign_servers] == \
        [s.clock.error for s in second.benign_servers]
    other_seed = build_testbed(TestbedConfig(seed=10, benign_server_count=12))
    assert [s.clock.error for s in first.benign_servers] != \
        [s.clock.error for s in other_seed.benign_servers]


def test_testbed_attacker_and_hijacker_are_optional():
    bare = build_testbed(TestbedConfig(seed=1, benign_server_count=5,
                                       with_attacker=False))
    assert bare.attacker is None and bare.hijacker is None
    no_hijack = build_testbed(TestbedConfig(seed=1, benign_server_count=5,
                                            with_hijacker=False))
    assert no_hijack.attacker is not None and no_hijack.hijacker is None


def test_testbed_victim_factory_attaches_victim():
    seen = {}

    def factory(testbed):
        seen["resolver"] = testbed.resolver
        return "victim-sentinel"

    testbed = build_testbed(TestbedConfig(seed=1, benign_server_count=5),
                            victim_factory=factory)
    assert testbed.victim == "victim-sentinel"
    assert seen["resolver"] is testbed.resolver
