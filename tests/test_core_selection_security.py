"""Unit tests for the Chronos selection algorithm and the security-bound maths."""

from __future__ import annotations

import math

import pytest

from repro.core.security_analysis import (
    AnalysisError,
    attack_threshold,
    cumulative_shift_bound,
    hypergeometric_pmf,
    hypergeometric_tail,
    mitm_reference_bound,
    panic_mode_controlled,
    shift_attack_bound,
    sweep_malicious_fraction,
    years_of_effort,
)
from repro.core.selection import (
    ChronosConfig,
    ChronosConfigError,
    SelectionStatus,
    chronos_select,
    panic_select,
    trim_offsets,
)


# -- configuration ----------------------------------------------------------------

def test_default_config_matches_ndss_parameters():
    config = ChronosConfig()
    assert config.sample_size == 15
    assert config.trim_count == 5
    assert config.attack_threshold == 10  # two-thirds of the sample


def test_config_validation():
    with pytest.raises(ChronosConfigError):
        ChronosConfig(sample_size=2)
    with pytest.raises(ChronosConfigError):
        ChronosConfig(err=0.0)
    with pytest.raises(ChronosConfigError):
        ChronosConfig(max_retries=-1)
    with pytest.raises(ChronosConfigError):
        ChronosConfig(poll_interval=0.0)


def test_local_bound_grows_with_elapsed_time():
    config = ChronosConfig(err=0.1, drift_ppm=10.0)
    assert config.local_bound(0.0) == pytest.approx(0.1)
    assert config.local_bound(3600.0) == pytest.approx(0.1 + 0.036)


# -- trimming -----------------------------------------------------------------------

def test_trim_offsets_drops_extremes():
    survivors, discarded = trim_offsets([5.0, 1.0, 3.0, 2.0, 4.0], trim_count=1)
    assert survivors == [2.0, 3.0, 4.0]
    assert sorted(discarded) == [1.0, 5.0]


def test_trim_zero_keeps_everything():
    survivors, discarded = trim_offsets([3.0, 1.0, 2.0], trim_count=0)
    assert survivors == [1.0, 2.0, 3.0]
    assert discarded == []


def test_trim_too_aggressive_leaves_nothing():
    survivors, discarded = trim_offsets([1.0, 2.0], trim_count=1)
    assert survivors == []
    assert discarded == [1.0, 2.0]


# -- selection -----------------------------------------------------------------------

def honest_offsets(count, magnitude=0.002):
    return [magnitude * ((i % 5) - 2) / 2 for i in range(count)]


def test_all_honest_samples_accepted():
    config = ChronosConfig()
    result = chronos_select(honest_offsets(15), config)
    assert result.accepted
    assert result.status is SelectionStatus.OK
    assert abs(result.offset) < config.err
    assert len(result.surviving_offsets) == 5
    assert len(result.discarded_offsets) == 10


def test_minority_attacker_is_trimmed_away():
    """Up to a third of shifted samples end up in the discarded extremes."""
    config = ChronosConfig()
    offsets = honest_offsets(10) + [600.0] * 5
    result = chronos_select(offsets, config)
    assert result.accepted
    assert abs(result.offset) < config.err
    assert 600.0 not in result.surviving_offsets


def test_attacker_just_below_two_thirds_cannot_control_quietly():
    config = ChronosConfig()
    offsets = honest_offsets(6) + [600.0] * 9
    result = chronos_select(offsets, config)
    # Either the attack value was trimmed away, or the checks rejected the
    # round; in no case is a large offset silently adopted.
    assert not (result.accepted and abs(result.offset) > config.err)


def test_attacker_with_two_thirds_controls_but_trips_checks():
    """Ten of fifteen malicious samples dominate the survivors, but the
    local-agreement check catches the big jump — forcing retries/panic,
    which is exactly why pool-level control matters."""
    config = ChronosConfig()
    offsets = honest_offsets(5) + [600.0] * 10
    result = chronos_select(offsets, config)
    assert not result.accepted
    assert result.status in (SelectionStatus.WIDE_SPREAD, SelectionStatus.FAR_FROM_LOCAL)
    unchecked = chronos_select(offsets, config, enforce_checks=False)
    assert unchecked.accepted
    assert unchecked.offset == pytest.approx(600.0)


def test_small_shift_within_err_is_accepted():
    """An attacker with 2/3 of samples can push the clock by up to ~err per round."""
    config = ChronosConfig(err=0.1)
    offsets = honest_offsets(5) + [0.09] * 10
    result = chronos_select(offsets, config)
    assert result.accepted
    assert result.offset == pytest.approx(0.09, abs=0.01)


def test_wide_spread_rejected():
    config = ChronosConfig(err=0.01)
    offsets = [0.0, 0.05, -0.05, 0.1, -0.1, 0.2, -0.2, 0.3, -0.3, 0.4, -0.4,
               0.5, -0.5, 0.6, -0.6]
    result = chronos_select(offsets, config)
    assert not result.accepted
    assert result.status is SelectionStatus.WIDE_SPREAD


def test_far_from_local_rejected():
    config = ChronosConfig(err=0.05)
    offsets = [1.0 + 0.001 * i for i in range(15)]  # tight cluster, far from 0
    result = chronos_select(offsets, config)
    assert result.status is SelectionStatus.FAR_FROM_LOCAL


def test_too_few_samples_rejected():
    config = ChronosConfig()
    result = chronos_select([0.0] * 5, config)
    assert result.status is SelectionStatus.TOO_FEW_SAMPLES


def test_panic_select_trims_thirds_of_whole_pool():
    offsets = [0.0] * 60 + [600.0] * 30
    result = panic_select(offsets, ChronosConfig())
    assert result.accepted
    assert result.offset == pytest.approx(0.0, abs=1e-9)


def test_panic_select_controlled_by_two_thirds_pool_majority():
    offsets = [0.0] * 44 + [600.0] * 89
    result = panic_select(offsets, ChronosConfig())
    assert result.offset == pytest.approx(600.0, abs=1e-9)


def test_panic_select_empty():
    result = panic_select([], ChronosConfig())
    assert not result.accepted


# -- hypergeometric machinery ------------------------------------------------------------

def test_pmf_sums_to_one():
    total = sum(hypergeometric_pmf(96, 30, 15, k) for k in range(0, 16))
    assert total == pytest.approx(1.0)


def test_pmf_zero_outside_support():
    assert hypergeometric_pmf(96, 5, 15, 6) == 0.0
    assert hypergeometric_pmf(96, 5, 15, -1) == 0.0


def test_tail_monotone_in_threshold():
    values = [hypergeometric_tail(96, 30, 15, k) for k in range(0, 16)]
    assert values == sorted(values, reverse=True)


def test_tail_certain_when_all_malicious():
    assert hypergeometric_tail(96, 96, 15, 10) == pytest.approx(1.0)


def test_tail_zero_when_not_enough_malicious_exist():
    assert hypergeometric_tail(96, 9, 15, 10) == 0.0


def test_attack_threshold_is_two_thirds():
    assert attack_threshold(15) == 10
    assert attack_threshold(9) == 6
    assert attack_threshold(12) == 8


def test_shift_attack_bound_impossible_without_servers():
    bound = shift_attack_bound(96, 0, 15)
    assert bound.per_round_probability == 0.0
    assert bound.expected_years_to_success == math.inf
    assert bound.probability_within(10 * 365 * 86400) == 0.0


def test_years_of_effort_decreases_with_more_malicious_servers():
    years = [years_of_effort(96, malicious) for malicious in (10, 20, 31, 64, 89)]
    finite = [y for y in years if y != math.inf]
    assert finite == sorted(finite, reverse=True)


def test_post_attack_effort_is_minutes_not_years():
    assert years_of_effort(133, 89) < 1e-3  # well under a year (minutes)


def test_pre_attack_effort_exceeds_post_attack_by_orders_of_magnitude():
    before = shift_attack_bound(96, 31, 15).expected_seconds_to_success
    after = shift_attack_bound(133, 89, 15).expected_seconds_to_success
    assert before / after > 100


def test_probability_within_increases_with_time():
    bound = shift_attack_bound(96, 31, 15, poll_interval=900.0)
    assert bound.probability_within(86400) < bound.probability_within(30 * 86400)


def test_sweep_is_ordered_by_fraction():
    bounds = sweep_malicious_fraction(96, 15, [0.1, 0.3, 0.6])
    assert [b.malicious_servers for b in bounds] == sorted(b.malicious_servers for b in bounds)


def test_panic_mode_control_requires_two_thirds():
    assert not panic_mode_controlled(96, 31)
    assert not panic_mode_controlled(96, 63)
    assert panic_mode_controlled(96, 64)
    assert panic_mode_controlled(133, 89)
    assert not panic_mode_controlled(0, 0)


def test_mitm_reference_bound_rarely_wins_a_round():
    bound = mitm_reference_bound()
    assert bound.per_round_probability < 0.01
    # The matching cumulative (100 ms) bound is in the years-to-decades regime.
    cumulative = cumulative_shift_bound(bound.pool_size, bound.malicious_servers,
                                        bound.sample_size)
    assert cumulative.expected_years > 1.0


# -- cumulative shift bound (the "20 years for 100 ms" shape) ------------------------------

def test_cumulative_bound_pre_attack_is_years_or_more():
    bound = cumulative_shift_bound(96, 31, target_shift=0.1, per_round_shift=0.025)
    assert not bound.panic_controlled
    assert bound.rounds_required == 4
    assert bound.expected_years > 1.0


def test_cumulative_bound_post_attack_is_under_a_day():
    bound = cumulative_shift_bound(133, 89, target_shift=0.1, per_round_shift=0.025)
    assert bound.panic_controlled
    assert bound.expected_seconds < 86400


def test_cumulative_bound_scales_with_target():
    small = cumulative_shift_bound(96, 31, target_shift=0.05, per_round_shift=0.025)
    large = cumulative_shift_bound(96, 31, target_shift=0.5, per_round_shift=0.025)
    assert large.rounds_required > small.rounds_required
    assert large.expected_years > small.expected_years


def test_cumulative_bound_rejects_bad_parameters():
    with pytest.raises(AnalysisError):
        cumulative_shift_bound(96, 31, target_shift=0.0)
    with pytest.raises(AnalysisError):
        cumulative_shift_bound(96, 31, target_shift=0.1, per_round_shift=-1.0)
