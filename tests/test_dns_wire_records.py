"""Unit tests for DNS wire-format primitives and resource records."""

from __future__ import annotations

import pytest

from repro.dns.records import RecordType, ResourceRecord, a_record, opt_record
from repro.dns.wire import (
    WireFormatError,
    decode_name,
    encode_name,
    encoded_name_length,
    name_to_labels,
    normalise_name,
)


# -- names --------------------------------------------------------------------

def test_normalise_name_lowercases_and_strips_dot():
    assert normalise_name("Pool.NTP.org.") == "pool.ntp.org"


def test_name_to_labels():
    assert name_to_labels("pool.ntp.org") == ["pool", "ntp", "org"]
    assert name_to_labels("") == []
    assert name_to_labels(".") == []


def test_label_too_long_rejected():
    with pytest.raises(WireFormatError):
        name_to_labels("a" * 64 + ".example")


def test_name_too_long_rejected():
    long_name = ".".join(["label"] * 50)
    with pytest.raises(WireFormatError):
        name_to_labels(long_name)


def test_empty_label_rejected():
    with pytest.raises(WireFormatError):
        name_to_labels("pool..org")


def test_encode_name_uncompressed_layout():
    encoded = encode_name("pool.ntp.org")
    assert encoded == b"\x04pool\x03ntp\x03org\x00"
    assert len(encoded) == encoded_name_length("pool.ntp.org", compressed=False)


def test_encode_root_name():
    assert encode_name("") == b"\x00"
    assert encode_name(".") == b"\x00"


def test_encode_decode_roundtrip():
    encoded = encode_name("2.pool.ntp.org")
    name, offset = decode_name(encoded, 0)
    assert name == "2.pool.ntp.org"
    assert offset == len(encoded)


def test_compression_pointer_emitted_for_repeated_name():
    compression = {}
    first = encode_name("pool.ntp.org", compression, offset=12)
    second = encode_name("pool.ntp.org", compression, offset=12 + len(first))
    assert len(second) == 2
    assert second[0] & 0xC0 == 0xC0


def test_compression_pointer_decodes_via_original_bytes():
    compression = {}
    buffer = bytearray(b"\x00" * 12)  # fake header
    buffer += encode_name("pool.ntp.org", compression, offset=12)
    pointer_offset = len(buffer)
    buffer += encode_name("pool.ntp.org", compression, offset=pointer_offset)
    name, _ = decode_name(bytes(buffer), pointer_offset)
    assert name == "pool.ntp.org"


def test_compression_suffix_reuse():
    compression = {}
    encode_name("pool.ntp.org", compression, offset=0)
    encoded = encode_name("www.ntp.org", compression, offset=30)
    # "ntp.org" suffix is shared: label "www" (4 bytes) + 2-byte pointer.
    assert len(encoded) == 4 + 2


def test_decode_name_pointer_loop_rejected():
    # A pointer that points at itself must not hang.
    data = b"\xc0\x00"
    with pytest.raises(WireFormatError):
        decode_name(data, 0)


def test_decode_truncated_name_rejected():
    with pytest.raises(WireFormatError):
        decode_name(b"\x04poo", 0)


# -- resource records -----------------------------------------------------------

def test_a_record_constructor():
    record = a_record("pool.ntp.org", "10.0.0.1", 150)
    assert record.rtype == RecordType.A
    assert record.rdata == "10.0.0.1"
    assert record.ttl == 150
    assert record.is_address


def test_record_name_normalised():
    record = a_record("Pool.NTP.ORG.", "10.0.0.1", 150)
    assert record.name == "pool.ntp.org"


def test_negative_ttl_rejected():
    with pytest.raises(WireFormatError):
        a_record("pool.ntp.org", "10.0.0.1", -1)


def test_huge_ttl_rejected():
    with pytest.raises(WireFormatError):
        a_record("pool.ntp.org", "10.0.0.1", 2 ** 31)


def test_with_ttl_copies():
    record = a_record("pool.ntp.org", "10.0.0.1", 150)
    copy = record.with_ttl(60)
    assert copy.ttl == 60
    assert record.ttl == 150
    assert copy.rdata == record.rdata


def test_a_record_rdata_is_four_bytes():
    record = a_record("pool.ntp.org", "192.0.2.7", 60)
    assert record.rdata_bytes() == bytes([192, 0, 2, 7])


def test_a_record_encode_decode_roundtrip():
    record = a_record("pool.ntp.org", "198.51.100.42", 172800)
    compression = {}
    wire = record.encode(compression, offset=0)
    decoded, consumed = ResourceRecord.decode(wire, 0)
    assert consumed == len(wire)
    assert decoded.name == record.name
    assert decoded.rtype == RecordType.A
    assert decoded.ttl == 172800
    assert decoded.rdata == "198.51.100.42"


def test_compressed_a_record_is_16_bytes():
    compression = {"pool.ntp.org": 12}
    record = a_record("pool.ntp.org", "10.0.0.1", 150)
    assert len(record.encode(compression, offset=40)) == 16


def test_cname_record_roundtrip():
    record = ResourceRecord(name="alias.example", rtype=RecordType.CNAME, ttl=60,
                            rdata="target.example")
    wire = record.encode({}, 0)
    decoded, _ = ResourceRecord.decode(wire, 0)
    assert decoded.rdata == "target.example"
    assert decoded.rtype == RecordType.CNAME


def test_txt_record_roundtrip():
    record = ResourceRecord(name="txt.example", rtype=RecordType.TXT, ttl=60,
                            rdata="hello world")
    wire = record.encode({}, 0)
    decoded, _ = ResourceRecord.decode(wire, 0)
    assert decoded.rdata == "hello world"


def test_txt_record_too_long_rejected():
    record = ResourceRecord(name="txt.example", rtype=RecordType.TXT, ttl=60,
                            rdata="x" * 300)
    with pytest.raises(WireFormatError):
        record.rdata_bytes()


def test_opt_record_is_eleven_bytes():
    record = opt_record(4096)
    assert len(record.encode({}, 0)) == 11


def test_opt_record_carries_payload_size_in_class():
    assert opt_record(1232).rclass == 1232


def test_decode_truncated_rdata_rejected():
    record = a_record("pool.ntp.org", "10.0.0.1", 150)
    wire = record.encode({}, 0)
    with pytest.raises(WireFormatError):
        ResourceRecord.decode(wire[:-2], 0)
