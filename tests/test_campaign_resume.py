"""Checkpoint semantics: the hostile half of the campaign contract.

Three guarantees from the issue's acceptance criteria:

* a campaign SIGKILLed mid-step resumes from its checkpoint, computes only
  the remaining cells, and its final report plus every step digest is
  byte-identical to an uninterrupted control run;
* a torn/corrupt ``state.json`` falls back to cache-driven recompute —
  same digests, no re-execution;
* growing the seed budget computes only the new cells.

The SIGKILL test runs ``examples/campaign_study.py`` in a subprocess (the
kill must take out a real process, not be simulated in-process).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import run_campaign

REPO_ROOT = Path(__file__).resolve().parent.parent
STUDY = REPO_ROOT / "examples" / "campaign_study.py"

#: Small enough to finish in seconds, big enough that a kill at task 3
#: interrupts the first sweep mid-flight.
RESUME_SPEC = {
    "name": "resume-study",
    "seeds": 2,
    "sweeps": {
        "grid": {
            "kind": "matrix",
            "attacks": [{"label": "frag_poisoning", "scenario": "frag_poisoning",
                         "params": {}}],
            "stacks": [{"name": "classic", "defenses": []},
                       {"name": "frag_reject",
                        "defenses": ["fragment_rejection"]},
                       {"name": "hardened",
                        "defenses": ["dns_0x20", "fragment_rejection"]}],
        },
        "overhead": {
            "kind": "grid",
            "scenario": "transport_overhead",
            "base_params": {"queries": 2, "benign_server_count": 20},
            "grid": {"transport": ["udp", "dot"]},
            "seeds": [1],
        },
    },
    "figures": {"heatmap": {"kind": "heatmap", "sweep": "grid"}},
}


def _run_study(tmp_path: Path, directory: Path, *extra: str
               ) -> subprocess.CompletedProcess:
    manifest = tmp_path / "manifest.json"
    manifest.write_text(json.dumps(RESUME_SPEC), encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(STUDY), "--manifest", str(manifest),
         "--dir", str(directory), "--quiet", *extra],
        capture_output=True, text=True, env=env, timeout=300, check=False)


def _report_bytes(directory: Path) -> dict[str, bytes]:
    report_dir = directory / "report"
    return {path.name: path.read_bytes()
            for path in sorted(report_dir.iterdir())
            if path.name != "telemetry.json"}  # run-specific by design


def _telemetry(directory: Path, step: str) -> dict:
    data = json.loads((directory / "report" / "telemetry.json").read_text(
        encoding="utf-8"))
    return data["steps"][step]


class TestSigkillResume:
    def test_killed_campaign_resumes_byte_identical(self, tmp_path):
        killed_dir = tmp_path / "killed"
        control_dir = tmp_path / "control"

        first = _run_study(tmp_path, killed_dir, "--kill-after", "3")
        assert first.returncode == -signal.SIGKILL, first.stderr
        state = json.loads((killed_dir / "state.json").read_text(
            encoding="utf-8"))
        assert state["steps"]["sweep:grid"]["status"] == "running"

        resumed = _run_study(tmp_path, killed_dir)
        assert resumed.returncode == 0, resumed.stderr
        control = _run_study(tmp_path, control_dir)
        assert control.returncode == 0, control.stderr

        # Byte-identical report artifacts and identical digest summaries.
        assert _report_bytes(killed_dir) == _report_bytes(control_dir)
        assert resumed.stdout.splitlines()[:-1] == control.stdout.splitlines()[:-1]

        # The resume computed only the remaining cells: whatever the killed
        # run persisted replays as cache hits, and hits + executions cover
        # the sweep exactly.
        telemetry = _telemetry(killed_dir, "sweep:grid")
        assert telemetry["cache_hits"] >= 1
        assert telemetry["executed"] == (telemetry["tasks"]
                                         - telemetry["cache_hits"])
        control_telemetry = _telemetry(control_dir, "sweep:grid")
        assert control_telemetry["cache_hits"] == 0


class TestTornState:
    @pytest.mark.parametrize("damage", [
        b'{"version": 1, "steps": {"sweep:grid": {"sta',  # torn mid-write
        b"not json at all\n",
        b'{"version": 99, "steps": {}}',  # future/unknown version
    ])
    def test_corrupt_journal_recomputes_from_cache(self, tmp_path, damage):
        directory = tmp_path / "c"
        healthy = run_campaign(RESUME_SPEC, directory)
        digests = healthy.step_digests()
        (directory / "state.json").write_bytes(damage)

        again = run_campaign(RESUME_SPEC, directory)
        assert again.step_digests() == digests
        # The journal was lost but the cache wasn't: zero re-executions.
        grid = again.outcome("sweep:grid")
        assert grid.telemetry["executed"] == 0
        assert grid.telemetry["cache_hits"] == grid.telemetry["tasks"]


class TestIncrementalGrowth:
    def test_seed_budget_growth_computes_only_new_cells(self, tmp_path):
        directory = tmp_path / "c"
        small = run_campaign(RESUME_SPEC, directory)

        grown_spec = json.loads(json.dumps(RESUME_SPEC))
        grown_spec["seeds"] = 3  # matrix sweep gains one seed column
        grown = run_campaign(grown_spec, directory)

        grid = grown.outcome("sweep:grid")
        stacks = len(RESUME_SPEC["sweeps"]["grid"]["stacks"])
        assert grid.telemetry["tasks"] == stacks * 3
        assert grid.telemetry["executed"] == stacks  # the new seed only
        assert grid.telemetry["cache_hits"] == stacks * 2
        # More data, different digest — and a fresh directory at the grown
        # budget agrees exactly with the incremental one.
        assert (grown.step_digests()["sweep:grid"]
                != small.step_digests()["sweep:grid"])
        fresh = run_campaign(grown_spec, tmp_path / "fresh")
        assert fresh.step_digests() == grown.step_digests()
