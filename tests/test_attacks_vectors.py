"""Tests for attacker infrastructure and the two cache-poisoning vectors."""

from __future__ import annotations

import pytest

from repro.attacks.attacker import (
    DEFAULT_MALICIOUS_TTL,
    AttackerCapabilities,
    build_attacker_infrastructure,
)
from repro.attacks.bgp_hijack import BGPHijackPoisoner
from repro.attacks.frag_poisoning import (
    FragmentationAttackConditions,
    FragmentationPoisoner,
    fragmentation_attack_success_probability,
)
from repro.attacks.query_trigger import QueryTrigger, SMTPTriggerServer
from repro.dns.message import DNSMessage
from repro.dns.nameserver import PoolNTPNameserver
from repro.dns.records import RecordType, a_record
from repro.dns.resolver import RecursiveResolver, ResolverPolicy
from repro.netsim.network import LinkProperties, Network
from repro.netsim.simulator import Simulator


def build_world(resolver_policy=None, nameserver_mtu=1500, records_per_response=4,
                attacker_servers=None, seed=17):
    simulator = Simulator(seed=seed)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    pool_servers = [f"10.0.0.{i + 1}" for i in range(60)]
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=pool_servers,
                                   records_per_response=records_per_response,
                                   min_supported_mtu=nameserver_mtu)
    if nameserver_mtu < 1500:
        network.set_path_mtu(nameserver.address, nameserver_mtu)
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address},
                                 policy=resolver_policy or ResolverPolicy())
    attacker = build_attacker_infrastructure(network, server_count=attacker_servers)
    return simulator, network, nameserver, resolver, attacker


# -- attacker infrastructure ------------------------------------------------------------

def test_default_attacker_has_89_ntp_servers():
    _, _, _, _, attacker = build_world()
    assert len(attacker.ntp_servers) == 89
    assert len(set(attacker.ntp_addresses)) == 89


def test_attacker_record_set_uses_high_ttl():
    _, _, _, _, attacker = build_world()
    records = attacker.malicious_answer_records("pool.ntp.org")
    assert len(records) == 89
    assert all(record.ttl == DEFAULT_MALICIOUS_TTL for record in records)
    assert DEFAULT_MALICIOUS_TTL > 24 * 3600


def test_attacker_time_shift_applies_to_all_servers():
    _, _, _, _, attacker = build_world(attacker_servers=5)
    attacker.set_time_shift(123.0)
    assert all(server.time_shift == 123.0 for server in attacker.ntp_servers)


def test_capabilities_gate_bgp_hijack():
    simulator, network, nameserver, resolver, attacker = build_world()
    attacker.capabilities = AttackerCapabilities(can_hijack_bgp=False)
    hijacker = BGPHijackPoisoner(network, attacker, target_nameserver=nameserver.address,
                                 attacker_nameserver_address="198.51.100.200")
    with pytest.raises(PermissionError):
        hijacker.announce()


# -- BGP hijack vector -------------------------------------------------------------------

def test_bgp_hijack_poisons_resolver_cache():
    simulator, network, nameserver, resolver, attacker = build_world()
    hijacker = BGPHijackPoisoner(network, attacker, target_nameserver=nameserver.address)
    hijacker.announce()
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    assert hijacker.poisoning_succeeded(resolver)
    entry = resolver.cache.peek("pool.ntp.org", RecordType.A)
    assert len(entry.records) == 89
    assert entry.ttl == DEFAULT_MALICIOUS_TTL
    assert nameserver.queries_received == 0  # the real server never saw the query


def test_bgp_hijack_window_open_then_closed():
    simulator, network, nameserver, resolver, attacker = build_world()
    hijacker = BGPHijackPoisoner(network, attacker, target_nameserver=nameserver.address)
    hijacker.schedule_window(start_in=10.0, duration=20.0)
    # Before the window: benign answer.
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    assert not hijacker.poisoning_succeeded(resolver)
    # During the window (cache entry from before expires after 150 s, so
    # force another upstream query by evicting it).
    resolver.cache.evict("pool.ntp.org", RecordType.A)
    simulator.run(until=15.0)
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=20.0)
    assert hijacker.poisoning_succeeded(resolver)
    # After the window, routing is restored.
    simulator.run(until=40.0)
    assert not hijacker.active
    # With the hijack withdrawn, traffic to the nameserver address reaches
    # the legitimate nameserver host again.
    assert network.host_for(nameserver.address) is nameserver
    assert len(hijacker.windows) == 1
    assert hijacker.windows[0].withdrawn_at is not None


def test_bgp_hijack_without_poisoning_leaves_cache_clean():
    simulator, network, nameserver, resolver, attacker = build_world()
    hijacker = BGPHijackPoisoner(network, attacker, target_nameserver=nameserver.address)
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    assert not hijacker.poisoning_succeeded(resolver)


# -- fragmentation vector ------------------------------------------------------------------

def test_fragmentation_conditions_feasibility_rules():
    base = {"nameserver_min_mtu": 548, "nameserver_has_dnssec": False,
            "resolver_accepts_fragments": True, "response_size": 1200}
    assert FragmentationAttackConditions(**base).feasible
    assert not FragmentationAttackConditions(**{**base, "resolver_accepts_fragments": False}).feasible
    assert not FragmentationAttackConditions(**{**base, "response_size": 400}).feasible
    signed = FragmentationAttackConditions(**{**base, "nameserver_has_dnssec": True,
                                              "resolver_validates_dnssec": True})
    assert not signed.feasible
    unsupported = FragmentationAttackConditions(**{**base, "nameserver_min_mtu": 1500})
    assert not unsupported.feasible


def test_fragmentation_success_probability_model():
    feasible = FragmentationAttackConditions(nameserver_min_mtu=548, nameserver_has_dnssec=False,
                                             resolver_accepts_fragments=True, response_size=1200)
    infeasible = FragmentationAttackConditions(nameserver_min_mtu=1500, nameserver_has_dnssec=False,
                                               resolver_accepts_fragments=True, response_size=1200)
    assert fragmentation_attack_success_probability(infeasible) == 0.0
    assert fragmentation_attack_success_probability(feasible, ipid_predictable=True) == 1.0
    randomised = fragmentation_attack_success_probability(feasible, ipid_predictable=False,
                                                          ipid_window=16)
    assert 0.0 < randomised < 0.001
    more_attempts = fragmentation_attack_success_probability(feasible, ipid_predictable=False,
                                                             ipid_window=16, attempts=100)
    assert more_attempts > randomised


def frag_world(checksum_oracle=True, resolver_policy=None):
    # A nameserver that fragments (548-byte path MTU) and returns enough
    # records (40) that the trailing fragments carry answer records.
    return build_world(nameserver_mtu=548, records_per_response=40,
                       resolver_policy=resolver_policy), checksum_oracle


def test_fragmentation_poisoning_end_to_end():
    (simulator, network, nameserver, resolver, attacker), _ = frag_world()
    poisoner = FragmentationPoisoner(network, attacker, resolver, nameserver,
                                     checksum_oracle=True)
    expected = DNSMessage.query(0, "pool.ntp.org").make_response(
        [a_record("pool.ntp.org", f"10.0.0.{i + 1}", 150) for i in range(40)])
    report = poisoner.plant_fragments(expected)
    assert report.planted_fragments > 0
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    assert poisoner.verify_poisoning()
    entry = resolver.cache.peek("pool.ntp.org", RecordType.A)
    attacker_addresses = set(attacker.ntp_addresses)
    poisoned_records = [r for r in entry.records if r.rdata in attacker_addresses]
    assert poisoned_records, "attacker addresses must appear in the cached record set"
    # Records that lie entirely inside the spoofed fragment carry the
    # attacker's TTL; at most one record straddles the fragment boundary and
    # ends up with hybrid bytes.
    with_attacker_ttl = sum(1 for r in poisoned_records if r.ttl == attacker.malicious_ttl)
    assert with_attacker_ttl >= len(poisoned_records) - 1
    assert with_attacker_ttl >= 1
    assert resolver.poisoned_responses_accepted == 1


def test_fragmentation_poisoning_fails_without_checksum_fix():
    (simulator, network, nameserver, resolver, attacker), _ = frag_world()
    poisoner = FragmentationPoisoner(network, attacker, resolver, nameserver,
                                     checksum_oracle=False)
    expected = DNSMessage.query(0, "pool.ntp.org").make_response(
        [a_record("pool.ntp.org", f"10.0.0.{i + 1}", 150) for i in range(40)])
    poisoner.plant_fragments(expected)
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=10.0)
    assert not poisoner.verify_poisoning()


def test_fragmentation_poisoning_fails_when_resolver_rejects_fragments():
    policy = ResolverPolicy(accept_fragmented_responses=False)
    (simulator, network, nameserver, resolver, attacker), _ = frag_world(resolver_policy=policy)
    poisoner = FragmentationPoisoner(network, attacker, resolver, nameserver,
                                     checksum_oracle=True)
    expected = DNSMessage.query(0, "pool.ntp.org").make_response(
        [a_record("pool.ntp.org", f"10.0.0.{i + 1}", 150) for i in range(40)])
    poisoner.plant_fragments(expected)
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=10.0)
    assert not poisoner.verify_poisoning()


def test_fragmentation_poisoning_misses_with_wrong_ipid():
    (simulator, network, nameserver, resolver, attacker), _ = frag_world()
    poisoner = FragmentationPoisoner(network, attacker, resolver, nameserver,
                                     checksum_oracle=True, ipid_window=4)
    expected = DNSMessage.query(0, "pool.ntp.org").make_response(
        [a_record("pool.ntp.org", f"10.0.0.{i + 1}", 150) for i in range(40)])
    poisoner.plant_fragments(expected, starting_ipid=40000)  # far from the real counter
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=10.0)
    assert not poisoner.verify_poisoning()


def test_unfragmented_response_cannot_be_poisoned_by_fragments():
    (simulator, network, nameserver, resolver, attacker) = build_world(
        nameserver_mtu=1500, records_per_response=4)
    poisoner = FragmentationPoisoner(network, attacker, resolver, nameserver,
                                     checksum_oracle=True)
    expected = DNSMessage.query(0, "pool.ntp.org").make_response(
        [a_record("pool.ntp.org", f"10.0.0.{i + 1}", 150) for i in range(4)])
    poisoner.plant_fragments(expected)
    resolver.trigger_lookup("pool.ntp.org")
    simulator.run(until=5.0)
    assert not poisoner.verify_poisoning()


# -- query triggering ------------------------------------------------------------------------

def test_open_resolver_trigger():
    policy = ResolverPolicy(open_resolver=True)
    simulator, network, nameserver, resolver, attacker = build_world(resolver_policy=policy)
    trigger = QueryTrigger(network, resolver)
    assert trigger.trigger("pool.ntp.org")
    simulator.run(until=5.0)
    assert nameserver.queries_received == 1
    assert trigger.records[0].via == "open-resolver"


def test_closed_resolver_cannot_be_triggered_directly():
    simulator, network, nameserver, resolver, attacker = build_world()
    trigger = QueryTrigger(network, resolver)
    assert not trigger.trigger_via_open_resolver("pool.ntp.org")


def test_smtp_trigger_causes_resolver_query():
    simulator, network, nameserver, resolver, attacker = build_world()
    smtp = SMTPTriggerServer(network, "192.0.2.25", resolver_address=resolver.address)
    trigger = QueryTrigger(network, resolver, smtp_server=smtp)
    assert trigger.trigger("pool.ntp.org")
    simulator.run(until=5.0)
    assert nameserver.queries_received == 1
    assert smtp.triggers[0].name == "pool.ntp.org"


def test_trigger_with_no_avenue_fails():
    simulator, network, nameserver, resolver, attacker = build_world()
    trigger = QueryTrigger(network, resolver)
    assert not trigger.trigger("pool.ntp.org")
