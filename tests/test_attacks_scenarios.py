"""End-to-end tests of the paper's attack scenarios (E1, E2, E6, E9)."""

from __future__ import annotations

import pytest

from repro.attacks.baseline_scenario import BaselineAttackConfig, TraditionalClientAttackScenario
from repro.attacks.chronos_pool_attack import (
    ChronosPoolAttackScenario,
    PoolAttackConfig,
    analytic_pool_composition,
    minimum_queries_for_attacker_majority,
)
from repro.attacks.ntp_shift import OfflineShiftModel, chronos_round_offset, ntpd_round_offset
from repro.core.pool_generation import PoolGenerationPolicy


# -- the closed-form arithmetic of §IV ------------------------------------------------------

def test_analytic_composition_no_attack():
    composition = analytic_pool_composition(None)
    assert composition.benign == 96
    assert composition.malicious == 0


def test_analytic_composition_figure1_numbers():
    composition = analytic_pool_composition(12)
    assert composition.benign == 4 * 11 == 44
    assert composition.malicious == 89
    assert composition.attacker_has_two_thirds


def test_analytic_composition_query_13_fails():
    composition = analytic_pool_composition(13)
    assert composition.benign == 48
    assert not composition.attacker_has_two_thirds


def test_crossover_is_query_12():
    assert minimum_queries_for_attacker_majority() == 12


def test_analytic_composition_poisoning_first_query_is_best_case():
    composition = analytic_pool_composition(1)
    assert composition.benign == 0
    assert composition.malicious == 89
    assert composition.malicious_fraction == 1.0


def test_analytic_composition_low_ttl_lets_benign_servers_return():
    short_ttl = analytic_pool_composition(1, malicious_ttl=3600)
    long_ttl = analytic_pool_composition(1, malicious_ttl=2 * 86400)
    assert short_ttl.benign > long_ttl.benign
    assert not short_ttl.attacker_has_two_thirds


def test_analytic_composition_fewer_attacker_records():
    # Poisoning late with only 4 attacker records cannot reach two-thirds
    # against the benign servers accumulated before the poisoning.
    capped = analytic_pool_composition(12, attacker_records=4)
    assert capped.malicious == 4
    assert capped.benign == 44
    assert not capped.attacker_has_two_thirds


def test_analytic_composition_rejects_bad_index():
    with pytest.raises(ValueError):
        analytic_pool_composition(0)


# -- the packet-level Chronos pool attack ---------------------------------------------------

def run_scenario(poison_at_query, seed=5, **config_kwargs):
    config = PoolAttackConfig(seed=seed, poison_at_query=poison_at_query, **config_kwargs)
    scenario = ChronosPoolAttackScenario(config)
    return scenario, scenario.run_pool_generation()


def test_no_attack_pool_is_benign_and_near_96():
    _, result = run_scenario(None)
    assert result.composition.malicious == 0
    # 24 responses x 4 addresses = 96, minus duplicates from the zone rotation.
    assert 60 <= result.pool.size <= 96
    assert not result.attack_succeeded


def test_poisoning_at_query_1_floods_pool():
    _, result = run_scenario(1)
    assert result.composition.malicious == 89
    assert result.composition.benign == 0
    assert result.attack_succeeded
    assert result.poisoned_queries[0] == 1


def test_poisoning_at_query_3_matches_figure1_shape():
    _, result = run_scenario(3)
    assert result.composition.malicious == 89
    assert result.composition.benign <= 8  # 2 benign responses, possibly deduped
    assert result.attack_succeeded
    # Subsequent queries are served from the poisoned cache entry.
    assert result.cache_hits_during_generation >= 20


def test_poisoning_at_query_12_still_succeeds():
    """The paper's crossover claim, on the wire: a success at query 12 still
    leaves the attacker with at least two-thirds of the (de-duplicated) pool."""
    _, result = run_scenario(12, benign_server_count=400)
    assert result.composition.malicious == 89
    assert result.composition.benign <= 44
    assert result.attack_succeeded


def test_poisoning_at_query_13_adds_too_many_benign_servers_analytically():
    """Past the crossover the paper's address arithmetic no longer yields a
    two-thirds majority (the packet-level run may still squeak past it when
    de-duplication removes a few benign addresses, which only strengthens
    the attack — the conservative bound is the analytic one)."""
    composition = analytic_pool_composition(13)
    assert composition.benign == 48
    assert not composition.attacker_has_two_thirds
    _, result = run_scenario(13, benign_server_count=400)
    assert result.composition.malicious == 89
    assert result.composition.benign <= 48


def test_poison_index_out_of_range_rejected():
    scenario = ChronosPoolAttackScenario(PoolAttackConfig(poison_at_query=30))
    with pytest.raises(ValueError):
        scenario.run_pool_generation()


def test_max_records_mitigation_alone_still_leaves_attacker_majority():
    """The record cap limits the flood to 4 addresses, but the poisoned
    entry's >24 h TTL still starves every later query from cache, so the
    tiny pool remains attacker-dominated — the cap alone is insufficient."""
    policy = PoolGenerationPolicy(max_addresses_per_response=4)
    _, result = run_scenario(1, pool_policy=policy)
    assert result.composition.malicious <= 4
    assert result.composition.benign == 0
    assert result.attack_succeeded


def test_both_mitigations_block_single_poisoning():
    policy = PoolGenerationPolicy(max_addresses_per_response=4, max_accepted_ttl=3600)
    _, result = run_scenario(1, pool_policy=policy)
    assert result.composition.malicious == 0
    assert not result.attack_succeeded


def test_ttl_mitigation_blocks_single_poisoning():
    policy = PoolGenerationPolicy(max_accepted_ttl=3600)
    _, result = run_scenario(1, pool_policy=policy)
    assert result.composition.malicious == 0
    assert not result.attack_succeeded


def test_full_day_hijack_defeats_both_mitigations():
    """The §V residual attack: mitigations do not help against a 24 h hijack."""
    policy = PoolGenerationPolicy(max_addresses_per_response=4, max_accepted_ttl=3600)
    config = PoolAttackConfig(seed=5, poison_at_query=1, pool_policy=policy,
                              hijack_duration=24 * 3600.0 + 1200.0, malicious_ttl=300)
    scenario = ChronosPoolAttackScenario(config)
    result = scenario.run_pool_generation()
    assert result.composition.benign == 0
    assert result.attack_succeeded


def test_time_shift_requires_pool_generation_first():
    scenario = ChronosPoolAttackScenario(PoolAttackConfig())
    with pytest.raises(RuntimeError):
        scenario.run_time_shift(1.0)


def test_time_shift_succeeds_after_successful_pool_attack():
    scenario, result = run_scenario(2)
    assert result.attack_succeeded
    shift = scenario.run_time_shift(target_shift=600.0, update_rounds=6)
    assert shift.shift_achieved
    assert abs(shift.achieved_error - 600.0) < 10.0


def test_time_shift_fails_without_pool_attack():
    scenario, result = run_scenario(None)
    shift = scenario.run_time_shift(target_shift=600.0, update_rounds=4)
    assert not shift.shift_achieved
    assert abs(shift.achieved_error) < 1.0


def test_small_shift_on_benign_pool_also_filtered():
    scenario, _ = run_scenario(None, seed=8)
    shift = scenario.run_time_shift(target_shift=0.05, update_rounds=4)
    # 89 attacker servers exist but none are in the pool, so nothing moves.
    assert abs(shift.achieved_error) < 0.02


# -- the baseline (traditional client) scenario -----------------------------------------------

def test_baseline_poisoned_client_follows_attacker():
    scenario = TraditionalClientAttackScenario(BaselineAttackConfig(seed=6))
    result = scenario.run(target_shift=600.0)
    assert result.malicious_servers_used == len(result.servers_used) == 4
    assert result.attack_succeeded


def test_baseline_unpoisoned_client_keeps_correct_time():
    scenario = TraditionalClientAttackScenario(
        BaselineAttackConfig(seed=6, poison_startup_lookup=False))
    result = scenario.run(target_shift=600.0)
    assert result.malicious_servers_used == 0
    assert not result.attack_succeeded
    assert abs(result.achieved_error) < 0.1


# -- offline single-round shift models ---------------------------------------------------------

def test_offline_chronos_round_needs_two_thirds():
    minority = OfflineShiftModel(sample_size=15, malicious_samples=5, shift=10.0)
    majority = OfflineShiftModel(sample_size=15, malicious_samples=10, shift=10.0)
    assert abs(chronos_round_offset(minority) or 0.0) < 0.01
    assert chronos_round_offset(majority) == pytest.approx(10.0)


def test_offline_ntpd_round_falls_to_simple_majority():
    majority = OfflineShiftModel(sample_size=4, malicious_samples=3, shift=10.0)
    offset = ntpd_round_offset(majority)
    assert offset is not None and offset > 5.0


def test_offline_ntpd_round_resists_minority():
    minority = OfflineShiftModel(sample_size=4, malicious_samples=1, shift=10.0)
    offset = ntpd_round_offset(minority)
    assert offset is not None and abs(offset) < 0.1
