"""Serving-layer tests: connection reuse, pipelining, 0-RTT, RRL.

Covers the high-QPS serving additions end to end: RFC 7766 §6.2
out-of-order pipelining on a pooled upstream stream, reconnect-on-reset
mid-pipeline, the idle-timeout close racing a new query, TFO/0-RTT session
resumption with its replay caveat, and the response-rate-limiting defense
with its matrix columns.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import obs
from repro.defenses.transport import EncryptedTransport
from repro.dns.nameserver import ResponseRateLimiter
from repro.dns.records import RecordType
from repro.dns.transport import DNSFrameDecoder, PooledConnection, frame_dns
from repro.experiments import TestbedConfig, build_testbed, run_scenario
from repro.experiments.matrix import (
    DEFAULT_STACKS,
    SERVING_ATTACKS,
    SERVING_STACKS,
    run_defense_matrix,
)
from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.packets import PROTO_TCP, IPPacket
from repro.netsim.simulator import Simulator
from repro.netsim.transport import (
    FLAG_RST,
    FLAG_SYN,
    ResumptionTicketStore,
    SecureChannel,
    TCPSegment,
)

ZONE = "pool.ntp.org"


def reuse_testbed(defense, **overrides):
    config = TestbedConfig(seed=42, benign_server_count=20,
                          with_attacker=False, defenses=(defense,),
                          **overrides)
    return build_testbed(config)


def resolve_at(testbed, at, name=ZONE):
    testbed.simulator.schedule_at(
        at, lambda: testbed.resolver.trigger_lookup(name))


def answered_at(testbed, name=ZONE):
    entry = testbed.resolver.cache.peek(name, RecordType.A)
    return None if entry is None else entry.inserted_at


# -- ticket store units -----------------------------------------------------------

def test_ticket_store_redeem_and_counters():
    store = ResumptionTicketStore()
    store.issue(b"nonce", b"psk")
    assert store.issued == 1
    assert store.redeem(b"nonce") == b"psk"
    assert store.redeem(b"nonce") == b"psk"  # mutable store: replayable
    assert store.redeemed == 2
    assert store.redeem(b"other") is None
    assert store.rejected == 1


def test_single_use_ticket_store_burns_tickets():
    store = ResumptionTicketStore(single_use=True)
    store.issue(b"nonce", b"psk")
    assert store.redeem(b"nonce") == b"psk"
    assert store.redeem(b"nonce") is None  # burned by the first redemption
    assert store.rejected == 1


def test_rrl_token_bucket_slip_leak_and_prefix():
    limiter = ResponseRateLimiter(rate=1.0, burst=2, slip=2, leak=0)
    # Burst, then alternating drop/slip while the bucket is empty.
    verdicts = [limiter.check("10.0.0.1", 0.0) for _ in range(6)]
    assert verdicts == ["send", "send", "drop", "slip", "drop", "slip"]
    # Same /24 shares the bucket; a different /24 starts fresh.
    assert limiter.check("10.0.0.99", 0.0) == "drop"
    assert limiter.check("10.0.1.1", 0.0) == "send"
    # Refill: one token per second.
    assert limiter.check("10.0.0.1", 1.5) == "send"
    assert limiter.responses_allowed == 4
    assert limiter.leak_ratio == 0.0

    leaky = ResponseRateLimiter(rate=1.0, burst=1, slip=0, leak=2)
    assert [leaky.check("10.9.0.1", 0.0) for _ in range(5)] == [
        "send", "drop", "send", "drop", "send"]
    assert leaky.responses_leaked == 2
    assert leaky.leak_ratio == pytest.approx(0.5)


# -- netsim: fast open + session resumption ---------------------------------------

class Node(Host):
    def handle_datagram(self, datagram):
        pass


def make_pair(seed=11):
    simulator = Simulator(seed=seed)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    return simulator, network, Node(network, "10.0.0.1"), Node(network, "10.0.0.2")


def ticketed_server(host, store, received):
    def on_connection(conn):
        channel = SecureChannel.server(conn, host.network.simulator.rng,
                                       identity=ZONE, cert_key="zone-key",
                                       ticket_store=store)

        def on_data(data, channel=channel):
            received.append(data)
            channel.send(b"answer:" + data)

        channel.on_data = on_data
    return host.tcp.listen(853, on_connection, fast_open=True)


def open_resumed(client, simulator, ticket, early_data):
    conn = client.tcp.create_connection("10.0.0.2", 853)
    channel = SecureChannel.client(conn, simulator.rng,
                                   expected_identity=ZONE,
                                   trust_anchor="zone-key", ticket=ticket)
    conn.open(channel.first_flight(early_data))
    return conn, channel


def test_zero_rtt_resumption_answers_in_one_round_trip():
    simulator, network, client, server = make_pair()
    store = ResumptionTicketStore()
    received = []
    listener = ticketed_server(server, store, received)

    tickets = []
    conn = client.tcp.connect("10.0.0.2", 853)
    channel = SecureChannel.client(conn, simulator.rng, expected_identity=ZONE,
                                   trust_anchor="zone-key",
                                   on_ticket=tickets.append)
    channel.on_ready = lambda: channel.send(b"cold-query")
    simulator.run(until=1.0)
    assert received == [b"cold-query"]
    assert len(tickets) == 1 and store.issued == 1
    conn.close()
    simulator.run(until=2.0)

    replies = []
    start = simulator.now
    conn2, channel2 = open_resumed(client, simulator, tickets[0], b"warm-query")
    channel2.on_data = replies.append
    simulator.run(until=start + 1.0)
    assert received[-1] == b"warm-query"
    assert replies == [b"answer:warm-query"]
    assert channel2.resumed and channel2.handshake_complete
    assert channel2.peer_identity == ZONE
    assert listener.fast_opens_accepted == 1
    assert store.redeemed == 1


def test_zero_rtt_first_flight_replay_by_off_path_attacker():
    """The modelled 0-RTT caveat: a captured first flight replays cleanly
    against a mutable ticket store, and is refused by a single-use one."""
    for single_use in (False, True):
        simulator, network, client, server = make_pair()
        store = ResumptionTicketStore(single_use=single_use)
        received = []
        ticketed_server(server, store, received)

        tickets = []
        conn = client.tcp.connect("10.0.0.2", 853)
        SecureChannel.client(conn, simulator.rng, expected_identity=ZONE,
                             trust_anchor="zone-key", on_ticket=tickets.append)
        simulator.run(until=1.0)
        conn.close()
        simulator.run(until=2.0)

        # The attacker taps the resumed connection's SYN — the first flight
        # carrying the resumption hello and the encrypted early data.
        captured = []

        def tap(packet, now, captured=captured):
            if packet.protocol != PROTO_TCP:
                return
            segment = TCPSegment.decode(packet.payload)
            if segment.flags & FLAG_SYN and segment.payload:
                captured.append(packet)
        network.add_tap(tap)

        conn2, channel2 = open_resumed(client, simulator, tickets[0], b"query")
        simulator.run(until=3.0)
        assert len(captured) == 1
        processed_before = len(received)
        conn2.close()
        simulator.run(until=4.0)

        # Off-path replay of the captured bytes, verbatim.
        network.inject(replace(captured[0], spoofed=True))
        simulator.run(until=5.0)
        if single_use:
            # Anti-replay: the first redemption burned the ticket.
            assert len(received) == processed_before
            assert store.rejected == 1
        else:
            # Replayable 0-RTT: the server decrypts and answers again.
            assert len(received) == processed_before + 1
            assert received[-1] == b"query"


# -- pooled connection: demux, idle, reset ----------------------------------------

class FakeSocket:
    def __init__(self):
        self.ready = True
        self.sent = []
        self.on_ready = None
        self.on_data = None
        self.on_close = None
        self.on_failure = None
        self.closed = False

    def send(self, data):
        self.sent.append(data)

    def close(self):
        self.closed = True


class FakeTransport:
    def __init__(self):
        self._simulator = Simulator(seed=1)
        self.delivered = []
        self.gone = []

    def _deliver(self, pending, response, wire):
        self.delivered.append((pending, response))

    def _connection_gone(self, pooled, reason, redispatch):
        self.gone.append((reason, redispatch))


def pool_pending(txid, qname):
    from repro.dns.message import DNSMessage
    from repro.dns.resolver import PendingUpstreamQuery

    query = DNSMessage.query(txid, qname)
    return PendingUpstreamQuery(
        upstream_query=query, nameserver_address="192.0.2.53",
        source_port=33333, client_address=None, client_port=None,
        client_query=None, sent_at=0.0)


def test_pipelined_responses_demultiplex_out_of_order():
    transport = FakeTransport()
    pooled = PooledConnection(transport, "192.0.2.53", "dot", FakeSocket(),
                              idle_timeout=30.0)
    first = pool_pending(7, "0.pool.ntp.org")
    second = pool_pending(9, "1.pool.ntp.org")
    pooled.send_query((7, "0.pool.ntp.org"), first)
    pooled.send_query((9, "1.pool.ntp.org"), second)
    assert pooled.max_in_flight == 2

    # The server answers in the opposite order, split across arbitrary
    # stream chunk boundaries; each response still reaches its query.
    wire = (frame_dns(second.upstream_query.make_response([]).encode())
            + frame_dns(first.upstream_query.make_response([]).encode()))
    pooled._on_data(wire[:11])
    pooled._on_data(wire[11:])
    assert [pending for pending, _ in transport.delivered] == [second, first]
    assert pooled.in_flight == {}


def test_unmatched_response_keeps_stream_alive():
    transport = FakeTransport()
    pooled = PooledConnection(transport, "192.0.2.53", "dot", FakeSocket(),
                              idle_timeout=30.0)
    pending = pool_pending(7, ZONE)
    pooled.send_query((7, ZONE), pending)
    stray = pool_pending(8, ZONE).upstream_query.make_response([])
    pooled._on_data(frame_dns(stray.encode()))
    assert transport.delivered == []
    assert not pooled.closed and (7, ZONE) in pooled.in_flight


def test_connection_reuse_collapses_per_query_round_trips():
    testbed = reuse_testbed(
        EncryptedTransport(reuse_connections=True, idle_timeout=60.0))
    for index in range(3):
        resolve_at(testbed, index * 10.0)
        testbed.simulator.run(until=index * 10.0 + 9.0)
        assert answered_at(testbed) == pytest.approx(
            index * 10.0 + (0.06 if index == 0 else 0.02))
        testbed.resolver.cache.flush()
    upstream = testbed.resolver.upstream_transport
    assert upstream.connections_opened == 1
    assert upstream.connections_reused == 2


def test_idle_timeout_close_races_new_query():
    testbed = reuse_testbed(
        EncryptedTransport(reuse_connections=True, idle_timeout=5.0))
    # Query 0 opens the stream (idle deadline ~5.06).  Query 1 lands just
    # before the deadline: the dispatch disarms the pending timer and the
    # stream is reused, not closed under the query.  Query 2 arrives long
    # after the idle close and pays a fresh handshake.
    for at in (0.0, 5.05, 30.0):
        resolve_at(testbed, at)
    testbed.simulator.run(until=34.0)
    assert answered_at(testbed) == pytest.approx(30.06)
    upstream = testbed.resolver.upstream_transport
    assert upstream.connections_opened == 2
    assert upstream.connections_reused == 1
    assert upstream._pool != {}
    testbed.simulator.run(until=40.0)  # past 35.06: the idle close lands
    assert upstream._pool == {}


def test_mid_pipeline_reset_redispatches_in_flight_queries():
    testbed = reuse_testbed(
        EncryptedTransport(reuse_connections=True, idle_timeout=60.0))
    simulator, network = testbed.simulator, testbed.network
    resolve_at(testbed, 0.0)
    simulator.run(until=1.0)  # warm stream established
    upstream = testbed.resolver.upstream_transport
    pooled = next(iter(upstream._pool.values()))
    testbed.resolver.cache.flush()

    resolve_at(testbed, 10.0)

    def reset_stream():
        # An in-window RST from the nameserver (a crashed daemon's kernel),
        # landing while the pipelined query is in flight.
        conn = pooled.socket.connection
        segment = TCPSegment(src_port=853, dst_port=conn.local_port,
                             seq=conn.rcv_nxt, ack=0, flags=FLAG_RST)
        network.inject(IPPacket(src_ip="192.0.2.53", dst_ip=conn.stack.host.address,
                                ip_id=999, payload=segment.encode(),
                                protocol=PROTO_TCP))
    simulator.schedule_at(10.005, reset_stream)
    simulator.run(until=20.0)

    # The orphaned query was re-dispatched over a fresh connection and
    # still answered — one logical query, two connections.
    assert answered_at(testbed) is not None and answered_at(testbed) >= 10.0
    assert upstream.reconnects == 1
    assert upstream.connections_opened == 2
    assert upstream.encrypted_queries == 2


def test_fault_plan_outage_exhausts_redispatch_budget_then_recovers():
    testbed = reuse_testbed(
        EncryptedTransport(reuse_connections=True, idle_timeout=60.0,
                           connect_timeout=1.0),
        faults=({"kind": "host_outage", "start": 0.0, "end": 4.0,
                 "host": "@nameserver"},))
    resolve_at(testbed, 0.0)
    testbed.simulator.run(until=8.0)
    upstream = testbed.resolver.upstream_transport
    # Connect timeouts burned both redispatch attempts, then strict policy
    # failed closed (no cache entry, no plaintext fallback).
    assert upstream.reconnects == 2
    assert upstream.encrypted_failures >= 1
    assert upstream.downgraded_queries == 0
    assert answered_at(testbed) is None
    # After the outage the next query opens a fresh stream and answers.
    resolve_at(testbed, 10.0)
    testbed.simulator.run(until=15.0)
    assert answered_at(testbed) == pytest.approx(10.06)


def test_zero_rtt_testbed_resumes_and_traces_connection_spans():
    with obs.capture() as ob:
        testbed = reuse_testbed(
            EncryptedTransport(zero_rtt=True, idle_timeout=5.0))
        for index in range(3):
            resolve_at(testbed, index * 10.0)
            testbed.simulator.run(until=index * 10.0 + 9.0)
        upstream = testbed.resolver.upstream_transport
        assert upstream.zero_rtt_queries == 2
        assert upstream.connections_opened == 3
        counters = {(name, labels): value for (name, labels), value
                    in ob.metrics.snapshot().counters.items()}
        assert counters[("dns.pool.zero_rtt_queries", (("protocol", "dot"),))] == 2
        # Each idle-closed connection leaves one lifetime span behind.
        spans = [event for event in ob.trace.events()
                 if event.name == "dns.pool.connection"]
        assert len(spans) >= 2
        assert all(event.arg("queries") == 1 for event in spans)
        assert any(event.arg("resumed") for event in spans)


# -- serving matrix ---------------------------------------------------------------

def test_serving_stacks_stay_out_of_default_grid():
    default_names = {stack.name for stack in DEFAULT_STACKS}
    assert {stack.name for stack in SERVING_STACKS}.isdisjoint(default_names)


def test_sustained_load_params_are_optional():
    from repro.experiments import get_scenario

    scenario = get_scenario("frag_poisoning")
    assert "trigger_count" in scenario.optional_params()
    assert "trigger_interval" in scenario.optional_params()
    # Leaving the knobs out keeps the classic single-race metrics exactly.
    base = run_scenario("frag_poisoning", seed=5, params={})
    assert "races_run" not in base
    sustained = run_scenario("frag_poisoning", seed=5,
                             params={"trigger_count": 1})
    assert sustained["races_run"] == 1
    assert {key: sustained[key] for key in base} == base


def test_rrl_throttles_sustained_races_but_not_single_shot():
    single = run_scenario("frag_poisoning", seed=3,
                          params={"defenses": ("response_rate_limit",)})
    assert single["attack_succeeded"]  # burst covers a one-shot race
    sustained = run_scenario(
        "frag_poisoning", seed=3,
        params={"trigger_count": 12, "trigger_interval": 0.25,
                "defenses": ("response_rate_limit",)})
    assert sustained["races_poisoned"] < sustained["races_run"] // 2
    assert sustained["rrl_dropped"] > 0 and sustained["rrl_slipped"] > 0


def test_serving_matrix_policy_table_and_worker_determinism():
    results = {
        workers: run_defense_matrix(attacks=SERVING_ATTACKS,
                                    stacks=SERVING_STACKS,
                                    seeds=(1,), workers=workers)
        for workers in (1, 2)
    }
    assert results[1].digest() == results[2].digest()
    table = results[1].success_table()["sustained_load"]
    assert table["rrl_plus_dot"] == 0.0
    downgrade = {
        stack.name: run_scenario("downgrade", seed=1,
                                 params={"defenses": stack.defenses})
        for stack in SERVING_STACKS
    }
    assert downgrade["rrl"]["attack_succeeded"]
    assert not downgrade["rrl_plus_dot"]["attack_succeeded"]
    assert downgrade["rrl_plus_dot_opp"]["attack_succeeded"]
