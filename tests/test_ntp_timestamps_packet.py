"""Unit tests for NTP timestamps, offset/delay arithmetic and the packet codec."""

from __future__ import annotations

import pytest

from repro.ntp.packet import NTP_PACKET_SIZE, LeapIndicator, NTPMode, NTPPacket, PacketFormatError
from repro.ntp.timestamps import (
    NTP_UNIX_EPOCH_DELTA,
    ExchangeTimestamps,
    TimestampError,
    from_short_format,
    ntp_to_unix,
    short_format,
    unix_to_ntp,
)


# -- timestamps ------------------------------------------------------------------

def test_epoch_delta_constant():
    assert NTP_UNIX_EPOCH_DELTA == 2208988800


def test_unix_epoch_converts_to_delta_seconds():
    assert unix_to_ntp(0.0) == NTP_UNIX_EPOCH_DELTA << 32


def test_roundtrip_precision_is_sub_microsecond():
    for value in (0.0, 1.5, 1609459200.123456, 1717171717.987654321):
        assert abs(ntp_to_unix(unix_to_ntp(value)) - value) < 1e-6


def test_roundtrip_precision_at_modern_epoch_is_nanoseconds():
    value = 1609459200.000961
    assert abs(ntp_to_unix(unix_to_ntp(value)) - value) < 1e-8


def test_fraction_carry_does_not_overflow():
    # A fractional part that rounds up to 1.0 must carry into the seconds.
    value = 123.9999999999
    assert abs(ntp_to_unix(unix_to_ntp(value)) - value) < 1e-6


def test_pre_epoch_time_rejected():
    with pytest.raises(TimestampError):
        unix_to_ntp(-NTP_UNIX_EPOCH_DELTA - 1)


def test_out_of_range_ntp_value_rejected():
    with pytest.raises(TimestampError):
        ntp_to_unix(1 << 64)
    with pytest.raises(TimestampError):
        ntp_to_unix(-1)


def test_short_format_roundtrip():
    for value in (0.0, 0.001, 0.5, 1.25):
        assert abs(from_short_format(short_format(value)) - value) < 1e-4


def test_short_format_negative_rejected():
    with pytest.raises(TimestampError):
        short_format(-0.1)


def test_offset_and_delay_symmetric_path():
    # Client 0.5 s behind the server, 40 ms symmetric one-way delay and
    # 20 ms of server processing time.
    exchange = ExchangeTimestamps(origin=100.0, receive=100.54, transmit=100.56,
                                  destination=100.10)
    assert exchange.offset == pytest.approx(0.5, abs=1e-9)
    assert exchange.delay == pytest.approx(0.08, abs=1e-9)
    assert exchange.is_plausible()


def test_offset_zero_when_clocks_agree():
    exchange = ExchangeTimestamps(origin=10.0, receive=10.01, transmit=10.02,
                                  destination=10.03)
    assert exchange.offset == pytest.approx(0.0, abs=1e-9)
    assert exchange.delay == pytest.approx(0.02, abs=1e-9)


def test_implausible_delay_detected():
    exchange = ExchangeTimestamps(origin=10.0, receive=10.0, transmit=10.0,
                                  destination=40.0)
    assert not exchange.is_plausible(max_delay=16.0)


# -- packets -----------------------------------------------------------------------

def test_client_request_mode_and_size():
    packet = NTPPacket.client_request(transmit_time=1609459200.0)
    assert packet.mode == NTPMode.CLIENT
    assert len(packet.encode()) == NTP_PACKET_SIZE


def test_server_reply_echoes_origin():
    request = NTPPacket.client_request(transmit_time=1609459200.25)
    reply = request.server_reply(receive_time=1609459200.30, transmit_time=1609459200.31,
                                 stratum=2, reference_time=1609459199.0)
    assert reply.mode == NTPMode.SERVER
    assert reply.origin_time == request.transmit_time
    assert reply.stratum == 2
    assert reply.valid_server_reply_to(request.transmit_time)


def test_reply_with_wrong_origin_rejected():
    request = NTPPacket.client_request(transmit_time=1609459200.25)
    reply = request.server_reply(receive_time=1609459200.30, transmit_time=1609459200.31,
                                 stratum=2, reference_time=1609459199.0)
    assert not reply.valid_server_reply_to(request.transmit_time + 1.0)


def test_encode_decode_roundtrip_preserves_fields():
    request = NTPPacket.client_request(transmit_time=1609459200.123)
    reply = request.server_reply(receive_time=1609459200.2, transmit_time=1609459200.21,
                                 stratum=3, reference_time=1609459100.0,
                                 root_delay=0.01, root_dispersion=0.02,
                                 leap=LeapIndicator.NO_WARNING)
    decoded = NTPPacket.decode(reply.encode())
    assert decoded.mode == NTPMode.SERVER
    assert decoded.stratum == 3
    assert decoded.leap == LeapIndicator.NO_WARNING
    assert abs(decoded.origin_time - reply.origin_time) < 1e-6
    assert abs(decoded.receive_time - reply.receive_time) < 1e-6
    assert abs(decoded.transmit_time - reply.transmit_time) < 1e-6
    assert abs(decoded.root_delay - 0.01) < 1e-4
    assert abs(decoded.root_dispersion - 0.02) < 1e-4


def test_roundtrip_preserves_origin_echo_validity():
    """The encode/decode chain must not break the origin-timestamp check."""
    origin = 1609459200.0009629726
    request = NTPPacket.client_request(transmit_time=origin)
    over_the_wire = NTPPacket.decode(request.encode())
    reply = over_the_wire.server_reply(receive_time=origin + 0.01, transmit_time=origin + 0.02,
                                       stratum=2, reference_time=origin - 1)
    decoded_reply = NTPPacket.decode(reply.encode())
    assert decoded_reply.valid_server_reply_to(origin)


def test_decode_truncated_packet_rejected():
    with pytest.raises(PacketFormatError):
        NTPPacket.decode(b"\x00" * 10)


def test_zero_timestamps_stay_zero():
    packet = NTPPacket(mode=NTPMode.CLIENT)
    decoded = NTPPacket.decode(packet.encode())
    assert decoded.origin_time == 0.0
    assert decoded.receive_time == 0.0


def test_negative_precision_roundtrip():
    packet = NTPPacket(mode=NTPMode.SERVER, precision=-20, stratum=1,
                       transmit_time=1609459200.0)
    decoded = NTPPacket.decode(packet.encode())
    assert decoded.precision == -20


def test_shifted_moves_server_timestamps_only():
    request = NTPPacket.client_request(transmit_time=100.0)
    reply = request.server_reply(receive_time=100.0, transmit_time=100.0, stratum=2,
                                 reference_time=99.0)
    shifted = reply.shifted(600.0)
    assert shifted.receive_time == pytest.approx(700.0)
    assert shifted.transmit_time == pytest.approx(700.0)
    assert shifted.origin_time == reply.origin_time  # nonce untouched


def test_kiss_of_death_detection():
    kod = NTPPacket(mode=NTPMode.SERVER, stratum=0)
    normal = NTPPacket(mode=NTPMode.SERVER, stratum=2)
    assert kod.kiss_of_death
    assert not normal.kiss_of_death
