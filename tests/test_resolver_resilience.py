"""Resolver retries, RFC 8767 serve-stale, and NTP client retries.

These are the endpoint halves of the fault-injection story: the network can
now lose, delay and blackhole packets on a schedule, and the endpoints earn
back availability with retransmission budgets and stale answers — each with
its deliberate security downside, asserted here alongside the upside.
"""

from __future__ import annotations

import pytest

from repro.dns.cache import DNSCache
from repro.dns.records import RecordType, a_record
from repro.dns.resolver import (
    STALE_ANSWER_TTL,
    DNSStub,
    RecursiveResolver,
    ResolverPolicy,
)
from repro.dns.nameserver import PoolNTPNameserver
from repro.faults import FaultInjector, FaultPlan
from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.simulator import Simulator
from repro.ntp.clock import SystemClock
from repro.ntp.query import NTPQuerier


class StubHost(Host):
    def __init__(self, network, address, resolver_address):
        super().__init__(network, address)
        self.dns = DNSStub(self, resolver_address)

    def handle_datagram(self, datagram):
        self.dns.handle_datagram(datagram)


def build_world(policy=None, seed=5, faults=()):
    simulator = Simulator(seed=seed)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=[f"10.0.0.{i + 1}" for i in range(20)])
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address},
                                 policy=policy or ResolverPolicy())
    client = StubHost(network, "192.0.2.100", resolver.address)
    if faults:
        FaultInjector(network, FaultPlan.from_spec(faults)).arm()
    return simulator, network, nameserver, resolver, client


# -- upstream query retries ---------------------------------------------------

def test_retries_recover_a_query_through_an_upstream_outage():
    # The nameserver is dark for 2.5 s; with a 1 s timeout and three
    # retries the resolver's retransmissions straddle the outage and the
    # client still gets an answer — where the classic fail-fast resolver
    # (query_retries=0) SERVFAILs.
    outage = ({"kind": "host_outage", "host": "192.0.2.53",
               "start": 0.0, "end": 2.5},)
    policy = ResolverPolicy(query_timeout=1.0, query_retries=3,
                            retry_backoff=0.2)
    simulator, _, nameserver, resolver, client = build_world(policy, faults=outage)
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=30.0)
    assert answers and answers[0]
    assert resolver.retries >= 1
    assert nameserver.queries_received >= 1


def test_classic_policy_still_fails_fast_through_the_same_outage():
    outage = ({"kind": "host_outage", "host": "192.0.2.53",
               "start": 0.0, "end": 2.5},)
    policy = ResolverPolicy(query_timeout=1.0)
    simulator, _, _, resolver, client = build_world(policy, faults=outage)
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=30.0)
    assert answers == [[]]
    assert resolver.retries == 0


def test_retry_backoff_schedule_is_exponential_and_deterministic():
    def timeline(seed):
        policy = ResolverPolicy(query_timeout=1.0, query_retries=3,
                                retry_backoff=0.5, retry_backoff_factor=2.0,
                                retry_jitter=0.25)
        simulator, network, _, resolver, client = build_world(
            policy, seed=seed,
            faults=({"kind": "host_outage", "host": "192.0.2.53",
                     "start": 0.0, "end": 9e9},))
        sent = []
        original = resolver._send_upstream_datagram

        def recording(pending):
            sent.append(simulator.now)
            original(pending)

        resolver._send_upstream_datagram = recording
        client.dns.lookup("pool.ntp.org", lambda a: None)
        simulator.run(until=60.0)
        return sent

    first = timeline(seed=9)
    # initial send, then 1 s timeout + ~0.5/1/2 s backoffs (plus jitter).
    assert len(first) == 4
    gaps = [round(b - a, 6) for a, b in zip(first, first[1:])]
    assert gaps[0] >= 1.5 and gaps[1] >= 2.0 and gaps[2] >= 3.0
    assert gaps[0] <= 1.75 and gaps[1] <= 2.25 and gaps[2] <= 3.25
    assert timeline(seed=9) == first          # same seed, same schedule
    assert timeline(seed=10) != first         # jitter is seed-dependent


def test_retry_budget_caps_total_retransmissions():
    policy = ResolverPolicy(query_timeout=0.5, query_retries=5, retry_backoff=0.1,
                            retry_budget=3)
    simulator, _, _, resolver, client = build_world(
        policy,
        faults=({"kind": "host_outage", "host": "192.0.2.53",
                 "start": 0.0, "end": 9e9},))
    for name in ("pool.ntp.org", "0.pool.ntp.org", "1.pool.ntp.org"):
        resolver.nameserver_map.setdefault("pool.ntp.org", "192.0.2.53")
        client.dns.lookup(name, lambda a: None)
    simulator.run(until=120.0)
    assert resolver.retries == 3              # budget, not 3 queries x 5 retries


def test_late_answer_during_backoff_still_resolves_the_query():
    # Latency ramp pushes the upstream RTT past the query timeout: the
    # first attempt "times out", but the pending entry survives into the
    # backoff window, so the slow genuine answer still lands and resolves.
    policy = ResolverPolicy(query_timeout=1.0, query_retries=2, retry_backoff=2.0)
    simulator, _, nameserver, resolver, client = build_world(
        policy,
        faults=({"kind": "latency_ramp", "extra_latency": 0.6,
                 "start": 0.0, "end": 9e9},))
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=30.0)
    assert answers and answers[0]
    assert resolver.timeouts >= 1
    assert nameserver.queries_received == 1   # answered before any retransmit


# -- serve-stale --------------------------------------------------------------

def stale_policy(window=3600.0):
    return ResolverPolicy(query_timeout=1.0, serve_stale=True,
                          serve_stale_window=window)


def test_stale_answer_served_during_outage_with_clamped_ttl():
    simulator, _, nameserver, resolver, client = build_world(
        stale_policy(),
        faults=({"kind": "host_outage", "host": "192.0.2.53",
                 "start": 10.0, "end": 9e9},))
    first, messages = [], []
    client.dns.lookup("pool.ntp.org", first.append)
    simulator.run(until=5.0)
    simulator.run(until=400.0)               # TTL 150 s: entry expired, ns down
    client.dns.lookup_message("pool.ntp.org", messages.append)
    simulator.run(until=430.0)
    assert messages and [r.rdata for r in messages[0].answers] == first[0]
    assert all(r.ttl == STALE_ANSWER_TTL for r in messages[0].answers)
    assert resolver.stale_answers == 1
    assert resolver.cache.stats.stale_hits == 1


def test_stale_answer_triggers_background_refresh_when_upstream_returns():
    simulator, _, nameserver, resolver, client = build_world(
        stale_policy(),
        faults=({"kind": "host_outage", "host": "192.0.2.53",
                 "start": 10.0, "end": 395.0},))
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=5.0)
    simulator.run(until=400.0)
    # Outage just lifted; the stale answer satisfies the client immediately
    # and the background refresh reaches the recovered nameserver.
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=410.0)
    assert resolver.stale_answers == 1
    assert nameserver.queries_received == 2   # original + background refresh
    # The refresh re-primed the cache: the next lookup is a fresh hit.
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=420.0)
    assert resolver.stale_answers == 1
    assert resolver.queries_answered_from_cache == 1


def test_no_duplicate_background_refresh_while_one_is_in_flight():
    simulator, _, nameserver, resolver, client = build_world(
        stale_policy(),
        faults=({"kind": "host_outage", "host": "192.0.2.53",
                 "start": 10.0, "end": 9e9},))
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=5.0)
    simulator.run(until=400.0)
    client.dns.lookup("pool.ntp.org", lambda a: None)
    client.dns.lookup("pool.ntp.org", lambda a: None)   # before refresh times out
    simulator.run(until=400.5)
    assert resolver.stale_answers == 2
    assert resolver.queries_forwarded == 2    # original + ONE refresh


def test_entry_past_the_stale_window_is_a_full_miss():
    simulator, _, nameserver, resolver, client = build_world(
        stale_policy(window=100.0))
    client.dns.lookup("pool.ntp.org", lambda a: None)
    simulator.run(until=5.0)
    # TTL 150 + window 100 < 400: the entry is unservable and evicted.
    simulator.run(until=400.0)
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=410.0)
    assert resolver.stale_answers == 0
    assert nameserver.queries_received == 2
    assert answers and answers[0]


def test_serve_stale_prolongs_a_poisoned_entry_past_its_ttl():
    """The defense's dark side, asserted on purpose: an attacker's record
    outlives the TTL it paid for whenever the upstream path is down."""
    simulator, _, _, resolver, client = build_world(
        stale_policy(),
        faults=({"kind": "host_outage", "host": "192.0.2.53",
                 "start": 0.0, "end": 9e9},))
    resolver.cache.insert("pool.ntp.org", RecordType.A,
                          [a_record("pool.ntp.org", "198.51.100.66", ttl=60)],
                          now=0.0, poisoned=True)
    simulator.run(until=120.0)               # poisoned entry now expired
    answers = []
    client.dns.lookup("pool.ntp.org", answers.append)
    simulator.run(until=130.0)
    assert answers == [["198.51.100.66"]]    # stale poison, still served
    assert resolver.stale_answers == 1


def test_cache_lookup_stale_window_semantics():
    cache = DNSCache(serve_stale_window=100.0)
    cache.insert("x.example", RecordType.A,
                 [a_record("x.example", "203.0.113.1", ttl=50)], now=0.0)
    # Live: normal hit, no stale involvement.
    assert cache.lookup("x.example", RecordType.A, now=10.0) is not None
    assert cache.lookup_stale("x.example", RecordType.A, now=10.0) is None
    # Expired, inside the window: miss on lookup (entry kept), stale hit.
    assert cache.lookup("x.example", RecordType.A, now=60.0) is None
    assert cache.peek("x.example", RecordType.A) is not None
    assert cache.lookup_stale("x.example", RecordType.A, now=60.0) is not None
    assert cache.stats.stale_hits == 1
    # Past the window: evicted by either path.
    assert cache.lookup_stale("x.example", RecordType.A, now=200.0) is None
    assert cache.peek("x.example", RecordType.A) is None
    assert cache.stats.expirations == 1


def test_without_serve_stale_the_window_is_zero():
    simulator, _, _, resolver, _ = build_world(ResolverPolicy())
    assert resolver.cache.serve_stale_window == 0.0


# -- NTP client retries -------------------------------------------------------

class NTPClientHost(Host):
    def __init__(self, network, address, **querier_kwargs):
        super().__init__(network, address)
        self.querier = NTPQuerier(self, SystemClock(network.simulator),
                                  **querier_kwargs)

    def handle_datagram(self, datagram):
        self.querier.handle_datagram(datagram)


def test_ntp_retries_recover_a_sample_through_a_server_outage():
    from repro.ntp.server import NTPServer

    simulator = Simulator(seed=21)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    NTPServer(network, "192.0.2.10", SystemClock(simulator))
    client = NTPClientHost(network, "192.0.2.200", timeout=1.0, retries=3,
                           retry_backoff=0.5)
    FaultInjector(network, FaultPlan.from_spec((
        {"kind": "host_outage", "host": "192.0.2.10", "start": 0.0, "end": 2.0},
    ))).arm()
    samples = []
    client.querier.query("192.0.2.10", samples.append)
    simulator.run(until=30.0)
    assert len(samples) == 1 and samples[0] is not None
    assert client.querier.retries_sent >= 1
    assert client.querier.timeouts >= 1


def test_ntp_retries_exhausted_reports_failure_once():
    simulator = Simulator(seed=22)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    client = NTPClientHost(network, "192.0.2.200", timeout=1.0, retries=2,
                           retry_backoff=0.25, retry_jitter=0.1)
    outcomes = []
    client.querier.query("192.0.2.250", outcomes.append)   # nobody home
    simulator.run(until=60.0)
    assert outcomes == [None]
    assert client.querier.queries_sent == 3
    assert client.querier.retries_sent == 2
    assert client.querier.timeouts == 3


def test_ntp_querier_without_retries_keeps_classic_single_shot():
    simulator = Simulator(seed=23)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    client = NTPClientHost(network, "192.0.2.200", timeout=1.0)
    outcomes = []
    client.querier.query("192.0.2.250", outcomes.append)
    simulator.run(until=30.0)
    assert outcomes == [None]
    assert client.querier.queries_sent == 1
    assert client.querier.retries_sent == 0


# -- defense-stack surfacing --------------------------------------------------

def test_serve_stale_defense_rewrites_resolver_policy():
    from repro.experiments.testbed import TestbedConfig, build_testbed

    cfg = TestbedConfig(seed=1, defenses=("serve_stale",))
    testbed = build_testbed(cfg)
    assert testbed.resolver.policy.serve_stale is True
    assert testbed.resolver.cache.serve_stale_window > 0


def test_upstream_retries_defense_rewrites_resolver_policy():
    from repro.experiments.testbed import TestbedConfig, build_testbed

    cfg = TestbedConfig(seed=1, defenses=("upstream_retries",))
    testbed = build_testbed(cfg)
    assert testbed.resolver.policy.query_retries == 2
    assert testbed.resolver.policy.retry_backoff == pytest.approx(0.25)


def test_resilience_stacks_are_not_in_the_pinned_default_grid():
    from repro.experiments.matrix import DEFAULT_STACKS, RESILIENCE_STACKS

    default_names = {stack.name for stack in DEFAULT_STACKS}
    assert {stack.name for stack in RESILIENCE_STACKS}.isdisjoint(default_names)
