"""Unit tests for the simulated clocks and the baseline ntpd selection pipeline."""

from __future__ import annotations

import pytest

from repro.netsim.simulator import Simulator
from repro.ntp.clock import ClockErrorTrace, SystemClock
from repro.ntp.query import TimeSample
from repro.ntp.selection import (
    cluster_survivors,
    combine_offset,
    marzullo_intersection,
    ntpd_select,
    sample_interval,
    select_truechimers,
)


# -- clocks ------------------------------------------------------------------------

def test_clock_tracks_true_time_by_default():
    sim = Simulator()
    clock = SystemClock(sim)
    assert clock.error == pytest.approx(0.0)
    sim.schedule(100.0, lambda: None)
    sim.run()
    assert clock.error == pytest.approx(0.0)
    assert clock.now() == pytest.approx(clock.true_time())


def test_clock_initial_offset_is_reported_as_error():
    clock = SystemClock(Simulator(), offset=0.25)
    assert clock.error == pytest.approx(0.25)


def test_adjust_moves_clock_and_records_history():
    sim = Simulator()
    clock = SystemClock(sim)
    clock.adjust(0.5, source="test")
    assert clock.error == pytest.approx(0.5)
    assert len(clock.adjustments) == 1
    assert clock.adjustments[0].source == "test"
    clock.adjust(-0.5, source="test")
    assert clock.error == pytest.approx(0.0)


def test_set_offset_absolute():
    sim = Simulator()
    clock = SystemClock(sim, offset=0.2)
    clock.set_offset(1.0)
    assert clock.error == pytest.approx(1.0)


def test_drift_accumulates_over_time():
    sim = Simulator()
    clock = SystemClock(sim, drift_ppm=100.0)  # 100 ppm
    sim.schedule(10000.0, lambda: None)
    sim.run()
    assert clock.error == pytest.approx(1.0, rel=1e-6)  # 10000 s * 1e-4


def test_true_time_immune_to_adjustments():
    sim = Simulator()
    clock = SystemClock(sim)
    before = clock.true_time()
    clock.adjust(1000.0)
    assert clock.true_time() == pytest.approx(before)


def test_error_trace_records_max_and_final():
    sim = Simulator()
    clock = SystemClock(sim)
    trace = ClockErrorTrace()
    trace.record(clock)
    clock.adjust(2.0)
    trace.record(clock)
    clock.adjust(-1.5)
    trace.record(clock)
    assert trace.max_abs_error == pytest.approx(2.0)
    assert trace.final_error == pytest.approx(0.5)


def test_empty_error_trace_defaults():
    trace = ClockErrorTrace()
    assert trace.max_abs_error == 0.0
    assert trace.final_error == 0.0


# -- selection helpers -----------------------------------------------------------------

def sample(offset, delay=0.02, server="s"):
    return TimeSample(server=server, offset=offset, delay=delay, stratum=2,
                      root_dispersion=0.005, completed_at=0.0)


def test_marzullo_empty_input():
    count, interval = marzullo_intersection([])
    assert count == 0
    assert interval is None


def test_marzullo_single_interval():
    count, interval = marzullo_intersection([(0.0, 1.0)])
    assert count == 1
    assert interval == (0.0, 1.0)


def test_marzullo_majority_overlap():
    intervals = [(-0.1, 0.1), (-0.05, 0.15), (0.0, 0.2), (10.0, 10.2)]
    count, interval = marzullo_intersection(intervals)
    assert count == 3
    low, high = interval
    assert low >= -0.05 and high <= 0.15


def test_marzullo_disjoint_intervals():
    count, _ = marzullo_intersection([(0, 1), (2, 3), (4, 5)])
    assert count == 1


def test_marzullo_handles_swapped_bounds():
    count, interval = marzullo_intersection([(1.0, 0.0), (0.5, 1.5)])
    assert count == 2


def test_sample_interval_contains_offset():
    s = sample(0.1, delay=0.04)
    low, high = sample_interval(s)
    assert low < 0.1 < high


def test_truechimers_exclude_far_outlier():
    samples = [sample(0.001), sample(-0.002), sample(0.0), sample(5.0)]
    true_samples, false_samples = select_truechimers(samples)
    assert len(true_samples) == 3
    assert len(false_samples) == 1
    assert false_samples[0].offset == 5.0


def test_truechimers_exclude_implausible_delay():
    bad = TimeSample(server="x", offset=0.0, delay=-1.0, stratum=2,
                     root_dispersion=0.0, completed_at=0.0)
    true_samples, false_samples = select_truechimers([sample(0.0), bad])
    assert bad in false_samples


def test_truechimers_empty_input():
    true_samples, false_samples = select_truechimers([])
    assert true_samples == [] and false_samples == []


def test_cluster_keeps_at_most_max_survivors():
    samples = [sample(i * 0.001) for i in range(20)]
    survivors = cluster_survivors(samples, max_survivors=10)
    assert len(survivors) == 10


def test_combine_offset_weighted_by_delay():
    near = sample(0.0, delay=0.001)
    far = sample(1.0, delay=10.0)
    combined = combine_offset([near, far])
    assert combined < 0.1  # the low-delay sample dominates


def test_combine_offset_empty_rejected():
    with pytest.raises(ValueError):
        combine_offset([])


# -- the full baseline pipeline ----------------------------------------------------------

def test_ntpd_select_agreeing_servers():
    samples = [sample(0.01), sample(0.012), sample(0.008), sample(0.011)]
    result = ntpd_select(samples)
    assert result.succeeded
    assert result.offset == pytest.approx(0.01, abs=0.005)
    assert len(result.survivors) == 4


def test_ntpd_select_single_falseticker_filtered():
    samples = [sample(0.0), sample(0.001), sample(-0.001), sample(10.0)]
    result = ntpd_select(samples)
    assert result.succeeded
    assert abs(result.offset) < 0.01
    assert all(s.offset != 10.0 for s in result.survivors)


def test_ntpd_select_majority_attack_succeeds():
    """With 4 upstream servers all attacker-controlled (the post-poisoning
    baseline situation) the pipeline happily adopts the shifted time."""
    samples = [sample(600.0), sample(600.001), sample(599.999), sample(600.0)]
    result = ntpd_select(samples)
    assert result.succeeded
    assert result.offset == pytest.approx(600.0, abs=0.01)


def test_ntpd_select_no_samples():
    result = ntpd_select([])
    assert not result.succeeded
    assert result.offset is None


def test_ntpd_select_all_implausible():
    bad = TimeSample(server="x", offset=0.0, delay=50.0, stratum=2,
                     root_dispersion=0.0, completed_at=0.0)
    result = ntpd_select([bad, bad])
    assert not result.succeeded
