"""Unit tests for the connection-oriented netsim layer (TCP + SecureChannel)."""

from __future__ import annotations

import pytest

from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.packets import PROTO_TCP, IPPacket
from repro.netsim.simulator import Simulator
from repro.netsim.transport import (
    FLAG_ACK,
    FLAG_RST,
    FLAG_SYN,
    ConnectionState,
    PlainStreamSocket,
    SecureChannel,
    TCPSegment,
    TransportError,
)


class Node(Host):
    def handle_datagram(self, datagram):
        pass


def make_pair(latency=0.01, seed=11):
    simulator = Simulator(seed=seed)
    network = Network(simulator, default_link=LinkProperties(latency=latency))
    return simulator, network, Node(network, "10.0.0.1"), Node(network, "10.0.0.2")


def serve_echo(host, port, received):
    """Listen on ``port``; echo every chunk back prefixed with ``ack:``."""
    def on_connection(conn):
        sock = PlainStreamSocket(conn)

        def on_data(data, sock=sock):
            received.append(data)
            sock.send(b"ack:" + data)

        sock.on_data = on_data
    return host.tcp.listen(port, on_connection)


# -- segments -------------------------------------------------------------------

def test_segment_encode_decode_round_trip():
    segment = TCPSegment(src_port=12345, dst_port=853, seq=0xDEADBEEF,
                         ack=0x01020304, flags=FLAG_SYN | FLAG_ACK, payload=b"xyz")
    decoded = TCPSegment.decode(segment.encode())
    assert decoded == segment
    assert segment.wire_size == 20 + 3


def test_segment_decode_rejects_truncated_header():
    from repro.netsim.packets import PacketError

    with pytest.raises(PacketError):
        TCPSegment.decode(b"\x00" * 10)


# -- handshake and data transfer ------------------------------------------------

def test_three_way_handshake_and_echo():
    simulator, network, client, server = make_pair()
    received = []
    serve_echo(server, 4000, received)
    conn = client.tcp.connect("10.0.0.2", 4000)
    sock = PlainStreamSocket(conn)
    replies = []
    sock.on_ready = lambda: sock.send(b"ping")
    sock.on_data = replies.append
    simulator.run(until=1.0)
    assert conn.state is ConnectionState.ESTABLISHED
    assert received == [b"ping"]
    assert b"".join(replies) == b"ack:ping"


def test_handshake_takes_latency_round_trips():
    simulator, network, client, server = make_pair(latency=0.1)
    server.tcp.listen(4000, lambda conn: None)
    established = []
    conn = client.tcp.connect("10.0.0.2", 4000)
    conn.on_established = lambda: established.append(simulator.now)
    simulator.run(until=1.0)
    # SYN out (0.1) + SYN-ACK back (0.1): established after one RTT.
    assert established == [pytest.approx(0.2)]


def test_isns_are_rng_drawn_and_deterministic():
    def run(seed):
        simulator, network, client, server = make_pair(seed=seed)
        server.tcp.listen(4000, lambda conn: None)
        conn = client.tcp.connect("10.0.0.2", 4000)
        simulator.run(until=1.0)
        return conn.iss

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_mss_segmentation_and_in_order_reassembly():
    simulator, network, client, server = make_pair()
    network.set_path_mtu("10.0.0.1", 200)  # mss = 200 - 20 - 20 = 160
    received = []

    def on_connection(conn):
        sock = PlainStreamSocket(conn)
        sock.on_data = received.append
    server.tcp.listen(4000, on_connection)

    conn = client.tcp.connect("10.0.0.2", 4000)
    assert conn.mss == 160
    payload = bytes(range(256)) * 4  # 1024 bytes -> 7 segments
    sock = PlainStreamSocket(conn)
    sock.on_ready = lambda: sock.send(payload)
    simulator.run(until=1.0)
    assert b"".join(received) == payload
    assert max(len(chunk) for chunk in received) <= 160


def test_send_requires_established_connection():
    simulator, network, client, server = make_pair()
    server.tcp.listen(4000, lambda conn: None)
    conn = client.tcp.connect("10.0.0.2", 4000)
    with pytest.raises(TransportError):
        conn.send(b"too early")


def test_connect_timeout_fires_when_no_listener():
    simulator, network, client, server = make_pair()
    failures = []
    conn = client.tcp.connect("10.0.0.2", 4000, timeout=2.0)
    conn.on_failure = failures.append
    simulator.run(until=5.0)
    assert failures == ["connect timeout"]
    assert conn.state is ConnectionState.CLOSED
    assert client.tcp.connections == {}


# -- off-path injection defenses ------------------------------------------------

def test_blind_data_injection_rejected_by_sequence_check():
    simulator, network, client, server = make_pair()
    received = []
    serve_echo(server, 4000, received)
    conn = client.tcp.connect("10.0.0.2", 4000)
    sock = PlainStreamSocket(conn)
    simulator.run(until=1.0)
    assert conn.established
    # Off-path attacker spoofs a data segment with the right 4-tuple but an
    # unobservable (wrong) sequence number.
    server_conn = next(iter(server.tcp.connections.values()))
    bogus = TCPSegment(src_port=conn.local_port, dst_port=4000,
                       seq=(server_conn.rcv_nxt + 2**31) % 2**32,
                       ack=0, flags=FLAG_ACK, payload=b"EVIL")
    network.inject(IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2",
                            ip_id=7, payload=bogus.encode(), protocol=PROTO_TCP,
                            spoofed=True))
    simulator.run(until=2.0)
    assert received == []
    assert server_conn.injections_rejected == 1
    assert server.tcp.segments_rejected == 1


def test_blind_rst_rejected_without_sequence_knowledge():
    simulator, network, client, server = make_pair()
    serve_echo(server, 4000, [])
    conn = client.tcp.connect("10.0.0.2", 4000)
    PlainStreamSocket(conn)
    simulator.run(until=1.0)
    rst = TCPSegment(src_port=4000, dst_port=conn.local_port,
                     seq=12345, ack=0, flags=FLAG_RST)
    network.inject(IPPacket(src_ip="10.0.0.2", dst_ip="10.0.0.1",
                            ip_id=9, payload=rst.encode(), protocol=PROTO_TCP,
                            spoofed=True))
    simulator.run(until=2.0)
    assert conn.established
    assert conn.injections_rejected == 1


def test_spoofed_synack_with_wrong_ack_rejected():
    simulator, network, client, server = make_pair()
    conn = client.tcp.connect("10.0.0.2", 4000, timeout=10.0)
    spoofed = TCPSegment(src_port=4000, dst_port=conn.local_port,
                         seq=999, ack=(conn.iss + 2) % 2**32,
                         flags=FLAG_SYN | FLAG_ACK)
    network.inject(IPPacket(src_ip="10.0.0.2", dst_ip="10.0.0.1",
                            ip_id=3, payload=spoofed.encode(), protocol=PROTO_TCP,
                            spoofed=True))
    simulator.run(until=1.0)
    assert conn.state is ConnectionState.SYN_SENT
    assert conn.injections_rejected == 1


# -- listener backlog (SYN flood) ------------------------------------------------

def flood_listener(network, dst, port, count, rng):
    for index in range(count):
        segment = TCPSegment(src_port=1024 + index, dst_port=port,
                             seq=rng.getrandbits(32), ack=0, flags=FLAG_SYN)
        network.inject(IPPacket(src_ip=f"203.0.113.{index % 254 + 1}",
                                dst_ip=dst, ip_id=index + 1,
                                payload=segment.encode(), protocol=PROTO_TCP,
                                spoofed=True))


def test_syn_flood_fills_backlog_and_drops_genuine_syn():
    simulator, network, client, server = make_pair()
    accepted = []
    listener = server.tcp.listen(4000, accepted.append, backlog=8, syn_timeout=30.0)
    flood_listener(network, "10.0.0.2", 4000, 20, simulator.rng)
    simulator.run(until=0.5)
    assert len(listener.half_open) == 8
    assert listener.syns_dropped == 12
    failures = []
    conn = client.tcp.connect("10.0.0.2", 4000, timeout=1.0)
    conn.on_failure = failures.append
    simulator.run(until=3.0)
    assert failures == ["connect timeout"]
    assert accepted == []


def test_half_open_entries_expire_and_listener_recovers():
    simulator, network, client, server = make_pair()
    accepted = []
    listener = server.tcp.listen(4000, accepted.append, backlog=4, syn_timeout=2.0)
    flood_listener(network, "10.0.0.2", 4000, 4, simulator.rng)
    simulator.run(until=0.5)
    assert len(listener.half_open) == 4
    simulator.run(until=5.0)  # past the SYN timeout
    assert listener.half_open == {}
    conn = client.tcp.connect("10.0.0.2", 4000)
    PlainStreamSocket(conn)
    simulator.run(until=6.0)
    assert conn.established
    assert len(accepted) == 1


# -- secure channel --------------------------------------------------------------

def secure_server(host, port, cert_key, identity, received):
    def on_connection(conn):
        channel = SecureChannel.server(conn, host.network.simulator.rng,
                                       identity=identity, cert_key=cert_key)

        def on_data(data, channel=channel):
            received.append(data)
            channel.send(b"answer:" + data)

        channel.on_data = on_data
    return host.tcp.listen(port, on_connection)


def test_secure_channel_round_trip_and_identity():
    simulator, network, client, server = make_pair()
    received = []
    secure_server(server, 853, "zone-key", "pool.ntp.org", received)
    conn = client.tcp.connect("10.0.0.2", 853)
    channel = SecureChannel.client(conn, simulator.rng,
                                   expected_identity="pool.ntp.org",
                                   trust_anchor="zone-key")
    replies = []
    channel.on_ready = lambda: channel.send(b"query")
    channel.on_data = replies.append
    simulator.run(until=1.0)
    assert received == [b"query"]
    assert replies == [b"answer:query"]
    assert channel.peer_identity == "pool.ntp.org"


def test_secure_channel_rejects_wrong_identity_and_forged_key():
    for anchor, identity, expected_fragment in (
            ("zone-key", "evil.example", "pinned"),
            ("attacker-key", "pool.ntp.org", "signature")):
        simulator, network, client, server = make_pair()
        secure_server(server, 853, "zone-key", identity, [])
        conn = client.tcp.connect("10.0.0.2", 853)
        channel = SecureChannel.client(conn, simulator.rng,
                                       expected_identity="pool.ntp.org",
                                       trust_anchor=anchor)
        failures = []
        channel.on_failure = failures.append
        simulator.run(until=1.0)
        assert len(failures) == 1 and expected_fragment in failures[0]
        assert not channel.ready


def test_secure_channel_payload_opaque_to_taps():
    simulator, network, client, server = make_pair()
    wire = bytearray()
    network.add_tap(lambda packet, now: wire.extend(packet.payload))
    received = []
    secure_server(server, 853, "zone-key", "pool.ntp.org", received)
    conn = client.tcp.connect("10.0.0.2", 853)
    channel = SecureChannel.client(conn, simulator.rng,
                                   expected_identity="pool.ntp.org",
                                   trust_anchor="zone-key")
    secret = b"SECRET-QUESTION-pool.ntp.org"
    channel.on_ready = lambda: channel.send(secret)
    simulator.run(until=1.0)
    assert received == [secret]          # the endpoint decrypts it...
    assert secret not in bytes(wire)     # ...but the wire never carries it
    assert b"SECRET" not in bytes(wire)


def test_secure_channel_deterministic_per_seed():
    def transcript(seed):
        simulator, network, client, server = make_pair(seed=seed)
        frames = []
        network.add_tap(lambda packet, now: frames.append(bytes(packet.payload)))
        secure_server(server, 853, "k", "pool.ntp.org", [])
        conn = client.tcp.connect("10.0.0.2", 853)
        channel = SecureChannel.client(conn, simulator.rng,
                                       expected_identity="pool.ntp.org",
                                       trust_anchor="k")
        channel.on_ready = lambda: channel.send(b"q")
        simulator.run(until=1.0)
        return frames

    assert transcript(5) == transcript(5)
    assert transcript(5) != transcript(6)
