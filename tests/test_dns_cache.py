"""Unit tests for the TTL-driven DNS cache."""

from __future__ import annotations

import pytest

from repro.dns.cache import DNSCache
from repro.dns.records import RecordType, a_record


def records(count=2, ttl=150, name="pool.ntp.org"):
    return [a_record(name, f"10.0.0.{i + 1}", ttl) for i in range(count)]


def test_miss_on_empty_cache():
    cache = DNSCache()
    assert cache.lookup("pool.ntp.org", RecordType.A, now=0.0) is None
    assert cache.stats.misses == 1


def test_insert_then_hit():
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(), now=0.0)
    entry = cache.lookup("pool.ntp.org", RecordType.A, now=10.0)
    assert entry is not None
    assert len(entry.records) == 2
    assert cache.stats.hits == 1
    assert cache.stats.insertions == 1


def test_lookup_is_case_insensitive():
    cache = DNSCache()
    cache.insert("Pool.NTP.org", RecordType.A, records(), now=0.0)
    assert cache.lookup("pool.ntp.org.", RecordType.A, now=1.0) is not None


def test_entry_expires_at_ttl():
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(ttl=150), now=0.0)
    assert cache.lookup("pool.ntp.org", RecordType.A, now=149.0) is not None
    assert cache.lookup("pool.ntp.org", RecordType.A, now=150.0) is None
    assert cache.stats.expirations == 1


def test_entry_ttl_is_minimum_of_record_ttls():
    cache = DNSCache()
    mixed = [a_record("pool.ntp.org", "10.0.0.1", 150),
             a_record("pool.ntp.org", "10.0.0.2", 60)]
    entry = cache.insert("pool.ntp.org", RecordType.A, mixed, now=0.0)
    assert entry.ttl == 60


def test_remaining_ttl_decreases_with_time():
    cache = DNSCache()
    entry = cache.insert("pool.ntp.org", RecordType.A, records(ttl=100), now=0.0)
    assert entry.remaining_ttl(now=0.0) == 100
    assert entry.remaining_ttl(now=40.0) == 60
    assert entry.remaining_ttl(now=200.0) == 0


def test_max_ttl_cap_applies():
    cache = DNSCache(max_ttl=3600)
    entry = cache.insert("pool.ntp.org", RecordType.A, records(ttl=2 * 86400), now=0.0)
    assert entry.ttl == 3600
    assert cache.lookup("pool.ntp.org", RecordType.A, now=3601.0) is None


def test_high_ttl_entry_survives_24h_without_cap():
    """The attack's amplifier: a >24h TTL keeps serving for the whole window."""
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(ttl=2 * 86400), now=0.0)
    for hour in range(1, 25):
        assert cache.lookup("pool.ntp.org", RecordType.A, now=hour * 3600.0) is not None


def test_benign_short_ttl_misses_every_hour():
    """pool.ntp.org's real 150 s TTL means every hourly query is a miss."""
    cache = DNSCache()
    hits = 0
    for hour in range(24):
        now = hour * 3600.0
        if cache.lookup("pool.ntp.org", RecordType.A, now=now) is None:
            cache.insert("pool.ntp.org", RecordType.A, records(ttl=150), now=now)
        else:
            hits += 1
    assert hits == 0


def test_reinsert_overwrites_previous_entry():
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(count=2), now=0.0)
    cache.insert("pool.ntp.org", RecordType.A, records(count=5), now=1.0)
    entry = cache.lookup("pool.ntp.org", RecordType.A, now=2.0)
    assert len(entry.records) == 5
    assert len(cache) == 1


def test_poisoned_flag_recorded_and_reported():
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(), now=0.0, poisoned=True)
    cache.insert("other.example", RecordType.A, records(name="other.example"), now=0.0)
    assert cache.poisoned_names() == ["pool.ntp.org"]
    assert cache.stats.poisoned_insertions == 1


def test_types_are_cached_separately():
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(), now=0.0)
    assert cache.lookup("pool.ntp.org", RecordType.NS, now=0.0) is None


def test_empty_record_set_rejected():
    cache = DNSCache()
    with pytest.raises(ValueError):
        cache.insert("pool.ntp.org", RecordType.A, [], now=0.0)


def test_flush_and_evict():
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(), now=0.0)
    cache.evict("pool.ntp.org", RecordType.A)
    assert len(cache) == 0
    cache.insert("pool.ntp.org", RecordType.A, records(), now=0.0)
    cache.flush()
    assert len(cache) == 0


def test_peek_does_not_touch_stats():
    cache = DNSCache()
    cache.insert("pool.ntp.org", RecordType.A, records(), now=0.0)
    before = (cache.stats.hits, cache.stats.misses)
    assert cache.peek("pool.ntp.org", RecordType.A) is not None
    assert (cache.stats.hits, cache.stats.misses) == before


def test_min_ttl_floor():
    cache = DNSCache(min_ttl=30)
    entry = cache.insert("pool.ntp.org", RecordType.A, records(ttl=5), now=0.0)
    assert entry.ttl == 30
