"""Unit tests for the IPv4/UDP packet models."""

from __future__ import annotations

import pytest

from repro.netsim.packets import (
    DEFAULT_MTU,
    IPV4_HEADER_SIZE,
    MINIMUM_IPV4_MTU,
    UDP_HEADER_SIZE,
    IPPacket,
    PacketError,
    UDPDatagram,
    udp_checksum,
)


def make_datagram(payload=b"hello", src="10.0.0.1", dst="10.0.0.2"):
    return UDPDatagram(src_ip=src, dst_ip=dst, src_port=1234, dst_port=53, payload=payload)


def test_constants_are_standard():
    assert IPV4_HEADER_SIZE == 20
    assert UDP_HEADER_SIZE == 8
    assert DEFAULT_MTU == 1500
    assert MINIMUM_IPV4_MTU == 68


def test_datagram_size_includes_header():
    assert make_datagram(b"x" * 100).size == 108


def test_datagram_port_validation():
    with pytest.raises(PacketError):
        UDPDatagram("10.0.0.1", "10.0.0.2", -1, 53, b"")
    with pytest.raises(PacketError):
        UDPDatagram("10.0.0.1", "10.0.0.2", 53, 70000, b"")


def test_checksum_is_deterministic():
    a = udp_checksum("10.0.0.1", "10.0.0.2", 1, 2, b"payload")
    b = udp_checksum("10.0.0.1", "10.0.0.2", 1, 2, b"payload")
    assert a == b


def test_checksum_changes_with_payload():
    base = udp_checksum("10.0.0.1", "10.0.0.2", 1, 2, b"payload")
    assert udp_checksum("10.0.0.1", "10.0.0.2", 1, 2, b"payloae") != base


def test_checksum_changes_with_addresses():
    base = udp_checksum("10.0.0.1", "10.0.0.2", 1, 2, b"payload")
    assert udp_checksum("10.0.0.3", "10.0.0.2", 1, 2, b"payload") != base


def test_checksum_never_zero():
    # UDP reserves 0 to mean "no checksum"; ours maps 0 to 0xFFFF.
    for payload in (b"", b"\x00", b"\xff\xff"):
        assert udp_checksum("0.0.0.0", "0.0.0.0", 0, 0, payload) != 0


def test_with_valid_checksum_roundtrip():
    datagram = make_datagram().with_valid_checksum()
    assert datagram.checksum is not None
    assert datagram.checksum_valid()


def test_checksum_invalid_after_payload_tamper():
    datagram = make_datagram(b"original payload").with_valid_checksum()
    tampered = UDPDatagram(
        src_ip=datagram.src_ip,
        dst_ip=datagram.dst_ip,
        src_port=datagram.src_port,
        dst_port=datagram.dst_port,
        payload=b"tampered payload",
        checksum=datagram.checksum,
    )
    assert not tampered.checksum_valid()


def test_missing_checksum_is_treated_as_valid():
    assert make_datagram().checksum_valid()


def test_ip_packet_total_size():
    packet = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"x" * 50)
    assert packet.total_size == IPV4_HEADER_SIZE + 50


def test_ip_packet_fragment_flags():
    plain = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"x")
    assert not plain.is_fragment
    first = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"x",
                     more_fragments=True)
    assert first.is_fragment and first.first_fragment()
    tail = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"x" * 8,
                    fragment_offset=8)
    assert tail.is_fragment and not tail.first_fragment()


def test_ip_packet_reassembly_key_excludes_ports():
    a = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=77, payload=b"a")
    b = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=77, payload=b"completely different")
    assert a.reassembly_key == b.reassembly_key


def test_ip_packet_reassembly_key_differs_by_ipid():
    a = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=77, payload=b"a")
    b = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=78, payload=b"a")
    assert a.reassembly_key != b.reassembly_key


def test_ip_packet_ipid_range_enforced():
    with pytest.raises(PacketError):
        IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=0x10000, payload=b"")


def test_ip_packet_offset_must_be_8_byte_aligned():
    with pytest.raises(PacketError):
        IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"", fragment_offset=4)


def test_ip_packet_negative_offset_rejected():
    with pytest.raises(PacketError):
        IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"", fragment_offset=-8)


def test_spoofed_flag_does_not_affect_equality():
    a = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"x")
    b = IPPacket(src_ip="10.0.0.1", dst_ip="10.0.0.2", ip_id=1, payload=b"x", spoofed=True)
    assert a == b
