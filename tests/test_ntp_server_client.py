"""Tests for NTP servers (honest and malicious), the querier and the traditional client."""

from __future__ import annotations

import pytest

from repro.dns.nameserver import PoolNTPNameserver
from repro.dns.resolver import RecursiveResolver, ResolverPolicy
from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.simulator import Simulator
from repro.ntp.client import TraditionalNTPClient
from repro.ntp.clock import SystemClock
from repro.ntp.query import NTPQuerier
from repro.ntp.server import MaliciousNTPServer, NTPServer


class QuerierHost(Host):
    """Minimal host wrapping an NTPQuerier for direct exchange tests."""

    def __init__(self, network, address):
        super().__init__(network, address)
        self.clock = SystemClock(network.simulator)
        self.querier = NTPQuerier(self, self.clock)

    def handle_datagram(self, datagram):
        self.querier.handle_datagram(datagram)


def build(latency=0.02, seed=1):
    simulator = Simulator(seed=seed)
    network = Network(simulator, default_link=LinkProperties(latency=latency))
    return simulator, network


# -- single exchanges --------------------------------------------------------------------

def test_honest_server_sample_offset_near_zero():
    simulator, network = build()
    server = NTPServer(network, "10.0.0.1")
    client = QuerierHost(network, "192.0.2.100")
    samples = []
    client.querier.query(server.address, samples.append)
    simulator.run(until=5.0)
    assert len(samples) == 1
    assert samples[0] is not None
    assert abs(samples[0].offset) < 0.01
    assert samples[0].delay == pytest.approx(0.04, abs=0.01)
    assert samples[0].server == server.address


def test_server_with_clock_error_reports_that_offset():
    simulator, network = build()
    server = NTPServer(network, "10.0.0.1", clock_error=0.25)
    client = QuerierHost(network, "192.0.2.100")
    samples = []
    client.querier.query(server.address, samples.append)
    simulator.run(until=5.0)
    assert samples[0].offset == pytest.approx(0.25, abs=0.01)


def test_malicious_server_shifts_offset():
    simulator, network = build()
    server = MaliciousNTPServer(network, "198.51.100.1", time_shift=600.0)
    client = QuerierHost(network, "192.0.2.100")
    samples = []
    client.querier.query(server.address, samples.append)
    simulator.run(until=5.0)
    assert samples[0].offset == pytest.approx(600.0, abs=0.01)


def test_malicious_server_shift_schedule():
    simulator, network = build()
    server = MaliciousNTPServer(network, "198.51.100.1",
                                shift_schedule=lambda true_time: 42.0)
    client = QuerierHost(network, "192.0.2.100")
    samples = []
    client.querier.query(server.address, samples.append)
    simulator.run(until=5.0)
    assert samples[0].offset == pytest.approx(42.0, abs=0.01)


def test_query_to_dead_server_times_out_with_none():
    simulator, network = build()
    client = QuerierHost(network, "192.0.2.100")
    samples = []
    client.querier.query("10.9.9.9", samples.append)
    simulator.run(until=10.0)
    assert samples == [None]
    assert client.querier.timeouts == 1


def test_client_clock_error_reflected_in_measured_offset():
    """A client whose clock runs 1 s fast sees roughly -1 s offsets."""
    simulator, network = build()
    NTPServer(network, "10.0.0.1")
    client = QuerierHost(network, "192.0.2.100")
    client.clock.adjust(1.0)
    samples = []
    client.querier.query("10.0.0.1", samples.append)
    simulator.run(until=5.0)
    assert samples[0].offset == pytest.approx(-1.0, abs=0.01)


def test_lossy_server_leads_to_timeout():
    simulator, network = build()
    NTPServer(network, "10.0.0.1", response_loss=1.0)
    client = QuerierHost(network, "192.0.2.100")
    samples = []
    client.querier.query("10.0.0.1", samples.append)
    simulator.run(until=10.0)
    assert samples == [None]


def test_server_counts_requests_and_responses():
    simulator, network = build()
    server = NTPServer(network, "10.0.0.1")
    client = QuerierHost(network, "192.0.2.100")
    for _ in range(3):
        client.querier.query(server.address, lambda s: None)
    simulator.run(until=5.0)
    assert server.requests_received == 3
    assert server.responses_sent == 3


# -- the traditional client end to end -----------------------------------------------------

def build_full_world(client_offset=0.0, server_error=0.0, seed=1):
    simulator, network = build(seed=seed)
    servers = [NTPServer(network, f"10.0.0.{i + 1}", clock_error=server_error)
               for i in range(8)]
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=[s.address for s in servers])
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address},
                                 policy=ResolverPolicy())
    client = TraditionalNTPClient(network, "192.0.2.100", resolver_address=resolver.address,
                                  poll_interval=64.0,
                                  clock=SystemClock(simulator, offset=client_offset))
    return simulator, network, client


def test_traditional_client_uses_at_most_four_servers():
    simulator, _, client = build_full_world()
    client.start()
    simulator.run(until=10.0)
    assert len(client.servers) == 4


def test_traditional_client_corrects_initial_offset():
    simulator, _, client = build_full_world(client_offset=0.5)
    client.start()
    simulator.run(until=300.0)
    assert abs(client.clock.error) < 0.05
    assert len(client.poll_history) >= 2
    assert client.poll_history[0].applied_offset == pytest.approx(-0.5, abs=0.05)


def test_traditional_client_stable_when_already_correct():
    simulator, _, client = build_full_world(client_offset=0.0)
    client.start()
    simulator.run(until=300.0)
    assert abs(client.clock.error) < 0.01


def test_traditional_client_polls_periodically():
    simulator, _, client = build_full_world()
    client.start()
    simulator.run(until=64.0 * 4)
    assert len(client.poll_history) >= 3


def test_traditional_client_retries_failed_resolution():
    simulator, network = build()
    # resolver exists but has no route to any nameserver → lookups fail
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={},
                                 policy=ResolverPolicy(query_timeout=2.0))
    client = TraditionalNTPClient(network, "192.0.2.100", resolver_address=resolver.address)
    client.start()
    simulator.run(until=10.0)
    assert client.servers == []
    assert client.dns.lookups_issued >= 1
    # a retry gets scheduled (30 s backoff)
    simulator.run(until=50.0)
    assert client.dns.lookups_issued >= 2


def test_traditional_client_max_adjustment_guard():
    simulator, network = build()
    servers = [MaliciousNTPServer(network, f"198.51.100.{i + 1}", time_shift=1000.0)
               for i in range(4)]
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=[s.address for s in servers])
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address})
    client = TraditionalNTPClient(network, "192.0.2.100", resolver_address=resolver.address,
                                  max_adjustment=16.0)
    client.start()
    simulator.run(until=200.0)
    # The panic-threshold guard refuses the huge step.
    assert abs(client.clock.error) < 1.0
