"""Fault-plan parsing, the injector's per-kind semantics, and chaos determinism."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.experiments.runner import ExperimentSpec
from repro.experiments.scheduler import SweepScheduler
from repro.faults import (
    Duplicate,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    HostOutage,
    LatencyRamp,
    LinkFlap,
    LinkLoss,
    Partition,
    ReorderJitter,
)
from repro.faults.plan import event_from_spec, event_to_spec, window_scale
from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.packets import UDPDatagram
from repro.netsim.simulator import Simulator


class Sink(Host):
    """Counts datagram deliveries."""

    def __init__(self, network, address):
        super().__init__(network, address)
        self.delivered = []

    def handle_datagram(self, datagram):
        self.delivered.append((self.network.simulator.now, datagram))


def build_net(seed=1, latency=0.01):
    sim = Simulator(seed=seed)
    net = Network(sim, default_link=LinkProperties(latency=latency))
    a = Sink(net, "10.0.0.1")
    b = Sink(net, "10.0.0.2")
    return sim, net, a, b


def send(net, src, dst, payload=b"x"):
    net.send_datagram(UDPDatagram(src_ip=src, dst_ip=dst, src_port=1000,
                                  dst_port=2000, payload=payload))


# -- plan specs ---------------------------------------------------------------

def test_every_event_kind_roundtrips_through_spec_form():
    plan = FaultPlan(events=(
        LinkLoss(start=0.0, end=10.0, loss_rate=0.5, src="a", dst="b", ramp=2.0),
        LatencyRamp(start=1.0, end=5.0, extra_latency=0.2),
        LinkFlap(start=0.0, end=30.0, down_time=2.0, up_time=3.0),
        Partition(start=0.0, end=9.0, a=("x",), b=("y", "z")),
        Duplicate(start=0.0, end=4.0, probability=0.3, delay=0.05),
        ReorderJitter(start=0.0, end=8.0, jitter=0.1),
        HostOutage(start=2.0, end=3.0, host="@nameserver"),
    ))
    spec = plan.to_spec()
    # The spec form is plain JSON data: cache keys and workers can carry it.
    json.dumps(spec)
    assert FaultPlan.from_spec(spec) == plan
    # Event instances pass through from_spec untouched.
    assert FaultPlan.from_spec(plan.events) == plan


def test_event_to_spec_includes_kind_and_all_fields():
    spec = event_to_spec(LinkLoss(start=0.0, end=1.0, loss_rate=0.25))
    assert spec["kind"] == "link_loss"
    assert spec["loss_rate"] == 0.25
    assert spec["src"] == "*" and spec["dst"] == "*"
    # Tuples (partition groups) flatten to lists for JSON.
    part = event_to_spec(Partition(start=0.0, end=1.0, a=("x",)))
    assert part["a"] == ["x"] and part["b"] == []


@pytest.mark.parametrize("bad_spec, match", [
    ({"kind": "nope", "start": 0.0, "end": 1.0}, "unknown fault kind"),
    ({"kind": "link_loss", "start": 0.0, "end": 1.0, "rate": 0.5}, "unknown field"),
    ({"kind": "link_loss", "end": 1.0}, "bad 'link_loss'"),
    ("link_loss", "must be a dict"),
])
def test_malformed_event_specs_are_rejected(bad_spec, match):
    with pytest.raises(FaultPlanError, match=match):
        event_from_spec(bad_spec)


@pytest.mark.parametrize("build", [
    lambda: LinkLoss(start=5.0, end=5.0, loss_rate=0.1),     # empty window
    lambda: LinkLoss(start=-1.0, end=5.0, loss_rate=0.1),    # negative start
    lambda: LinkLoss(start=0.0, end=1.0, loss_rate=1.5),     # rate > 1
    lambda: LinkFlap(start=0.0, end=1.0, down_time=0.0),     # degenerate flap
    lambda: Partition(start=0.0, end=1.0, a=()),             # empty group
    lambda: HostOutage(start=0.0, end=1.0, host=""),         # no host
    lambda: Duplicate(start=0.0, end=1.0, probability=0.5, delay=-1.0),
    lambda: ReorderJitter(start=0.0, end=1.0, jitter=-0.1),
    lambda: LatencyRamp(start=0.0, end=1.0, extra_latency=-0.5),
])
def test_invalid_event_parameters_are_rejected(build):
    with pytest.raises(FaultPlanError):
        build()


def test_empty_plan_is_falsy_and_iterable():
    assert not FaultPlan()
    assert len(FaultPlan()) == 0
    assert list(FaultPlan.from_spec(None)) == []
    assert FaultPlan(events=(HostOutage(start=0.0, end=1.0, host="h"),))


def test_window_scale_ramp_envelope():
    # No ramp: a step function over the window.
    assert window_scale(5.0, 0.0, 10.0, 0.0) == 1.0
    assert window_scale(10.0, 0.0, 10.0, 0.0) == 0.0   # end-exclusive
    assert window_scale(-1.0, 0.0, 10.0, 0.0) == 0.0
    # With a ramp, intensity climbs linearly then falls symmetrically.
    assert window_scale(1.0, 0.0, 10.0, 2.0) == pytest.approx(0.5)
    assert window_scale(5.0, 0.0, 10.0, 2.0) == 1.0
    assert window_scale(9.0, 0.0, 10.0, 2.0) == pytest.approx(0.5)


# -- injector semantics -------------------------------------------------------

def test_full_window_loss_drops_and_accounts_packets():
    sim, net, a, b = build_net(seed=3)
    injector = FaultInjector(net, FaultPlan(events=(
        LinkLoss(start=0.0, end=100.0, loss_rate=1.0,
                 src="10.0.0.1", dst="10.0.0.2"),
    ))).arm()
    for _ in range(5):
        send(net, "10.0.0.1", "10.0.0.2")
    # The reverse direction does not match and passes.
    send(net, "10.0.0.2", "10.0.0.1")
    sim.run(until=1.0)
    assert b.delivered == []
    assert len(a.delivered) == 1
    assert injector.stats.drops == {"loss": 5}
    assert injector.stats.packets_dropped == 5
    assert net.packets_dropped == 5


def test_probabilistic_loss_is_reproducible_per_seed():
    def dropped(seed):
        sim, net, a, b = build_net(seed=seed)
        FaultInjector(net, FaultPlan(events=(
            LinkLoss(start=0.0, end=100.0, loss_rate=0.5),
        ))).arm()
        for i in range(40):
            send(net, "10.0.0.1", "10.0.0.2", payload=bytes([i]))
        sim.run(until=1.0)
        return [d.payload[0] for _, d in b.delivered]

    assert dropped(seed=7) == dropped(seed=7)
    assert dropped(seed=7) != dropped(seed=8)


def test_host_outage_blocks_both_directions_without_rng_draws():
    sim, net, a, b = build_net(seed=4)
    injector = FaultInjector(net, FaultPlan(events=(
        HostOutage(start=0.0, end=100.0, host="10.0.0.2"),
    ))).arm()
    state = sim.rng.getstate()
    send(net, "10.0.0.1", "10.0.0.2")
    send(net, "10.0.0.2", "10.0.0.1")
    # Hard faults are checked before any probabilistic draw, so the run's
    # RNG stream is exactly what it would be had the packets never existed.
    assert sim.rng.getstate() == state
    sim.run(until=1.0)
    assert a.delivered == [] and b.delivered == []
    assert injector.stats.drops == {"outage": 2}


def test_outage_window_closes_and_host_recovers():
    sim, net, a, b = build_net(seed=4)
    FaultInjector(net, FaultPlan(events=(
        HostOutage(start=0.0, end=5.0, host="10.0.0.2"),
    ))).arm()
    send(net, "10.0.0.1", "10.0.0.2")           # dropped: outage active
    sim.schedule(6.0, lambda: send(net, "10.0.0.1", "10.0.0.2"))
    sim.run(until=10.0)
    assert len(b.delivered) == 1                 # the post-restart packet


def test_partition_with_empty_b_cuts_group_from_everyone():
    sim, net, a, b = build_net(seed=5)
    c = Sink(net, "10.0.0.3")
    injector = FaultInjector(net, FaultPlan(events=(
        Partition(start=0.0, end=100.0, a=("10.0.0.1",)),
    ))).arm()
    send(net, "10.0.0.1", "10.0.0.2")   # crosses the cut: dropped
    send(net, "10.0.0.2", "10.0.0.1")   # crosses the cut: dropped
    send(net, "10.0.0.2", "10.0.0.3")   # both outside group a: passes
    sim.run(until=1.0)
    assert a.delivered == [] and b.delivered == []
    assert len(c.delivered) == 1
    assert injector.stats.drops == {"partition": 2}


def test_two_sided_partition_only_blocks_cross_group_traffic():
    sim, net, a, b = build_net(seed=5)
    c = Sink(net, "10.0.0.3")
    FaultInjector(net, FaultPlan(events=(
        Partition(start=0.0, end=100.0, a=("10.0.0.1",), b=("10.0.0.2",)),
    ))).arm()
    send(net, "10.0.0.1", "10.0.0.2")   # a -> b: dropped
    send(net, "10.0.0.1", "10.0.0.3")   # a -> outside: passes
    sim.run(until=1.0)
    assert b.delivered == []
    assert len(c.delivered) == 1


def test_link_flap_square_wave_timeline():
    sim, net, a, b = build_net(seed=6)
    injector = FaultInjector(net, FaultPlan(events=(
        LinkFlap(start=0.0, end=10.0, down_time=2.0, up_time=2.0,
                 src="10.0.0.1", dst="10.0.0.2"),
    ))).arm()
    # Down [0,2), up [2,4), down [4,6), up [6,8), down [8,10), up after.
    for t in (1.0, 3.0, 5.0, 7.0, 11.0):
        sim.schedule(t, lambda: send(net, "10.0.0.1", "10.0.0.2"))
    sim.run(until=15.0)
    delivered_at = [round(t - 0.01, 3) for t, _ in b.delivered]
    assert delivered_at == [3.0, 7.0, 11.0]
    assert injector.stats.drops == {"flap": 2}


def test_duplicate_delivers_packet_twice():
    sim, net, a, b = build_net(seed=7)
    injector = FaultInjector(net, FaultPlan(events=(
        Duplicate(start=0.0, end=10.0, probability=1.0, delay=0.5,
                  src="10.0.0.1", dst="10.0.0.2"),
    ))).arm()
    send(net, "10.0.0.1", "10.0.0.2")
    sim.run(until=2.0)
    assert len(b.delivered) == 2
    first, second = (t for t, _ in b.delivered)
    assert second - first == pytest.approx(0.5)
    assert injector.stats.packets_duplicated == 1
    assert net.packets_duplicated == 1


def test_latency_ramp_delays_matching_packets():
    sim, net, a, b = build_net(seed=8)
    injector = FaultInjector(net, FaultPlan(events=(
        LatencyRamp(start=0.0, end=100.0, extra_latency=1.0),
    ))).arm()
    send(net, "10.0.0.1", "10.0.0.2")
    sim.run(until=5.0)
    assert [t for t, _ in b.delivered] == [pytest.approx(1.01)]
    assert injector.stats.packets_delayed == 1


def test_reorder_jitter_reorders_a_burst():
    sim, net, a, b = build_net(seed=9)
    FaultInjector(net, FaultPlan(events=(
        ReorderJitter(start=0.0, end=100.0, jitter=0.5),
    ))).arm()
    for i in range(10):
        send(net, "10.0.0.1", "10.0.0.2", payload=bytes([i]))
    sim.run(until=2.0)
    order = [d.payload[0] for _, d in b.delivered]
    assert len(order) == 10
    assert order != sorted(order)       # at least one inversion at this seed


def test_windows_already_open_at_arm_time_apply_synchronously():
    sim, net, a, b = build_net(seed=10)
    FaultInjector(net, FaultPlan(events=(
        LinkLoss(start=0.0, end=100.0, loss_rate=1.0),
    ))).arm()
    # No simulator step has run yet — the packet must still hit the fault.
    send(net, "10.0.0.1", "10.0.0.2")
    sim.run(until=1.0)
    assert b.delivered == []


def test_unknown_alias_is_rejected_at_arm_time():
    sim, net, a, b = build_net()
    injector = FaultInjector(net, FaultPlan(events=(
        HostOutage(start=0.0, end=1.0, host="@nameserver"),
    )), aliases={"@resolver": "10.0.0.1"})
    with pytest.raises(FaultPlanError, match="unknown address alias"):
        injector.arm()


def test_injector_arms_only_once():
    sim, net, a, b = build_net()
    injector = FaultInjector(net, FaultPlan(events=(
        HostOutage(start=0.0, end=1.0, host="10.0.0.2"),
    ))).arm()
    with pytest.raises(FaultPlanError, match="armed once"):
        injector.arm()


# -- testbed and sweep integration --------------------------------------------

def test_testbed_without_faults_has_no_injector():
    from repro.experiments.testbed import TestbedConfig, build_testbed
    testbed = build_testbed(TestbedConfig(seed=1))
    assert testbed.faults is None
    assert testbed.network.faults is None


def test_testbed_resolves_builtin_aliases():
    from repro.experiments.testbed import TestbedConfig, build_testbed
    cfg = TestbedConfig(seed=1, faults=(
        {"kind": "host_outage", "start": 0.0, "end": 9e9, "host": "@nameserver"},
    ))
    testbed = build_testbed(cfg)
    assert testbed.faults is not None
    assert testbed.network.faults is testbed.faults
    assert testbed.faults._down_hosts == {cfg.nameserver_address: 1}


def test_scenario_rejects_unknown_params_but_accepts_faults():
    from repro.experiments.registry import get_scenario
    scenario = get_scenario("frag_poisoning")
    # ``faults`` is an *optional* param: absent from default_params() (so
    # pinned digests of fault-free sweeps never change) yet accepted when
    # explicitly supplied.
    assert "faults" not in scenario.default_params()
    with pytest.raises(ValueError, match="unknown scenario parameter"):
        scenario.run(seed=1, params={"fautls": ()})


CHAOS_FAULTS = (
    {"kind": "link_loss", "loss_rate": 0.4, "src": "@nameserver",
     "dst": "@resolver", "start": 0.0, "end": 9e9, "ramp": 30.0},
    {"kind": "link_flap", "down_time": 3.0, "up_time": 11.0,
     "src": "@resolver", "dst": "@nameserver", "start": 10.0, "end": 600.0},
    {"kind": "reorder_jitter", "jitter": 0.05, "start": 0.0, "end": 9e9},
    {"kind": "duplicate", "probability": 0.1, "delay": 0.02,
     "start": 0.0, "end": 9e9},
)

#: Digest of the pinned chaos grid below.  This hex is the contract that
#: faulted sweeps are deterministic *across releases*, not just within one
#: process: worker counts, chunk orders and population backends must all
#: reproduce it.  If a deliberate semantic change to the fault subsystem
#: moves it, re-pin with the value from the failure message.
CHAOS_GRID_DIGEST = "b7789500e91733242db1daea42721960e4a8d69f050c929523a52d83243c2178"


def chaos_grid_specs():
    return [
        ExperimentSpec(scenario="frag_poisoning", seeds=(1, 2),
                       base_params={"benign_server_count": 40},
                       param_sets=({"faults": CHAOS_FAULTS}, {"faults": ()})),
        ExperimentSpec(scenario="downgrade", seeds=(1,),
                       param_sets=({"faults": CHAOS_FAULTS},)),
        ExperimentSpec(scenario="population_sweep", seeds=(1,),
                       base_params={"clients": 200, "update_rounds": 2}),
    ]


def chaos_grid_digest(workers, backend=None, monkeypatch=None):
    if backend is not None:
        monkeypatch.setenv("REPRO_POPULATION_BACKEND", backend)
    results, _ = SweepScheduler(workers=workers).run_specs(chaos_grid_specs())
    digest = hashlib.sha256()
    for result in results:
        for record in result.records:
            digest.update(json.dumps(record.canonical(), sort_keys=True).encode())
    return digest.hexdigest()


def test_chaos_grid_digest_is_pinned_and_worker_count_independent():
    inline = chaos_grid_digest(workers=1)
    pooled = chaos_grid_digest(workers=4)
    assert inline == pooled
    assert inline == CHAOS_GRID_DIGEST, (
        f"chaos grid digest moved: {inline} (pinned {CHAOS_GRID_DIGEST})")


def test_chaos_grid_digest_is_population_backend_independent(monkeypatch):
    python = chaos_grid_digest(workers=1, backend="python", monkeypatch=monkeypatch)
    assert python == CHAOS_GRID_DIGEST


def test_faulted_scenario_differs_from_fault_free_run():
    from repro.experiments.registry import get_scenario
    scenario = get_scenario("frag_poisoning")
    clean = scenario.run(seed=1, params={"benign_server_count": 40})
    heavy = scenario.run(seed=1, params={
        "benign_server_count": 40,
        "faults": ({"kind": "link_loss", "loss_rate": 0.95, "src": "@nameserver",
                    "dst": "@resolver", "start": 0.0, "end": 9e9},),
    })
    # The chaos must actually bite: heavy upstream loss changes the outcome.
    assert clean != heavy
