"""Unit tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.netsim.simulator import SimulationError, Simulator


def test_initial_time_defaults_to_zero():
    assert Simulator().now == 0.0


def test_initial_time_can_be_set():
    assert Simulator(start_time=100.0).now == 100.0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, lambda lbl=label: order.append(lbl))
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator(start_time=10.0)
    fired = []
    sim.schedule_at(15.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [15.0]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0  # clock advanced to the until mark
    sim.run()
    assert fired == [1, 10]


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("exact"))
    sim.run(until=5.0)
    assert fired == ["exact"]


def test_run_for_advances_relative_to_now():
    sim = Simulator(start_time=100.0)
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.run_for(5.0)
    assert fired == [102.0]
    assert sim.now == 105.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("no"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent_after_fire():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    handle.cancel()  # must not raise
    assert handle.cancelled


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_step_processes_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_max_events_limits_processing():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=4)
    assert len(fired) == 4


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_next_time() == 2.0


def test_peek_next_time_empty_returns_none():
    assert Simulator().peek_next_time() is None


def test_rng_determinism_same_seed():
    values_a = [Simulator(seed=7).rng.random() for _ in range(1)]
    values_b = [Simulator(seed=7).rng.random() for _ in range(1)]
    assert values_a == values_b


def test_rng_differs_across_seeds():
    assert Simulator(seed=1).rng.random() != Simulator(seed=2).rng.random()


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_clock_never_goes_backwards():
    sim = Simulator()
    observed = []
    for delay in (5.0, 1.0, 3.0, 2.0):
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)


# -- cancelled-event compaction ------------------------------------------------

def test_events_cancelled_counter_counts_dead_entries_only():
    sim = Simulator()
    fired = sim.schedule(1.0, lambda: None)
    pending = sim.schedule(5.0, lambda: None)
    sim.run(until=2.0)
    # Cancelling after the fire is not a dead heap entry.
    fired.cancel()
    assert sim.events_cancelled == 0
    pending.cancel()
    pending.cancel()  # idempotent: counted once
    assert sim.events_cancelled == 1


def test_mass_cancellation_compacts_the_heap_automatically():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
    assert sim.queue_length == 200
    for handle in handles[:150]:
        handle.cancel()
    # The 100th cancel trips the threshold (>= 64 cancelled making up half
    # the heap) and compacts 200 entries down to the 100 live ones; the
    # remaining 50 cancels stay below threshold and are reclaimed lazily.
    assert sim.queue_length == 100
    assert sim.pending_events == 50
    assert sim.events_cancelled == 150
    sim.run()
    assert sim.events_processed == 50


def test_explicit_compact_drops_cancelled_entries():
    sim = Simulator()
    keep = []
    handles = [sim.schedule(float(i + 1), lambda i=i: keep.append(i)) for i in range(10)]
    for handle in handles[::2]:
        handle.cancel()
    assert sim.queue_length == 10  # below the automatic threshold
    sim.compact()
    assert sim.queue_length == 5
    assert sim.pending_events == 5
    sim.run()
    assert keep == [1, 3, 5, 7, 9]


def test_compaction_preserves_insertion_order_for_same_time_events():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"))
    doomed = [sim.schedule(1.0, lambda: order.append("dead")) for _ in range(3)]
    sim.schedule(1.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("c"))
    for handle in doomed:
        handle.cancel()
    sim.compact()
    sim.run()
    assert order == ["a", "b", "c"]


def test_peek_and_step_reclaim_cancelled_entries_lazily():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.queue_length == 2
    assert sim.peek_next_time() == 2.0
    assert sim.queue_length == 1  # the dead head was popped during the peek
    assert sim.step() is True
    assert sim.step() is False
