"""Tests for Chronos pool generation and the full Chronos client (benign runs)."""

from __future__ import annotations

import pytest

from repro.core.chronos_client import ChronosClient, UpdateOutcome
from repro.core.pool_generation import PoolComposition, PoolGenerationPolicy
from repro.core.selection import ChronosConfig
from repro.dns.nameserver import PoolNTPNameserver
from repro.dns.resolver import RecursiveResolver, ResolverPolicy
from repro.netsim.addresses import AddressAllocator
from repro.netsim.network import LinkProperties, Network
from repro.netsim.simulator import Simulator
from repro.ntp.server import NTPServer


def build_world(server_count=100, policy=None, chronos_config=None, seed=9,
                records_per_response=4):
    simulator = Simulator(seed=seed)
    network = Network(simulator, default_link=LinkProperties(latency=0.01))
    allocator = AddressAllocator("10.50.0.0/16")
    servers = [NTPServer(network, allocator.allocate()) for _ in range(server_count)]
    nameserver = PoolNTPNameserver(network, "192.0.2.53", zone_name="pool.ntp.org",
                                   pool_servers=[s.address for s in servers],
                                   records_per_response=records_per_response)
    resolver = RecursiveResolver(network, "192.0.2.1",
                                 nameserver_map={"pool.ntp.org": nameserver.address},
                                 policy=ResolverPolicy())
    client = ChronosClient(network, "192.0.2.100", resolver_address=resolver.address,
                           config=chronos_config or ChronosConfig(),
                           pool_policy=policy)
    return simulator, network, nameserver, resolver, client


# -- policy validation --------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        PoolGenerationPolicy(query_count=0)
    with pytest.raises(ValueError):
        PoolGenerationPolicy(query_interval=0.0)


def test_pool_composition_two_thirds_boundary():
    assert PoolComposition(benign=44, malicious=89).attacker_has_two_thirds
    assert PoolComposition(benign=44, malicious=88).attacker_has_two_thirds
    assert not PoolComposition(benign=48, malicious=89).attacker_has_two_thirds
    assert not PoolComposition(benign=0, malicious=0).attacker_has_two_thirds
    assert PoolComposition(benign=1, malicious=2).attacker_has_two_thirds


def test_pool_composition_fraction():
    composition = PoolComposition(benign=44, malicious=89)
    assert composition.total == 133
    assert composition.malicious_fraction == pytest.approx(89 / 133)


# -- pool generation -----------------------------------------------------------------------

def test_pool_generation_issues_24_hourly_queries():
    simulator, _, nameserver, _, client = build_world()
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    assert len(pools) == 1
    pool = pools[0]
    assert len(pool.queries) == 24
    assert nameserver.queries_received == 24
    # queries are an hour apart
    gaps = [pool.queries[i + 1].issued_at - pool.queries[i].issued_at
            for i in range(len(pool.queries) - 1)]
    assert all(abs(gap - 3600.0) < 5.0 for gap in gaps)
    assert pool.completed_at - pool.started_at >= 23 * 3600


def test_pool_size_approaches_96_with_large_zone():
    simulator, _, _, _, client = build_world(server_count=400)
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    pool = pools[0]
    # 24 responses x 4 addresses, minus the occasional duplicate
    assert 80 <= pool.size <= 96


def test_pool_without_dedupe_counts_every_address():
    policy = PoolGenerationPolicy(dedupe=False)
    simulator, _, _, _, client = build_world(server_count=400, policy=policy)
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    assert pools[0].size == 96


def test_pool_generation_with_small_zone_dedupes_hard():
    simulator, _, _, _, client = build_world(server_count=10)
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    assert pools[0].size <= 10


def test_max_addresses_per_response_cap():
    policy = PoolGenerationPolicy(max_addresses_per_response=2)
    simulator, _, _, _, client = build_world(server_count=400, policy=policy,
                                             records_per_response=4)
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    pool = pools[0]
    assert all(len(record.accepted_addresses) <= 2 for record in pool.queries)
    assert pool.size <= 48


def test_high_ttl_filter_rejects_responses():
    policy = PoolGenerationPolicy(max_accepted_ttl=100)  # below the zone's 150 s TTL
    simulator, _, _, _, client = build_world(policy=policy)
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    pool = pools[0]
    assert pool.size == 0
    assert all(record.rejected_high_ttl for record in pool.queries if record.addresses)


def test_query_records_capture_ttl_and_addresses():
    simulator, _, _, _, client = build_world()
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    record = pools[0].queries[0]
    assert record.min_ttl == 150
    assert len(record.addresses) == 4
    assert record.accepted_addresses == record.addresses
    assert not record.failed


def test_generation_cannot_run_twice_concurrently():
    simulator, _, _, _, client = build_world()
    client.pool_generator.generate(lambda pool: None)
    with pytest.raises(RuntimeError):
        client.pool_generator.generate(lambda pool: None)


def test_generation_with_unresolvable_zone_marks_failures():
    simulator = Simulator(seed=3)
    network = Network(simulator)
    resolver = RecursiveResolver(network, "192.0.2.1", nameserver_map={},
                                 policy=ResolverPolicy(query_timeout=2.0))
    client = ChronosClient(network, "192.0.2.100", resolver_address=resolver.address,
                           pool_policy=PoolGenerationPolicy(query_count=3,
                                                            query_interval=10.0))
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=200.0)
    assert len(pools) == 1
    assert pools[0].size == 0
    assert all(record.failed for record in pools[0].queries)


def test_composition_against_known_malicious_set():
    simulator, _, _, _, client = build_world(server_count=50)
    pools = []
    client.pool_generator.generate(pools.append)
    simulator.run(until=24 * 3600 + 300)
    pool = pools[0]
    composition = pool.composition(["203.0.113.1"])  # not in the pool
    assert composition.malicious == 0
    assert composition.benign == pool.size
    composition2 = pool.composition(pool.servers[:5])
    assert composition2.malicious == 5


# -- the full client, benign operation ---------------------------------------------------------

def test_chronos_client_start_generates_pool_then_updates():
    simulator, _, _, _, client = build_world(server_count=300)
    client.start()
    simulator.run(until=24 * 3600 + 4 * client.config.poll_interval)
    assert client.pool is not None
    assert client.pool.size > 50
    assert len(client.update_history) >= 2
    applied = [r for r in client.update_history if r.outcome is UpdateOutcome.APPLIED]
    assert applied, "at least one update must have been applied"
    assert abs(client.clock_error) < 0.1


def test_chronos_client_corrects_initial_clock_error():
    simulator, network, _, _, client = build_world(server_count=300, seed=21)
    client.clock.adjust(0.05, source="initial-error")
    client.start()
    simulator.run(until=24 * 3600 + 4 * client.config.poll_interval)
    assert abs(client.clock_error) < 0.02


def test_chronos_client_requires_pool_before_updates():
    simulator, _, _, _, client = build_world()
    with pytest.raises(RuntimeError):
        client.begin_updates()


def test_chronos_client_start_is_idempotent():
    simulator, _, nameserver, _, client = build_world()
    client.start()
    client.start()
    simulator.run(until=7200.0)
    # only one generation sequence is running: at most 3 queries in 2 hours
    assert nameserver.queries_received <= 3


def test_chronos_client_samples_subset_of_pool():
    simulator, _, _, _, client = build_world(server_count=300)
    client.start()
    simulator.run(until=24 * 3600 + 2 * client.config.poll_interval)
    record = client.update_history[0]
    assert len(record.sampled_servers) == client.config.sample_size
    assert set(record.sampled_servers) <= set(client.pool.servers)
