"""Tests for DNS stream transports (TCP/DoT/DoH), TC truncation and fallback."""

from __future__ import annotations

import pytest

from repro.dns.message import DNSMessage
from repro.dns.records import RecordType
from repro.dns.transport import (
    DNSFrameDecoder,
    DNSServerTransport,
    DoHMessageDecoder,
    doh_request,
    doh_response,
    frame_dns,
)
from repro.experiments import TestbedConfig, build_testbed

ZONE = "pool.ntp.org"


def build(transports=(), udp_limit=None, defenses=(), cert_key=None, **overrides):
    overrides.setdefault("records_per_response", 40)
    config = TestbedConfig(
        seed=5,
        benign_server_count=50,
        nameserver_transports=tuple(transports),
        nameserver_udp_payload_limit=udp_limit,
        transport_cert_key=cert_key,
        defenses=defenses,
        with_attacker=False,
        **overrides,
    )
    return build_testbed(config)


def cached_records(testbed):
    entry = testbed.resolver.cache.peek(ZONE, RecordType.A)
    return list(entry.records) if entry is not None else None


# -- framing --------------------------------------------------------------------

def test_dns_frame_decoder_handles_split_and_coalesced_frames():
    wire_a = DNSMessage.query(1, ZONE).encode()
    wire_b = DNSMessage.query(2, ZONE).encode()
    stream = frame_dns(wire_a) + frame_dns(wire_b)
    decoder = DNSFrameDecoder()
    # Feed byte-by-byte: frames only complete at their exact boundary.
    out = []
    for index in range(len(stream)):
        out.extend(decoder.feed(stream[index:index + 1]))
    assert out == [wire_a, wire_b]
    # Coalesced feed yields both at once.
    assert DNSFrameDecoder().feed(stream) == [wire_a, wire_b]


def test_doh_codec_round_trip():
    wire = DNSMessage.query(7, ZONE).encode()
    decoder = DoHMessageDecoder()
    assert decoder.feed(doh_request(wire)) == [wire]
    assert DoHMessageDecoder().feed(doh_response(wire) * 2) == [wire, wire]
    assert b"POST /dns-query" in doh_request(wire)
    assert b"200 OK" in doh_response(wire)


# -- nameserver truncation (TC bit) ---------------------------------------------

def test_nameserver_truncates_oversized_udp_responses():
    testbed = build(udp_limit=512)
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=3.0)
    assert testbed.nameserver.truncated_responses == 1
    assert testbed.resolver.truncated_responses == 1


def test_truncated_response_is_never_cached_without_fallback_path():
    testbed = build(udp_limit=512)  # no stream listeners: retry cannot land
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=20.0)
    assert cached_records(testbed) is None
    assert testbed.resolver.timeouts == 1


def test_small_responses_stay_untruncated_under_a_limit():
    testbed = build(udp_limit=1472, records_per_response=4)
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=3.0)
    assert testbed.nameserver.truncated_responses == 0
    assert len(cached_records(testbed)) == 4


def test_tc_triggers_tcp_retry_and_full_answer():
    testbed = build(transports=("tcp",), udp_limit=512)
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=5.0)
    transport = testbed.resolver.upstream_transport
    assert transport is not None and transport.tcp_retries == 1
    assert testbed.nameserver.stream_transport.queries_answered["tcp"] == 1
    # The stream answer is complete: all 40 records, no truncation.
    assert len(cached_records(testbed)) == 40


# -- server transports -----------------------------------------------------------

def test_server_transport_rejects_unknown_and_keyless_encrypted():
    testbed = build()
    with pytest.raises(ValueError, match="unknown stream transport"):
        DNSServerTransport(testbed.nameserver, transports=("quic",))
    with pytest.raises(ValueError, match="certificate key"):
        DNSServerTransport(testbed.nameserver, transports=("dot",))


@pytest.mark.parametrize("defense,label", [
    (("encrypted_transport",), "dot"),
    (("encrypted_transport_doh",), "doh"),
])
def test_encrypted_transport_resolves_over_tls(defense, label):
    testbed = build(defenses=defense)
    assert label in testbed.config.nameserver_transports
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=5.0)
    assert len(cached_records(testbed)) == 40
    assert testbed.nameserver.stream_transport.queries_answered[label] == 1
    transport = testbed.resolver.upstream_transport
    assert transport.encrypted_queries == 1
    assert transport.encrypted_failures == 0
    assert transport.downgraded_queries == 0


def test_encrypted_transport_payload_opaque_on_the_wire():
    testbed = build(defenses=("encrypted_transport",))
    wire = bytearray()
    testbed.network.add_tap(lambda packet, now: wire.extend(packet.payload))
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=5.0)
    assert len(cached_records(testbed)) == 40
    # The qname travels in every plaintext DNS message; over DoT the taps
    # must never see it (neither the query nor the answer section).
    from repro.dns.wire import encode_name

    assert encode_name(ZONE) not in bytes(wire)


def test_strict_policy_fails_closed_when_listener_missing():
    # A strict resolver pointed at a nameserver with no DoT listener: the
    # query must fail (SERVFAIL via timeout), never fall back to UDP.
    testbed = build(defenses=("encrypted_transport",))
    listener = testbed.nameserver.tcp.listeners.pop(853)
    assert listener is not None
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=20.0)
    assert cached_records(testbed) is None
    transport = testbed.resolver.upstream_transport
    assert transport.encrypted_failures == 1
    assert transport.downgraded_queries == 0
    assert testbed.nameserver.queries_received == 0  # no plaintext leaked


def test_opportunistic_policy_falls_back_and_holds_down():
    testbed = build(defenses=("encrypted_transport_opportunistic",))
    testbed.nameserver.tcp.listeners.pop(853)
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=10.0)
    transport = testbed.resolver.upstream_transport
    assert transport.downgraded_queries == 1
    assert len(cached_records(testbed)) == 40  # answered over plaintext UDP
    # Within the hold-down window the next query goes straight to UDP
    # without a new encrypted attempt.
    testbed.resolver.cache = type(testbed.resolver.cache)()
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=20.0)
    assert transport.encrypted_queries == 1
    assert transport.downgraded_queries == 2


def spoof_response_for_pending(testbed, src_ip=None, dst_port=None,
                               truncated=False, address="6.6.6.6"):
    """Forge a UDP response matching the resolver's one pending query."""
    from dataclasses import replace

    from repro.dns.records import a_record
    from repro.netsim.packets import UDPDatagram

    [(key, pending)] = testbed.resolver._pending.items()
    response = pending.upstream_query.make_response(
        [] if truncated else [a_record(ZONE, address, 300)])
    if truncated:
        response = replace(response, truncated=True)
    return UDPDatagram(
        src_ip=src_ip or testbed.nameserver.address,
        dst_ip=testbed.resolver.address,
        src_port=53,
        dst_port=dst_port if dst_port is not None else pending.source_port,
        payload=response.encode(),
    )


def test_strict_dot_rejects_spoofed_plaintext_responses():
    # The query is out on DoT; a spoofed UDP datagram matching every classic
    # field (txid, question, source address, port) must still be rejected —
    # otherwise "strict" would be DoT on the wire but poisonable by datagram.
    testbed = build(defenses=("encrypted_transport",), latency=0.3)
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=0.1)  # query pending, DoT handshake in flight
    testbed.network.send_datagram(spoof_response_for_pending(testbed))
    testbed.simulator.run(until=0.5)  # spoof delivered, DoT answer not yet
    assert testbed.resolver.responses_rejected >= 1
    cached = cached_records(testbed)
    assert cached is None or "6.6.6.6" not in [r.rdata for r in cached]
    testbed.simulator.run(until=20.0)
    # The genuine DoT answer still lands.
    assert len(cached_records(testbed)) == 40


def test_spoofed_tc_stub_cannot_burn_the_stream_retry():
    # A TC=1 stub that fails the provenance checks (wrong source address or
    # wrong destination port) must be rejected without consuming the
    # one-shot TCP retry or conjuring a plaintext connection.
    testbed = build(transports=("tcp",), udp_limit=512, latency=0.5)
    testbed.resolver.trigger_lookup(ZONE)
    testbed.simulator.run(until=0.1)
    testbed.network.send_datagram(
        spoof_response_for_pending(testbed, src_ip="198.51.100.99", truncated=True))
    testbed.network.send_datagram(
        spoof_response_for_pending(testbed, dst_port=4444, truncated=True))
    testbed.simulator.run(until=0.8)  # spoofs delivered, genuine TC not yet
    assert testbed.resolver.responses_rejected == 2
    assert testbed.resolver.truncated_responses == 0
    [(key, pending)] = testbed.resolver._pending.items()
    assert not pending.stream_retry
    # The genuine truncated response then drives the normal TCP fallback.
    testbed.simulator.run(until=20.0)
    assert testbed.resolver.upstream_transport.tcp_retries == 1
    assert len(cached_records(testbed)) == 40


def test_encrypted_transports_identical_results_across_seeds_runs():
    def run(seed):
        testbed = build(defenses=("encrypted_transport",))
        testbed.resolver.trigger_lookup(ZONE)
        testbed.simulator.run(until=5.0)
        return [record.rdata for record in cached_records(testbed)]

    assert run(5) == run(5)
