"""Tests for the shared sweep-execution layer (scheduler + matrix wiring).

The load-bearing contract is inherited from the runner and strengthened:
flattening many specs into one task stream, executing them on one shared
pool with guided chunking, and replaying cells from the persistent cache
must all be *invisible* in the output — byte-identical digests across worker
counts, across the shared and legacy per-row paths, and across cold and warm
cache runs.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    AttackSpec,
    DefenseStackSpec,
    ExperimentRunner,
    ExperimentSpec,
    RunCache,
    SweepError,
    SweepScheduler,
    guided_chunk_sizes,
    matrix_specs,
    run_defense_matrix,
)

CHEAP_BGP = {"benign_server_count": 10}
CHEAP_FRAG = {"benign_server_count": 40}

#: The same cheap determinism grid the matrix tests use: both poisoning
#: vectors under three stacks with tiny populations.
TRIMMED_ATTACKS = (
    AttackSpec("bgp_hijack", "bgp_hijack", CHEAP_BGP),
    AttackSpec("frag_poisoning", "frag_poisoning", CHEAP_FRAG),
)
TRIMMED_STACKS = (
    DefenseStackSpec("classic", ()),
    DefenseStackSpec("dnssec", ("response_signing",)),
    DefenseStackSpec("multi_vantage", ("multi_vantage",)),
)


# -- guided chunking ----------------------------------------------------------

def test_guided_chunk_sizes_cover_the_stream_and_decrease():
    sizes = guided_chunk_sizes(100, 4)
    assert sum(sizes) == 100
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] == 12  # 100 // (2 * 4)
    assert sizes[-1] == 1  # the tail is dispatched task-by-task


def test_guided_chunk_sizes_edge_cases():
    assert guided_chunk_sizes(0, 4) == []
    assert guided_chunk_sizes(1, 4) == [1]
    assert guided_chunk_sizes(3, 8) == [1, 1, 1]
    assert sum(guided_chunk_sizes(7, 2)) == 7
    with pytest.raises(ValueError):
        guided_chunk_sizes(-1, 2)
    with pytest.raises(ValueError):
        guided_chunk_sizes(10, 0)


# -- flattened multi-spec execution -------------------------------------------

def _two_specs():
    return [
        ExperimentSpec(scenario="bgp_hijack", seeds=(1, 2), base_params=CHEAP_BGP),
        ExperimentSpec(scenario="frag_poisoning", seeds=(1, 2),
                       base_params=CHEAP_FRAG),
    ]


def test_run_specs_matches_individual_runners_bit_for_bit():
    shared, stats = SweepScheduler(workers=1).run_specs(_two_specs())
    individual = [ExperimentRunner(spec=spec, workers=1).run()
                  for spec in _two_specs()]
    assert stats.tasks_total == 4
    assert [result.scenario for result in shared] == ["bgp_hijack", "frag_poisoning"]
    for shared_result, single_result in zip(shared, individual):
        assert shared_result.records == single_result.records
        assert shared_result.digest() == single_result.digest()


def test_run_specs_is_deterministic_across_worker_counts():
    specs = _two_specs()
    sequential, _ = SweepScheduler(workers=1).run_specs(specs)
    # Tiny stream + many workers exercises the inline fallback...
    inline, inline_stats = SweepScheduler(workers=8).run_specs(specs)
    assert inline_stats.executed_inline
    # ...while workers=2 over 4 tasks exercises the pooled path.
    pooled, pooled_stats = SweepScheduler(workers=2).run_specs(specs)
    assert not pooled_stats.executed_inline
    for a, b, c in zip(sequential, inline, pooled):
        assert a.digest() == b.digest() == c.digest()


def test_inline_fallback_when_workers_would_idle():
    spec = ExperimentSpec(scenario="bgp_hijack", seeds=(1, 2, 3),
                          base_params=CHEAP_BGP)
    # 3 tasks on 3 (or more) workers: the pool would cost more than the
    # tasks and leave nothing to load-balance, so execution stays inline.
    _, stats = SweepScheduler(workers=3).run_specs([spec])
    assert stats.executed_inline
    _, stats = SweepScheduler(workers=2).run_specs([spec])
    assert not stats.executed_inline
    assert stats.chunks >= 2


def test_scheduler_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        SweepScheduler(workers=0)


# -- progress reporting ---------------------------------------------------------

def test_on_progress_reports_every_inline_task():
    calls = []
    spec = ExperimentSpec(scenario="bgp_hijack", seeds=(1, 2, 3),
                          base_params=CHEAP_BGP)
    _, stats = SweepScheduler(workers=1,
                              on_progress=lambda done, total:
                              calls.append((done, total))).run_specs([spec])
    assert stats.executed_inline
    assert calls == [(1, 3), (2, 3), (3, 3)]


def test_on_progress_reports_pooled_chunks_and_cache_replay(tmp_path):
    spec = ExperimentSpec(scenario="bgp_hijack", seeds=(1, 2, 3, 4, 5, 6),
                          base_params=CHEAP_BGP)
    SweepScheduler(workers=1, cache=RunCache(tmp_path / "rc")).run_specs([spec])

    calls = []
    warm = SweepScheduler(workers=2, cache=RunCache(tmp_path / "rc"),
                          on_progress=lambda done, total:
                          calls.append((done, total)))
    _, stats = warm.run_specs([spec])
    # Everything replays from the cache: one batch report, no execution.
    assert stats.cache_hits == 6 and stats.executed == 0
    assert calls == [(6, 6)]

    cold_calls = []
    _, cold_stats = SweepScheduler(workers=2,
                                   on_progress=lambda done, total:
                                   cold_calls.append((done, total))
                                   ).run_specs([spec])
    # Pooled path: one report per completed chunk, monotonically increasing
    # regardless of completion order, ending at the full stream.
    assert not cold_stats.executed_inline
    assert len(cold_calls) == cold_stats.chunks
    assert all(total == 6 for _, total in cold_calls)
    assert [done for done, _ in cold_calls] == sorted(
        done for done, _ in cold_calls)
    assert cold_calls[-1] == (6, 6)


# -- cache integration ---------------------------------------------------------

def test_partial_cache_mixes_hits_and_computed_records(tmp_path):
    spec_two = ExperimentSpec(scenario="bgp_hijack", seeds=(1, 2),
                              base_params=CHEAP_BGP)
    spec_four = ExperimentSpec(scenario="bgp_hijack", seeds=(1, 2, 3, 4),
                               base_params=CHEAP_BGP)
    SweepScheduler(workers=1, cache=RunCache(tmp_path / "rc")).run_specs([spec_two])
    warm_cache = RunCache(tmp_path / "rc")
    results, stats = SweepScheduler(workers=1, cache=warm_cache).run_specs([spec_four])
    assert stats.cache_hits == 2 and stats.executed == 2
    uncached, _ = SweepScheduler(workers=1).run_specs([spec_four])
    assert results[0].digest() == uncached[0].digest()
    # The two freshly-computed seeds were written back.
    assert warm_cache.stats.writes == 2


def test_pooled_execution_populates_the_cache(tmp_path):
    spec = ExperimentSpec(scenario="bgp_hijack", seeds=tuple(range(1, 7)),
                          base_params=CHEAP_BGP)
    cache = RunCache(tmp_path / "rc")
    pooled, stats = SweepScheduler(workers=2, cache=cache).run_specs([spec])
    assert not stats.executed_inline
    warm_cache = RunCache(tmp_path / "rc")
    warm, warm_stats = SweepScheduler(workers=2, cache=warm_cache).run_specs([spec])
    assert warm_stats.cache_hits == 6 and warm_stats.executed == 0
    assert pooled[0].digest() == warm[0].digest()


def test_interrupted_sweep_persists_completed_records(tmp_path):
    """Records are written back as they complete, not after the full stream,
    so a sweep with a permanently-failing cell still persists everything it
    finished — and reports the failure as a :class:`SweepError` after the
    stream (crash isolation keeps the bad task from aborting its peers)."""
    spec = ExperimentSpec(
        scenario="chronos_pool_attack", seeds=(1,),
        base_params={"benign_server_count": 30, "run_time_shift": False},
        # The second overlay passes resolve-time validation (known key) but
        # blows up inside the scenario — deterministically, so retries
        # cannot save it.
        param_sets=({"poison_at_query": 1}, {"poison_at_query": 99}),
    )
    cache = RunCache(tmp_path / "rc")
    with pytest.raises(SweepError, match="poison_at_query") as excinfo:
        SweepScheduler(workers=1, cache=cache).run_specs([spec])
    assert len(excinfo.value.failures) == 1
    assert excinfo.value.failures[0].task[0] == "chronos_pool_attack"
    assert excinfo.value.stats.tasks_failed == 1
    assert excinfo.value.stats.tasks_retried == 1  # default task_retries=1
    survivor = RunCache(tmp_path / "rc")
    assert len(survivor) == 1  # the completed first task reached disk


# -- matrix wiring -------------------------------------------------------------

def test_matrix_shared_scheduler_matches_legacy_per_row_path():
    shared = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1, 2))
    legacy = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1, 2),
                                shared_scheduler=False)
    assert shared.digest() == legacy.digest()
    assert shared.success_table() == legacy.success_table()
    assert shared.sweep_stats is not None
    assert shared.sweep_stats.tasks_total == len(TRIMMED_ATTACKS) * len(TRIMMED_STACKS) * 2
    assert legacy.sweep_stats is None


def test_matrix_warm_cache_run_is_byte_identical_and_computes_nothing(tmp_path):
    cold = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1, 2),
                              cache=RunCache(tmp_path / "rc"))
    warm = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1, 2),
                              cache=RunCache(tmp_path / "rc"))
    assert cold.digest() == warm.digest()
    assert warm.sweep_stats.executed == 0
    assert warm.sweep_stats.cache_hits == cold.sweep_stats.tasks_total


def test_matrix_incremental_seed_extension_only_computes_new_cells(tmp_path):
    run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1, 2),
                       cache=RunCache(tmp_path / "rc"))
    extended = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1, 2, 3),
                                  cache=RunCache(tmp_path / "rc"))
    cells = len(TRIMMED_ATTACKS) * len(TRIMMED_STACKS)
    assert extended.sweep_stats.cache_hits == cells * 2
    assert extended.sweep_stats.executed == cells  # only the new seed
    fresh = run_defense_matrix(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(1, 2, 3))
    assert extended.digest() == fresh.digest()


def test_matrix_specs_expand_one_spec_per_row():
    specs = matrix_specs(TRIMMED_ATTACKS, TRIMMED_STACKS, seeds=(5,))
    assert [spec.scenario for spec in specs] == [a.scenario for a in TRIMMED_ATTACKS]
    for spec in specs:
        assert len(spec.tasks()) == len(TRIMMED_STACKS)
        assert [overlay["defenses"] for overlay in spec.param_sets] == \
            [stack.defenses for stack in TRIMMED_STACKS]
