"""Tracer behavior: ring buffer, exports, and the observability facade."""

from __future__ import annotations

import json

from repro import obs
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    chrome_trace,
    events_from_jsonl,
    ordered,
)


def _clocked_tracer(times: list[float]) -> Tracer:
    ticks = iter(times)
    return Tracer(clock=lambda: next(ticks))


# -- recording ---------------------------------------------------------------------------

def test_instant_and_span_record_sim_time():
    tracer = _clocked_tracer([1.5, 2.0, 5.0])
    tracer.instant("dns.query.sent", category="dns", qname="pool.ntp.org")
    with tracer.span("resolve", category="dns"):
        pass
    events = tracer.events()
    assert [e.name for e in events] == ["dns.query.sent", "resolve"]
    instant, span = events
    assert instant.phase == "i" and instant.ts == 1.5
    assert instant.arg("qname") == "pool.ntp.org"
    assert span.phase == "X" and span.ts == 2.0 and span.dur == 3.0


def test_sequence_numbers_give_total_order_at_same_instant():
    tracer = Tracer(clock=lambda: 7.0)
    tracer.instant("first")
    tracer.instant("second")
    assert [e.name for e in ordered(tracer.events())] == ["first", "second"]


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.instant("ignored")
    with tracer.span("also-ignored"):
        pass
    assert len(tracer) == 0 and tracer.events_recorded == 0


# -- ring buffer -------------------------------------------------------------------------

def test_ring_buffer_evicts_oldest_and_counts():
    tracer = Tracer(clock=lambda: 0.0, capacity=3)
    for index in range(5):
        tracer.instant(f"event-{index}")
    assert [e.name for e in tracer.events()] == ["event-2", "event-3", "event-4"]
    assert tracer.events_recorded == 5
    assert tracer.events_evicted == 2
    tracer.clear()
    assert len(tracer) == 0 and tracer.events_evicted == 0


# -- JSONL round trip --------------------------------------------------------------------

def test_jsonl_roundtrip_is_lossless(tmp_path):
    tracer = _clocked_tracer([0.5, 1.0])
    tracer.instant("a", category="dns", txid=17, poisoned=True)
    tracer.complete("b", start=0.25, category="net", reason="loss")
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    restored = events_from_jsonl(path.read_text())
    assert restored == list(tracer.events())
    assert events_from_jsonl(tracer.to_jsonl()) == restored


def test_jsonl_lines_are_valid_json():
    tracer = Tracer(clock=lambda: 1.0)
    tracer.instant("x", category="dns", qname="pool.ntp.org")
    (line,) = tracer.to_jsonl().splitlines()
    data = json.loads(line)
    assert data["name"] == "x" and data["ph"] == "i" and data["ts"] == 1.0


# -- Chrome trace export -----------------------------------------------------------------

def test_chrome_trace_schema(tmp_path):
    tracer = _clocked_tracer([0.001, 0.0015, 0.002, 0.01])
    tracer.instant("dns.query.sent", category="dns")
    tracer.instant("attack.frag_burst", category="attack")
    with tracer.span("resolve", category="dns"):
        pass
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path), process_name="repro-test")
    document = json.loads(path.read_text())

    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert {"process_name", "thread_name"} <= {e["name"] for e in metadata}
    # one thread (tid) per category, named by thread_name metadata
    names = {e["tid"]: e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
    assert set(names.values()) == {"dns", "attack"}

    instants = [e for e in events if e["ph"] == "i"]
    spans = [e for e in events if e["ph"] == "X"]
    assert all(e["s"] == "t" for e in instants)
    assert instants[0]["ts"] == 1000.0  # 0.001 s -> µs
    (span,) = spans
    assert span["dur"] == (0.01 - 0.002) * 1e6
    for event in instants + spans:
        assert names[event["tid"]] == event["cat"]


def test_chrome_trace_defaults_unnamed_category():
    document = chrome_trace([TraceEvent(name="n", phase="i", ts=0.0)])
    thread = [e for e in document["traceEvents"] if e.get("name") == "thread_name"]
    assert thread[0]["args"]["name"] == "events"


# -- facade ------------------------------------------------------------------------------

def test_capture_installs_and_restores():
    before = obs.current()
    with obs.capture() as ob:
        assert obs.current() is ob
        assert ob.enabled
    assert obs.current() is before


def test_capture_metrics_only_keeps_trace_off():
    with obs.capture(trace=False) as ob:
        ob.trace.instant("ignored")
        ob.metrics.counter("seen").inc()
        assert len(ob.trace) == 0
        assert ob.metrics.snapshot().counter("seen") == 1


def test_bind_clock_never_mutates_the_null_singleton():
    obs.NULL_OBS.bind_clock(lambda: 42.0)
    assert obs.NULL_OBS.trace.clock() == 0.0


def test_simulator_adopts_captured_facade_and_clock():
    from repro.netsim.simulator import Simulator

    with obs.capture() as ob:
        simulator = Simulator(seed=1)
        simulator.schedule(2.5, lambda: ob.trace.instant("tick"))
        simulator.run(until=3.0)
    (event,) = [e for e in ob.trace.events() if e.name == "tick"]
    assert event.ts == 2.5
    assert ob.metrics.snapshot().counter("sim.events_executed") >= 1
