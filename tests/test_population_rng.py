"""Tests for the population layer's counter RNG and batched selection.

The load-bearing contracts: every draw is a pure function of
``(seed, stream, counter)`` with bit-identical numpy and pure-python paths,
hypergeometric sampling shares one exact CDF table across backends, and the
batched Chronos selection matches the scalar rule element-wise — including
at decision boundaries, which the property tests probe deliberately.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import ChronosConfig, chronos_select, panic_select
from repro.population.batch import (
    FleetPolicy,
    batch_chronos_select,
    batch_panic_select,
    batch_pool_composition,
    compose_client,
)
from repro.population.rng import (
    BACKEND_ENV,
    BackendError,
    CounterRNG,
    HypergeomSampler,
    hypergeom_sampler,
    numpy_or_none,
    resolve_backend,
)

numpy = numpy_or_none()
needs_numpy = pytest.mark.skipif(numpy is None, reason="numpy not installed")


# -- counter RNG -------------------------------------------------------------

def test_uniforms_are_pure_functions_of_the_counter():
    rng = CounterRNG(seed=7, stream=2)
    batched = rng.uniforms([5, 1, 9])
    assert batched == [rng.uniform_at(5), rng.uniform_at(1), rng.uniform_at(9)]
    assert all(0.0 <= u < 1.0 for u in batched)
    # Re-keying with the same (seed, stream) reproduces the stream exactly.
    assert CounterRNG(seed=7, stream=2).uniforms([5, 1, 9]) == batched


def test_seeds_and_streams_decorrelate():
    base = CounterRNG(seed=1, stream=0).uniforms(range(64))
    assert CounterRNG(seed=2, stream=0).uniforms(range(64)) != base
    assert CounterRNG(seed=1, stream=1).uniforms(range(64)) != base
    # No constant stream, and a sane mean for 64 draws.
    assert len(set(base)) == 64
    assert 0.25 < sum(base) / 64 < 0.75


@needs_numpy
def test_backend_parity_words_and_uniforms():
    counters = [0, 1, 2, 63, 2**32, 2**63 - 1, 2**64 - 1]
    for seed, stream in [(0, 0), (1, 2), (12345, 7)]:
        py = CounterRNG(seed, stream, backend=None)
        vec = CounterRNG(seed, stream, backend=numpy)
        assert vec.words(counters).tolist() == py.words(counters)
        assert vec.uniforms(counters).tolist() == py.uniforms(counters)


def test_resolve_backend_env_and_argument(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "python")
    assert resolve_backend() is None
    assert resolve_backend("python") is None
    monkeypatch.setenv(BACKEND_ENV, "auto")
    assert resolve_backend() is numpy  # None when numpy is absent
    with pytest.raises(ValueError):
        resolve_backend("vectorized")
    if numpy is None:
        with pytest.raises(BackendError):
            resolve_backend("numpy")
    else:
        assert resolve_backend("numpy") is numpy
        # The explicit argument overrides the environment.
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend("python") is None


# -- hypergeometric sampling -------------------------------------------------

def test_hypergeom_cdf_is_exact():
    sampler = HypergeomSampler(pool=20, malicious=6, sample=5)
    assert (sampler.low, sampler.high) == (0, 5)
    total = math.comb(20, 5)
    acc = 0.0
    for j in range(0, 6):
        acc += math.comb(6, j) * math.comb(14, 5 - j) / total
        if j < 5:
            assert sampler.cdf[j] == acc
    assert sampler.cdf[-1] == 1.0


def test_hypergeom_support_bounds():
    sampler = HypergeomSampler(pool=10, malicious=8, sample=5)
    assert (sampler.low, sampler.high) == (3, 5)  # at most 2 benign available
    counts = sampler.sample_from([0.0, 0.5, 0.999999])
    assert all(3 <= c <= 5 for c in counts)


def test_hypergeom_degenerate_support():
    all_malicious = HypergeomSampler(pool=9, malicious=9, sample=4)
    assert all_malicious.sample_from([0.1, 0.9]) == [4, 4]
    none_malicious = HypergeomSampler(pool=9, malicious=0, sample=4)
    assert none_malicious.sample_from([0.1, 0.9]) == [0, 0]
    if numpy is not None:
        out = all_malicious.sample_from(numpy.asarray([0.1, 0.9]), np=numpy)
        assert out.tolist() == [4, 4]


@needs_numpy
def test_hypergeom_backend_parity_including_cdf_boundaries():
    sampler = HypergeomSampler(pool=96, malicious=64, sample=15)
    # Probe exactly at CDF steps (inclusive/exclusive edges) plus a sweep.
    uniforms = list(sampler.cdf[:-1]) + [0.0, 1.0 - 2**-53] + [
        i / 97.0 for i in range(97)]
    py = sampler.sample_from(uniforms)
    vec = sampler.sample_from(numpy.asarray(uniforms), np=numpy)
    assert vec.tolist() == py


def test_hypergeom_sampler_memoisation():
    assert hypergeom_sampler(30, 10, 5) is hypergeom_sampler(30, 10, 5)


# -- batch pool composition --------------------------------------------------

def test_batch_composition_expands_distinct_indices():
    policy = FleetPolicy()
    comps = batch_pool_composition(policy, [0, 3, 3, 25, 1])
    assert comps[1] == comps[2] == compose_client(policy, 3)
    assert comps[0] == comps[3] == compose_client(policy, 0)  # 25 > Q: never
    assert comps[4].benign == 0 and comps[4].malicious == 89 * 24


# -- batched selection vs the scalar rule (property tests) -------------------

#: Offsets mixing a continuous range with exact decision-boundary values
#: (err, the agreement window, and float-summation trouble spots).
_offset = st.one_of(
    st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, 0.1, -0.1, 0.2, -0.2, 0.1 + 2**-53,
                     0.30000000000000004]),
)
_row = st.lists(_offset, min_size=0, max_size=24)
_config = st.builds(
    ChronosConfig,
    sample_size=st.integers(min_value=3, max_value=21),
    err=st.sampled_from([0.05, 0.1, 0.25]),
    drift_ppm=st.sampled_from([0.0, 10.0]),
)
_elapsed = st.floats(0.0, 7200.0, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(rows=st.lists(_row, min_size=0, max_size=8), config=_config,
       elapsed=_elapsed)
def test_batch_select_matches_scalar_elementwise(rows, config, elapsed):
    batch = batch_chronos_select(rows, config, elapsed_since_update=elapsed)
    assert len(batch) == len(rows)
    for row, status, offset, accepted in zip(rows, batch.statuses,
                                             batch.offsets, batch.accepted):
        scalar = chronos_select(row, config, elapsed_since_update=elapsed)
        assert status is scalar.status
        assert offset == scalar.offset
        assert accepted is scalar.accepted


@settings(max_examples=100, deadline=None)
@given(rows=st.lists(_row, min_size=0, max_size=8))
def test_batch_panic_matches_scalar_elementwise(rows):
    batch = batch_panic_select(rows)
    for row, status, offset in zip(rows, batch.statuses, batch.offsets):
        scalar = panic_select(row, ChronosConfig())
        assert status is scalar.status
        assert offset == scalar.offset


@needs_numpy
@settings(max_examples=100, deadline=None)
@given(width=st.integers(min_value=0, max_value=20),
       count=st.integers(min_value=1, max_value=6),
       config=_config, elapsed=_elapsed, data=st.data())
def test_numpy_batch_select_matches_scalar_on_rectangles(width, count, config,
                                                         elapsed, data):
    rows = [data.draw(st.lists(_offset, min_size=width, max_size=width))
            for _ in range(count)]
    batch = batch_chronos_select(rows, config, elapsed_since_update=elapsed,
                                 np=numpy)
    for row, status, offset in zip(rows, batch.statuses, batch.offsets):
        scalar = chronos_select(row, config, elapsed_since_update=elapsed)
        assert status is scalar.status
        assert offset == scalar.offset
