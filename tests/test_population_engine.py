"""Tests for the fleet engine and its scheduler/registry integration.

Contracts: resolver poisoning follows the documented renewal walk
(hand-computed fixtures), per-client outcomes are invariant under cohort
sharding and identical across backends, and the ``population_sweep``
scenario rides the shared scheduler with byte-identical digests across
worker counts.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, SweepScheduler
from repro.experiments.registry import get_scenario, merge_params
from repro.experiments.runner import run_scenario
from repro.population.batch import FleetPolicy
from repro.population.engine import (
    FleetConfig,
    FleetEngine,
    cohort_poison_queries,
    resolver_poison_times,
)
from repro.population.rng import numpy_or_none
from repro.population.scenario import combine_cohort_metrics, population_specs

numpy = numpy_or_none()

#: A stochastic fleet small enough for the pure-python path: staggered
#: clients share resolvers, the hijack window catches some of them mid-pool.
STOCHASTIC = FleetConfig(
    clients=300,
    resolvers=7,
    seed=5,
    stagger_window=86400.0,
    policy=FleetPolicy(),
    hijack_start=90000.0,
    hijack_duration=600.0,
    target_shift=600.0,
    update_rounds=3,
    backend="python",
)


def config_with(base: FleetConfig, **overrides) -> FleetConfig:
    fields = {name: getattr(base, name) for name in (
        "clients", "resolvers", "client_offset", "population", "seed",
        "stagger_window", "explicit_starts", "policy", "chronos",
        "hijack_start", "hijack_duration", "run_time_shift", "target_shift",
        "update_rounds", "backend")}
    fields.update(overrides)
    return FleetConfig(**fields)


# -- renewal walk ------------------------------------------------------------

def walk_fixture(start_b: float, backend: str) -> FleetConfig:
    """Two clients, one resolver; client A renews the cache at t=89600."""
    return FleetConfig(
        clients=2,
        resolvers=1,
        seed=0,
        explicit_starts=(53600.0, start_b),
        policy=FleetPolicy(benign_ttl=150),
        hijack_start=89700.0,
        hijack_duration=600.0,
        run_time_shift=False,
        backend=backend,
    )


@pytest.mark.parametrize("backend", ["python"] + (["numpy"] if numpy else []))
def test_benign_cache_masks_inwindow_query(backend):
    # A's query 11 lands at 89600 (< hijack start) and caches until 89750;
    # B's query 11 at 89720 is inside the hijack window but served from the
    # benign cache — the resolver is never poisoned.
    config = walk_fixture(53720.0, backend)
    engine = FleetEngine(config)
    assert resolver_poison_times(config, engine.np) == {}
    metrics = engine.run()
    assert metrics["poisoned_resolvers"] == 0
    assert metrics["clients_poisoned"] == 0
    assert metrics["pool_malicious_total"] == 0
    assert metrics["pool_benign_total"] == 2 * 24 * 4


@pytest.mark.parametrize("backend", ["python"] + (["numpy"] if numpy else []))
def test_first_uncached_miss_poisons_the_resolver(backend):
    # B's query 11 now lands at 89800 — past the cached entry's 89750 expiry
    # — so the resolver is poisoned there; A is hit from its query 12 on.
    config = walk_fixture(53800.0, backend)
    engine = FleetEngine(config)
    assert resolver_poison_times(config, engine.np) == {0: 89800.0}
    _, ks, _ = cohort_poison_queries(config, engine.np)
    assert list(ks) == [12, 11]
    metrics = engine.run()
    assert metrics["poisoned_resolvers"] == 1
    assert metrics["clients_poisoned"] == 2
    assert metrics["poison_histogram"][12] == 1
    assert metrics["poison_histogram"][11] == 1


def test_poison_map_is_population_wide_not_cohort_wide():
    # A cohort covering only client 0 must still see the resolver poisoned
    # by client 1's query.
    full = walk_fixture(53800.0, "python")
    cohort = config_with(full, clients=1, client_offset=0, population=2)
    engine = FleetEngine(cohort)
    assert resolver_poison_times(cohort, engine.np) == {0: 89800.0}
    _, ks, _ = cohort_poison_queries(cohort, engine.np)
    assert list(ks) == [12]


# -- backend parity and cohort invariance ------------------------------------

@pytest.mark.skipif(numpy is None, reason="numpy not installed")
def test_backend_parity_on_stochastic_aggregates():
    py_metrics = FleetEngine(STOCHASTIC).run()
    np_metrics = FleetEngine(config_with(STOCHASTIC, backend="numpy")).run()
    assert py_metrics == np_metrics  # exact, floats included
    assert py_metrics["clients_poisoned"] > 0
    assert py_metrics["panic_rounds_total"] > 0


@pytest.mark.skipif(numpy is None, reason="numpy not installed")
def test_backend_parity_on_detailed_records():
    py_detail = FleetEngine(config_with(STOCHASTIC, clients=64)).run_detailed()
    np_detail = FleetEngine(config_with(STOCHASTIC, clients=64,
                                        backend="numpy")).run_detailed()
    assert py_detail == np_detail


def test_cohort_sharding_is_invisible():
    full_metrics, full_records = FleetEngine(STOCHASTIC).run_detailed()
    shard_records = []
    shard_metrics = []
    for offset in range(0, STOCHASTIC.clients, 77):
        size = min(77, STOCHASTIC.clients - offset)
        cohort = config_with(STOCHASTIC, clients=size, client_offset=offset,
                             population=STOCHASTIC.clients)
        metrics, records = FleetEngine(cohort).run_detailed()
        shard_metrics.append(metrics)
        shard_records.extend(records)
    assert shard_records == full_records  # per-client outcomes, floats exact
    combined = combine_cohort_metrics(shard_metrics)
    for key, value in combined.items():
        if key not in ("clients",):
            assert value == pytest.approx(full_metrics[key]), key
    assert combined["clients"] == full_metrics["clients"]


def test_empty_and_unpoisoned_edges():
    config = config_with(STOCHASTIC, clients=0, population=300)
    metrics = FleetEngine(config).run()
    assert metrics["clients"] == 0
    assert metrics["mean_attacker_fraction"] == 0.0
    # Hijack before any client activity: nobody is poisoned, every client
    # still completes its update rounds against a clean pool.
    clean = config_with(STOCHASTIC, clients=10, population=None,
                        hijack_start=-10_000.0)
    clean_metrics = FleetEngine(clean).run()
    assert clean_metrics["clients_poisoned"] == 0
    assert clean_metrics["panic_rounds_total"] == 0
    assert clean_metrics["updates_run_total"] == 10 * (STOCHASTIC.update_rounds + 1)
    assert clean_metrics["achieved_shift_sum"] == 0.0


# -- registry + scheduler integration ---------------------------------------

def test_population_scenario_is_registered():
    scenario = get_scenario("population_sweep")
    defaults = scenario.default_params()
    assert defaults["clients"] == 1000
    with pytest.raises(ValueError):
        merge_params(defaults, {"not_a_knob": 1})


def test_population_scenario_runs_by_name():
    metrics = run_scenario("population_sweep", 5, {
        "clients": 50, "resolvers": 7, "update_rounds": 2,
        "backend": "python"})
    assert metrics["clients"] == 50
    assert metrics["population"] == 50
    assert sum(metrics["poison_histogram"]) == 50


def test_population_specs_cover_the_fleet_in_cohorts():
    (spec,) = population_specs(clients=250, cohort_size=100, seeds=(1, 2))
    overlays = spec.parameter_sets()
    assert [(o["client_offset"], o["clients"]) for o in overlays] == [
        (0, 100), (100, 100), (200, 50)]
    assert all(o["population"] == 250 for o in overlays)
    assert len(spec.tasks()) == 6  # 3 cohorts x 2 seeds


def test_sharded_sweep_digest_is_worker_count_stable():
    base = {"resolvers": 7, "update_rounds": 2, "backend": "python"}
    specs = population_specs(clients=120, cohort_size=30, seeds=(3,),
                             base_params=base)
    (inline_result,), inline_stats = SweepScheduler(workers=1).run_specs(specs)
    (pooled_result,), pooled_stats = SweepScheduler(workers=2).run_specs(specs)
    assert inline_stats.executed_inline
    assert not pooled_stats.executed_inline
    assert inline_result.digest() == pooled_result.digest()
    combined = combine_cohort_metrics(
        [record.metrics for record in inline_result.records])
    assert combined["clients"] == 120
    # The sharded fleet reproduces the unsharded engine's totals.
    single = run_scenario("population_sweep", 3, {**base, "clients": 120})
    for key in ("clients_poisoned", "pool_malicious_total",
                "panic_rounds_total", "achieved_shift_sum"):
        assert combined[key] == single[key]
