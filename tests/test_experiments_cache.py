"""Tests for the persistent, content-addressed run cache.

The contracts: a hit replays the exact canonical record (digest-identical to
recomputing it), a fingerprint change invalidates silently, corruption costs
a recomputation rather than a crash, and concurrent writers never lose each
other's whole lines.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.experiments import (
    ExperimentRunner,
    RunCache,
    RunRecord,
    register_scenario,
    scenario_fingerprint,
    task_key,
)
from repro.experiments.registry import _REGISTRY

CHEAP = {"benign_server_count": 10}


def make_record(seed: int = 1, scenario: str = "synthetic") -> RunRecord:
    return RunRecord(scenario=scenario, seed=seed,
                     params={"knob": seed, "defenses": ()},
                     metrics={"attack_succeeded": seed % 2 == 0,
                              "achieved_shift": float(seed)})


class _SyntheticScenario:
    """A registry scenario whose fingerprint the tests can mutate."""

    name = "synthetic"
    description = "fingerprint-mutation fixture"
    _defaults = {"knob": 0, "defenses": ()}

    def default_params(self):
        return dict(self._defaults)

    def run(self, seed, params):  # pragma: no cover - never executed here
        return {"attack_succeeded": False}


@pytest.fixture
def synthetic_scenario():
    instance = _SyntheticScenario()
    register_scenario(instance)
    try:
        yield instance
    finally:
        _REGISTRY.pop(instance.name, None)


@pytest.fixture
def cache(tmp_path, synthetic_scenario):
    return RunCache(tmp_path / "store")


# -- hit/miss accounting -----------------------------------------------------

def test_miss_then_hit_accounting(cache):
    record = make_record(seed=3)
    assert cache.get("synthetic", 3, record.params) is None
    cache.put(record)
    replayed = cache.get("synthetic", 3, record.params)
    assert replayed is not None
    assert replayed.metrics == {"attack_succeeded": False, "achieved_shift": 3.0}
    assert (cache.stats.hits, cache.stats.misses, cache.stats.writes) == (1, 1, 1)
    assert cache.stats.hit_rate == 0.5
    assert "1/2 hits" in cache.stats.formatted()


def test_replayed_record_is_digest_identical(cache):
    """The canonical JSON (the digest input) survives the disk round-trip."""
    record = make_record(seed=4)
    cache.put(record)
    replayed = cache.get("synthetic", 4, record.params)
    canonical = json.dumps(record.canonical(), sort_keys=True, separators=(",", ":"))
    replay_canonical = json.dumps(replayed.canonical(), sort_keys=True,
                                  separators=(",", ":"))
    assert canonical == replay_canonical


def test_different_params_seed_and_scenario_do_not_collide(cache):
    cache.put(make_record(seed=1))
    assert cache.get("synthetic", 2, {"knob": 2, "defenses": ()}) is None
    assert cache.get("synthetic", 1, {"knob": 99, "defenses": ()}) is None
    fingerprint = scenario_fingerprint("synthetic")
    key_a = task_key("synthetic", 1, {"knob": 1}, fingerprint)
    key_b = task_key("synthetic", 1, {"knob": 2}, fingerprint)
    assert key_a != key_b


def test_cache_persists_across_instances(cache, tmp_path):
    cache.put(make_record(seed=5))
    reopened = RunCache(tmp_path / "store")
    assert reopened.get("synthetic", 5, make_record(seed=5).params) is not None
    assert len(reopened) == 1


# -- fingerprint invalidation -------------------------------------------------

def test_fingerprint_change_invalidates_entries(cache, synthetic_scenario):
    record = make_record(seed=7)
    cache.put(record)
    assert cache.get("synthetic", 7, record.params) is not None

    synthetic_scenario._defaults = {"knob": 0, "defenses": (), "new_knob": True}
    changed = RunCache(cache.path)  # fresh instance: no memoised fingerprint
    assert changed.get("synthetic", 7, record.params) is None  # silent miss
    assert len(changed) == 1  # the stale entry still occupies the store
    assert changed.invalidate_stale() == 1
    assert len(changed) == 0
    assert changed.stats.invalidated == 1


def test_invalidate_stale_keeps_current_entries(cache):
    cache.put(make_record(seed=1))
    cache.put(make_record(seed=2))
    assert cache.invalidate_stale() == 0
    assert len(cache) == 2


# -- corruption tolerance ------------------------------------------------------

def test_truncated_store_file_recomputes_instead_of_crashing(cache, tmp_path):
    record = make_record(seed=9)
    cache.put(record)
    cache.put(make_record(seed=10))
    # Truncate every shard mid-line, simulating a torn final write.
    for shard in (tmp_path / "store").glob("runs-*.jsonl"):
        raw = shard.read_bytes()
        shard.write_bytes(raw[: len(raw) - 7])
    damaged = RunCache(tmp_path / "store")
    # The torn tail line is skipped; earlier whole lines still hit.
    outcomes = [damaged.get("synthetic", seed, make_record(seed=seed).params)
                for seed in (9, 10)]
    assert damaged.stats.corrupt_lines >= 1
    assert any(outcome is None for outcome in outcomes) or damaged.stats.corrupt_lines
    # A miss is just recomputed and re-stored: the store self-heals.
    for seed, outcome in zip((9, 10), outcomes):
        if outcome is None:
            damaged.put(make_record(seed=seed))
    healed = RunCache(tmp_path / "store")
    for seed in (9, 10):
        assert healed.get("synthetic", seed, make_record(seed=seed).params) is not None


def test_foreign_garbage_lines_are_skipped(cache, tmp_path):
    record = make_record(seed=11)
    cache.put(record)
    for shard in (tmp_path / "store").glob("runs-*.jsonl"):
        with shard.open("ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"valid_json": "wrong shape"}\n')
    damaged = RunCache(tmp_path / "store")
    assert damaged.get("synthetic", 11, record.params) is not None
    assert damaged.stats.corrupt_lines == 2


def test_duplicated_lines_collapse_to_a_single_entry(cache, tmp_path):
    """A crash-looped writer re-appending the same cell (duplicate key) must
    replay as one entry, last write wins, with the duplicates accounted."""
    record = make_record(seed=12)
    cache.put(record)
    (shard_file,) = (tmp_path / "store").glob("runs-*.jsonl")
    line = [raw for raw in shard_file.read_bytes().splitlines() if raw.strip()][0]
    with shard_file.open("ab") as handle:
        handle.write(line + b"\n" + line + b"\n")
    reopened = RunCache(tmp_path / "store")
    replayed = reopened.get("synthetic", 12, record.params)
    assert replayed is not None
    assert replayed.metrics == record.metrics
    assert len(reopened) == 1
    assert reopened.stats.duplicate_lines == 2
    assert "2 duplicate lines collapsed" in reopened.stats.formatted()
    # Distinct keys are unaffected by the accounting.
    cache.put(make_record(seed=13))
    fresh = RunCache(tmp_path / "store")
    assert fresh.get("synthetic", 13, make_record(seed=13).params) is not None


# -- concurrent writers --------------------------------------------------------

def _writer(args):
    path, seeds = args
    cache = RunCache(path)
    for seed in seeds:
        cache.put(make_record(seed=seed))
    return len(seeds)


def test_parallel_writers_produce_a_consistent_store(cache, tmp_path):
    all_seeds = list(range(100))
    jobs = [(tmp_path / "store", all_seeds[i::4]) for i in range(4)]
    with multiprocessing.Pool(processes=4) as pool:
        written = pool.map(_writer, jobs)
    assert sum(written) == 100
    merged = RunCache(tmp_path / "store")
    assert len(merged) == 100
    assert merged.stats.corrupt_lines == 0
    for seed in all_seeds:
        assert merged.get("synthetic", seed, make_record(seed=seed).params) is not None


# -- end-to-end through the runner ---------------------------------------------

def test_runner_warm_cache_replays_digest_identically(tmp_path):
    kwargs = {"seeds": (1, 2), "base_params": CHEAP}
    cold = ExperimentRunner("bgp_hijack", workers=1,
                            cache=RunCache(tmp_path / "rc"), **kwargs).run()
    warm_cache = RunCache(tmp_path / "rc")
    warm = ExperimentRunner("bgp_hijack", workers=1, cache=warm_cache, **kwargs).run()
    assert cold.digest() == warm.digest()
    assert cold.to_json() == warm.to_json()
    assert warm_cache.stats.hits == 2 and warm_cache.stats.misses == 0
