"""Metrics registry, snapshot algebra (property-tested), and key rendering."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
    parse_key,
    render_key,
)

# -- strategies --------------------------------------------------------------------------

metric_names = st.sampled_from(
    ["dns.responses_accepted", "net.packets_sent", "sim.events_executed",
     "attack.frag_bursts", "tcp.injections_rejected"])
label_values = st.sampled_from(["true", "false", "udp", "dot", "loss", "checksum"])
keys = st.tuples(
    metric_names,
    st.dictionaries(st.sampled_from(["reason", "via", "poisoned"]), label_values,
                    max_size=2),
).map(lambda pair: metric_key(pair[0], pair[1]))

counter_maps = st.dictionaries(keys, st.integers(min_value=1, max_value=10_000),
                               max_size=6)
gauge_maps = st.dictionaries(keys, st.floats(min_value=0.0, max_value=1e6,
                                             allow_nan=False), max_size=4)


def _histogram_snapshot(observations: list[int]) -> HistogramSnapshot:
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for value in observations:
        histogram.observe(value)
    return registry.snapshot().histograms[metric_key("h", {})]


histogram_maps = st.dictionaries(
    keys,
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=8)
    .map(_histogram_snapshot),
    max_size=3,
)

snapshots = st.builds(MetricsSnapshot, counters=counter_maps, gauges=gauge_maps,
                      histograms=histogram_maps)


# -- merge algebra -----------------------------------------------------------------------

@given(a=snapshots, b=snapshots)
def test_merge_commutative(a, b):
    assert a.merge(b).to_dict() == b.merge(a).to_dict()


@given(a=snapshots, b=snapshots, c=snapshots)
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c).to_dict() == a.merge(b.merge(c)).to_dict()


@given(a=snapshots)
def test_empty_is_identity(a):
    assert MetricsSnapshot.EMPTY.merge(a).to_dict() == a.to_dict()
    assert a.merge(MetricsSnapshot.EMPTY).to_dict() == a.to_dict()


@given(parts=st.lists(st.one_of(st.none(), snapshots), max_size=5))
def test_merge_all_order_independent(parts):
    forward = MetricsSnapshot.merge_all(parts)
    backward = MetricsSnapshot.merge_all(reversed(parts))
    assert forward.to_dict() == backward.to_dict()


@given(a=snapshots, b=snapshots)
def test_merge_semantics(a, b):
    merged = a.merge(b)
    for key in set(a.counters) | set(b.counters):
        assert merged.counters[key] == a.counters.get(key, 0) + b.counters.get(key, 0)
    for key in set(a.gauges) | set(b.gauges):
        candidates = [m[key] for m in (a.gauges, b.gauges) if key in m]
        assert merged.gauges[key] == max(candidates)


@given(a=snapshots)
def test_serialisation_roundtrip(a):
    assert MetricsSnapshot.from_dict(a.to_dict()).to_dict() == a.to_dict()


# -- keys --------------------------------------------------------------------------------

@given(name=metric_names,
       labels=st.dictionaries(st.sampled_from(["x", "reason", "via"]), label_values,
                              max_size=3))
def test_render_parse_roundtrip(name, labels):
    key = metric_key(name, labels)
    assert parse_key(render_key(key)) == key


def test_label_order_is_canonical():
    assert metric_key("m", {"b": 1, "a": 2}) == metric_key("m", {"a": 2, "b": 1})
    assert render_key(metric_key("m", {"b": 1, "a": 2})) == "m{a=2,b=1}"


# -- histogram buckets -------------------------------------------------------------------

def test_histogram_bucketing_and_stats():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (0.0005, 0.003, 0.2, 400.0):
        histogram.observe(value)
    snap = registry.snapshot().histograms[metric_key("latency", {})]
    assert snap.bounds == DEFAULT_BUCKETS
    assert snap.count == 4
    assert snap.counts[0] == 1  # <= 0.001
    assert snap.counts[-1] == 1  # overflow bucket
    assert snap.minimum == 0.0005 and snap.maximum == 400.0
    assert snap.mean == snap.total / 4


def test_histogram_merge_rejects_different_bounds():
    registry = MetricsRegistry()
    registry.histogram("a", bounds=(1.0,)).observe(0.5)
    registry.histogram("b", bounds=(2.0,)).observe(0.5)
    snap = registry.snapshot()
    a = snap.histograms[metric_key("a", {})]
    b = snap.histograms[metric_key("b", {})]
    try:
        a.merge(b)
    except ValueError:
        pass
    else:
        raise AssertionError("merge across different bounds must fail")


# -- registry ----------------------------------------------------------------------------

def test_registry_memoizes_instruments():
    registry = MetricsRegistry()
    assert registry.counter("c", via="udp") is registry.counter("c", via="udp")
    assert registry.counter("c", via="udp") is not registry.counter("c", via="dot")


def test_disabled_registry_hands_out_nulls_and_stays_empty():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("c") is NULL_COUNTER
    assert registry.gauge("g") is NULL_GAUGE
    assert registry.histogram("h") is NULL_HISTOGRAM
    registry.counter("c").inc(10)
    registry.gauge("g").track_max(5.0)
    registry.histogram("h").observe(1.0)
    assert registry.snapshot().is_empty()


def test_snapshot_drops_zero_counters_and_empty_histograms():
    registry = MetricsRegistry()
    registry.counter("touched")  # created but never incremented
    registry.histogram("silent")  # created but never observed
    registry.counter("counted").inc()
    snap = registry.snapshot()
    assert snap.counter("counted") == 1
    assert metric_key("touched", {}) not in snap.counters
    assert not snap.histograms


def test_counter_total_sums_over_labels():
    registry = MetricsRegistry()
    registry.counter("dns.rejections", defense="0x20").inc(2)
    registry.counter("dns.rejections", defense="cookies").inc(3)
    assert registry.snapshot().counter_total("dns.rejections") == 5
