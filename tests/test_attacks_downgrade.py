"""Tests for the encrypted-transport downgrade attack scenario."""

from __future__ import annotations

from repro.attacks.downgrade import DowngradeConfig, DowngradeScenario
from repro.dns.records import RecordType
from repro.experiments import run_scenario


def run_config(defenses=(), **overrides):
    scenario = DowngradeScenario(DowngradeConfig(seed=2, defenses=defenses,
                                                 **overrides))
    return scenario, scenario.run()


def test_plaintext_resolver_falls_to_the_fragmentation_race():
    scenario, result = run_config()
    assert result.attack_succeeded
    assert not result.downgraded            # nothing to downgrade from
    assert result.syns_dropped == 0         # no stream listeners to flood
    assert result.poisoned_records_cached > 0


def test_strict_dot_fails_closed_under_the_flood():
    scenario, result = run_config(defenses=("encrypted_transport",))
    assert not result.attack_succeeded
    assert not result.downgraded
    assert result.encrypted_failures == 1
    assert result.syns_dropped > 0          # the flood did land...
    assert result.poisoned_records_cached == 0  # ...but bought nothing
    # Fail-closed means fail: the lookup produced no answer at all.
    assert scenario.resolver.cache.peek(scenario.config.zone, RecordType.A) is None


def test_opportunistic_dot_downgrades_and_gets_poisoned():
    scenario, result = run_config(defenses=("encrypted_transport_opportunistic",))
    assert result.attack_succeeded
    assert result.downgraded
    assert result.encrypted_failures == 1
    assert result.poisoned_records_cached > 0


def test_without_the_flood_opportunistic_dot_stays_encrypted():
    # Zero flood bursts: the encrypted connection succeeds, the planted
    # fragments never match anything, and the attack fails.
    scenario, result = run_config(defenses=("encrypted_transport_opportunistic",),
                                  flood_bursts=0)
    assert not result.attack_succeeded
    assert not result.downgraded
    assert result.syns_sent == 0
    transport = scenario.resolver.upstream_transport
    assert transport.encrypted_queries == 1
    assert transport.encrypted_failures == 0


def test_downgrade_scenario_via_registry_is_deterministic():
    first = run_scenario("downgrade", 9,
                         {"defenses": ("encrypted_transport_opportunistic",)})
    second = run_scenario("downgrade", 9,
                          {"defenses": ("encrypted_transport_opportunistic",)})
    assert first == second
    assert first["attack_succeeded"] and first["downgraded"]
    assert first["syns_sent"] > 0 and first["syns_dropped"] > 0


def test_downgrade_blocked_by_content_authentication():
    # Even after a successful downgrade, DNSSEC-style signing catches the
    # spliced records: policy defeats transport games only when the content
    # itself is unauthenticated.
    metrics = run_scenario("downgrade", 3, {
        "defenses": ("encrypted_transport_opportunistic", "response_signing")})
    assert metrics["downgraded"]
    assert not metrics["attack_succeeded"]
    assert metrics["defense_rejections"].get("response_signing", 0) >= 1
