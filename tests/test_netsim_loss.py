"""Link-level probabilistic loss: determinism, accounting, and fragmentation.

``LinkProperties.loss_rate`` predates the fault-injection layer and is the
substrate its ramped-loss events scale; these tests pin the substrate's own
contract — every drop draws from the simulator's RNG (so loss sequences are
a pure function of the seed), every drop is accounted, and loss interacts
with IP fragmentation per *packet*, so one lost fragment silently costs the
whole datagram.
"""

from __future__ import annotations

from repro.netsim.network import Host, LinkProperties, Network
from repro.netsim.packets import UDPDatagram
from repro.netsim.simulator import Simulator


class Sink(Host):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.payloads = []

    def handle_datagram(self, datagram):
        self.payloads.append(datagram.payload)


def build_net(seed=1, **link_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, default_link=LinkProperties(latency=0.01, **link_kwargs))
    return sim, net, Sink(net, "10.0.0.1"), Sink(net, "10.0.0.2")


def burst(net, count, src="10.0.0.1", dst="10.0.0.2", size=1):
    for index in range(count):
        net.send_datagram(UDPDatagram(src_ip=src, dst_ip=dst, src_port=1000,
                                      dst_port=2000,
                                      payload=bytes([index % 256]) * size))


def survivors(seed, loss_rate, count=40):
    sim, net, a, b = build_net(seed=seed)
    net.set_link("10.0.0.1", "10.0.0.2",
                 LinkProperties(latency=0.01, loss_rate=loss_rate))
    burst(net, count)
    sim.run()
    return [payload[0] for payload in b.payloads], net


# -- accounting ---------------------------------------------------------------

def test_lossless_link_delivers_everything_and_draws_no_rng():
    sim, net, a, b = build_net(seed=3)
    state = sim.rng.getstate()
    burst(net, 20)
    sim.run()
    assert len(b.payloads) == 20
    assert net.packets_dropped == 0
    # Zero-loss, zero-jitter delivery consumes no randomness: adding benign
    # traffic to a scenario cannot shift any later draw.
    assert sim.rng.getstate() == state


def test_full_loss_drops_every_packet_and_counts_them():
    delivered, net = survivors(seed=1, loss_rate=1.0, count=10)
    assert delivered == []
    assert net.packets_sent == 10
    assert net.packets_dropped == 10


def test_partial_loss_accounting_is_exact():
    delivered, net = survivors(seed=7, loss_rate=0.4)
    assert net.packets_sent == 40
    assert net.packets_dropped == 40 - len(delivered)
    assert 0 < len(delivered) < 40


# -- determinism --------------------------------------------------------------

def test_drop_sequence_is_a_pure_function_of_the_seed():
    first, _ = survivors(seed=11, loss_rate=0.5)
    again, _ = survivors(seed=11, loss_rate=0.5)
    assert first == again
    other, _ = survivors(seed=12, loss_rate=0.5)
    assert first != other


def test_loss_is_directional():
    sim, net, a, b = build_net(seed=2)
    net.set_link("10.0.0.1", "10.0.0.2",
                 LinkProperties(latency=0.01, loss_rate=1.0))
    burst(net, 5)                                    # a -> b: lossy
    burst(net, 5, src="10.0.0.2", dst="10.0.0.1")    # b -> a: clean
    sim.run()
    assert b.payloads == []
    assert len(a.payloads) == 5
    assert net.packets_dropped == 5


# -- loss x fragmentation -----------------------------------------------------
# A 1200-byte payload over a 256-byte-MTU link fragments into multiple
# packets; loss is drawn per packet, so the datagram only survives when
# every one of its fragments does.

def frag_burst(seed, loss_rate, count=10):
    sim, net, a, b = build_net(seed=seed)
    net.set_link("10.0.0.1", "10.0.0.2",
                 LinkProperties(latency=0.01, loss_rate=loss_rate, mtu=256))
    burst(net, count, size=1200)
    sim.run()
    return [payload[0] for payload in b.payloads], net, b


def test_lossless_fragment_burst_reassembles_every_datagram():
    delivered, net, b = frag_burst(seed=1, loss_rate=0.0)
    assert delivered == list(range(10))
    assert b.received_datagrams == 10
    # Each datagram really did fragment (several packets per datagram).
    assert net.packets_sent % 10 == 0
    assert net.packets_sent // 10 > 1


def test_one_lost_fragment_loses_the_whole_datagram():
    delivered, net, b = frag_burst(seed=5, loss_rate=0.2)
    fragments_per_datagram = net.packets_sent // 10
    # Dropped fragments exceed fully-lost datagrams: some datagrams lost
    # only part of themselves, yet still never reassembled.
    lost_datagrams = 10 - len(delivered)
    assert 0 < net.packets_dropped < net.packets_sent
    assert lost_datagrams * fragments_per_datagram >= net.packets_dropped > 0
    assert b.received_datagrams == len(delivered)
    # Survivors arrive intact and in order despite the carnage around them.
    assert delivered == sorted(delivered)


def test_fragment_loss_pattern_is_seed_stable():
    first, net_a, _ = frag_burst(seed=9, loss_rate=0.3)
    again, net_b, _ = frag_burst(seed=9, loss_rate=0.3)
    assert first == again
    assert net_a.packets_dropped == net_b.packets_dropped
    other, _, _ = frag_burst(seed=10, loss_rate=0.3)
    assert first != other
