"""Attacker models and shared attacker infrastructure.

The paper's attacker is *off-path*: it cannot observe traffic between the
victim resolver, the pool.ntp.org nameservers and the Chronos client, but it
can

* send packets with spoofed source addresses (fragment injection),
* announce BGP prefixes it does not own (prefix hijack), and
* operate its own infrastructure — NTP servers serving shifted time and a
  nameserver that answers hijacked DNS queries with a flood of those servers'
  addresses carrying a very large TTL.

:class:`AttackerInfrastructure` builds that infrastructure inside the
simulation and crafts the malicious DNS answer described in §IV: as many A
records as fit in a single unfragmented response (89 for the pool.ntp.org
question) with a TTL longer than the 24-hour pool-generation window.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..dns.message import MAX_UNFRAGMENTED_UDP_PAYLOAD, DNSMessage, max_a_records_for_payload
from ..dns.nameserver import DNS_PORT, AuthoritativeNameserver
from ..dns.records import SECONDS_PER_DAY, RecordType, ResourceRecord, a_record
from ..netsim.addresses import AddressAllocator
from ..netsim.network import Network
from ..netsim.packets import UDPDatagram
from ..ntp.server import MaliciousNTPServer

#: TTL the paper's attacker uses: anything comfortably above 24 hours keeps
#: every later pool-generation query inside the cache.
DEFAULT_MALICIOUS_TTL = 2 * SECONDS_PER_DAY


@dataclass(frozen=True)
class AttackerCapabilities:
    """Which capabilities a particular attacker instance is granted.

    The defaults describe the paper's off-path attacker.  Experiments that
    want to model weaker or stronger attackers (e.g. the pure MitM of the
    original Chronos analysis) toggle these flags.
    """

    can_spoof_source: bool = True
    can_hijack_bgp: bool = True
    can_observe_victim_traffic: bool = False
    controls_ntp_servers: bool = True


class ImpersonatingNameserver(AuthoritativeNameserver):
    """An attacker nameserver that answers with a forged source address.

    After a BGP hijack the attacker receives queries addressed to the real
    pool.ntp.org nameserver; it replies with its malicious record set while
    spoofing the legitimate nameserver's address as the UDP source, so the
    victim resolver's source-address check passes.
    """

    def __init__(self, network: Network, address: str, impersonated_address: str,
                 zone_name: str, records: Sequence[ResourceRecord],
                 name: Optional[str] = None) -> None:
        super().__init__(network, address, zone={}, name=name or f"attacker-ns-{address}")
        self.impersonated_address = impersonated_address
        self.zone_name = zone_name
        self.malicious_records = list(records)
        self.hijacked_queries_answered = 0
        # qname -> prepared answer records; the malicious record set is fixed
        # at construction, so a sustained hijack answering thousands of
        # queries need not rebuild the (up to 89-entry) answer list each time.
        self._answers_by_qname: dict = {}

    def handle_datagram(self, datagram: UDPDatagram) -> None:
        if datagram.dst_port != DNS_PORT:
            return
        try:
            query = DNSMessage.decode(datagram.payload)
        except Exception:
            return
        if query.is_response or query.question.qtype != RecordType.A:
            return
        self.queries_received += 1
        answers = self._answers_by_qname.get(query.question.name)
        if answers is None:
            answers = [ResourceRecord(name=query.question.name, rtype=RecordType.A,
                                      ttl=record.ttl, rdata=record.rdata)
                       for record in self.malicious_records]
            self._answers_by_qname[query.question.name] = answers
        response = query.make_response(answers)
        self.hijacked_queries_answered += 1
        self.responses_sent += 1
        obs = self.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("attack.hijacked_queries_answered").inc()
            obs.trace.instant("attack.hijack_answer", category="attack",
                              impersonating=self.impersonated_address,
                              victim=datagram.src_ip,
                              records=len(answers))
        self.send_datagram(
            UDPDatagram(
                src_ip=self.impersonated_address,
                dst_ip=datagram.src_ip,
                src_port=DNS_PORT,
                dst_port=datagram.src_port,
                payload=response.encode(),
            )
        )


@dataclass
class AttackerInfrastructure:
    """The attacker's own servers inside the simulation."""

    network: Network
    ntp_servers: list[MaliciousNTPServer] = field(default_factory=list)
    nameserver: Optional[ImpersonatingNameserver] = None
    malicious_ttl: int = DEFAULT_MALICIOUS_TTL
    capabilities: AttackerCapabilities = field(default_factory=AttackerCapabilities)

    @property
    def ntp_addresses(self) -> list[str]:
        return [server.address for server in self.ntp_servers]

    def set_time_shift(self, shift_seconds: float) -> None:
        """Make every attacker NTP server serve time shifted by ``shift_seconds``."""
        for server in self.ntp_servers:
            server.time_shift = shift_seconds

    def malicious_answer_records(self, qname: str) -> list[ResourceRecord]:
        """The A records the attacker injects for ``qname``."""
        return [a_record(qname, address, self.malicious_ttl) for address in self.ntp_addresses]


def build_attacker_infrastructure(network: Network, qname: str = "pool.ntp.org",
                                  address_block: str = "198.51.100.0/24",
                                  server_count: Optional[int] = None,
                                  time_shift: float = 0.0,
                                  malicious_ttl: int = DEFAULT_MALICIOUS_TTL,
                                  capabilities: Optional[AttackerCapabilities] = None,
                                  ) -> AttackerInfrastructure:
    """Create the attacker's NTP servers (and nothing else yet).

    ``server_count`` defaults to the maximum number of A records that fit in
    a single unfragmented DNS response for ``qname`` — the 89 of §IV.
    """
    if server_count is None:
        server_count = max_a_records_for_payload(qname, MAX_UNFRAGMENTED_UDP_PAYLOAD)
    allocator = AddressAllocator(address_block)
    servers = [
        MaliciousNTPServer(network, allocator.allocate(), time_shift=time_shift)
        for _ in range(server_count)
    ]
    return AttackerInfrastructure(
        network=network,
        ntp_servers=servers,
        malicious_ttl=malicious_ttl,
        capabilities=capabilities or AttackerCapabilities(),
    )
