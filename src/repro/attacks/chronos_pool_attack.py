"""The paper's main contribution: the DNS-poisoning attack on Chronos' pool.

This module provides the end-to-end scenario of Figure 1 (§IV):

* a victim network — a Chronos client, its recursive resolver and the benign
  pool.ntp.org infrastructure (authoritative nameserver plus a few hundred
  volunteer NTP servers);
* an attacker — up to 89 malicious NTP servers (the number that fits in one
  unfragmented DNS response) and the machinery to poison the resolver's
  cache for ``pool.ntp.org`` with those addresses under a TTL longer than
  24 hours;
* the timeline — the poisoning lands at a configurable pool-generation query
  index *k*; the paper's claim is that any *k* ≤ 12 leaves the attacker with
  at least two-thirds of the generated pool, enough to fully control both
  regular Chronos updates and panic mode.

Both the full packet-level simulation (:class:`ChronosPoolAttackScenario`)
and the closed-form pool arithmetic (:func:`analytic_pool_composition`) are
provided; the benchmarks cross-check one against the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.chronos_client import ChronosClient
from ..core.pool_generation import GeneratedPool, PoolComposition, PoolGenerationPolicy
from ..core.selection import ChronosConfig
from ..defenses.stack import DefenseSpec
from ..dns.nameserver import POOL_NTP_ORG_TTL, POOL_RECORDS_PER_RESPONSE
from ..dns.resolver import ResolverPolicy
from ..experiments.testbed import DEFAULT_ZONE, Testbed, TestbedConfig, build_testbed


@dataclass
class PoolAttackConfig:
    """Configuration of the end-to-end pool attack scenario."""

    seed: int = 1
    zone: str = DEFAULT_ZONE
    #: Size of the benign volunteer-server population behind pool.ntp.org.
    benign_server_count: int = 200
    #: Addresses per benign DNS response (4 for pool.ntp.org).
    records_per_response: int = POOL_RECORDS_PER_RESPONSE
    #: TTL of benign pool.ntp.org records (150 s in the real zone).
    benign_ttl: int = POOL_NTP_ORG_TTL
    #: 1-indexed pool-generation query at which the poisoning lands
    #: (``None`` = no attack).
    poison_at_query: Optional[int] = 1
    #: How long the hijack window stays open (seconds).  The attack needs it
    #: open only around one query.
    hijack_duration: float = 600.0
    #: Number of malicious NTP servers / injected A records (``None`` = the
    #: maximum that fits unfragmented, i.e. 89).
    attacker_record_count: Optional[int] = None
    #: TTL of the poisoned records (seconds); the paper uses > 24 h.
    malicious_ttl: int = 2 * 86400
    #: Chronos algorithm parameters.
    chronos: ChronosConfig = field(default_factory=ChronosConfig)
    #: Pool-generation policy (enable the §V mitigations here).
    pool_policy: PoolGenerationPolicy = field(default_factory=PoolGenerationPolicy)
    #: Resolver-side policy (TTL caps, record caps, fragment acceptance).
    resolver_policy: ResolverPolicy = field(default_factory=ResolverPolicy)
    #: Extra countermeasures (registry names and/or instances) stacked on the
    #: resolver, the pool generation and the NTP sampling.
    defenses: DefenseSpec = ()
    #: Declarative fault plan injected into the network (see :mod:`repro.faults`).
    faults: tuple = ()
    #: Mean one-way network latency (seconds).
    latency: float = 0.01


@dataclass
class PoolAttackResult:
    """Outcome of the pool-generation phase of the attack."""

    pool: GeneratedPool
    composition: PoolComposition
    poisoned_queries: list[int]
    cache_hits_during_generation: int
    config: PoolAttackConfig

    @property
    def attacker_fraction(self) -> float:
        return self.composition.malicious_fraction

    @property
    def attack_succeeded(self) -> bool:
        """The §IV success criterion: attacker holds at least 2/3 of the pool."""
        return self.composition.attacker_has_two_thirds


@dataclass
class TimeShiftResult:
    """Outcome of the time-shifting phase run on the generated pool."""

    target_shift: float
    achieved_error: float
    updates_run: int
    panic_rounds: int
    applied_offsets: list[float]

    @property
    def shift_achieved(self) -> bool:
        """Whether the victim clock moved at least half way to the target."""
        if self.target_shift == 0:
            return False
        return abs(self.achieved_error) >= abs(self.target_shift) / 2


class ChronosPoolAttackScenario:
    """Builds and runs the Figure-1 attack end to end on the simulator."""

    def __init__(self, config: Optional[PoolAttackConfig] = None) -> None:
        self.config = config or PoolAttackConfig()
        self.testbed = build_testbed(
            TestbedConfig(
                seed=self.config.seed,
                zone=self.config.zone,
                latency=self.config.latency,
                benign_server_count=self.config.benign_server_count,
                benign_address_block="10.10.0.0/16",
                records_per_response=self.config.records_per_response,
                benign_ttl=self.config.benign_ttl,
                resolver_policy=self.config.resolver_policy,
                defenses=self.config.defenses,
                faults=self.config.faults,
                attacker_record_count=self.config.attacker_record_count,
                malicious_ttl=self.config.malicious_ttl,
            ),
            victim_factory=self._build_client,
        )
        self.simulator = self.testbed.simulator
        self.network = self.testbed.network
        self.benign_servers = self.testbed.benign_servers
        self.nameserver = self.testbed.nameserver
        self.resolver = self.testbed.resolver
        self.client: ChronosClient = self.testbed.victim
        self.attacker = self.testbed.attacker
        self.hijacker = self.testbed.hijacker
        self.pool_result: Optional[PoolAttackResult] = None

    def _build_client(self, testbed: Testbed) -> ChronosClient:
        return ChronosClient(
            testbed.network,
            "192.0.2.100",
            resolver_address=testbed.resolver.address,
            hostname=self.config.zone,
            config=self.config.chronos,
            pool_policy=self.config.pool_policy,
            defenses=testbed.defenses,
        )

    # -- running -----------------------------------------------------------------
    def _schedule_poisoning(self) -> None:
        if self.config.poison_at_query is None:
            return
        index = self.config.poison_at_query
        if index < 1 or index > self.config.pool_policy.query_count:
            raise ValueError(
                f"poison_at_query must be in 1..{self.config.pool_policy.query_count}")
        # Query i (1-indexed) is issued (i - 1) * interval seconds after start.
        query_time = (index - 1) * self.config.pool_policy.query_interval
        start = max(query_time - self.config.hijack_duration / 2.0, 0.0)
        self.hijacker.schedule_window(start, self.config.hijack_duration)

    def run_pool_generation(self) -> PoolAttackResult:
        """Run the 24-hour pool-generation window (with the attack, if any)."""
        self._schedule_poisoning()
        completed: list[GeneratedPool] = []
        self.client.pool_generator.generate(completed.append)
        total_window = (self.config.pool_policy.query_count
                        * self.config.pool_policy.query_interval + 300.0)
        self.simulator.run(until=total_window)
        if not completed:
            raise RuntimeError("pool generation did not complete within the window")
        pool = completed[0]
        self.client.pool = pool
        composition = pool.composition(self.attacker.ntp_addresses)
        poisoned_queries = [
            record.index + 1
            for record in pool.queries
            if set(record.accepted_addresses) & set(self.attacker.ntp_addresses)
        ]
        self.pool_result = PoolAttackResult(
            pool=pool,
            composition=composition,
            poisoned_queries=poisoned_queries,
            cache_hits_during_generation=self.resolver.queries_answered_from_cache,
            config=self.config,
        )
        return self.pool_result

    def run_time_shift(self, target_shift: float, update_rounds: int = 8) -> TimeShiftResult:
        """Phase 2: attacker NTP servers serve shifted time; run Chronos updates."""
        if self.pool_result is None:
            raise RuntimeError("run_pool_generation() must be called first")
        self.attacker.set_time_shift(target_shift)
        # Begin the Chronos update loop on the already-generated pool.
        self.client.begin_updates()
        duration = update_rounds * self.config.chronos.poll_interval + 60.0
        self.simulator.run_for(duration)
        applied = [record.applied_offset for record in self.client.update_history
                   if record.applied_offset is not None]
        return TimeShiftResult(
            target_shift=target_shift,
            achieved_error=self.client.clock_error,
            updates_run=len(self.client.update_history),
            panic_rounds=self.client.panic_count,
            applied_offsets=applied,
        )


def analytic_pool_composition(poison_at_query: Optional[int],
                              query_count: int = 24,
                              benign_per_response: int = POOL_RECORDS_PER_RESPONSE,
                              attacker_records: int = 89,
                              malicious_ttl: int = 2 * 86400,
                              query_interval: float = 3600.0) -> PoolComposition:
    """The paper's closed-form pool arithmetic (§IV).

    If the poisoning lands at query ``k`` (1-indexed), the first ``k - 1``
    queries contributed ``benign_per_response`` benign addresses each, the
    poisoned query contributes ``attacker_records`` malicious addresses, and —
    because the malicious TTL exceeds the remaining generation window — every
    later query is a cache hit contributing nothing new.
    """
    if poison_at_query is None or poison_at_query > query_count:
        return PoolComposition(benign=query_count * benign_per_response, malicious=0)
    if poison_at_query < 1:
        raise ValueError("poison_at_query must be >= 1")
    benign_queries = poison_at_query - 1
    remaining_window = (query_count - poison_at_query) * query_interval
    if malicious_ttl >= remaining_window:
        benign = benign_queries * benign_per_response
    else:
        # The poisoned entry expires before generation ends; later queries
        # reach the benign nameserver again.
        expired_after = int(malicious_ttl // query_interval)
        later_benign_queries = max(0, query_count - poison_at_query - expired_after)
        benign = (benign_queries + later_benign_queries) * benign_per_response
    return PoolComposition(benign=benign, malicious=attacker_records)


def minimum_queries_for_attacker_majority(query_count: int = 24,
                                          benign_per_response: int = POOL_RECORDS_PER_RESPONSE,
                                          attacker_records: int = 89) -> int:
    """Latest poisoning query index that still yields a 2/3 attacker majority.

    Evaluates the closed form for every k and returns the largest k whose
    composition satisfies the two-thirds bound — the paper states this is 12.
    """
    latest = 0
    for k in range(1, query_count + 1):
        composition = analytic_pool_composition(k, query_count, benign_per_response,
                                                attacker_records)
        if composition.attacker_has_two_thirds:
            latest = k
    return latest
