"""The encrypted-transport downgrade attack: force plaintext, then poison.

Strict encrypted transport closes both of the paper's off-path vectors, so
the off-path attacker's remaining move against an *opportunistic* deployment
is to attack the fallback: make the encrypted connection fail, watch the
resolver walk back to plaintext UDP, and run the classic poisoning race
there.  The scenario stages exactly that, with spoofing as the only attacker
capability — consistent with the paper's threat model:

1. **Downgrade** — the attacker floods the nameserver's stream listeners
   (TCP 53, DoT 853, DoH 443) with SYNs from spoofed sources.  The spoofed
   sources never answer the SYN-ACKs, so every half-open slot of the finite
   accept backlog stays occupied until its timeout; the victim resolver's
   genuine SYN arrives at a full backlog and is dropped, its connect attempt
   times out, and an opportunistic policy falls back to plaintext UDP — the
   encrypted channel is made to *fail* rather than answer.
2. **Race** — with the query back on UDP, the attacker runs the §II.A
   defragmentation splice against the fragmenting nameserver: spoofed
   trailing fragments planted ahead of the genuine response.

The matrix row this scenario adds keeps the encrypted-transport column
honest: ``downgrade`` succeeds against ``dot_opportunistic`` (fallback is
the vulnerability) and fails against ``dot_strict`` (no plaintext to fall
back to — resolution fails closed and the attacker gets nothing).  Against
stacks with no encrypted transport at all the resolver was speaking
plaintext anyway and the scenario degenerates to the fragmentation race.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from ..defenses.stack import DefenseSpec
from ..dns.message import DNSMessage
from ..dns.records import RecordType
from ..dns.resolver import ResolverPolicy
from ..dns.transport import DOH_PORT, DOT_PORT
from ..experiments.testbed import DEFAULT_ZONE, TestbedConfig, build_testbed
from ..netsim.network import Network
from ..netsim.packets import PROTO_TCP, IPPacket
from ..netsim.transport import DEFAULT_BACKLOG, FLAG_SYN, TCPSegment
from .attacker import DEFAULT_MALICIOUS_TTL
from .frag_poisoning import FragmentationPoisoner, model_benign_response

#: TEST-NET-3: spoofed SYN sources.  Nothing is registered there, so the
#: nameserver's SYN-ACKs go nowhere and the half-open entries sit out their
#: full timeout — which is what makes small floods effective.
SYN_FLOOD_SOURCE_BLOCK = "203.0.113"
#: Ports the flood covers: every stream listener a nameserver might run.
DNS_STREAM_PORTS = (53, DOT_PORT, DOH_PORT)


class SynFloodDowngrader:
    """Floods spoofed-source SYNs at a nameserver's stream listeners."""

    def __init__(self, network: Network, nameserver_address: str,
                 ports: Sequence[int] = DNS_STREAM_PORTS) -> None:
        self.network = network
        self.nameserver_address = nameserver_address
        self.ports = tuple(ports)
        self.syns_sent = 0

    def flood_once(self, syns_per_port: int) -> None:
        """One burst: ``syns_per_port`` spoofed SYNs at every stream port."""
        rng = self.network.simulator.rng
        for port in self.ports:
            for index in range(syns_per_port):
                source = f"{SYN_FLOOD_SOURCE_BLOCK}.{(index % 254) + 1}"
                segment = TCPSegment(
                    src_port=rng.randrange(1024, 0x10000),
                    dst_port=port,
                    seq=rng.getrandbits(32),
                    ack=0,
                    flags=FLAG_SYN,
                )
                self.network.inject(IPPacket(
                    src_ip=source,
                    dst_ip=self.nameserver_address,
                    ip_id=rng.randrange(0x10000),
                    payload=segment.encode(),
                    protocol=PROTO_TCP,
                    spoofed=True,
                ))
                self.syns_sent += 1
        obs = self.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("attack.syn_floods").inc()
            obs.metrics.counter("attack.syns_sent").inc(
                syns_per_port * len(self.ports))
            obs.trace.instant("attack.syn_flood", category="attack",
                              target=self.nameserver_address,
                              syns=syns_per_port * len(self.ports),
                              ports=len(self.ports))

    def sustain(self, syns_per_port: int, bursts: int, interval: float) -> None:
        """Schedule ``bursts`` refresh floods ``interval`` seconds apart."""
        simulator = self.network.simulator
        for burst in range(bursts):
            simulator.schedule(burst * interval,
                               lambda n=syns_per_port: self.flood_once(n))


@dataclass
class DowngradeConfig:
    """Configuration of the downgrade-then-poison scenario."""

    seed: int = 1
    zone: str = DEFAULT_ZONE
    benign_server_count: int = 60
    #: Records per benign response; enough that the (post-downgrade) UDP
    #: answer spills into the trailing fragments the attacker substitutes.
    records_per_response: int = 40
    nameserver_min_mtu: int = 548
    #: Spoofed SYNs per listener port per burst (``None`` = 4× the default
    #: backlog, comfortably keeping every slot occupied).
    syns_per_port: Optional[int] = None
    #: Backlog-refresh floods and their spacing; together they must cover
    #: the victim's connect attempt.
    flood_bursts: int = 3
    flood_interval: float = 5.0
    #: When the victim resolver's lookup is triggered.
    lookup_time: float = 1.0
    ipid_window: int = 16
    checksum_oracle: bool = True
    attacker_record_count: Optional[int] = None
    malicious_ttl: int = DEFAULT_MALICIOUS_TTL
    #: Extra countermeasures stacked on the victim resolver — the
    #: interesting ones here are ``encrypted_transport`` (strict: the
    #: downgrade fails closed) and ``encrypted_transport_opportunistic``
    #: (the downgrade works).
    defenses: DefenseSpec = ()
    #: Declarative fault plan injected into the network (see :mod:`repro.faults`).
    faults: tuple = ()
    latency: float = 0.01


@dataclass
class DowngradeResult:
    """Outcome of one downgrade-then-poison attempt."""

    cache_poisoned: bool
    #: Whether the resolver actually fell back to plaintext UDP.
    downgraded: bool
    encrypted_failures: int
    syns_sent: int
    #: SYNs the nameserver dropped at a full backlog (0 when it runs no
    #: stream listeners at all).
    syns_dropped: int
    planted_fragments: int
    poisoned_records_cached: int

    @property
    def attack_succeeded(self) -> bool:
        return self.cache_poisoned


class DowngradeScenario:
    """SYN-flood downgrade of opportunistic encrypted DNS, then the classic
    fragmentation race — registry-runnable as ``downgrade``."""

    def __init__(self, config: Optional[DowngradeConfig] = None) -> None:
        self.config = config or DowngradeConfig()
        self.testbed = build_testbed(TestbedConfig(
            seed=self.config.seed,
            zone=self.config.zone,
            latency=self.config.latency,
            benign_server_count=self.config.benign_server_count,
            benign_address_block="10.50.0.0/16",
            records_per_response=self.config.records_per_response,
            nameserver_min_mtu=self.config.nameserver_min_mtu,
            resolver_policy=ResolverPolicy(accept_fragmented_responses=True),
            defenses=self.config.defenses,
            faults=self.config.faults,
            attacker_record_count=self.config.attacker_record_count,
            malicious_ttl=self.config.malicious_ttl,
            with_hijacker=False,
        ))
        self.simulator = self.testbed.simulator
        self.network = self.testbed.network
        self.nameserver = self.testbed.nameserver
        self.resolver = self.testbed.resolver
        self.attacker = self.testbed.attacker
        self.flooder = SynFloodDowngrader(self.network, self.nameserver.address)
        self.poisoner = FragmentationPoisoner(
            self.network,
            self.attacker,
            self.resolver,
            self.nameserver,
            zone_name=self.config.zone,
            ipid_window=self.config.ipid_window,
            checksum_oracle=self.config.checksum_oracle,
        )

    def _syns_per_port(self) -> int:
        if self.config.syns_per_port is not None:
            return self.config.syns_per_port
        return 4 * DEFAULT_BACKLOG

    def expected_response(self) -> DNSMessage:
        """The attacker's off-path model of the benign (post-downgrade UDP)
        response — the same shape-only model the fragmentation row uses
        (:func:`repro.attacks.frag_poisoning.model_benign_response`)."""
        return model_benign_response(
            self.config.zone, self.nameserver, self.resolver,
            self.config.records_per_response, self.nameserver.ttl,
            self.testbed.config.zone_key)

    def run(self) -> DowngradeResult:
        cfg = self.config
        # Phase 1: keep every stream-listener backlog full around the
        # victim's lookup; the first burst goes out immediately.
        self.flooder.sustain(self._syns_per_port(), cfg.flood_bursts,
                             cfg.flood_interval)
        # Phase 2: plant the spoofed trailing fragments once the flood's
        # SYN-ACK burst has settled the nameserver's IP-ID counter, then
        # trigger the lookup.
        self.simulator.schedule(
            max(cfg.lookup_time - 0.5, 0.0),
            lambda: self.poisoner.plant_fragments(self.expected_response()))
        self.simulator.schedule(cfg.lookup_time,
                                lambda: self.resolver.trigger_lookup(cfg.zone))
        self.simulator.run(until=cfg.lookup_time + 15.0)
        poisoned = self.poisoner.verify_poisoning()
        transport = self.resolver.upstream_transport
        report = self.poisoner.reports[-1] if self.poisoner.reports else None
        entry = self.resolver.cache.peek(cfg.zone, RecordType.A)
        attacker_addresses = set(self.attacker.ntp_addresses)
        cached = list(entry.records) if entry is not None else []
        return DowngradeResult(
            cache_poisoned=poisoned,
            downgraded=(transport.downgraded_queries > 0
                        if transport is not None else False),
            encrypted_failures=(transport.encrypted_failures
                                if transport is not None else 0),
            syns_sent=self.flooder.syns_sent,
            syns_dropped=(self.nameserver.tcp.syns_dropped
                          if self.nameserver._tcp is not None else 0),
            planted_fragments=report.planted_fragments if report else 0,
            poisoned_records_cached=sum(1 for record in cached
                                        if record.rdata in attacker_addresses),
        )
