"""DNS cache poisoning via IPv4 defragmentation-cache injection.

The second poisoning vector the paper lists (§II.A), following Herzberg &
Shulman's "Fragmentation Considered Poisonous".  The attacker:

1. chooses a nameserver that fragments its responses (the companion
   measurement [3] found 16 of 30 pool.ntp.org nameservers willing to
   fragment down to a 548-byte MTU, none of them serving DNSSEC);
2. predicts the nameserver's IPv4 identification value (many stacks use
   sequential IP-IDs) and plants spoofed *second* fragments — one per
   candidate IP-ID — in the victim resolver's reassembly buffer;
3. triggers the DNS query (directly, or via a third party such as an SMTP
   server sharing the resolver — see :mod:`repro.attacks.query_trigger`);
4. the genuine first fragment (carrying the UDP/DNS headers, transaction id
   and port) is reassembled with the attacker's tail, so all of the
   resolver's off-path defences pass while the answer records — and their
   TTL — are the attacker's.

The splice is performed on real wire bytes: the attacker forges a complete
response with the same question and record layout as the benign one, encodes
it, and injects the bytes beyond the fragmentation boundary.  Because A
records have a fixed encoded size, the spliced message parses correctly and
differs from the benign response exactly in the records (and TTLs) that lie
in the trailing fragment(s).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..defenses.hardening import DNSCookies
from ..defenses.stack import DefenseSpec
from ..dns.message import DNSMessage
from ..dns.nameserver import DNS_PORT, POOL_NTP_ORG_TTL, PoolNTPNameserver
from ..dns.records import RecordType, a_record, signature_record
from ..dns.resolver import RecursiveResolver, ResolverPolicy
from ..experiments.testbed import DEFAULT_ZONE, TestbedConfig, build_testbed
from ..netsim.fragmentation import fragment_datagram
from ..netsim.network import Network
from ..netsim.packets import IPPacket, UDPDatagram
from .attacker import DEFAULT_MALICIOUS_TTL, AttackerInfrastructure


@dataclass(frozen=True)
class FragmentationAttackConditions:
    """Feasibility conditions of the fragmentation vector for one target pair.

    These are exactly the properties the companion study measured for
    pool.ntp.org nameservers and for resolvers in the wild; the measurement
    module re-uses this class when computing the §II statistics.
    """

    #: Smallest MTU the nameserver is willing to fragment responses to.
    nameserver_min_mtu: int
    #: Whether the nameserver serves DNSSEC-signed responses (signed data
    #: would let a validating resolver detect the forgery).
    nameserver_has_dnssec: bool
    #: Whether the resolver accepts and reassembles fragmented responses.
    resolver_accepts_fragments: bool
    #: Smallest fragment size the resolver accepts (68 is the IPv4 minimum).
    resolver_min_fragment_mtu: int = 68
    #: Whether the resolver validates DNSSEC.
    resolver_validates_dnssec: bool = False
    #: Size of the response the attacker can trigger, in bytes.
    response_size: int = 1200

    def response_fragments(self) -> bool:
        """Does the triggered response actually exceed the usable MTU?"""
        return self.response_size + 28 > self.nameserver_min_mtu

    @property
    def feasible(self) -> bool:
        """Whether the vector can work at all against this pair."""
        if not self.resolver_accepts_fragments:
            return False
        if self.nameserver_has_dnssec and self.resolver_validates_dnssec:
            return False
        if not self.response_fragments():
            return False
        return self.nameserver_min_mtu >= self.resolver_min_fragment_mtu


@dataclass
class FragmentationAttackReport:
    """What happened during one poisoning attempt."""

    planted_fragments: int = 0
    ipid_hit: bool = False
    checksum_valid: bool = False
    cache_poisoned: bool = False
    injected_addresses: list[str] = field(default_factory=list)


class FragmentationPoisoner:
    """Executes the defragmentation-poisoning attack inside the simulation."""

    def __init__(self, network: Network, attacker: AttackerInfrastructure,
                 resolver: RecursiveResolver, nameserver: PoolNTPNameserver,
                 zone_name: str = "pool.ntp.org",
                 ipid_window: int = 16,
                 checksum_oracle: bool = True) -> None:
        self.network = network
        self.attacker = attacker
        self.resolver = resolver
        self.nameserver = nameserver
        self.zone_name = zone_name
        #: How many consecutive IP-ID values the attacker covers with planted
        #: fragments.  Sequential-IP-ID stacks make a small window sufficient.
        self.ipid_window = ipid_window
        #: When True the attacker crafts its forged records so that the UDP
        #: checksum of the spliced datagram still validates (the published
        #: attack does this by choosing record contents whose checksum
        #: contribution matches); when False the splice is detected by the
        #: checksum and the poisoning fails.
        self.checksum_oracle = checksum_oracle
        self.reports: list[FragmentationAttackReport] = []

    # -- crafting ----------------------------------------------------------------
    def _forged_response_like(self, benign: DNSMessage) -> DNSMessage:
        """Forge a response with the benign response's shape but attacker data.

        The record count is preserved (it lives in the header, inside the
        first — genuine — fragment); the attacker substitutes its own server
        addresses and a high TTL for every A-record position it can reach.
        A signature record in the model is mirrored position-for-position —
        its fixed-size digest keeps the byte layout aligned — but its value
        is forged, which is exactly what a validating resolver catches.
        """
        count = sum(1 for record in benign.answers if record.rtype == RecordType.A)
        addresses = self.attacker.ntp_addresses[:count]
        answers = [a_record(benign.question.name, address, self.attacker.malicious_ttl)
                   for address in addresses]
        # Pad with repeats if the attacker has fewer servers than positions.
        while len(answers) < count:
            answers.append(a_record(benign.question.name, addresses[-1], self.attacker.malicious_ttl))
        if any(record.rtype == RecordType.TXT for record in benign.answers):
            answers.append(signature_record("attacker-forged-key",
                                            benign.question.name, answers))
        return benign.make_response(answers)

    def craft_spoofed_fragments(self, benign_response: DNSMessage, udp_src_port: int,
                                udp_dst_port: int, ip_id: int,
                                mtu: Optional[int] = None) -> list[IPPacket]:
        """Build the spoofed trailing fragments for one predicted IP-ID."""
        mtu = mtu or self.nameserver.min_supported_mtu
        forged = self._forged_response_like(benign_response)
        forged_datagram = UDPDatagram(
            src_ip=self.nameserver.address,
            dst_ip=self.resolver.address,
            src_port=udp_src_port,
            dst_port=udp_dst_port,
            payload=forged.encode(),
        )
        fragments = fragment_datagram(forged_datagram, ip_id=ip_id, mtu=mtu)
        return [
            IPPacket(
                src_ip=fragment.src_ip,
                dst_ip=fragment.dst_ip,
                ip_id=fragment.ip_id,
                payload=fragment.payload,
                fragment_offset=fragment.fragment_offset,
                more_fragments=fragment.more_fragments,
                spoofed=True,
                # The published attack keeps the UDP checksum of the spliced
                # datagram valid by choosing record contents with the same
                # checksum contribution; the oracle flag models that step.
                checksum_compensated=self.checksum_oracle,
            )
            for fragment in fragments
            if not fragment.first_fragment()
        ]

    # -- executing ----------------------------------------------------------------
    def plant_fragments(self, expected_response: DNSMessage, udp_src_port: int = DNS_PORT,
                        udp_dst_port: int = 33333,
                        starting_ipid: Optional[int] = None) -> FragmentationAttackReport:
        """Inject spoofed fragments covering the predicted IP-ID window.

        ``expected_response`` is the attacker's model of the benign response
        (same question, same record count); off-path it cannot see the real
        one, but pool.ntp.org's answer shape is public knowledge.
        """
        report = FragmentationAttackReport()
        if starting_ipid is None:
            # Sequential-IP-ID prediction: the attacker probes the nameserver
            # from its own vantage point and extrapolates the next values.
            starting_ipid = self._predict_next_ipid()
        # The burst differs between candidate IP-IDs only in the IP header
        # field: forge, encode and fragment the response once, then stamp
        # each candidate id onto copies of the template fragments instead of
        # re-encoding the identical payload per window entry.
        template = self.craft_spoofed_fragments(expected_response, udp_src_port,
                                                udp_dst_port, starting_ipid & 0xFFFF)
        for offset in range(self.ipid_window):
            ip_id = (starting_ipid + offset) & 0xFFFF
            fragments = (template if offset == 0 else
                         [replace(fragment, ip_id=ip_id) for fragment in template])
            for fragment in fragments:
                self.network.inject(fragment)
                report.planted_fragments += 1
        report.injected_addresses = self.attacker.ntp_addresses[: len(expected_response.answers)]
        obs = self.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("attack.frag_bursts").inc()
            obs.metrics.counter("attack.fragments_planted").inc(report.planted_fragments)
            obs.trace.instant("attack.frag_burst", category="attack",
                              target=self.resolver.address,
                              impersonating=self.nameserver.address,
                              fragments=report.planted_fragments,
                              ipid_start=starting_ipid & 0xFFFF,
                              ipid_window=self.ipid_window)
        self.reports.append(report)
        return report

    def _predict_next_ipid(self) -> int:
        """Predict the nameserver's next IP-ID (sequential-counter model).

        The simulation's network assigns sequential per-source IP-IDs, so the
        prediction is simply "current counter + 1"; the prediction *window*
        models the uncertainty from other traffic the nameserver serves.
        """
        return self.network._next_ip_id.get(self.nameserver.address, 1)

    def verify_poisoning(self) -> bool:
        """Check whether the resolver now caches attacker addresses for the zone."""
        from ..dns.records import RecordType

        entry = self.resolver.cache.peek(self.zone_name, RecordType.A)
        if entry is None:
            return False
        attacker_addresses = set(self.attacker.ntp_addresses)
        poisoned = any(record.rdata in attacker_addresses for record in entry.records)
        if self.reports:
            self.reports[-1].cache_poisoned = poisoned
        return poisoned


def fragmentation_attack_success_probability(conditions: FragmentationAttackConditions,
                                              ipid_window: int = 16,
                                              ipid_space: int = 65536,
                                              ipid_predictable: bool = True,
                                              attempts: int = 1) -> float:
    """Analytic success probability of the fragmentation vector.

    Used for the E7 sweep: infeasible pairs score zero; feasible pairs with a
    predictable (sequential) IP-ID succeed essentially always; feasible pairs
    with randomised IP-IDs succeed with probability ``window / 65536`` per
    attempt.
    """
    if not conditions.feasible:
        return 0.0
    per_attempt = 1.0 if ipid_predictable else min(1.0, ipid_window / ipid_space)
    return 1.0 - (1.0 - per_attempt) ** max(attempts, 1)


def model_benign_response(zone: str, nameserver: PoolNTPNameserver,
                          resolver: RecursiveResolver, record_count: int,
                          benign_ttl: int, zone_key: Optional[str]) -> DNSMessage:
    """The attacker's off-path model of the benign response (shape only).

    Only the shape matters (record count and fixed A-record encoding); the
    attacker cannot observe which concrete addresses the nameserver rotates
    into the real answer.  Deployed hardenings are *observable* shape too —
    an attacker probing the resolver/zone sees cookies and signature
    records on the wire — so the model mirrors their byte layout with
    placeholder values: the real cookie sits in the genuine first fragment,
    and the forged signature value is simply wrong (the attacker holds no
    zone key).  Shared by the fragmentation and downgrade scenarios so the
    two rows model the same attacker.
    """
    addresses = nameserver.pool_servers[:record_count]
    answers = [a_record(zone, address, benign_ttl) for address in addresses]
    if zone_key is not None:
        answers.append(signature_record("attacker-forged-key", zone, answers))
    message = DNSMessage.query(0, zone).make_response(answers)
    if any(isinstance(defense, DNSCookies) for defense in resolver.defenses):
        message = replace(message, cookie=0)
    return message


@dataclass
class FragPoisoningConfig:
    """Configuration of the standalone defragmentation-poisoning scenario."""

    seed: int = 17
    zone: str = DEFAULT_ZONE
    benign_server_count: int = 60
    #: Records per benign response; enough that the answer section spills
    #: into the trailing fragment(s) the attacker substitutes.
    records_per_response: int = 40
    benign_ttl: int = POOL_NTP_ORG_TTL
    #: Path MTU towards the resolver (548 matches the companion study's
    #: fragmenting nameservers; 1500 makes the vector infeasible).
    nameserver_min_mtu: int = 548
    #: Whether the victim resolver reassembles fragmented responses at all.
    accept_fragments: bool = True
    checksum_oracle: bool = True
    ipid_window: int = 16
    #: Fixed starting IP-ID (``None`` = predict the sequential counter).
    starting_ipid: Optional[int] = None
    attacker_record_count: Optional[int] = None
    malicious_ttl: int = DEFAULT_MALICIOUS_TTL
    #: Extra countermeasures stacked on the victim resolver.
    defenses: DefenseSpec = ()
    #: Declarative fault plan injected into the network (see :mod:`repro.faults`).
    faults: tuple = ()
    latency: float = 0.01
    #: Number of poisoning races to run back-to-back.  ``1`` is the classic
    #: single-shot vector; larger values model a *sustained-load* attacker
    #: re-racing at ``trigger_interval`` spacing — the offered-load profile
    #: response-rate limiting is designed to throttle.
    trigger_count: int = 1
    #: Seconds between races when ``trigger_count > 1``.
    trigger_interval: float = 0.25


@dataclass
class FragPoisoningResult:
    """Outcome of one defragmentation-poisoning attempt."""

    planted_fragments: int
    cache_poisoned: bool
    poisoned_records_cached: int
    records_cached: int
    #: Sustained-load accounting: how many races ran and how many of them
    #: left attacker records in the cache.  The classic single-shot run is
    #: simply ``races_run == 1``.
    races_run: int = 1
    races_poisoned: int = 0

    @property
    def attack_succeeded(self) -> bool:
        return self.cache_poisoned


class FragPoisoningScenario:
    """The §II.A fragmentation vector as a self-contained, registry-runnable
    scenario: plant spoofed trailing fragments, trigger the query, check the
    victim resolver's cache."""

    def __init__(self, config: Optional[FragPoisoningConfig] = None) -> None:
        self.config = config or FragPoisoningConfig()
        self.testbed = build_testbed(TestbedConfig(
            seed=self.config.seed,
            zone=self.config.zone,
            latency=self.config.latency,
            benign_server_count=self.config.benign_server_count,
            benign_address_block="10.40.0.0/16",
            records_per_response=self.config.records_per_response,
            benign_ttl=self.config.benign_ttl,
            nameserver_min_mtu=self.config.nameserver_min_mtu,
            resolver_policy=ResolverPolicy(
                accept_fragmented_responses=self.config.accept_fragments),
            defenses=self.config.defenses,
            faults=self.config.faults,
            attacker_record_count=self.config.attacker_record_count,
            malicious_ttl=self.config.malicious_ttl,
            with_hijacker=False,
        ))
        self.simulator = self.testbed.simulator
        self.network = self.testbed.network
        self.nameserver = self.testbed.nameserver
        self.resolver = self.testbed.resolver
        self.attacker = self.testbed.attacker
        self.poisoner = FragmentationPoisoner(
            self.network,
            self.attacker,
            self.resolver,
            self.nameserver,
            zone_name=self.config.zone,
            ipid_window=self.config.ipid_window,
            checksum_oracle=self.config.checksum_oracle,
        )

    def expected_response(self) -> DNSMessage:
        """The attacker's off-path model of the benign response.

        See :func:`model_benign_response` — shape is public knowledge,
        concrete addresses are not.
        """
        return model_benign_response(
            self.config.zone, self.nameserver, self.resolver,
            self.config.records_per_response, self.config.benign_ttl,
            self.testbed.config.zone_key)

    def run(self) -> FragPoisoningResult:
        if self.config.trigger_count <= 1:
            # The classic single-shot race, kept event-for-event identical
            # to the pre-sustained-load scenario (pinned digests).
            report = self.poisoner.plant_fragments(self.expected_response(),
                                                   starting_ipid=self.config.starting_ipid)
            self.resolver.trigger_lookup(self.config.zone)
            self.simulator.run(until=self.simulator.now + 10.0)
            poisoned = self.poisoner.verify_poisoning()
            return self._result(self.poisoner.reports, poisoned,
                                races_run=1, races_poisoned=int(poisoned))
        return self._run_sustained()

    def _run_sustained(self) -> FragPoisoningResult:
        """Re-race every ``trigger_interval`` seconds, ``trigger_count`` times.

        Each race is independent: the previous cache entry is evicted so the
        trigger is a fresh cache-miss race against the *live* nameserver —
        which is exactly what a response-rate limiter throttles.  A race
        whose UDP response is suppressed either times out (drop) or comes
        back TC=1 (slip) and retries over TCP, where the splice cannot reach.
        """
        races_poisoned = 0
        for _ in range(self.config.trigger_count):
            self.resolver.cache.evict(self.config.zone, RecordType.A)
            self.poisoner.plant_fragments(self.expected_response(),
                                          starting_ipid=self.config.starting_ipid)
            self.resolver.trigger_lookup(self.config.zone)
            self.simulator.run(until=self.simulator.now + self.config.trigger_interval)
            if self.poisoner.verify_poisoning():
                races_poisoned += 1
        self.simulator.run(until=self.simulator.now + 10.0)
        poisoned = self.poisoner.verify_poisoning() or races_poisoned > 0
        return self._result(self.poisoner.reports, poisoned,
                            races_run=self.config.trigger_count,
                            races_poisoned=races_poisoned)

    def _result(self, reports: list[FragmentationAttackReport], poisoned: bool,
                races_run: int, races_poisoned: int) -> FragPoisoningResult:
        entry = self.resolver.cache.peek(self.config.zone, RecordType.A)
        attacker_addresses = set(self.attacker.ntp_addresses)
        cached = list(entry.records) if entry is not None else []
        return FragPoisoningResult(
            planted_fragments=sum(report.planted_fragments for report in reports),
            cache_poisoned=poisoned,
            poisoned_records_cached=sum(1 for record in cached
                                        if record.rdata in attacker_addresses),
            records_cached=len(cached),
            races_run=races_run,
            races_poisoned=races_poisoned,
        )
