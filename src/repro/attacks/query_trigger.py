"""Third-party DNS query triggering.

The paper (§II.A) observes that resolvers are typically *shared*: the
attacker does not need the Chronos client itself to issue the pool.ntp.org
query at a convenient moment — it can make some other system that uses the
same resolver look the name up (the companion study found 14 % of web-client
resolvers reachable this way via SMTP servers or open resolvers).  Triggering
matters for the fragmentation vector, where the attacker wants to plant
spoofed fragments immediately before a query it knows is coming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dns.resolver import DNSStub, RecursiveResolver
from ..netsim.network import Host, Network
from ..netsim.packets import UDPDatagram

SMTP_PORT = 25


@dataclass
class TriggerRecord:
    """One triggered lookup, for reporting."""

    via: str
    name: str
    triggered_at: float


class SMTPTriggerServer(Host):
    """A mail server that resolves the domain of any envelope it receives.

    The attacker sends an e-mail whose recipient domain is ``pool.ntp.org``
    (or embeds the name in a way the MTA resolves); the MTA's lookup goes
    through the shared resolver, giving the attacker a query to race.
    """

    def __init__(self, network: Network, address: str, resolver_address: str,
                 name: Optional[str] = None) -> None:
        super().__init__(network, address, name=name or f"smtp-{address}")
        self.dns = DNSStub(self, resolver_address)
        self.triggers: list[TriggerRecord] = []

    def handle_datagram(self, datagram: UDPDatagram) -> None:
        if self.dns.handle_datagram(datagram):
            return
        if datagram.dst_port != SMTP_PORT:
            return
        domain = datagram.payload.decode("ascii", errors="ignore").strip()
        if not domain:
            return
        self.triggers.append(TriggerRecord(via="smtp", name=domain,
                                           triggered_at=self.network.simulator.now))
        self.dns.lookup(domain, lambda addresses: None)


class QueryTrigger:
    """Attacker-side helper that fires resolver queries via available avenues."""

    def __init__(self, network: Network, resolver: RecursiveResolver,
                 smtp_server: Optional[SMTPTriggerServer] = None,
                 attacker_address: str = "198.51.100.250") -> None:
        self.network = network
        self.resolver = resolver
        self.smtp_server = smtp_server
        self.attacker_address = attacker_address
        self.records: list[TriggerRecord] = []

    def trigger_via_open_resolver(self, name: str) -> bool:
        """Query the resolver directly; works only if it is an open resolver."""
        if not self.resolver.policy.open_resolver:
            return False
        self.resolver.trigger_lookup(name)
        self.records.append(TriggerRecord(via="open-resolver", name=name,
                                          triggered_at=self.network.simulator.now))
        return True

    def trigger_via_smtp(self, name: str) -> bool:
        """Send a message to the SMTP server naming the target domain."""
        if self.smtp_server is None:
            return False
        self.network.send_datagram(
            UDPDatagram(
                src_ip=self.attacker_address,
                dst_ip=self.smtp_server.address,
                src_port=40000,
                dst_port=SMTP_PORT,
                payload=name.encode("ascii"),
            )
        )
        self.records.append(TriggerRecord(via="smtp", name=name,
                                          triggered_at=self.network.simulator.now))
        return True

    def trigger(self, name: str) -> bool:
        """Use whichever avenue is available (open resolver first, then SMTP)."""
        return self.trigger_via_open_resolver(name) or self.trigger_via_smtp(name)
