"""DNS cache poisoning via BGP prefix hijacking.

One of the two poisoning vectors the paper lists (§II).  The attacker
announces a more-specific prefix covering the pool.ntp.org nameserver; while
the hijack is active, the victim resolver's queries are delivered to the
attacker, who answers with its malicious record set while spoofing the
legitimate nameserver's source address.  From the resolver's point of view
everything checks out — transaction id, port, question, source address — and
the forged records (many addresses, huge TTL) enter the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..defenses.stack import DefenseSpec
from ..dns.records import RecordType
from ..dns.resolver import RecursiveResolver
from ..experiments.testbed import DEFAULT_ZONE, TestbedConfig, build_testbed
from ..netsim.network import Network
from .attacker import DEFAULT_MALICIOUS_TTL, AttackerInfrastructure, ImpersonatingNameserver


@dataclass
class HijackWindow:
    """Record of one hijack interval for experiment reporting."""

    announced_at: float
    withdrawn_at: Optional[float] = None


class BGPHijackPoisoner:
    """Poison a resolver's cache for a zone by hijacking its nameserver prefix."""

    def __init__(self, network: Network, attacker: AttackerInfrastructure,
                 target_nameserver: str, zone_name: str = "pool.ntp.org",
                 attacker_nameserver_address: str = "198.51.100.253") -> None:
        self.network = network
        self.attacker = attacker
        self.target_nameserver = target_nameserver
        self.zone_name = zone_name
        self.windows: list[HijackWindow] = []
        self._active = False
        records = attacker.malicious_answer_records(zone_name)
        self.nameserver = ImpersonatingNameserver(
            network,
            attacker_nameserver_address,
            impersonated_address=target_nameserver,
            zone_name=zone_name,
            records=records,
        )
        attacker.nameserver = self.nameserver

    @property
    def active(self) -> bool:
        return self._active

    def hijack_prefix(self) -> str:
        """The more-specific prefix (/32 here) covering the target nameserver."""
        return f"{self.target_nameserver}/32"

    def announce(self) -> None:
        """Start the hijack: divert the nameserver's traffic to the attacker."""
        if self._active:
            return
        if not self.attacker.capabilities.can_hijack_bgp:
            raise PermissionError("attacker model does not include BGP hijacking")
        self.network.routing_table.announce(self.hijack_prefix(), self.nameserver.address,
                                            legitimate=False)
        self.windows.append(HijackWindow(announced_at=self.network.simulator.now))
        self._active = True
        obs = self.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("attack.bgp_hijacks").inc()
            obs.trace.instant("attack.bgp_hijack", category="attack",
                              prefix=self.hijack_prefix(),
                              target=self.target_nameserver)

    def withdraw(self) -> None:
        """Stop the hijack and restore normal routing."""
        if not self._active:
            return
        self.network.routing_table.withdraw(self.hijack_prefix(), self.nameserver.address)
        self.windows[-1].withdrawn_at = self.network.simulator.now
        self._active = False

    def schedule_window(self, start_in: float, duration: float) -> None:
        """Announce after ``start_in`` seconds and withdraw ``duration`` later.

        Used by the experiments to land the hijack exactly around the k-th
        pool-generation query (E1/E2) or to hold it for a full 24 hours
        (the §V residual attack, E8).
        """
        simulator = self.network.simulator
        simulator.schedule(start_in, self.announce)
        simulator.schedule(start_in + duration, self.withdraw)

    def poisoning_succeeded(self, resolver: RecursiveResolver) -> bool:
        """Whether the resolver currently caches attacker addresses for the zone."""
        entry = resolver.cache.peek(self.zone_name, RecordType.A)
        if entry is None:
            return False
        attacker_addresses = set(self.attacker.ntp_addresses)
        return any(record.rdata in attacker_addresses for record in entry.records)


@dataclass
class BGPHijackConfig:
    """Configuration of the standalone hijack-poisoning scenario."""

    seed: int = 1
    zone: str = DEFAULT_ZONE
    benign_server_count: int = 60
    #: Malicious A records injected (``None`` = the 89 of §IV).
    attacker_record_count: Optional[int] = None
    malicious_ttl: int = DEFAULT_MALICIOUS_TTL
    #: When the more-specific announcement goes out (seconds from start).
    hijack_start: float = 0.0
    #: How long the hijack stays active; 0 disables the hijack entirely.
    hijack_duration: float = 30.0
    #: When the victim resolver's lookup is triggered.
    lookup_time: float = 5.0
    #: Extra countermeasures stacked on the victim resolver.
    defenses: DefenseSpec = ()
    #: Declarative fault plan injected into the network (see :mod:`repro.faults`).
    faults: tuple = ()
    latency: float = 0.01


@dataclass
class BGPHijackResult:
    """Outcome of one hijack-poisoning attempt."""

    cache_poisoned: bool
    malicious_records_cached: int
    cached_ttl: Optional[int]
    #: Queries the real nameserver saw (0 while the hijack diverts traffic).
    legitimate_queries_answered: int
    hijacked_queries_answered: int

    @property
    def attack_succeeded(self) -> bool:
        return self.cache_poisoned


class BGPHijackScenario:
    """The §II prefix-hijack vector as a self-contained, registry-runnable
    scenario: announce, trigger one resolver lookup, inspect the cache."""

    def __init__(self, config: Optional[BGPHijackConfig] = None) -> None:
        self.config = config or BGPHijackConfig()
        self.testbed = build_testbed(TestbedConfig(
            seed=self.config.seed,
            zone=self.config.zone,
            latency=self.config.latency,
            benign_server_count=self.config.benign_server_count,
            benign_address_block="10.30.0.0/16",
            attacker_record_count=self.config.attacker_record_count,
            malicious_ttl=self.config.malicious_ttl,
            defenses=self.config.defenses,
            faults=self.config.faults,
        ))
        self.simulator = self.testbed.simulator
        self.network = self.testbed.network
        self.nameserver = self.testbed.nameserver
        self.resolver = self.testbed.resolver
        self.attacker = self.testbed.attacker
        self.hijacker = self.testbed.hijacker

    def run(self) -> BGPHijackResult:
        cfg = self.config
        if cfg.hijack_duration > 0:
            self.hijacker.schedule_window(cfg.hijack_start, cfg.hijack_duration)
        self.simulator.schedule(cfg.lookup_time,
                                lambda: self.resolver.trigger_lookup(cfg.zone))
        horizon = cfg.hijack_start + cfg.hijack_duration + cfg.lookup_time + 30.0
        self.simulator.run(until=horizon)
        entry = self.resolver.cache.peek(cfg.zone, RecordType.A)
        attacker_addresses = set(self.attacker.ntp_addresses)
        cached = list(entry.records) if entry is not None else []
        malicious_cached = sum(1 for record in cached
                               if record.rdata in attacker_addresses)
        return BGPHijackResult(
            cache_poisoned=self.hijacker.poisoning_succeeded(self.resolver),
            malicious_records_cached=malicious_cached,
            cached_ttl=entry.ttl if entry is not None else None,
            legitimate_queries_answered=self.nameserver.queries_received,
            hijacked_queries_answered=self.hijacker.nameserver.hijacked_queries_answered,
        )
