"""Attacker implementations: poisoning vectors, the Chronos pool attack, time shifting."""

from .attacker import (
    DEFAULT_MALICIOUS_TTL,
    AttackerCapabilities,
    AttackerInfrastructure,
    ImpersonatingNameserver,
    build_attacker_infrastructure,
)
from .baseline_scenario import (
    BaselineAttackConfig,
    BaselineAttackResult,
    TraditionalClientAttackScenario,
)
from .bgp_hijack import (
    BGPHijackConfig,
    BGPHijackPoisoner,
    BGPHijackResult,
    BGPHijackScenario,
    HijackWindow,
)
from .chronos_pool_attack import (
    DEFAULT_ZONE,
    ChronosPoolAttackScenario,
    PoolAttackConfig,
    PoolAttackResult,
    TimeShiftResult,
    analytic_pool_composition,
    minimum_queries_for_attacker_majority,
)
from .downgrade import (
    DNS_STREAM_PORTS,
    DowngradeConfig,
    DowngradeResult,
    DowngradeScenario,
    SynFloodDowngrader,
)
from .frag_poisoning import (
    FragmentationAttackConditions,
    FragmentationAttackReport,
    FragmentationPoisoner,
    FragPoisoningConfig,
    FragPoisoningResult,
    FragPoisoningScenario,
    fragmentation_attack_success_probability,
    model_benign_response,
)
from .ntp_shift import (
    OfflineShiftModel,
    ShiftOutcome,
    chronos_round_offset,
    ntpd_round_offset,
    shift_chronos_client,
    shift_traditional_client,
)
from .query_trigger import QueryTrigger, SMTPTriggerServer, TriggerRecord

__all__ = [
    "DEFAULT_MALICIOUS_TTL",
    "AttackerCapabilities",
    "AttackerInfrastructure",
    "ImpersonatingNameserver",
    "build_attacker_infrastructure",
    "BaselineAttackConfig",
    "BaselineAttackResult",
    "TraditionalClientAttackScenario",
    "BGPHijackConfig",
    "BGPHijackPoisoner",
    "BGPHijackResult",
    "BGPHijackScenario",
    "HijackWindow",
    "DEFAULT_ZONE",
    "ChronosPoolAttackScenario",
    "PoolAttackConfig",
    "PoolAttackResult",
    "TimeShiftResult",
    "analytic_pool_composition",
    "minimum_queries_for_attacker_majority",
    "DNS_STREAM_PORTS",
    "DowngradeConfig",
    "DowngradeResult",
    "DowngradeScenario",
    "SynFloodDowngrader",
    "FragmentationAttackConditions",
    "FragmentationAttackReport",
    "FragmentationPoisoner",
    "FragPoisoningConfig",
    "FragPoisoningResult",
    "FragPoisoningScenario",
    "fragmentation_attack_success_probability",
    "model_benign_response",
    "OfflineShiftModel",
    "ShiftOutcome",
    "chronos_round_offset",
    "ntpd_round_offset",
    "shift_chronos_client",
    "shift_traditional_client",
    "QueryTrigger",
    "SMTPTriggerServer",
    "TriggerRecord",
]
