"""Time-shifting attacks executed on top of a compromised (or benign) setup.

Once the attacker's addresses are in the victim's server set — the entire set
for a traditional client whose single DNS lookup was poisoned, or a two-thirds
pool majority for Chronos after the §IV pool attack — the actual time shift is
delivered by ordinary NTP responses carrying shifted timestamps.  These
helpers configure the attacker servers and run the victim's update loop so
experiments can measure the shift actually achieved on the victim clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.chronos_client import ChronosClient
from ..core.selection import ChronosConfig, chronos_select
from ..ntp.client import TraditionalNTPClient
from ..ntp.query import TimeSample
from ..ntp.selection import ntpd_select
from .attacker import AttackerInfrastructure


@dataclass(frozen=True)
class ShiftOutcome:
    """Result of a time-shift attempt against a victim client."""

    victim: str
    target_shift: float
    achieved_error: float
    updates: int

    @property
    def succeeded(self) -> bool:
        if self.target_shift == 0:
            return False
        return abs(self.achieved_error) >= abs(self.target_shift) / 2


def shift_traditional_client(client: TraditionalNTPClient, attacker: AttackerInfrastructure,
                             target_shift: float, rounds: int = 4) -> ShiftOutcome:
    """Run a traditional client for ``rounds`` polls with attacker servers shifted."""
    attacker.set_time_shift(target_shift)
    simulator = client.network.simulator
    if not client.started:
        client.start()
    simulator.run_for(rounds * client.poll_interval + 30.0)
    return ShiftOutcome(
        victim="traditional-ntp",
        target_shift=target_shift,
        achieved_error=client.clock.error,
        updates=len(client.poll_history),
    )


def shift_chronos_client(client: ChronosClient, attacker: AttackerInfrastructure,
                         target_shift: float, rounds: int = 8) -> ShiftOutcome:
    """Run a Chronos client for ``rounds`` update intervals under attack."""
    attacker.set_time_shift(target_shift)
    simulator = client.network.simulator
    if client.pool is None:
        raise RuntimeError("Chronos client has no pool; run pool generation first")
    client.begin_updates()
    simulator.run_for(rounds * client.config.poll_interval + 30.0)
    return ShiftOutcome(
        victim="chronos",
        target_shift=target_shift,
        achieved_error=client.clock.error,
        updates=len(client.update_history),
    )


@dataclass(frozen=True)
class OfflineShiftModel:
    """Closed-form model of a single update round under a given sample mix.

    Used by analyses that do not need the packet-level simulation: given how
    many of the sampled servers are malicious and what shift they report,
    what offset does the victim's algorithm adopt?
    """

    sample_size: int
    malicious_samples: int
    shift: float
    honest_jitter: float = 0.001


def chronos_round_offset(model: OfflineShiftModel, config: Optional[ChronosConfig] = None,
                         enforce_checks: bool = False) -> Optional[float]:
    """Offset a Chronos round adopts for the given sample mix (None = rejected)."""
    config = config or ChronosConfig(sample_size=model.sample_size)
    honest = model.sample_size - model.malicious_samples
    offsets = [model.honest_jitter * ((i % 3) - 1) for i in range(honest)]
    offsets += [model.shift] * model.malicious_samples
    result = chronos_select(offsets, config) if enforce_checks else \
        chronos_select(offsets, config, enforce_checks=False)
    return result.offset if result.accepted else None


def ntpd_round_offset(model: OfflineShiftModel) -> Optional[float]:
    """Offset the baseline ntpd pipeline adopts for the given sample mix."""
    honest = model.sample_size - model.malicious_samples
    samples: list[TimeSample] = [
        TimeSample(server=f"honest-{index}",
                   offset=model.honest_jitter * ((index % 3) - 1),
                   delay=0.02, stratum=2, root_dispersion=0.01,
                   completed_at=0.0)
        for index in range(honest)
    ]
    samples.extend(TimeSample(server=f"evil-{index}", offset=model.shift,
                              delay=0.02, stratum=2, root_dispersion=0.01,
                              completed_at=0.0)
                   for index in range(model.malicious_samples))
    result = ntpd_select(samples)
    return result.offset if result.succeeded else None
