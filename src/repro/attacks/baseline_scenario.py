"""Baseline scenario: the DNS attack against a *traditional* NTP client.

Used by experiments E6 and E9 to compare the paper's headline claim — that
the DNS route makes Chronos easier to attack than plain NTP — in both
directions:

* the traditional client gives the attacker exactly **one** DNS query to
  poison (its start-up resolution), but a success hands the attacker **all**
  of the client's upstream servers;
* Chronos gives the attacker up to **24** queries, any one of the first 12
  sufficing for a two-thirds pool majority.

The scenario mirrors :class:`repro.attacks.chronos_pool_attack.ChronosPoolAttackScenario`
but drives a :class:`repro.ntp.client.TraditionalNTPClient`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..defenses.stack import DefenseSpec
from ..dns.nameserver import POOL_NTP_ORG_TTL, POOL_RECORDS_PER_RESPONSE
from ..experiments.testbed import Testbed, TestbedConfig, build_testbed
from ..ntp.client import TraditionalNTPClient


@dataclass
class BaselineAttackConfig:
    """Configuration of the traditional-client attack scenario."""

    seed: int = 1
    zone: str = "pool.ntp.org"
    benign_server_count: int = 50
    records_per_response: int = POOL_RECORDS_PER_RESPONSE
    benign_ttl: int = POOL_NTP_ORG_TTL
    #: Whether the attacker manages to poison the client's single start-up
    #: DNS resolution (the one race it gets).
    poison_startup_lookup: bool = True
    #: Number of malicious servers the attacker advertises; the traditional
    #: client only uses the first ``max_servers`` of them anyway.
    attacker_record_count: int = 4
    malicious_ttl: int = 2 * 86400
    poll_interval: float = 64.0
    max_servers: int = 4
    #: Extra countermeasures stacked on the resolver and the NTP sampling.
    defenses: DefenseSpec = ()
    #: Declarative fault plan injected into the network (see :mod:`repro.faults`).
    faults: tuple = ()
    latency: float = 0.01


@dataclass
class BaselineAttackResult:
    """Outcome of the baseline attack."""

    servers_used: list[str]
    malicious_servers_used: int
    target_shift: float
    achieved_error: float
    polls_run: int

    @property
    def attack_succeeded(self) -> bool:
        if self.target_shift == 0:
            return False
        return abs(self.achieved_error) >= abs(self.target_shift) / 2


class TraditionalClientAttackScenario:
    """DNS poisoning followed by time shifting against a plain NTP client."""

    def __init__(self, config: Optional[BaselineAttackConfig] = None) -> None:
        self.config = config or BaselineAttackConfig()
        self.testbed = build_testbed(
            TestbedConfig(
                seed=self.config.seed,
                zone=self.config.zone,
                latency=self.config.latency,
                benign_server_count=self.config.benign_server_count,
                benign_address_block="10.20.0.0/16",
                records_per_response=self.config.records_per_response,
                benign_ttl=self.config.benign_ttl,
                attacker_record_count=self.config.attacker_record_count,
                malicious_ttl=self.config.malicious_ttl,
                attacker_nameserver_address="198.51.100.254",
                defenses=self.config.defenses,
                faults=self.config.faults,
            ),
            victim_factory=self._build_client,
        )
        self.simulator = self.testbed.simulator
        self.network = self.testbed.network
        self.benign_servers = self.testbed.benign_servers
        self.nameserver = self.testbed.nameserver
        self.resolver = self.testbed.resolver
        self.client: TraditionalNTPClient = self.testbed.victim
        self.attacker = self.testbed.attacker
        self.hijacker = self.testbed.hijacker

    def _build_client(self, testbed: Testbed) -> TraditionalNTPClient:
        return TraditionalNTPClient(
            testbed.network,
            "192.0.2.110",
            resolver_address=testbed.resolver.address,
            hostname=self.config.zone,
            max_servers=self.config.max_servers,
            poll_interval=self.config.poll_interval,
            defenses=testbed.defenses,
        )

    def run(self, target_shift: float, poll_rounds: int = 4) -> BaselineAttackResult:
        """Run the start-up resolution (poisoned or not) and ``poll_rounds`` polls."""
        if self.config.poison_startup_lookup:
            # The attacker wins the single race: the hijack is active exactly
            # when the client resolves the pool name at start-up.
            self.hijacker.announce()
            self.simulator.schedule(30.0, self.hijacker.withdraw)
        self.attacker.set_time_shift(target_shift)
        self.client.start()
        self.simulator.run_for(poll_rounds * self.config.poll_interval + 30.0)
        malicious = set(self.attacker.ntp_addresses)
        used = list(self.client.servers)
        return BaselineAttackResult(
            servers_used=used,
            malicious_servers_used=sum(1 for server in used if server in malicious),
            target_shift=target_shift,
            achieved_error=self.client.clock.error,
            polls_run=len(self.client.poll_history),
        )
