"""Declarative fault plans: what goes wrong, where, and when.

A plan is a tuple of frozen event dataclasses, each describing one fault
window on the simulated network.  Every event is expressible as a plain
dict (``{"kind": ..., **fields}``) so plans travel through experiment
parameter dicts, multiprocessing workers and the content-addressed run
cache exactly like every other scenario knob; :meth:`FaultPlan.from_spec`
and :meth:`FaultPlan.to_spec` convert between the two forms.

Address fields (``src``/``dst``/``host``/group members) accept a concrete
IPv4 address, the wildcard ``"*"``, or a testbed alias (``"@nameserver"``,
``"@resolver"``) resolved when the plan is armed — so one plan spec applies
to any scenario's address layout.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Union


class FaultPlanError(ValueError):
    """Raised for malformed fault plans or event specs."""


def _check_window(start: float, end: float) -> None:
    if not start < end:
        raise FaultPlanError(f"fault window must satisfy start < end, got [{start}, {end})")
    if start < 0:
        raise FaultPlanError(f"fault window cannot start before t=0, got {start}")


def _check_fraction(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be within [0, 1], got {value}")


def window_scale(now: float, start: float, end: float, ramp: float) -> float:
    """Linear ramp envelope of a fault window, in [0, 1].

    With ``ramp == 0`` the fault applies at full strength for the whole
    window; otherwise intensity climbs linearly over the first ``ramp``
    seconds and falls symmetrically over the last ``ramp`` seconds — the
    "loss ramp" shape that lets a sweep ask *how much* degradation an
    attack tolerates rather than just whether it survives a step function.
    """
    if now < start or now >= end:
        return 0.0
    if ramp <= 0.0:
        return 1.0
    return max(0.0, min(1.0, (now - start) / ramp, (end - now) / ramp))


@dataclass(frozen=True)
class _Windowed:
    """Common shape of every fault event: a [start, end) window."""

    kind: ClassVar[str] = ""

    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class LinkLoss(_Windowed):
    """Probabilistic packet loss on matching links during the window."""

    kind: ClassVar[str] = "link_loss"

    loss_rate: float = 0.0
    src: str = "*"
    dst: str = "*"
    #: Ramp-up/-down time in seconds (see :func:`window_scale`).
    ramp: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_fraction(self.loss_rate, "loss_rate")


@dataclass(frozen=True)
class LatencyRamp(_Windowed):
    """Extra one-way latency on matching links, ramped over the window."""

    kind: ClassVar[str] = "latency_ramp"

    extra_latency: float = 0.0
    src: str = "*"
    dst: str = "*"
    ramp: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_latency < 0:
            raise FaultPlanError(f"extra_latency must be >= 0, got {self.extra_latency}")


@dataclass(frozen=True)
class LinkFlap(_Windowed):
    """A link that toggles hard-down/up on a fixed cadence.

    Within the window the matching link starts *down* for ``down_time``
    seconds, comes back for ``up_time``, and repeats until the window ends
    (the link is forced up at ``end``).  Unlike :class:`LinkLoss` this is a
    deterministic square wave — the shape of a flapping route, not of
    congestion.
    """

    kind: ClassVar[str] = "link_flap"

    down_time: float = 1.0
    up_time: float = 1.0
    src: str = "*"
    dst: str = "*"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_time <= 0 or self.up_time <= 0:
            raise FaultPlanError("down_time and up_time must be positive, got "
                                 f"{self.down_time}/{self.up_time}")


@dataclass(frozen=True)
class Partition(_Windowed):
    """No packets cross between address groups ``a`` and ``b`` (both ways).

    An empty ``b`` partitions group ``a`` from everyone else — the classic
    "the resolver loses its upstream" shape.
    """

    kind: ClassVar[str] = "partition"

    a: tuple[str, ...] = ()
    b: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.a:
            raise FaultPlanError("a partition needs at least one address in group 'a'")
        object.__setattr__(self, "a", tuple(self.a))
        object.__setattr__(self, "b", tuple(self.b))


@dataclass(frozen=True)
class Duplicate(_Windowed):
    """Probabilistic packet duplication with a fixed duplicate delay."""

    kind: ClassVar[str] = "duplicate"

    probability: float = 0.0
    delay: float = 0.01
    src: str = "*"
    dst: str = "*"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_fraction(self.probability, "probability")
        if self.delay < 0:
            raise FaultPlanError(f"duplicate delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class ReorderJitter(_Windowed):
    """Uniform extra delay in [0, jitter) per packet — reorders streams."""

    kind: ClassVar[str] = "reorder_jitter"

    jitter: float = 0.0
    src: str = "*"
    dst: str = "*"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.jitter < 0:
            raise FaultPlanError(f"jitter must be >= 0, got {self.jitter}")


@dataclass(frozen=True)
class HostOutage(_Windowed):
    """A host (nameserver, NTP server) down for the window, then restarted.

    While down the host neither sends nor receives: every packet to or from
    its address is dropped, which is what a crashed daemon looks like to
    the rest of the network.
    """

    kind: ClassVar[str] = "host_outage"

    host: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.host:
            raise FaultPlanError("a host outage needs a host address (or alias)")


FaultEvent = Union[LinkLoss, LatencyRamp, LinkFlap, Partition, Duplicate,
                   ReorderJitter, HostOutage]

_EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (LinkLoss, LatencyRamp, LinkFlap, Partition, Duplicate,
                ReorderJitter, HostOutage)
}


def event_from_spec(spec: Any) -> FaultEvent:
    """Parse one event from its dict form (event instances pass through)."""
    if isinstance(spec, tuple(_EVENT_KINDS.values())):
        return spec
    if not isinstance(spec, dict):
        raise FaultPlanError(f"a fault event spec must be a dict, got {type(spec).__name__}")
    payload = dict(spec)
    kind = payload.pop("kind", None)
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise FaultPlanError(f"unknown fault kind {kind!r}; available: "
                             f"{', '.join(sorted(_EVENT_KINDS))}")
    accepted = {f.name for f in fields(cls)}
    unknown = set(payload) - accepted
    if unknown:
        raise FaultPlanError(f"unknown field(s) for {kind!r}: {', '.join(sorted(unknown))}; "
                             f"accepted: {', '.join(sorted(accepted))}")
    for group in ("a", "b"):
        if group in payload:
            payload[group] = tuple(payload[group])
    try:
        return cls(**payload)
    except TypeError as exc:
        raise FaultPlanError(f"bad {kind!r} event: {exc}") from None


def event_to_spec(event: FaultEvent) -> dict[str, Any]:
    """One event's canonical dict form (JSON-able, cache-key-stable)."""
    spec: dict[str, Any] = {"kind": event.kind}
    for f in fields(event):
        value = getattr(event, f.name)
        spec[f.name] = list(value) if isinstance(value, tuple) else value
    return spec


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault events.

    The empty plan is falsy and is the implicit default everywhere: a
    testbed built without faults never constructs an injector at all.
    """

    events: tuple[FaultEvent, ...] = ()

    @classmethod
    def from_spec(cls, spec: Any) -> FaultPlan:
        """Build a plan from an iterable of event dicts and/or events."""
        return cls(events=tuple(event_from_spec(item) for item in spec or ()))

    def to_spec(self) -> tuple[dict[str, Any], ...]:
        """The plan's picklable, parameter-dict-ready form."""
        return tuple(event_to_spec(event) for event in self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
