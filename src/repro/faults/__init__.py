"""Deterministic fault injection for the simulated network.

The paper's attacks are races: fragmentation poisoning outruns the genuine
second fragment, the downgrade flood outlasts the resolver's connection
attempts, and the Chronos pool shift needs its hijack window to cover enough
of the 24-query generation.  A pristine network flatters all of them.  This
package makes the testbed's network *imperfect on purpose* — and exactly
reproducibly so:

* a :class:`FaultPlan` is a declarative, picklable description of what goes
  wrong and when (loss and latency ramps, link flaps, partitions, packet
  duplication, reorder jitter, host outage/restart windows);
* a :class:`FaultInjector` arms the plan against one
  :class:`~repro.netsim.network.Network`: window transitions are scheduled
  on the simulator clock and per-packet decisions draw from the simulator's
  RNG, so a faulted run is as deterministic as a clean one — byte-identical
  digests across worker counts, same as every other sweep.

The seam costs nothing when unused: ``Network.faults`` is ``None`` by
default and the transmit path performs a single attribute check.  Scenarios
opt in through ``TestbedConfig.faults`` (a :meth:`FaultPlan.to_spec` tuple),
which every registered attack scenario accepts as the optional ``faults``
parameter.
"""

from .injector import FaultInjector, FaultStats
from .plan import (
    Duplicate,
    FaultEvent,
    FaultPlanError,
    HostOutage,
    LatencyRamp,
    LinkFlap,
    LinkLoss,
    Partition,
    ReorderJitter,
)
from .plan import FaultPlan

__all__ = [
    "Duplicate",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultStats",
    "HostOutage",
    "LatencyRamp",
    "LinkFlap",
    "LinkLoss",
    "Partition",
    "ReorderJitter",
]
