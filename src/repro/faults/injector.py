"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live network.

The injector is the runtime half of the fault subsystem.  ``arm()`` resolves
testbed aliases, schedules every window transition (activation, deactivation,
flap toggles) on the simulator clock, and hooks itself onto
``Network.faults``; from then on the network consults :meth:`on_transmit`
for every packet.  All probabilistic decisions — loss draws, duplication
draws, reorder jitter — come from the simulator's RNG, so the whole faulted
run remains a pure function of ``(config, seed)``.

Per-packet cost is proportional to the number of *currently active* faults
(windows that have not opened yet, or have closed, cost nothing), and a
network without an injector pays a single ``is None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from .plan import (
    Duplicate,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    HostOutage,
    LatencyRamp,
    LinkFlap,
    LinkLoss,
    Partition,
    ReorderJitter,
    window_scale,
)

if TYPE_CHECKING:
    from ..netsim.network import Network
    from ..netsim.packets import IPPacket

#: The verdict :meth:`FaultInjector.on_transmit` hands the network:
#: (drop reason or None, extra one-way latency, duplicate delay or None).
TransmitVerdict = tuple[Optional[str], float, Optional[float]]

_NO_FAULT: TransmitVerdict = (None, 0.0, None)


def _match(spec: str, address: str) -> bool:
    return spec == "*" or spec == address


def _separates(a: frozenset, b: frozenset, src: str, dst: str) -> bool:
    """Whether a partition of groups ``a``/``b`` blocks src -> dst."""
    if b:
        return (src in a and dst in b) or (src in b and dst in a)
    # Empty b: group a is cut off from everyone outside it.
    return (src in a) != (dst in a)


@dataclass
class FaultStats:
    """What one injector did to the packet stream, for experiment reporting."""

    drops: dict[str, int] = field(default_factory=dict)
    packets_delayed: int = 0
    packets_duplicated: int = 0
    transitions: int = 0

    @property
    def packets_dropped(self) -> int:
        return sum(self.drops.values())

    def formatted(self) -> str:
        dropped = ", ".join(f"{reason}={count}"
                            for reason, count in sorted(self.drops.items())) or "none"
        return (f"{self.transitions} transitions; dropped [{dropped}], "
                f"{self.packets_delayed} delayed, "
                f"{self.packets_duplicated} duplicated")


class FaultInjector:
    """Executes one fault plan against one network, deterministically.

    ``aliases`` maps ``"@name"`` placeholders in the plan to concrete
    addresses (the testbed builder supplies ``@nameserver``/``@resolver``).
    """

    def __init__(self, network: Network, plan: FaultPlan,
                 aliases: Optional[dict[str, str]] = None) -> None:
        self.network = network
        self.simulator = network.simulator
        self._obs = network.simulator.obs
        self.plan = plan
        self.aliases = dict(aliases or {})
        self.stats = FaultStats()
        self._armed = False
        # Active-fault state, maintained by the scheduled transitions.  The
        # lists keep activation order so per-packet RNG draws consume the
        # stream in a deterministic sequence.
        self._loss: list[LinkLoss] = []
        self._latency: list[LatencyRamp] = []
        self._reorder: list[ReorderJitter] = []
        self._duplicate: list[Duplicate] = []
        self._partitions: list[tuple[frozenset, frozenset]] = []
        self._down_links: list[tuple[str, str]] = []
        self._down_hosts: dict[str, int] = {}

    # -- arming ---------------------------------------------------------------
    def _resolve_address(self, spec: str) -> str:
        if not spec.startswith("@"):
            return spec
        try:
            return self.aliases[spec]
        except KeyError:
            raise FaultPlanError(
                f"unknown address alias {spec!r}; available: "
                f"{', '.join(sorted(self.aliases)) or 'none'}") from None

    def _resolve(self, event: FaultEvent) -> FaultEvent:
        if isinstance(event, Partition):
            return replace(event,
                           a=tuple(self._resolve_address(addr) for addr in event.a),
                           b=tuple(self._resolve_address(addr) for addr in event.b))
        if isinstance(event, HostOutage):
            return replace(event, host=self._resolve_address(event.host))
        return replace(event,
                       src=self._resolve_address(event.src),
                       dst=self._resolve_address(event.dst))

    def _schedule_at(self, when: float, callback) -> None:
        # Windows that opened before the simulator's current time take
        # effect immediately (a plan is usually written for t=0 onwards but
        # scenarios may build their testbed mid-timeline).
        self.simulator.schedule(max(0.0, when - self.simulator.now), callback)

    def arm(self) -> FaultInjector:
        """Schedule every transition and attach to ``network.faults``."""
        if self._armed:
            raise FaultPlanError("a fault injector can only be armed once")
        self._armed = True
        now = self.simulator.now
        for event in self.plan:
            resolved = self._resolve(event)
            if isinstance(resolved, LinkFlap):
                self._arm_flap(resolved)
            else:
                # Windows already open at arm time take effect synchronously:
                # scenarios transmit packets *before* the first simulator
                # step (fragment planting, triggered lookups), and those
                # must race the faults too.
                if resolved.start <= now:
                    self._activate(resolved)
                else:
                    self._schedule_at(resolved.start, lambda e=resolved: self._activate(e))
                self._schedule_at(resolved.end, lambda e=resolved: self._deactivate(e))
        self.network.faults = self
        return self

    def _arm_flap(self, flap: LinkFlap) -> None:
        key = (flap.src, flap.dst)

        def go_down(at: float) -> None:
            self._down_links.append(key)
            self._note_transition("down", flap)
            self._schedule_at(min(at + flap.down_time, flap.end),
                              lambda: go_up(at + flap.down_time))

        def go_up(at: float) -> None:
            self._down_links.remove(key)
            self._note_transition("up", flap)
            next_down = at + flap.up_time
            if next_down < flap.end:
                self._schedule_at(next_down, lambda: go_down(next_down))

        if flap.start <= self.simulator.now:
            go_down(flap.start)
        else:
            self._schedule_at(flap.start, lambda: go_down(flap.start))

    # -- window transitions ---------------------------------------------------
    def _note_transition(self, action: str, event: FaultEvent) -> None:
        self.stats.transitions += 1
        obs = self._obs
        if obs.enabled:
            obs.metrics.counter("fault.transitions", kind=event.kind).inc()
            obs.trace.instant(f"fault.{action}", category="fault",
                              kind=event.kind, start=event.start, end=event.end)

    def _activate(self, event: FaultEvent) -> None:
        if isinstance(event, LinkLoss):
            self._loss.append(event)
        elif isinstance(event, LatencyRamp):
            self._latency.append(event)
        elif isinstance(event, ReorderJitter):
            self._reorder.append(event)
        elif isinstance(event, Duplicate):
            self._duplicate.append(event)
        elif isinstance(event, Partition):
            self._partitions.append((frozenset(event.a), frozenset(event.b)))
        elif isinstance(event, HostOutage):
            self._down_hosts[event.host] = self._down_hosts.get(event.host, 0) + 1
        self._note_transition("activate", event)

    def _deactivate(self, event: FaultEvent) -> None:
        if isinstance(event, LinkLoss):
            self._loss.remove(event)
        elif isinstance(event, LatencyRamp):
            self._latency.remove(event)
        elif isinstance(event, ReorderJitter):
            self._reorder.remove(event)
        elif isinstance(event, Duplicate):
            self._duplicate.remove(event)
        elif isinstance(event, Partition):
            self._partitions.remove((frozenset(event.a), frozenset(event.b)))
        elif isinstance(event, HostOutage):
            remaining = self._down_hosts.get(event.host, 0) - 1
            if remaining > 0:
                self._down_hosts[event.host] = remaining
            else:
                self._down_hosts.pop(event.host, None)
        self._note_transition("deactivate", event)

    # -- the per-packet seam --------------------------------------------------
    def _drop(self, reason: str) -> TransmitVerdict:
        self.stats.drops[reason] = self.stats.drops.get(reason, 0) + 1
        return (reason, 0.0, None)

    def on_transmit(self, packet: IPPacket) -> TransmitVerdict:
        """Decide one packet's fate; called by ``Network._transmit``.

        Hard faults (outage, partition, flap) are checked before
        probabilistic ones so a downed link consumes no RNG draws — keeping
        the RNG stream of everything else in the run unperturbed by
        windows the packet never raced against.
        """
        src = packet.src_ip
        dst = packet.dst_ip
        if self._down_hosts and (src in self._down_hosts or dst in self._down_hosts):
            return self._drop("outage")
        for a, b in self._partitions:
            if _separates(a, b, src, dst):
                return self._drop("partition")
        for link_src, link_dst in self._down_links:
            if _match(link_src, src) and _match(link_dst, dst):
                return self._drop("flap")
        now = self.simulator.now
        rng = self.simulator.rng
        extra = 0.0
        duplicate_delay: Optional[float] = None
        for loss in self._loss:
            if _match(loss.src, src) and _match(loss.dst, dst):
                rate = loss.loss_rate * window_scale(now, loss.start, loss.end, loss.ramp)
                if rate > 0.0 and rng.random() < rate:
                    return self._drop("loss")
        for ramp in self._latency:
            if _match(ramp.src, src) and _match(ramp.dst, dst):
                extra += ramp.extra_latency * window_scale(now, ramp.start, ramp.end,
                                                           ramp.ramp)
        for jitter in self._reorder:
            if jitter.jitter > 0 and _match(jitter.src, src) and _match(jitter.dst, dst):
                extra += rng.uniform(0.0, jitter.jitter)
        for dup in self._duplicate:
            if (_match(dup.src, src) and _match(dup.dst, dst)
                    and rng.random() < dup.probability):
                duplicate_delay = dup.delay
        if extra > 0.0:
            self.stats.packets_delayed += 1
        if duplicate_delay is not None:
            self.stats.packets_duplicated += 1
        return (None, extra, duplicate_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector {len(self.plan)} events [{self.stats.formatted()}]>"
