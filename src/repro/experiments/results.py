"""Experiment aggregation: success rates, shift statistics, confidence intervals.

The paper reports attack outcomes as probabilities over many randomized runs
(poisoning success rates, achieved time shifts across victims).  This module
turns an ordered list of per-run records into those aggregates.  Everything
is deterministic: records keep the order the runner scheduled them in, and
:meth:`ExperimentResult.digest` hashes a canonical JSON encoding so two runs
of the same sweep can be compared byte-for-byte regardless of worker count.
"""

from __future__ import annotations

import hashlib
import json
import math
import statistics
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any


def _z_value(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level (0 < confidence < 1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be strictly between 0 and 1")
    return statistics.NormalDist().inv_cdf(0.5 + confidence / 2.0)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval at the given confidence level."""

    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def formatted(self) -> str:
        return f"[{self.low:.3f}, {self.high:.3f}] @ {self.confidence:.0%}"


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because attack sweeps routinely
    produce 0/n or n/n outcomes, where the Wald interval collapses to a
    point.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = _z_value(confidence)
    n = float(trials)
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denom
    margin = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    # At the exact boundaries the analytic bound is 0 (resp. 1); pin it so
    # floating-point residue from centre - margin does not leak through.
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return ConfidenceInterval(low, high, confidence)


def mean_interval(values: Sequence[float],
                  confidence: float = 0.95) -> ConfidenceInterval:
    """Normal-approximation interval for a sample mean (degenerate for n < 2)."""
    if not values:
        raise ValueError("cannot compute a mean interval of no values")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return ConfidenceInterval(mean, mean, confidence)
    margin = _z_value(confidence) * statistics.stdev(values) / math.sqrt(len(values))
    return ConfidenceInterval(mean - margin, mean + margin, confidence)


@dataclass(frozen=True)
class RunRecord:
    """One scenario execution: the exact inputs and the metrics it produced.

    ``params`` is the *fully resolved* parameter set (defaults merged with
    overrides), so a record is self-describing and replayable.
    """

    scenario: str
    seed: int
    params: Mapping[str, Any]
    metrics: Mapping[str, Any]

    def canonical(self) -> dict[str, Any]:
        """Plain-dict form used for JSON encoding and digesting."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "params": dict(self.params),
            "metrics": dict(self.metrics),
        }


@dataclass
class ExperimentResult:
    """Ordered collection of run records plus the aggregate views over them."""

    scenario: str
    records: list[RunRecord] = field(default_factory=list)
    #: Wall-clock duration of the sweep; deliberately excluded from the
    #: digest so parallel and sequential runs of the same sweep compare equal.
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.records)

    # -- metric access -------------------------------------------------------
    def values(self, key: str) -> list[Any]:
        """Every record's value for ``key`` (records lacking it are skipped)."""
        return [record.metrics[key] for record in self.records if key in record.metrics]

    def numeric_values(self, key: str) -> list[float]:
        return [float(value) for value in self.values(key) if value is not None]

    # -- success-rate aggregates ---------------------------------------------
    def success_count(self, key: str = "attack_succeeded") -> int:
        return sum(1 for value in self.values(key) if value)

    def success_rate(self, key: str = "attack_succeeded") -> float:
        values = self.values(key)
        if not values:
            raise KeyError(f"no record carries the metric {key!r}")
        return self.success_count(key) / len(values)

    def success_interval(self, key: str = "attack_succeeded",
                         confidence: float = 0.95) -> ConfidenceInterval:
        values = self.values(key)
        if not values:
            raise KeyError(f"no record carries the metric {key!r}")
        return wilson_interval(self.success_count(key), len(values), confidence)

    # -- scalar aggregates -----------------------------------------------------
    def mean(self, key: str) -> float:
        return statistics.fmean(self.numeric_values(key))

    def median(self, key: str) -> float:
        return statistics.median(self.numeric_values(key))

    def mean_interval(self, key: str, confidence: float = 0.95) -> ConfidenceInterval:
        return mean_interval(self.numeric_values(key), confidence)

    # -- grouping --------------------------------------------------------------
    def group_by(self, *param_keys: str) -> dict[tuple[Any, ...], ExperimentResult]:
        """Split the result per grid point, keyed by the given parameter values.

        Insertion order follows first appearance in ``records``, which is the
        runner's deterministic task order.
        """
        groups: dict[tuple[Any, ...], ExperimentResult] = {}
        for record in self.records:
            key = tuple(record.params.get(name) for name in param_keys)
            if key not in groups:
                groups[key] = ExperimentResult(scenario=self.scenario)
            groups[key].records.append(record)
        return groups

    # -- canonical encoding -----------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON encoding of the ordered records (digest input)."""
        return json.dumps([record.canonical() for record in self.records],
                          sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 over the canonical encoding; byte-identical sweeps match."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- reporting ---------------------------------------------------------------
    def summary_lines(self, shift_key: str = "achieved_shift",
                      success_key: str = "attack_succeeded") -> list[str]:
        """Human-readable aggregate block used by benchmarks and examples."""
        lines = [f"scenario: {self.scenario}  runs: {len(self.records)}  "
                 f"wall-clock: {self.elapsed_seconds:.2f}s"]
        if any(success_key in record.metrics for record in self.records):
            rate = self.success_rate(success_key)
            interval = self.success_interval(success_key)
            lines.append(f"success rate ({success_key}): {rate:.3f} "
                         f"{interval.formatted()}")
        shifts = self.numeric_values(shift_key)
        if shifts:
            interval = self.mean_interval(shift_key)
            lines.append(f"{shift_key}: mean {self.mean(shift_key):.3f} "
                         f"median {self.median(shift_key):.3f} {interval.formatted()}")
        return lines
