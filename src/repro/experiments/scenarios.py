"""Registry adapters exposing the attack scenarios as named experiments.

Each adapter translates a flat, picklable parameter dict into the scenario's
config dataclass, runs the scenario, and flattens the outcome into a metrics
dict.  Conventions shared by all adapters so sweeps aggregate uniformly:

* ``attack_succeeded`` — the scenario's headline success criterion (bool);
* ``achieved_shift`` — the clock error reached on the victim, where the
  scenario has a time-shifting phase (seconds);
* ``defenses`` — every attack scenario accepts a tuple of defense registry
  names (see :mod:`repro.defenses`) stacked onto the victim, and reports
  ``defense_rejections`` (defense name -> rejected responses/samples).

Importing this module registers the adapters; the registry does so lazily on
first lookup.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from typing import Any

from ..attacks.baseline_scenario import BaselineAttackConfig, TraditionalClientAttackScenario
from ..attacks.bgp_hijack import BGPHijackConfig, BGPHijackScenario
from ..attacks.chronos_pool_attack import ChronosPoolAttackScenario, PoolAttackConfig
from ..attacks.downgrade import DowngradeConfig, DowngradeScenario
from ..attacks.frag_poisoning import FragPoisoningConfig, FragPoisoningScenario
from ..core.pool_generation import PoolGenerationPolicy
from ..defenses.stack import DefenseStack
from .registry import merge_params, register_scenario

#: The opt-in parameter every attack adapter accepts without defaulting:
#: a fault-plan spec (see :mod:`repro.faults`).  Declared optional so a
#: fault-free sweep's resolved params — and therefore its digests and
#: cache keys — are byte-identical to the pre-fault-subsystem era.
ATTACK_OPTIONAL_PARAMS: tuple[str, ...] = ("faults",)


def _fault_spec(p: Mapping[str, Any]) -> tuple:
    """The normalised fault plan of a parameter dict (absent = none)."""
    return tuple(p.get("faults") or ())


def defense_rejections(*stacks: DefenseStack) -> dict[str, int]:
    """Combined per-defense rejection counts across the given stacks.

    The resolver counts its own (response-side) rejections while the testbed
    stack counts pool-admission and NTP-sample vetoes; summing the two gives
    the full picture of *which* defense blocked an attack.
    """
    total: Counter = Counter()
    for stack in stacks:
        total.update(stack.rejections)
    return dict(sorted(total.items()))


@register_scenario
class ChronosPoolAttackExperiment:
    """Figure 1 end to end: poison the pool generation, then shift the clock."""

    name = "chronos_pool_attack"
    description = ("DNS poisoning of Chronos' 24-query pool generation "
                   "followed by the time-shifting phase (§IV)")

    def default_params(self) -> dict[str, Any]:
        return {
            "poison_at_query": 3,
            "benign_server_count": 200,
            "attacker_record_count": None,
            "malicious_ttl": 2 * 86400,
            "hijack_duration": 600.0,
            "dedupe": True,
            "max_addresses_per_response": None,
            "max_accepted_ttl": None,
            "run_time_shift": True,
            "target_shift": 600.0,
            "update_rounds": 5,
            "defenses": (),
        }

    def optional_params(self) -> tuple[str, ...]:
        return ATTACK_OPTIONAL_PARAMS

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params,
                         optional=self.optional_params())
        policy = PoolGenerationPolicy(
            dedupe=p["dedupe"],
            max_addresses_per_response=p["max_addresses_per_response"],
            max_accepted_ttl=p["max_accepted_ttl"],
        )
        config = PoolAttackConfig(
            seed=seed,
            faults=_fault_spec(p),
            poison_at_query=p["poison_at_query"],
            benign_server_count=p["benign_server_count"],
            attacker_record_count=p["attacker_record_count"],
            malicious_ttl=p["malicious_ttl"],
            hijack_duration=p["hijack_duration"],
            pool_policy=policy,
            defenses=tuple(p["defenses"]),
        )
        scenario = ChronosPoolAttackScenario(config)
        pool = scenario.run_pool_generation()
        metrics: dict[str, Any] = {
            "defense_rejections": defense_rejections(scenario.resolver.defenses,
                                                     scenario.testbed.defenses),
            "attack_succeeded": pool.attack_succeeded,
            "attacker_fraction": pool.attacker_fraction,
            "benign": pool.composition.benign,
            "malicious": pool.composition.malicious,
            "pool_size": pool.pool.size,
            "cache_hits": pool.cache_hits_during_generation,
            "poisoned_queries": list(pool.poisoned_queries),
        }
        if p["run_time_shift"]:
            shift = scenario.run_time_shift(p["target_shift"],
                                            update_rounds=p["update_rounds"])
            metrics.update(
                achieved_shift=shift.achieved_error,
                shift_achieved=shift.shift_achieved,
                updates_run=shift.updates_run,
                panic_rounds=shift.panic_rounds,
            )
        return metrics


@register_scenario
class TraditionalClientAttackExperiment:
    """The baseline comparison: poison a plain NTP client's one DNS lookup."""

    name = "traditional_client_attack"
    description = ("DNS poisoning of a traditional NTP client's start-up "
                   "resolution followed by time shifting (E6/E9 baseline)")

    def default_params(self) -> dict[str, Any]:
        return {
            "poison_startup_lookup": True,
            "benign_server_count": 50,
            "attacker_record_count": 4,
            "malicious_ttl": 2 * 86400,
            "max_servers": 4,
            "target_shift": 600.0,
            "poll_rounds": 4,
            "defenses": (),
        }

    def optional_params(self) -> tuple[str, ...]:
        return ATTACK_OPTIONAL_PARAMS

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params,
                         optional=self.optional_params())
        config = BaselineAttackConfig(
            seed=seed,
            faults=_fault_spec(p),
            poison_startup_lookup=p["poison_startup_lookup"],
            benign_server_count=p["benign_server_count"],
            attacker_record_count=p["attacker_record_count"],
            malicious_ttl=p["malicious_ttl"],
            max_servers=p["max_servers"],
            defenses=tuple(p["defenses"]),
        )
        scenario = TraditionalClientAttackScenario(config)
        result = scenario.run(p["target_shift"], poll_rounds=p["poll_rounds"])
        return {
            "attack_succeeded": result.attack_succeeded,
            "defense_rejections": defense_rejections(scenario.resolver.defenses,
                                                     scenario.testbed.defenses),
            "achieved_shift": result.achieved_error,
            "servers_used": len(result.servers_used),
            "malicious_servers_used": result.malicious_servers_used,
            "polls_run": result.polls_run,
        }


@register_scenario
class BGPHijackExperiment:
    """The prefix-hijack poisoning vector on its own (§II)."""

    name = "bgp_hijack"
    description = ("cache poisoning of the victim resolver via a BGP "
                   "more-specific hijack of the nameserver prefix (§II)")

    def default_params(self) -> dict[str, Any]:
        return {
            "benign_server_count": 60,
            "attacker_record_count": None,
            "malicious_ttl": 2 * 86400,
            "hijack_start": 0.0,
            "hijack_duration": 30.0,
            "lookup_time": 5.0,
            "defenses": (),
        }

    def optional_params(self) -> tuple[str, ...]:
        return ATTACK_OPTIONAL_PARAMS

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params,
                         optional=self.optional_params())
        config = BGPHijackConfig(
            seed=seed,
            faults=_fault_spec(p),
            benign_server_count=p["benign_server_count"],
            attacker_record_count=p["attacker_record_count"],
            malicious_ttl=p["malicious_ttl"],
            hijack_start=p["hijack_start"],
            hijack_duration=p["hijack_duration"],
            lookup_time=p["lookup_time"],
            defenses=tuple(p["defenses"]),
        )
        scenario = BGPHijackScenario(config)
        result = scenario.run()
        return {
            "attack_succeeded": result.attack_succeeded,
            "defense_rejections": defense_rejections(scenario.resolver.defenses),
            "cache_poisoned": result.cache_poisoned,
            "malicious_records_cached": result.malicious_records_cached,
            "cached_ttl": result.cached_ttl,
            "legitimate_queries_answered": result.legitimate_queries_answered,
            "hijacked_queries_answered": result.hijacked_queries_answered,
        }


@register_scenario
class FragPoisoningExperiment:
    """The defragmentation-cache injection poisoning vector (§II.A)."""

    name = "frag_poisoning"
    description = ("cache poisoning via spoofed trailing IPv4 fragments "
                   "spliced into the nameserver's fragmented response (§II.A)")

    def default_params(self) -> dict[str, Any]:
        return {
            "benign_server_count": 60,
            "records_per_response": 40,
            "nameserver_min_mtu": 548,
            "accept_fragments": True,
            "checksum_oracle": True,
            "ipid_window": 16,
            "starting_ipid": None,
            "attacker_record_count": None,
            "malicious_ttl": 2 * 86400,
            "defenses": (),
        }

    def optional_params(self) -> tuple[str, ...]:
        # trigger_count/trigger_interval opt into the sustained-load profile
        # (the ``sustained_load`` matrix row); leaving them out keeps the
        # classic single-race run — and its pinned digests — untouched.
        return (*ATTACK_OPTIONAL_PARAMS, "trigger_count", "trigger_interval")

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params,
                         optional=self.optional_params())
        config = FragPoisoningConfig(
            seed=seed,
            faults=_fault_spec(p),
            benign_server_count=p["benign_server_count"],
            records_per_response=p["records_per_response"],
            nameserver_min_mtu=p["nameserver_min_mtu"],
            accept_fragments=p["accept_fragments"],
            checksum_oracle=p["checksum_oracle"],
            ipid_window=p["ipid_window"],
            starting_ipid=p["starting_ipid"],
            attacker_record_count=p["attacker_record_count"],
            malicious_ttl=p["malicious_ttl"],
            defenses=tuple(p["defenses"]),
            trigger_count=int(p.get("trigger_count", 1)),
            trigger_interval=float(p.get("trigger_interval", 0.25)),
        )
        scenario = FragPoisoningScenario(config)
        result = scenario.run()
        metrics = {
            "attack_succeeded": result.attack_succeeded,
            "defense_rejections": defense_rejections(scenario.resolver.defenses),
            "cache_poisoned": result.cache_poisoned,
            "planted_fragments": result.planted_fragments,
            "poisoned_records_cached": result.poisoned_records_cached,
            "records_cached": result.records_cached,
        }
        if "trigger_count" in p:
            limiter = scenario.nameserver.rate_limiter
            metrics.update({
                "races_run": result.races_run,
                "races_poisoned": result.races_poisoned,
                "rrl_dropped": limiter.responses_dropped if limiter else 0,
                "rrl_slipped": limiter.responses_slipped if limiter else 0,
            })
        return metrics


@register_scenario
class DowngradeAttackExperiment:
    """The encrypted-transport downgrade vector: force plaintext, then poison."""

    name = "downgrade"
    description = ("SYN-flood downgrade of opportunistic encrypted DNS "
                   "followed by the classic fragmentation poisoning race")

    def default_params(self) -> dict[str, Any]:
        return {
            "benign_server_count": 60,
            "records_per_response": 40,
            "nameserver_min_mtu": 548,
            "syns_per_port": None,
            "flood_bursts": 3,
            "flood_interval": 5.0,
            "lookup_time": 1.0,
            "ipid_window": 16,
            "checksum_oracle": True,
            "attacker_record_count": None,
            "malicious_ttl": 2 * 86400,
            "defenses": (),
        }

    def optional_params(self) -> tuple[str, ...]:
        return ATTACK_OPTIONAL_PARAMS

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params,
                         optional=self.optional_params())
        config = DowngradeConfig(
            seed=seed,
            faults=_fault_spec(p),
            benign_server_count=p["benign_server_count"],
            records_per_response=p["records_per_response"],
            nameserver_min_mtu=p["nameserver_min_mtu"],
            syns_per_port=p["syns_per_port"],
            flood_bursts=p["flood_bursts"],
            flood_interval=p["flood_interval"],
            lookup_time=p["lookup_time"],
            ipid_window=p["ipid_window"],
            checksum_oracle=p["checksum_oracle"],
            attacker_record_count=p["attacker_record_count"],
            malicious_ttl=p["malicious_ttl"],
            defenses=tuple(p["defenses"]),
        )
        scenario = DowngradeScenario(config)
        result = scenario.run()
        return {
            "attack_succeeded": result.attack_succeeded,
            "defense_rejections": defense_rejections(scenario.resolver.defenses),
            "cache_poisoned": result.cache_poisoned,
            "downgraded": result.downgraded,
            "encrypted_failures": result.encrypted_failures,
            "syns_sent": result.syns_sent,
            "syns_dropped": result.syns_dropped,
            "planted_fragments": result.planted_fragments,
            "poisoned_records_cached": result.poisoned_records_cached,
        }


@register_scenario
class DNSMeasurementExperiment:
    """The §II DNS ecosystem study (E4) as a registry experiment.

    Not an attack: one run generates a synthetic nameserver + resolver
    population for the given seed, executes the probe/classify pipeline and
    returns the published marginals — so sweeping the study across seeds
    through the runner yields confidence intervals on every fraction.
    """

    name = "dns_measurement"
    description = ("the §II companion measurement: nameserver fragmentation/"
                   "DNSSEC and resolver fragment-acceptance statistics (E4)")

    def default_params(self) -> dict[str, Any]:
        return {
            "nameserver_total": 30,
            "nameserver_fragmenting": 16,
            "resolver_total": 5000,
            "pair_sample": 200,
        }

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        # Imported here: the measurement layer is independent of the attack
        # scenarios this module otherwise wires up.
        from ..analysis.poisoning_vectors import vulnerable_pair_fraction
        from ..measurement.nameserver_study import run_nameserver_study
        from ..measurement.population import (
            generate_nameserver_population,
            generate_resolver_population,
        )
        from ..measurement.resolver_study import run_resolver_study

        p = merge_params(self.default_params(), params)
        nameservers = generate_nameserver_population(
            seed=seed, total=p["nameserver_total"],
            fragmenting=p["nameserver_fragmenting"])
        resolvers = generate_resolver_population(seed=seed, total=p["resolver_total"])
        ns_report = run_nameserver_study(nameservers)
        resolver_report = run_resolver_study(resolvers)
        return {
            "nameservers_fragmenting_without_dnssec": ns_report.fragmenting_without_dnssec,
            "nameservers_fragmenting": ns_report.fragmenting,
            "nameservers_dnssec": ns_report.dnssec_enabled,
            "accept_any_fraction": resolver_report.accept_any_fraction,
            "accept_minimum_fraction": resolver_report.accept_minimum_fraction,
            "triggerable_fraction": resolver_report.triggerable_fraction,
            "trigger_methods": dict(sorted(resolver_report.by_trigger_method.items())),
            "vulnerable_pair_fraction": vulnerable_pair_fraction(
                nameservers, resolvers[: p["pair_sample"]]),
        }


#: Transport label -> testbed overrides for the overhead measurement.
#: ``tcp`` forces truncation so every lookup retries over the stream path;
#: the encrypted transports are provisioned by their defense.
TRANSPORT_PROFILES: dict[str, dict[str, Any]] = {
    "udp": {},
    "tcp": {"udp_limit": 512},
    "dot": {"defenses": ("encrypted_transport",)},
    "doh": {"defenses": ("encrypted_transport_doh",)},
}


@register_scenario
class TransportOverheadExperiment:
    """Per-transport time-to-answer of cache-missing pool lookups.

    Not an attack: the measurement behind the report's transport-overhead
    curve.  Each run builds an attacker-free world, schedules ``queries``
    cache-bypassing lookups ten simulated seconds apart and measures the
    simulated time from trigger to cache insertion — making the protocol's
    round trips visible (UDP one RTT; TCP one handshake more; DoT/DoH one
    TLS hello exchange on top).  Purely simulated-time figures, so the
    metrics are deterministic per ``(seed, params)`` and safe to digest.
    """

    name = "transport_overhead"
    description = ("time-to-answer of cache-missing lookups per DNS "
                   "transport (udp/tcp/dot/doh handshake overhead)")

    def default_params(self) -> dict[str, Any]:
        return {
            "transport": "udp",
            "queries": 5,
            "benign_server_count": 50,
            "records_per_response": 30,
        }

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        from ..dns.records import RecordType
        from .testbed import TestbedConfig, build_testbed

        p = merge_params(self.default_params(), params)
        transport = p["transport"]
        try:
            overrides = TRANSPORT_PROFILES[transport]
        except KeyError:
            raise ValueError(f"unknown transport {transport!r}; one of "
                             f"{sorted(TRANSPORT_PROFILES)}") from None
        config = TestbedConfig(
            seed=seed,
            benign_server_count=p["benign_server_count"],
            records_per_response=p["records_per_response"],
            nameserver_udp_payload_limit=overrides.get("udp_limit"),
            nameserver_transports=("tcp",) if transport == "tcp" else (),
            defenses=overrides.get("defenses", ()),
            with_attacker=False,
        )
        testbed = build_testbed(config)
        answer_times: list[float] = []
        unanswered = 0
        for index in range(p["queries"]):
            at = index * 10.0
            # trigger_lookup bypasses the cache, so every query reaches the
            # nameserver; inserted_at >= at proves *this* query was answered
            # (peek would happily serve the previous query's entry).
            testbed.simulator.schedule_at(
                at, lambda: testbed.resolver.trigger_lookup("pool.ntp.org"))
            testbed.simulator.run(until=at + 9.0)
            entry = testbed.resolver.cache.peek("pool.ntp.org", RecordType.A)
            if entry is not None and entry.inserted_at >= at:
                answer_times.append(entry.inserted_at - at)
            else:
                unanswered += 1
        mean = (sum(answer_times) / len(answer_times)) if answer_times else 0.0
        return {
            "transport": transport,
            "queries": p["queries"],
            "unanswered": unanswered,
            "mean_time_to_answer": mean,
            "max_time_to_answer": max(answer_times, default=0.0),
            # RTT multiples strip the latency constant out of the figure.
            "round_trips": mean / (2 * config.latency) if mean else 0.0,
        }
