"""repro.experiments — the unified experiment engine.

Three layers, composable but independently usable:

* :mod:`~repro.experiments.testbed` — declarative world construction
  (:class:`TestbedConfig` + :class:`TestbedBuilder`) shared by every attack
  scenario;
* :mod:`~repro.experiments.registry` — the :class:`Scenario` protocol and
  the by-name registry that makes any scenario runnable from a config dict;
* :mod:`~repro.experiments.runner` / :mod:`~repro.experiments.results` —
  parallel multi-seed sweeps (:class:`ExperimentRunner`) with deterministic,
  order-preserving aggregation (:class:`ExperimentResult`);
* :mod:`~repro.experiments.matrix` — the attack × defense-stack grid
  (:func:`run_defense_matrix`), reproducing the paper's countermeasure
  analysis as one deterministic sweep.

Quick start::

    from repro.experiments import ExperimentRunner

    result = ExperimentRunner(
        "chronos_pool_attack",
        seeds=range(16),
        base_params={"poison_at_query": 3},
        workers=4,
    ).run()
    print(result.success_rate(), result.success_interval().formatted())
"""

from .matrix import (
    DEFAULT_ATTACKS,
    DEFAULT_STACKS,
    AttackSpec,
    DefenseMatrixResult,
    DefenseStackSpec,
    MatrixCell,
    run_defense_matrix,
)
from .registry import (
    Scenario,
    available_scenarios,
    get_scenario,
    merge_params,
    register_scenario,
)
from .results import (
    ConfidenceInterval,
    ExperimentResult,
    RunRecord,
    mean_interval,
    wilson_interval,
)
from .runner import ExperimentRunner, ExperimentSpec, run_scenario
from .testbed import (
    DEFAULT_ZONE,
    Testbed,
    TestbedBuilder,
    TestbedConfig,
    build_testbed,
)

__all__ = [
    "DEFAULT_ATTACKS",
    "DEFAULT_STACKS",
    "AttackSpec",
    "DefenseMatrixResult",
    "DefenseStackSpec",
    "MatrixCell",
    "run_defense_matrix",
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "merge_params",
    "register_scenario",
    "ConfidenceInterval",
    "ExperimentResult",
    "RunRecord",
    "mean_interval",
    "wilson_interval",
    "ExperimentRunner",
    "ExperimentSpec",
    "run_scenario",
    "DEFAULT_ZONE",
    "Testbed",
    "TestbedBuilder",
    "TestbedConfig",
    "build_testbed",
]
