"""repro.experiments — the unified experiment engine.

Three layers, composable but independently usable:

* :mod:`~repro.experiments.testbed` — declarative world construction
  (:class:`TestbedConfig` + :class:`TestbedBuilder`) shared by every attack
  scenario;
* :mod:`~repro.experiments.registry` — the :class:`Scenario` protocol and
  the by-name registry that makes any scenario runnable from a config dict;
* :mod:`~repro.experiments.runner` / :mod:`~repro.experiments.results` —
  parallel multi-seed sweeps (:class:`ExperimentRunner`) with deterministic,
  order-preserving aggregation (:class:`ExperimentResult`);
* :mod:`~repro.experiments.scheduler` / :mod:`~repro.experiments.cache` —
  the sweep-execution layer: a single shared worker pool across any number
  of sweeps (:class:`SweepScheduler`) and a persistent content-addressed
  run cache (:class:`RunCache`) that makes re-runs incremental;
* :mod:`~repro.experiments.matrix` — the attack × defense-stack grid
  (:func:`run_defense_matrix`), reproducing the paper's countermeasure
  analysis as one deterministic sweep.

Quick start::

    from repro.experiments import ExperimentRunner

    result = ExperimentRunner(
        "chronos_pool_attack",
        seeds=range(16),
        base_params={"poison_at_query": 3},
        workers=4,
    ).run()
    print(result.success_rate(), result.success_interval().formatted())
"""

from .cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    RunCache,
    scenario_fingerprint,
    task_key,
)
from .matrix import (
    DEFAULT_ATTACKS,
    DEFAULT_STACKS,
    LEGACY_ATTACKS,
    LEGACY_STACKS,
    AttackSpec,
    DefenseMatrixResult,
    DefenseStackSpec,
    MatrixCell,
    matrix_specs,
    run_defense_matrix,
)
from .registry import (
    Scenario,
    available_scenarios,
    get_scenario,
    merge_params,
    register_scenario,
)
from .results import (
    ConfidenceInterval,
    ExperimentResult,
    RunRecord,
    mean_interval,
    wilson_interval,
)
from .runner import ExperimentRunner, ExperimentSpec, run_scenario
from .scheduler import (
    SweepError,
    SweepScheduler,
    SweepStats,
    TaskFailure,
    guided_chunk_sizes,
)
from .testbed import (
    DEFAULT_ZONE,
    Testbed,
    TestbedBuilder,
    TestbedConfig,
    build_testbed,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "RunCache",
    "scenario_fingerprint",
    "task_key",
    "DEFAULT_ATTACKS",
    "DEFAULT_STACKS",
    "LEGACY_ATTACKS",
    "LEGACY_STACKS",
    "AttackSpec",
    "DefenseMatrixResult",
    "DefenseStackSpec",
    "MatrixCell",
    "matrix_specs",
    "run_defense_matrix",
    "SweepError",
    "SweepScheduler",
    "SweepStats",
    "TaskFailure",
    "guided_chunk_sizes",
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "merge_params",
    "register_scenario",
    "ConfidenceInterval",
    "ExperimentResult",
    "RunRecord",
    "mean_interval",
    "wilson_interval",
    "ExperimentRunner",
    "ExperimentSpec",
    "run_scenario",
    "DEFAULT_ZONE",
    "Testbed",
    "TestbedBuilder",
    "TestbedConfig",
    "build_testbed",
]
