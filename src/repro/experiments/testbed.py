"""Declarative testbed construction shared by every attack scenario.

Each of the paper's attack scenarios needs the same world: a deterministic
simulator, a network, the benign pool.ntp.org infrastructure (volunteer NTP
servers behind an authoritative nameserver), a recursive resolver, and — for
the attack variants — the attacker's infrastructure (malicious NTP servers
plus the BGP-hijack machinery).  Before this module existed every scenario
hand-built that world; now the world is described by a
:class:`TestbedConfig` and materialised by :class:`TestbedBuilder`, and a
scenario only adds its victim on top.

Randomness discipline: the only random draws during construction are the
benign servers' clock errors, taken from the simulator-owned
``random.Random`` — so a testbed is a pure function of its config, and two
builds from the same config are identical event-for-event.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Optional

from ..defenses.stack import DefenseSpec, DefenseStack
from ..dns.nameserver import POOL_NTP_ORG_TTL, POOL_RECORDS_PER_RESPONSE, PoolNTPNameserver
from ..dns.records import SECONDS_PER_DAY
from ..dns.resolver import RecursiveResolver, ResolverPolicy
from ..netsim.addresses import AddressAllocator
from ..netsim.network import LinkProperties, Network
from ..netsim.simulator import Simulator
from ..ntp.server import NTPServer

if TYPE_CHECKING:  # imported lazily in build() to avoid a package cycle
    from ..attacks.attacker import AttackerInfrastructure
    from ..attacks.bgp_hijack import BGPHijackPoisoner
    from ..faults import FaultInjector

#: The zone every experiment resolves, matching the paper.
DEFAULT_ZONE = "pool.ntp.org"

#: Default fully-wired MTU (no fragmentation anywhere on the path).
DEFAULT_MTU = 1500


@dataclass
class TestbedConfig:
    """Complete declarative description of a scenario's world.

    The defaults describe the Figure-1 topology; scenarios override only the
    knobs they care about (address blocks, population sizes, policies).
    """

    __test__ = False  # "Test*" name; keep pytest from collecting it

    seed: int = 1
    zone: str = DEFAULT_ZONE
    latency: float = 0.01
    start_time: float = 0.0

    # -- benign pool.ntp.org infrastructure ---------------------------------
    benign_server_count: int = 200
    benign_address_block: str = "10.10.0.0/16"
    benign_clock_error_stddev: float = 0.005
    records_per_response: int = POOL_RECORDS_PER_RESPONSE
    benign_ttl: int = POOL_NTP_ORG_TTL
    nameserver_address: str = "192.0.2.53"
    #: Smallest MTU the nameserver fragments responses to (< 1500 also sets
    #: the path MTU, enabling the fragmentation poisoning vector).
    nameserver_min_mtu: int = DEFAULT_MTU
    nameserver_dnssec: bool = False
    #: Largest UDP response payload the nameserver sends; anything bigger
    #: goes out truncated with TC=1 (``None`` = no limit, the legacy
    #: behaviour every fragmentation experiment relies on).
    nameserver_udp_payload_limit: Optional[int] = None
    #: Stream transports the nameserver serves ("tcp", "dot", "doh");
    #: normally provisioned by the ``encrypted_transport`` defense.
    nameserver_transports: tuple[str, ...] = ()
    #: Certificate key for the encrypted transports (the zone's TLS
    #: identity); provisioned by the ``encrypted_transport`` defense.
    transport_cert_key: Optional[str] = None
    #: Issue session-resumption tickets and accept 0-RTT first flights on
    #: the secure listeners; provisioned by the ``encrypted_transport``
    #: defense when its ``zero_rtt`` knob is on.
    nameserver_session_resumption: bool = False

    # -- victim-side resolver ------------------------------------------------
    resolver_address: str = "192.0.2.1"
    resolver_policy: ResolverPolicy = field(default_factory=ResolverPolicy)

    # -- defenses --------------------------------------------------------------
    #: Extra countermeasures, by registry name and/or instance; composed (in
    #: order) on top of the policy-derived classic defenses.  The stack's
    #: ``configure_testbed`` hooks may rewrite other fields of this config
    #: (on the builder's private copy) before the world is materialised.
    defenses: DefenseSpec = ()
    #: Zone-signing key; ``None`` leaves the zone unsigned.  Normally
    #: provisioned by the ``response_signing`` defense rather than by hand.
    zone_key: Optional[str] = None

    # -- fault injection -------------------------------------------------------
    #: Declarative fault plan (a :meth:`repro.faults.FaultPlan.to_spec`
    #: tuple of event dicts and/or event instances).  Address fields may use
    #: the ``@nameserver`` / ``@resolver`` aliases.  Empty — the default —
    #: builds no injector at all; the network stays pristine and the
    #: transmit path pays one attribute check.
    faults: tuple = ()

    # -- attacker infrastructure ---------------------------------------------
    with_attacker: bool = True
    attacker_address_block: str = "198.51.100.0/24"
    #: Malicious NTP servers / injected A records (``None`` = the maximum
    #: that fits in one unfragmented response, i.e. the 89 of §IV).
    attacker_record_count: Optional[int] = None
    malicious_ttl: int = 2 * SECONDS_PER_DAY
    with_hijacker: bool = True
    attacker_nameserver_address: str = "198.51.100.253"


@dataclass
class Testbed:
    """The materialised world.  ``victim`` is whatever the scenario attached."""

    __test__ = False  # "Test*" name; keep pytest from collecting it

    config: TestbedConfig
    simulator: Simulator
    network: Network
    benign_servers: list[NTPServer]
    nameserver: PoolNTPNameserver
    resolver: RecursiveResolver
    #: The configured defense stack (shared by the resolver and the victim's
    #: pool/NTP hooks).  Always present; empty when no defenses were asked.
    defenses: DefenseStack = field(default_factory=DefenseStack)
    #: The armed fault injector, when the config declared a fault plan
    #: (``testbed.faults.stats`` is the chaos ledger of the run).
    faults: Optional["FaultInjector"] = None
    attacker: Optional["AttackerInfrastructure"] = None
    hijacker: Optional["BGPHijackPoisoner"] = None
    victim: Any = None


#: Called with the partially-built testbed (simulator, network, benign
#: infrastructure and resolver ready; attacker not yet built) and returns the
#: victim host to attach.  Keeping the victim between resolver and attacker
#: preserves the construction order of the pre-refactor scenarios.
VictimFactory = Callable[[Testbed], Any]


class TestbedBuilder:
    """Materialises a :class:`TestbedConfig` into a runnable world."""

    __test__ = False  # "Test*" name; keep pytest from collecting it

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config or TestbedConfig()

    def build(self, victim_factory: Optional[VictimFactory] = None) -> Testbed:
        # Imported here (not at module level) because the attacks package
        # imports this module for its own scenario construction.
        from ..attacks.attacker import build_attacker_infrastructure
        from ..attacks.bgp_hijack import BGPHijackPoisoner

        # The defense stack may rewrite config fields (PMTU floor, zone key);
        # work on a shallow copy so the caller's config object stays pristine
        # and reusable across builds.
        cfg = replace(self.config)
        stack = DefenseStack.from_spec(cfg.defenses)
        stack.configure_testbed(cfg)
        simulator = Simulator(seed=cfg.seed, start_time=cfg.start_time)
        network = Network(simulator, default_link=LinkProperties(latency=cfg.latency))
        fault_injector = None
        if cfg.faults:
            # Imported lazily: pristine worlds (the overwhelming default)
            # never touch the fault subsystem.
            from ..faults import FaultInjector, FaultPlan

            fault_injector = FaultInjector(
                network,
                FaultPlan.from_spec(cfg.faults),
                aliases={"@nameserver": cfg.nameserver_address,
                         "@resolver": cfg.resolver_address},
            ).arm()

        allocator = AddressAllocator(cfg.benign_address_block)
        benign_servers = [
            NTPServer(network, allocator.allocate(),
                      clock_error=simulator.rng.gauss(0.0, cfg.benign_clock_error_stddev))
            for _ in range(cfg.benign_server_count)
        ]
        nameserver = PoolNTPNameserver(
            network,
            cfg.nameserver_address,
            zone_name=cfg.zone,
            pool_servers=[server.address for server in benign_servers],
            records_per_response=cfg.records_per_response,
            ttl=cfg.benign_ttl,
            dnssec=cfg.nameserver_dnssec,
            min_supported_mtu=cfg.nameserver_min_mtu,
            zone_key=cfg.zone_key,
            udp_payload_limit=cfg.nameserver_udp_payload_limit,
        )
        if cfg.nameserver_min_mtu < DEFAULT_MTU:
            network.set_path_mtu(nameserver.address, cfg.nameserver_min_mtu)
        if cfg.nameserver_transports:
            # Imported lazily: stream transports only exist in worlds that
            # asked for them (the encrypted_transport defense, TC fallback
            # experiments), keeping datagram-only builds untouched.
            from ..dns.transport import DNSServerTransport

            DNSServerTransport(
                nameserver,
                transports=cfg.nameserver_transports,
                cert_key=cfg.transport_cert_key,
                identity=cfg.zone,
                session_resumption=cfg.nameserver_session_resumption,
            )
        resolver = RecursiveResolver(
            network,
            cfg.resolver_address,
            nameserver_map={cfg.zone: nameserver.address},
            policy=cfg.resolver_policy,
            defenses=stack,
        )
        testbed = Testbed(
            config=cfg,
            simulator=simulator,
            network=network,
            benign_servers=benign_servers,
            nameserver=nameserver,
            resolver=resolver,
            defenses=stack,
            faults=fault_injector,
        )
        # Runtime attachment happens before the victim exists: defenses
        # capture world state (zone profile, keys), not victim state.
        stack.attach_testbed(testbed)
        if victim_factory is not None:
            testbed.victim = victim_factory(testbed)
        if cfg.with_attacker:
            testbed.attacker = build_attacker_infrastructure(
                network,
                qname=cfg.zone,
                address_block=cfg.attacker_address_block,
                server_count=cfg.attacker_record_count,
                malicious_ttl=cfg.malicious_ttl,
            )
            if cfg.with_hijacker:
                testbed.hijacker = BGPHijackPoisoner(
                    network,
                    testbed.attacker,
                    target_nameserver=nameserver.address,
                    zone_name=cfg.zone,
                    attacker_nameserver_address=cfg.attacker_nameserver_address,
                )
        return testbed


def build_testbed(config: Optional[TestbedConfig] = None,
                  victim_factory: Optional[VictimFactory] = None) -> Testbed:
    """One-call convenience wrapper around :class:`TestbedBuilder`."""
    return TestbedBuilder(config).build(victim_factory)
