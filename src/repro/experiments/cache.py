"""Persistent, content-addressed cache of scenario runs.

Every task the experiment engine executes is a pure function of
``(scenario name, seed, fully-resolved params)`` — that purity is what makes
sweeps deterministic, and it also makes every run cacheable forever.  This
module keys each :class:`~repro.experiments.results.RunRecord` by the SHA-256
of a canonical JSON encoding of

* the scenario name,
* the scenario's *fingerprint* — a hash over the cache schema version and
  the scenario's ``default_params()``, so any change to a scenario's accepted
  parameters or their defaults silently invalidates all of its old entries
  (their keys can no longer be produced),
* the seed, and
* the fully-resolved parameter dict,

and stores the record in a sharded, append-only JSONL directory.  Re-running
a matrix with 100 extra seeds then only computes the 100 new seeds; every
previously-seen ``(scenario, seed, params)`` cell is replayed from disk
byte-identically (record canonicalisation is the same JSON used by
:meth:`ExperimentResult.to_json`, so digests match across cold and warm
runs).

Concurrency: writes go through a single ``O_APPEND`` ``write(2)`` of one
complete line, so concurrent writers (several schedulers, or several
processes sharing a cache directory) interleave whole lines rather than
bytes.  Readers skip lines that fail to parse — a torn or truncated line
costs one recomputation, never a crash — and duplicate keys resolve
last-line-wins.

Observability sidecar: an entry may carry the run's
:class:`~repro.obs.metrics.MetricsSnapshot` under an optional ``obs`` key.
The snapshot lives strictly *outside* the record — digests and cache keys
never see it — but it lets a metrics-collecting sweep replay a cached
cell's telemetry instead of losing it, so an interrupted campaign resumed
from the cache reports the same merged metrics as an uninterrupted one.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import warnings
from collections.abc import Iterator, Mapping
from pathlib import Path
from typing import Any, Optional

from ..obs.metrics import MetricsSnapshot
from .registry import get_scenario
from .results import RunRecord

#: Bump to orphan every existing cache entry after an incompatible change to
#: the key derivation or the stored-record layout.
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, tuples as lists."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def scenario_fingerprint(scenario_name: str) -> str:
    """Hash of the scenario's schema: its name and full default parameters.

    The fingerprint is folded into every cache key, so editing a scenario's
    ``default_params()`` (adding a knob, changing a default) automatically
    invalidates its cached runs without touching anyone else's.
    """
    scenario = get_scenario(scenario_name)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "name": scenario_name,
        "defaults": scenario.default_params(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def task_key(scenario_name: str, seed: int, params: Mapping[str, Any],
             fingerprint: str) -> str:
    """Content address of one run: scenario + fingerprint + seed + params."""
    payload = {
        "scenario": scenario_name,
        "fingerprint": fingerprint,
        "seed": seed,
        "params": dict(params),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class CacheStats:
    """Hit/miss/write accounting for one :class:`RunCache` instance."""

    __slots__ = ("hits", "misses", "writes", "corrupt_lines", "duplicate_lines",
                 "invalidated", "write_errors")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_lines = 0
        self.duplicate_lines = 0
        self.invalidated = 0
        self.write_errors = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def formatted(self) -> str:
        line = (f"{self.hits}/{self.lookups} hits "
                f"({self.hit_rate:.0%}), {self.writes} writes, "
                f"{self.corrupt_lines} corrupt lines skipped, "
                f"{self.duplicate_lines} duplicate lines collapsed")
        if self.write_errors:
            line += f", {self.write_errors} write errors (persistence disabled)"
        return line


class RunCache:
    """On-disk store of run records, addressed by :func:`task_key`.

    The store is a directory of ``runs-XX.jsonl`` shards (XX = first key
    byte), each line one entry.  Shards are parsed lazily on the first lookup
    that lands in them, so opening a large cache costs nothing until it is
    actually consulted.
    """

    SHARD_PREFIX = "runs-"

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        if path is None:
            path = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.path = Path(path)
        self.stats = CacheStats()
        self._shards: dict[str, dict[str, dict]] = {}
        self._fingerprints: dict[str, str] = {}
        self._write_disabled = False
        try:
            self.path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # An unwritable cache location (read-only mount, permission
            # lockdown) must not kill the sweep: run uncached instead.
            self._disable_writes(exc)

    def _disable_writes(self, exc: OSError) -> None:
        """Degrade to the in-memory shard only; warn once, never raise.

        Disk persistence stops (ENOSPC, EACCES, read-only filesystem, ...),
        but lookups keep working from whatever was loaded plus records
        cached in memory during this process — the sweep completes, it just
        starts cold next time.
        """
        self.stats.write_errors += 1
        if not self._write_disabled:
            self._write_disabled = True
            warnings.warn(
                f"run cache at {self.path} is not writable ({exc}); "
                "continuing without persistence", RuntimeWarning, stacklevel=3)

    # -- key helpers ---------------------------------------------------------
    def fingerprint(self, scenario_name: str) -> str:
        """Memoised :func:`scenario_fingerprint` (stable per process)."""
        cached = self._fingerprints.get(scenario_name)
        if cached is None:
            cached = scenario_fingerprint(scenario_name)
            self._fingerprints[scenario_name] = cached
        return cached

    def key_for(self, scenario_name: str, seed: int, params: Mapping[str, Any]) -> str:
        return task_key(scenario_name, seed, params, self.fingerprint(scenario_name))

    # -- shard machinery -----------------------------------------------------
    def _shard_path(self, shard: str) -> Path:
        return self.path / f"{self.SHARD_PREFIX}{shard}.jsonl"

    def _load_shard(self, shard: str) -> dict[str, dict]:
        loaded = self._shards.get(shard)
        if loaded is not None:
            return loaded
        entries: dict[str, dict] = {}
        shard_path = self._shard_path(shard)
        try:
            raw = shard_path.read_bytes()
        except OSError:
            raw = b""
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                record = entry["record"]
                # Minimal shape check so a valid-JSON-but-wrong line cannot
                # produce a broken RunRecord later.
                if not isinstance(record["params"], dict):
                    raise TypeError("params must be a dict")
                if not isinstance(record["metrics"], dict):
                    raise TypeError("metrics must be a dict")
            except Exception:  # noqa: PERF203 — per-line corruption tolerance
                # Torn write, truncation, or foreign garbage: the line is
                # worth one recomputation, not a crash.
                self.stats.corrupt_lines += 1
                continue
            # Repeated keys (a crash-looped writer re-appending the same
            # cell) collapse last-write-wins: one in-memory entry per key,
            # so replay memory is bounded by distinct cells, not file lines.
            if key in entries:
                self.stats.duplicate_lines += 1
            entries[key] = entry
        self._shards[shard] = entries
        return entries

    def _shard_names_on_disk(self) -> Iterator[str]:
        prefix = self.SHARD_PREFIX
        for entry in sorted(self.path.glob(f"{prefix}*.jsonl")):
            yield entry.name[len(prefix):-len(".jsonl")]

    # -- lookup / insert -----------------------------------------------------
    def get(self, scenario_name: str, seed: int,
            params: Mapping[str, Any]) -> Optional[RunRecord]:
        """The cached record for a task, or ``None`` (a miss)."""
        found = self.get_entry(scenario_name, seed, params)
        return found[0] if found is not None else None

    def get_entry(self, scenario_name: str, seed: int, params: Mapping[str, Any]
                  ) -> Optional[tuple[RunRecord, Optional[MetricsSnapshot]]]:
        """The cached record *and* its metrics sidecar, or ``None`` (a miss).

        The snapshot slot is ``None`` for entries written without metrics
        (``put(record)`` with no snapshot — the default sweep path); callers
        that need full telemetry coverage should treat a missing sidecar as
        "telemetry lost to an untelemetered earlier run", never as an error.
        """
        key = self.key_for(scenario_name, seed, params)
        entry = self._load_shard(key[:2]).get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        record = entry["record"]
        obs = entry.get("obs")
        snapshot = MetricsSnapshot.from_dict(obs) if obs is not None else None
        return (RunRecord(scenario=record["scenario"], seed=record["seed"],
                          params=record["params"], metrics=record["metrics"]),
                snapshot)

    def put(self, record: RunRecord,
            metrics: Optional[MetricsSnapshot] = None) -> None:
        """Persist one run record (append-only, multi-process safe).

        ``metrics`` — the run's observability snapshot — is stored beside
        the record (never inside it: cache keys and digests are computed
        over the record alone, so a metrics-bearing entry and a bare one
        are interchangeable for determinism purposes).
        """
        key = self.key_for(record.scenario, record.seed, record.params)
        entry = {
            "key": key,
            "fingerprint": self.fingerprint(record.scenario),
            "record": record.canonical(),
        }
        if metrics is not None and not metrics.is_empty():
            entry["obs"] = metrics.to_dict()
        # The leading newline makes appends self-healing: if the previous
        # write was torn (process killed mid-write, no trailing newline),
        # this write terminates the partial line instead of merging into it.
        # Readers skip the resulting blank lines.
        line = b"\n" + canonical_json(entry).encode() + b"\n"
        if not self._write_disabled:
            try:
                fd = os.open(self._shard_path(key[:2]),
                             os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
                try:
                    os.write(fd, line)
                finally:
                    os.close(fd)
                self.stats.writes += 1
            except OSError as exc:
                self._disable_writes(exc)
        # The in-memory shard is updated even when the disk is gone, so
        # repeated lookups within this process still hit.  With writes
        # disabled the shard is force-loaded first: a later lazy load from
        # disk would not contain this entry and must not displace it.
        if self._write_disabled:
            self._load_shard(key[:2])[key] = entry
        else:
            shard = self._shards.get(key[:2])
            if shard is not None:
                shard[key] = entry

    # -- maintenance ---------------------------------------------------------
    def invalidate_stale(self) -> int:
        """Rewrite every shard dropping entries with outdated fingerprints.

        Stale entries (whose scenario fingerprint no longer matches the
        registered scenario) can never be *hit* — their keys are not derivable
        any more — but they still occupy disk; this reclaims them.  Entries
        for scenarios that are no longer registered are dropped too.  Returns
        the number of entries removed.
        """
        removed = 0
        current: dict[str, Optional[str]] = {}
        for shard in list(self._shard_names_on_disk()):
            entries = self._load_shard(shard)
            kept: dict[str, dict] = {}
            for key, entry in entries.items():
                name = entry["record"]["scenario"]
                if name not in current:
                    try:
                        current[name] = self.fingerprint(name)
                    except KeyError:
                        current[name] = None
                if entry.get("fingerprint") == current[name]:
                    kept[key] = entry
                else:
                    removed += 1
            if len(kept) != len(entries):
                shard_path = self._shard_path(shard)
                tmp_path = shard_path.with_suffix(".jsonl.tmp")
                payload = b"".join(canonical_json(entry).encode() + b"\n"
                                   for entry in kept.values())
                tmp_path.write_bytes(payload)
                tmp_path.replace(shard_path)
                self._shards[shard] = kept
        self.stats.invalidated += removed
        return removed

    def clear(self) -> None:
        """Remove every shard file (the directory itself is kept)."""
        for shard in list(self._shard_names_on_disk()):
            with contextlib.suppress(OSError):
                self._shard_path(shard).unlink()
        self._shards.clear()

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        keys: set[str] = set()
        for shard in self._shard_names_on_disk():
            keys.update(self._load_shard(shard))
        return len(keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunCache {self.path} [{self.stats.formatted()}]>"
