"""Attack × defense-stack matrix experiments.

The paper's story is a matrix: which countermeasure stops which poisoning
vector?  The classic defenses stop neither vector, cookies and 0x20 stop
only blind spoofing, fragment handling stops only the defragmentation
splice, the §V mitigations stop a single poisoning but not a sustained
hijack, and only content authentication (DNSSEC) — or, since the
encrypted-transport subsystem, *strict* DoT with its changed trust model —
stops everything; the ``downgrade`` row shows that opportunistic DoT does
not.  This module fans the full grid — every attack under every named stack —
through the shared :class:`~repro.experiments.scheduler.SweepScheduler`: one
:class:`~repro.experiments.runner.ExperimentSpec` per attack row with the
stacks as an explicit ``param_sets`` sweep, all rows flattened into a single
task stream on one worker pool (no per-row pool spawns, no inter-row
barriers), so each cell aggregates the same seeds and the whole matrix
inherits the scheduler's byte-identical-across-worker-counts determinism.
With a :class:`~repro.experiments.cache.RunCache` attached, extending the
grid by a seed or a stack only computes the new cells.
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Optional

from .cache import RunCache
from .results import ConfidenceInterval, ExperimentResult
from .runner import ExperimentRunner, ExperimentSpec
from .scheduler import ProgressCallback, SweepScheduler, SweepStats

#: Seconds of hijack that blanket the whole 24-hour generation window.
SUSTAINED_HIJACK_DURATION = 24 * 3600.0 + 1200.0


@dataclass(frozen=True)
class AttackSpec:
    """One matrix row: a registered scenario plus its threat-model params."""

    label: str
    scenario: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if "defenses" in self.params:
            raise ValueError("attack params must not set 'defenses'; "
                             "that axis belongs to the stack specs")


@dataclass(frozen=True)
class DefenseStackSpec:
    """One matrix column: a named, ordered combination of defenses."""

    name: str
    defenses: tuple[str, ...]
    description: str = ""


#: The PR-2/PR-3 attack rows, kept as a stable sub-grid: their per-cell
#: records — and therefore the digest of a matrix run over exactly these
#: rows and :data:`LEGACY_STACKS` — are pinned by the scale-out benchmark,
#: so transport-era changes cannot silently drift the earlier science.
#: ``chronos_24h_hijack`` is the §V residual threat model: the hijack
#: blankets the whole generation window and the attacker mimics the zone's
#: published profile (4 records, short TTL) — the strongest attacker the
#: mitigations concede to.
LEGACY_ATTACKS: tuple[AttackSpec, ...] = (
    AttackSpec("chronos_poisoning", "chronos_pool_attack",
               {"poison_at_query": 1, "run_time_shift": False,
                "benign_server_count": 120}),
    AttackSpec("chronos_24h_hijack", "chronos_pool_attack",
               {"poison_at_query": 1, "run_time_shift": False,
                "benign_server_count": 120,
                "hijack_duration": SUSTAINED_HIJACK_DURATION,
                "malicious_ttl": 300, "attacker_record_count": 4}),
    AttackSpec("bgp_hijack", "bgp_hijack", {}),
    AttackSpec("frag_poisoning", "frag_poisoning", {}),
    AttackSpec("traditional_client", "traditional_client_attack", {}),
)

#: The default rows: the legacy grid plus the encrypted-transport
#: ``downgrade`` vector (force an opportunistic resolver back to plaintext,
#: then race) — the row that keeps the DoT columns honest.
DEFAULT_ATTACKS: tuple[AttackSpec, ...] = (
    *LEGACY_ATTACKS,
    AttackSpec("downgrade", "downgrade", {}),
)

#: The PR-2/PR-3 defense columns (see :data:`LEGACY_ATTACKS` for why they
#: stay a named sub-grid).  ``classic`` is the empty stack — random
#: TXID/port and response matching are always on — and the §V mitigations
#: appear alone and combined so the matrix contains the paper's mitigation
#: table as a cell slice.
LEGACY_STACKS: tuple[DefenseStackSpec, ...] = (
    DefenseStackSpec("classic", (),
                     "random TXID/port + response matching only"),
    DefenseStackSpec("dns_0x20", ("dns_0x20",), "0x20 case encoding"),
    DefenseStackSpec("dns_cookies", ("dns_cookies",), "RFC 7873 cookies"),
    DefenseStackSpec("frag_reject", ("fragment_rejection",),
                     "refuse fragment-reassembled responses"),
    DefenseStackSpec("dnssec", ("response_signing",),
                     "zone signing + resolver validation"),
    DefenseStackSpec("address_cap", ("address_cap",),
                     "§V mitigation 1 alone"),
    DefenseStackSpec("ttl_discard", ("ttl_discard",),
                     "§V mitigation 2 alone"),
    DefenseStackSpec("section5", ("ttl_discard", "address_cap"),
                     "both §V mitigations"),
    DefenseStackSpec("multi_vantage", ("multi_vantage",),
                     "vantage cross-checks (profile + samples)"),
    DefenseStackSpec("hardened", ("dns_0x20", "dns_cookies", "fragment_rejection",
                                  "ttl_discard", "address_cap", "multi_vantage"),
                     "everything except content authentication"),
)

#: The default columns: the legacy stacks plus the two encrypted-transport
#: policies.  Strict DoT is the first column that clears *every* off-path
#: row — including the §V residual 24-hour hijack — at the trust-model
#: price the paper names; the opportunistic column shows why the policy,
#: not the cryptography, decides whether that protection is real.
DEFAULT_STACKS: tuple[DefenseStackSpec, ...] = (
    *LEGACY_STACKS,
    DefenseStackSpec("dot_strict", ("encrypted_transport",),
                     "strict DNS-over-TLS upstream (fail closed)"),
    DefenseStackSpec("dot_opportunistic", ("encrypted_transport_opportunistic",),
                     "opportunistic DoT (falls back to plaintext)"),
)

#: Availability-hardening columns for fault-injection sweeps (kept out of
#: :data:`DEFAULT_STACKS` so the pinned full-grid digest is untouched).
#: Both are deliberately double-edged — serve-stale prolongs a poisoned
#: entry's tenancy past its TTL, and upstream retries multiply the
#: transactions a blind spoofer can race — so they earn their place as
#: explicit matrix columns rather than always-on resolver behaviour.
RESILIENCE_STACKS: tuple[DefenseStackSpec, ...] = (
    DefenseStackSpec("serve_stale", ("serve_stale",),
                     "RFC 8767 stale answers on upstream failure"),
    DefenseStackSpec("upstream_retries", ("upstream_retries",),
                     "retry timed-out upstream queries with backoff"),
    DefenseStackSpec("stale_retries", ("serve_stale", "upstream_retries"),
                     "both availability hardenings combined"),
)

#: Serving-layer rows: the sustained-load attacker re-races the
#: fragmentation splice every 250 ms instead of once — the offered-load
#: profile that distinguishes a rate-limited nameserver from an unlimited
#: one (kept out of :data:`DEFAULT_ATTACKS`; pinned digests stay put).
SERVING_ATTACKS: tuple[AttackSpec, ...] = (
    AttackSpec("sustained_load", "frag_poisoning",
               {"trigger_count": 12, "trigger_interval": 0.25}),
)

#: Serving-layer columns: response-rate limiting alone, and RRL paired with
#: each DoT policy.  RRL throttles the sustained race but answers plaintext
#: once its bucket refills, so the ``downgrade`` row still clears ``rrl``
#: and ``rrl_plus_dot_opp`` — only the strict pairing closes it.  Kept out
#: of :data:`DEFAULT_STACKS` so the pinned full-grid digest is untouched.
SERVING_STACKS: tuple[DefenseStackSpec, ...] = (
    DefenseStackSpec("rrl", ("response_rate_limit",),
                     "per-/24 UDP response-rate limiting"),
    DefenseStackSpec("rrl_plus_dot",
                     ("response_rate_limit", "encrypted_transport"),
                     "RRL + strict DoT upstream"),
    DefenseStackSpec("rrl_plus_dot_opp",
                     ("response_rate_limit", "encrypted_transport_opportunistic"),
                     "RRL + opportunistic DoT (downgradeable)"),
)


@dataclass
class MatrixCell:
    """One (attack, stack) cell: the per-seed runs and their aggregates."""

    attack: str
    stack: str
    result: ExperimentResult

    @property
    def runs(self) -> int:
        return len(self.result)

    @property
    def success_rate(self) -> float:
        return self.result.success_rate()

    @property
    def success_interval(self) -> ConfidenceInterval:
        return self.result.success_interval()

    def mean(self, key: str) -> Optional[float]:
        values = self.result.numeric_values(key)
        return sum(values) / len(values) if values else None


@dataclass
class DefenseMatrixResult:
    """The full grid, cell-addressable and deterministically digestible."""

    attacks: tuple[AttackSpec, ...]
    stacks: tuple[DefenseStackSpec, ...]
    cells: dict[tuple[str, str], MatrixCell]
    elapsed_seconds: float = 0.0
    #: Execution accounting from the shared scheduler (``None`` when the
    #: legacy per-row path ran); deliberately excluded from :meth:`digest`.
    sweep_stats: Optional[SweepStats] = None

    def cell(self, attack: str, stack: str) -> MatrixCell:
        try:
            return self.cells[(attack, stack)]
        except KeyError:
            raise KeyError(f"no cell ({attack!r}, {stack!r}); attacks: "
                           f"{[a.label for a in self.attacks]}, stacks: "
                           f"{[s.name for s in self.stacks]}") from None

    def row(self, attack: str) -> list[MatrixCell]:
        return [self.cell(attack, stack.name) for stack in self.stacks]

    def column(self, stack: str) -> list[MatrixCell]:
        return [self.cell(attack.label, stack) for attack in self.attacks]

    # -- determinism ------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over every cell's canonical record encoding, in grid order.

        Wall-clock is excluded (as in :class:`ExperimentResult`), so the
        digest is byte-identical no matter how many workers ran the sweep.
        """
        digest = hashlib.sha256()
        for attack in self.attacks:
            for stack in self.stacks:
                cell = self.cell(attack.label, stack.name)
                digest.update(f"{attack.label}|{stack.name}|".encode())
                digest.update(cell.result.to_json().encode())
        return digest.hexdigest()

    # -- reporting ---------------------------------------------------------------
    def success_table(self) -> dict[str, dict[str, float]]:
        """attack label -> stack name -> success rate."""
        return {attack.label: {stack.name: self.cell(attack.label, stack.name).success_rate
                               for stack in self.stacks}
                for attack in self.attacks}

    def formatted(self) -> list[str]:
        """A printable success-rate table (rows: attacks, columns: stacks)."""
        width = max(len(attack.label) for attack in self.attacks)
        header = " " * width + "".join(f" {stack.name:>13}" for stack in self.stacks)
        lines = [header]
        for attack in self.attacks:
            row = f"{attack.label:<{width}}"
            for stack in self.stacks:
                row += f" {self.cell(attack.label, stack.name).success_rate:>13.2f}"
            lines.append(row)
        return lines

    def residual_hijack_rate(self, stack: str = "section5") -> float:
        """Success rate of the sustained 24-hour hijack under §V mitigations.

        The paper's residual claim is that this stays ≈ 1.0: the mitigations
        stop single poisonings, not an attacker who owns DNS for the whole
        generation window.
        """
        return self.cell("chronos_24h_hijack", stack).success_rate


def matrix_specs(attacks: Sequence[AttackSpec],
                 stacks: Sequence[DefenseStackSpec],
                 seeds: Sequence[int]) -> list[ExperimentSpec]:
    """One :class:`ExperimentSpec` per attack row, stacks as ``param_sets``."""
    return [
        ExperimentSpec(
            scenario=attack.scenario,
            seeds=tuple(seeds),
            base_params=dict(attack.params),
            param_sets=tuple({"defenses": stack.defenses} for stack in stacks),
        )
        for attack in attacks
    ]


def run_defense_matrix(attacks: Sequence[AttackSpec] = DEFAULT_ATTACKS,
                       stacks: Sequence[DefenseStackSpec] = DEFAULT_STACKS,
                       seeds: Sequence[int] = (1, 2),
                       workers: int = 1,
                       cache: Optional[RunCache] = None,
                       shared_scheduler: bool = True,
                       on_progress: Optional[ProgressCallback] = None,
                       collect_metrics: bool = False) -> DefenseMatrixResult:
    """Run every attack under every defense stack and aggregate per cell.

    One :class:`ExperimentSpec` per attack row with the stacks as that row's
    explicit ``param_sets`` sweep.  By default all rows execute as one task
    stream on a single shared worker pool; ``shared_scheduler=False`` keeps
    the legacy one-:class:`ExperimentRunner`-per-row behaviour (a fresh pool
    and a full barrier per row), retained for benchmarking the difference.
    Either way the cell records — and therefore :meth:`DefenseMatrixResult.
    digest` — are byte-identical across worker counts, across the two
    execution paths, and across cold and warm ``cache`` runs.

    ``on_progress`` and ``collect_metrics`` pass straight to the shared
    scheduler (ignored on the legacy path): the former streams ``(done,
    total)`` as cells complete, the latter folds every cell's metrics into
    ``sweep_stats.metrics``.  Neither can move the digest.
    """
    attacks = tuple(attacks)
    stacks = tuple(stacks)
    seeds = tuple(seeds)
    start = time.perf_counter()
    specs = matrix_specs(attacks, stacks, seeds)
    stats: Optional[SweepStats] = None
    if shared_scheduler:
        scheduler = SweepScheduler(workers=workers, cache=cache,
                                   on_progress=on_progress,
                                   collect_metrics=collect_metrics)
        row_results, stats = scheduler.run_specs(specs)
    else:
        row_results = [ExperimentRunner(spec=spec, workers=workers, cache=cache).run()
                       for spec in specs]
    cells: dict[tuple[str, str], MatrixCell] = {}
    per_stack = len(seeds)
    for attack, row_result in zip(attacks, row_results):
        # Task order is param_sets-major, seeds inner; slice back per stack.
        for index, stack in enumerate(stacks):
            records = row_result.records[index * per_stack:(index + 1) * per_stack]
            cells[(attack.label, stack.name)] = MatrixCell(
                attack=attack.label,
                stack=stack.name,
                result=ExperimentResult(scenario=attack.scenario, records=records),
            )
    return DefenseMatrixResult(
        attacks=attacks,
        stacks=stacks,
        cells=cells,
        elapsed_seconds=time.perf_counter() - start,
        sweep_stats=stats,
    )
