"""Attack × defense-stack matrix experiments.

The paper's story is a matrix: which countermeasure stops which poisoning
vector?  The classic defenses stop neither vector, cookies and 0x20 stop
only blind spoofing, fragment handling stops only the defragmentation
splice, the §V mitigations stop a single poisoning but not a sustained
hijack, and only content authentication (DNSSEC) stops everything.  This
module fans the full grid — every attack under every named defense stack —
through :class:`~repro.experiments.runner.ExperimentRunner`, one runner per
attack row with the stacks as an explicit ``param_sets`` sweep, so each cell
aggregates the same seeds and the whole matrix inherits the runner's
byte-identical-across-worker-counts determinism.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .results import ConfidenceInterval, ExperimentResult
from .runner import ExperimentRunner

#: Seconds of hijack that blanket the whole 24-hour generation window.
SUSTAINED_HIJACK_DURATION = 24 * 3600.0 + 1200.0


@dataclass(frozen=True)
class AttackSpec:
    """One matrix row: a registered scenario plus its threat-model params."""

    label: str
    scenario: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if "defenses" in self.params:
            raise ValueError("attack params must not set 'defenses'; "
                             "that axis belongs to the stack specs")


@dataclass(frozen=True)
class DefenseStackSpec:
    """One matrix column: a named, ordered combination of defenses."""

    name: str
    defenses: Tuple[str, ...]
    description: str = ""


#: The attack rows of the default matrix.  ``chronos_24h_hijack`` is the §V
#: residual threat model: the hijack blankets the whole generation window
#: and the attacker mimics the zone's published profile (4 records, short
#: TTL) — the strongest attacker the mitigations concede to.
DEFAULT_ATTACKS: Tuple[AttackSpec, ...] = (
    AttackSpec("chronos_poisoning", "chronos_pool_attack",
               {"poison_at_query": 1, "run_time_shift": False,
                "benign_server_count": 120}),
    AttackSpec("chronos_24h_hijack", "chronos_pool_attack",
               {"poison_at_query": 1, "run_time_shift": False,
                "benign_server_count": 120,
                "hijack_duration": SUSTAINED_HIJACK_DURATION,
                "malicious_ttl": 300, "attacker_record_count": 4}),
    AttackSpec("bgp_hijack", "bgp_hijack", {}),
    AttackSpec("frag_poisoning", "frag_poisoning", {}),
    AttackSpec("traditional_client", "traditional_client_attack", {}),
)

#: The defense columns of the default matrix.  ``classic`` is the empty
#: stack — random TXID/port and response matching are always on — and the
#: §V mitigations appear alone and combined so the matrix contains the
#: paper's mitigation table as a cell slice.
DEFAULT_STACKS: Tuple[DefenseStackSpec, ...] = (
    DefenseStackSpec("classic", (),
                     "random TXID/port + response matching only"),
    DefenseStackSpec("dns_0x20", ("dns_0x20",), "0x20 case encoding"),
    DefenseStackSpec("dns_cookies", ("dns_cookies",), "RFC 7873 cookies"),
    DefenseStackSpec("frag_reject", ("fragment_rejection",),
                     "refuse fragment-reassembled responses"),
    DefenseStackSpec("dnssec", ("response_signing",),
                     "zone signing + resolver validation"),
    DefenseStackSpec("address_cap", ("address_cap",),
                     "§V mitigation 1 alone"),
    DefenseStackSpec("ttl_discard", ("ttl_discard",),
                     "§V mitigation 2 alone"),
    DefenseStackSpec("section5", ("ttl_discard", "address_cap"),
                     "both §V mitigations"),
    DefenseStackSpec("multi_vantage", ("multi_vantage",),
                     "vantage cross-checks (profile + samples)"),
    DefenseStackSpec("hardened", ("dns_0x20", "dns_cookies", "fragment_rejection",
                                  "ttl_discard", "address_cap", "multi_vantage"),
                     "everything except content authentication"),
)


@dataclass
class MatrixCell:
    """One (attack, stack) cell: the per-seed runs and their aggregates."""

    attack: str
    stack: str
    result: ExperimentResult

    @property
    def runs(self) -> int:
        return len(self.result)

    @property
    def success_rate(self) -> float:
        return self.result.success_rate()

    @property
    def success_interval(self) -> ConfidenceInterval:
        return self.result.success_interval()

    def mean(self, key: str) -> Optional[float]:
        values = self.result.numeric_values(key)
        return sum(values) / len(values) if values else None


@dataclass
class DefenseMatrixResult:
    """The full grid, cell-addressable and deterministically digestible."""

    attacks: Tuple[AttackSpec, ...]
    stacks: Tuple[DefenseStackSpec, ...]
    cells: Dict[Tuple[str, str], MatrixCell]
    elapsed_seconds: float = 0.0

    def cell(self, attack: str, stack: str) -> MatrixCell:
        try:
            return self.cells[(attack, stack)]
        except KeyError:
            raise KeyError(f"no cell ({attack!r}, {stack!r}); attacks: "
                           f"{[a.label for a in self.attacks]}, stacks: "
                           f"{[s.name for s in self.stacks]}") from None

    def row(self, attack: str) -> List[MatrixCell]:
        return [self.cell(attack, stack.name) for stack in self.stacks]

    def column(self, stack: str) -> List[MatrixCell]:
        return [self.cell(attack.label, stack) for attack in self.attacks]

    # -- determinism ------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over every cell's canonical record encoding, in grid order.

        Wall-clock is excluded (as in :class:`ExperimentResult`), so the
        digest is byte-identical no matter how many workers ran the sweep.
        """
        digest = hashlib.sha256()
        for attack in self.attacks:
            for stack in self.stacks:
                cell = self.cell(attack.label, stack.name)
                digest.update(f"{attack.label}|{stack.name}|".encode("utf-8"))
                digest.update(cell.result.to_json().encode("utf-8"))
        return digest.hexdigest()

    # -- reporting ---------------------------------------------------------------
    def success_table(self) -> Dict[str, Dict[str, float]]:
        """attack label -> stack name -> success rate."""
        return {attack.label: {stack.name: self.cell(attack.label, stack.name).success_rate
                               for stack in self.stacks}
                for attack in self.attacks}

    def formatted(self) -> List[str]:
        """A printable success-rate table (rows: attacks, columns: stacks)."""
        width = max(len(attack.label) for attack in self.attacks)
        header = " " * width + "".join(f" {stack.name:>13}" for stack in self.stacks)
        lines = [header]
        for attack in self.attacks:
            row = f"{attack.label:<{width}}"
            for stack in self.stacks:
                row += f" {self.cell(attack.label, stack.name).success_rate:>13.2f}"
            lines.append(row)
        return lines

    def residual_hijack_rate(self, stack: str = "section5") -> float:
        """Success rate of the sustained 24-hour hijack under §V mitigations.

        The paper's residual claim is that this stays ≈ 1.0: the mitigations
        stop single poisonings, not an attacker who owns DNS for the whole
        generation window.
        """
        return self.cell("chronos_24h_hijack", stack).success_rate


def run_defense_matrix(attacks: Sequence[AttackSpec] = DEFAULT_ATTACKS,
                       stacks: Sequence[DefenseStackSpec] = DEFAULT_STACKS,
                       seeds: Sequence[int] = (1, 2),
                       workers: int = 1) -> DefenseMatrixResult:
    """Run every attack under every defense stack and aggregate per cell.

    One :class:`ExperimentRunner` per attack row; the stacks become that
    row's explicit ``param_sets`` sweep, so a row's runs parallelise across
    both stacks and seeds.
    """
    attacks = tuple(attacks)
    stacks = tuple(stacks)
    seeds = tuple(seeds)
    start = time.perf_counter()
    cells: Dict[Tuple[str, str], MatrixCell] = {}
    for attack in attacks:
        row_result = ExperimentRunner(
            attack.scenario,
            seeds=seeds,
            base_params=dict(attack.params),
            param_sets=[{"defenses": stack.defenses} for stack in stacks],
            workers=workers,
        ).run()
        # Task order is param_sets-major, seeds inner; slice back per stack.
        per_stack = len(seeds)
        for index, stack in enumerate(stacks):
            records = row_result.records[index * per_stack:(index + 1) * per_stack]
            cells[(attack.label, stack.name)] = MatrixCell(
                attack=attack.label,
                stack=stack.name,
                result=ExperimentResult(scenario=attack.scenario, records=records),
            )
    return DefenseMatrixResult(
        attacks=attacks,
        stacks=stacks,
        cells=cells,
        elapsed_seconds=time.perf_counter() - start,
    )
