"""Shared sweep-execution layer: one worker pool for any number of sweeps.

:class:`~repro.experiments.runner.ExperimentRunner` executes one spec;
the defense matrix is five of them, and the pre-scheduler implementation
fanned each row through its *own* ``multiprocessing.Pool`` — paying the pool
spawn cost five times and idling every worker at the barrier between rows.
:class:`SweepScheduler` instead flattens all cells of any list of
:class:`~repro.experiments.runner.ExperimentSpec`\\ s into a single task
stream, executes it on one shared pool, and reassembles the per-spec
:class:`~repro.experiments.results.ExperimentResult`\\ s in deterministic
order.

Guarantees:

* **Determinism** — every task is a pure function of ``(scenario, seed,
  params)`` and results are reassembled by task index, so the output is
  byte-identical no matter how many workers executed it, in which order the
  chunks completed, or how many of the records came from the cache.
* **Long-tail awareness** — tasks are dispatched in *guided* chunks
  (``remaining / (2 * workers)``, floor 1): early chunks are large to
  amortise IPC, late chunks shrink to single tasks so one slow scenario
  cannot leave the other workers idle at the end of the stream.
* **No idle workers** — when the (post-cache) pending task count does not
  exceed the worker count, execution falls back inline: forking a pool that
  runs one task per worker costs more than the tasks themselves for the
  packet-level scenarios in this reproduction.
* **Incremental re-runs** — with a :class:`~repro.experiments.cache.RunCache`
  attached, previously-computed cells are replayed from disk and only the
  genuinely new ``(scenario, seed, params)`` combinations reach the pool;
  new records are written back as they complete (per task inline, per chunk
  pooled — always from the parent process, safe alongside other processes
  appending to the same store), so even an interrupted sweep resumes from
  everything it finished.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Optional

from .cache import RunCache
from .results import ExperimentResult, RunRecord
from .runner import ExperimentSpec, Task, _execute_task, resolve_spec_tasks


def guided_chunk_sizes(task_count: int, workers: int) -> list[int]:
    """Decreasing chunk sizes covering ``task_count`` tasks (guided
    self-scheduling, as in OpenMP's ``schedule(guided)``).

    Each chunk takes ``remaining / (2 * workers)`` tasks (minimum one), so
    dispatch overhead is amortised up front while the tail of the stream is
    handed out one task at a time for load balancing.
    """
    if task_count < 0:
        raise ValueError("task_count must be non-negative")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    sizes: list[int] = []
    remaining = task_count
    while remaining > 0:
        size = max(1, remaining // (2 * workers))
        sizes.append(size)
        remaining -= size
    return sizes


def _execute_chunk(job: tuple[int, list[Task]]) -> tuple[int, list[RunRecord]]:
    """Worker entry point: run a chunk, tagged with its stream offset."""
    start, tasks = job
    return start, [_execute_task(task) for task in tasks]


#: Progress observer: called with ``(done, total)`` as the task stream
#: completes.  ``done`` counts cache replays plus executed tasks.
ProgressCallback = Callable[[int, int], None]


@dataclass
class SweepStats:
    """What one scheduler invocation did, for reporting and benchmarks."""

    tasks_total: int = 0
    cache_hits: int = 0
    executed: int = 0
    executed_inline: bool = False
    chunks: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0

    def formatted(self) -> str:
        mode = "inline" if self.executed_inline else f"{self.workers} workers"
        return (f"{self.tasks_total} tasks: {self.cache_hits} cached, "
                f"{self.executed} executed ({mode}, {self.chunks} chunks) "
                f"in {self.elapsed_seconds:.2f}s")


class SweepScheduler:
    """Executes task streams for one or many sweeps on a single shared pool.

    Parameters
    ----------
    workers:
        Maximum worker processes.  ``1`` always runs inline.
    cache:
        Optional :class:`RunCache`; hits skip execution, misses are written
        back after the stream completes.
    on_progress:
        Optional callback invoked with ``(done, total)`` as tasks complete —
        once after cache replay, then per task inline or per completed chunk
        pooled — so long sweeps (million-client population shards) are not
        silent for minutes.  Called from the parent process only; exceptions
        propagate to the caller.
    """

    def __init__(self, workers: int = 1, cache: Optional[RunCache] = None,
                 on_progress: Optional[ProgressCallback] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.cache = cache
        self.on_progress = on_progress
        self._done = 0
        self._total = 0

    # -- task-level API ------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Task]) -> tuple[list[RunRecord], SweepStats]:
        """Execute fully-resolved tasks, returning records in task order."""
        start_time = time.perf_counter()
        stats = SweepStats(tasks_total=len(tasks), workers=self.workers)
        records: list[Optional[RunRecord]] = [None] * len(tasks)
        self._done = 0
        self._total = len(tasks)

        pending: list[tuple[int, Task]] = []
        if self.cache is not None:
            for index, task in enumerate(tasks):
                cached = self.cache.get(*task)
                if cached is not None:
                    records[index] = cached
                else:
                    pending.append((index, task))
            stats.cache_hits = len(tasks) - len(pending)
            self._report_progress(stats.cache_hits)
        else:
            pending = list(enumerate(tasks))

        stats.executed = len(pending)
        if pending:
            computed = self._execute(pending, stats)
            for (index, _), record in zip(pending, computed):
                records[index] = record

        stats.elapsed_seconds = time.perf_counter() - start_time
        return list(records), stats  # type: ignore[arg-type]

    def _report_progress(self, newly_done: int) -> None:
        self._done += newly_done
        if self.on_progress is not None and newly_done:
            self.on_progress(self._done, self._total)

    def _persist(self, records: Sequence[RunRecord]) -> None:
        """Write freshly-computed records to the cache as they arrive.

        Called from the execution loops (per task inline, per completed chunk
        pooled) rather than after the whole stream, so an interrupted sweep
        still resumes from everything it finished — the append-only store
        tolerates the partial run.
        """
        if self.cache is not None:
            for record in records:
                self.cache.put(record)

    def _execute(self, pending: list[tuple[int, Task]],
                 stats: SweepStats) -> list[RunRecord]:
        """Run the pending tasks, preserving their given order in the result."""
        tasks = [task for _, task in pending]
        # A pool only pays off when there are more tasks than workers;
        # otherwise fork/teardown costs more than the tasks themselves.
        if self.workers == 1 or len(tasks) <= self.workers:
            stats.executed_inline = True
            stats.chunks = len(tasks)
            results_inline: list[RunRecord] = []
            for task in tasks:
                record = _execute_task(task)
                self._persist((record,))
                results_inline.append(record)
                self._report_progress(1)
            return results_inline

        jobs: list[tuple[int, list[Task]]] = []
        offset = 0
        for size in guided_chunk_sizes(len(tasks), self.workers):
            jobs.append((offset, tasks[offset:offset + size]))
            offset += size
        stats.chunks = len(jobs)

        results: list[Optional[list[RunRecord]]] = [None] * len(jobs)
        starts = {start: slot for slot, (start, _) in enumerate(jobs)}
        with multiprocessing.Pool(processes=self.workers) as pool:
            # Unordered completion + index-tagged chunks: fast workers move
            # on to the next chunk immediately, determinism comes from the
            # reassembly below rather than from dispatch order.
            for start, chunk_records in pool.imap_unordered(_execute_chunk, jobs):
                self._persist(chunk_records)
                results[starts[start]] = chunk_records
                self._report_progress(len(chunk_records))
        flattened: list[RunRecord] = []
        for chunk_records in results:
            assert chunk_records is not None
            flattened.extend(chunk_records)
        return flattened

    # -- spec-level API ------------------------------------------------------
    def run_specs(self, specs: Sequence[ExperimentSpec]
                  ) -> tuple[list[ExperimentResult], SweepStats]:
        """Run every spec's cells as one flattened stream; one result per spec.

        Each returned :class:`ExperimentResult` carries the records of its
        spec, in that spec's own task order; ``elapsed_seconds`` is the
        shared wall-clock of the whole stream (the per-spec share is not
        meaningful under a shared pool).
        """
        all_tasks: list[Task] = []
        boundaries: list[tuple[int, int]] = []
        for spec in specs:
            resolved = resolve_spec_tasks(spec)
            boundaries.append((len(all_tasks), len(all_tasks) + len(resolved)))
            all_tasks.extend(resolved)
        records, stats = self.run_tasks(all_tasks)
        results = [
            ExperimentResult(scenario=spec.scenario,
                             records=records[start:stop],
                             elapsed_seconds=stats.elapsed_seconds)
            for spec, (start, stop) in zip(specs, boundaries)
        ]
        return results, stats
