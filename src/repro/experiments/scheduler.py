"""Shared sweep-execution layer: one worker pool for any number of sweeps.

:class:`~repro.experiments.runner.ExperimentRunner` executes one spec;
the defense matrix is five of them, and the pre-scheduler implementation
fanned each row through its *own* ``multiprocessing.Pool`` — paying the pool
spawn cost five times and idling every worker at the barrier between rows.
:class:`SweepScheduler` instead flattens all cells of any list of
:class:`~repro.experiments.runner.ExperimentSpec`\\ s into a single task
stream, executes it on one shared pool, and reassembles the per-spec
:class:`~repro.experiments.results.ExperimentResult`\\ s in deterministic
order.

Guarantees:

* **Determinism** — every task is a pure function of ``(scenario, seed,
  params)`` and results are reassembled by task index, so the output is
  byte-identical no matter how many workers executed it, in which order the
  chunks completed, or how many of the records came from the cache.
* **Long-tail awareness** — tasks are dispatched in *guided* chunks
  (``remaining / (2 * workers)``, floor 1): early chunks are large to
  amortise IPC, late chunks shrink to single tasks so one slow scenario
  cannot leave the other workers idle at the end of the stream.
* **No idle workers** — when the (post-cache) pending task count does not
  exceed the worker count, execution falls back inline: forking a pool that
  runs one task per worker costs more than the tasks themselves for the
  packet-level scenarios in this reproduction.
* **Incremental re-runs** — with a :class:`~repro.experiments.cache.RunCache`
  attached, previously-computed cells are replayed from disk and only the
  genuinely new ``(scenario, seed, params)`` combinations reach the pool;
  new records are written back as they complete (per task inline, per chunk
  pooled — always from the parent process, safe alongside other processes
  appending to the same store), so even an interrupted sweep resumes from
  everything it finished.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..obs import capture as _obs_capture
from ..obs.metrics import MetricsSnapshot
from .cache import RunCache
from .results import ExperimentResult, RunRecord
from .runner import ExperimentSpec, Task, _execute_task, resolve_spec_tasks


def guided_chunk_sizes(task_count: int, workers: int) -> list[int]:
    """Decreasing chunk sizes covering ``task_count`` tasks (guided
    self-scheduling, as in OpenMP's ``schedule(guided)``).

    Each chunk takes ``remaining / (2 * workers)`` tasks (minimum one), so
    dispatch overhead is amortised up front while the tail of the stream is
    handed out one task at a time for load balancing.
    """
    if task_count < 0:
        raise ValueError("task_count must be non-negative")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    sizes: list[int] = []
    remaining = task_count
    while remaining > 0:
        size = max(1, remaining // (2 * workers))
        sizes.append(size)
        remaining -= size
    return sizes


def _execute_task_timed(task: Task, collect_metrics: bool
                        ) -> tuple[RunRecord, float, Optional[MetricsSnapshot]]:
    """Run one task, measuring its wall-time and (optionally) its metrics.

    Metrics collection wraps the run in a metrics-only observability
    capture (no trace ring buffer) so the scenario's instrumented layers
    record into a registry this function snapshots afterwards.  The
    facade is out of band — it draws no RNG and schedules nothing — so
    the returned :class:`RunRecord` is byte-identical either way.
    """
    begun = time.perf_counter()
    if collect_metrics:
        with _obs_capture(trace=False) as ob:
            record = _execute_task(task)
        snapshot = ob.metrics.snapshot()
    else:
        record = _execute_task(task)
        snapshot = None
    return record, time.perf_counter() - begun, snapshot


def _execute_chunk(job: tuple[int, list[Task], bool]
                   ) -> tuple[int, list[RunRecord], float, Optional[MetricsSnapshot]]:
    """Worker entry point: run a chunk, tagged with its stream offset.

    Returns the chunk's records plus its telemetry: summed task wall-time
    and (when requested) the chunk's merged metrics snapshot — per-task
    snapshots are folded here so only one travels back through the pool.
    """
    start, tasks, collect_metrics = job
    records: list[RunRecord] = []
    task_seconds = 0.0
    snapshots: list[MetricsSnapshot] = []
    for task in tasks:
        record, duration, snapshot = _execute_task_timed(task, collect_metrics)
        records.append(record)
        task_seconds += duration
        if snapshot is not None:
            snapshots.append(snapshot)
    merged = MetricsSnapshot.merge_all(snapshots) if collect_metrics else None
    return start, records, task_seconds, merged


#: Progress observer: called with ``(done, total)`` as the task stream
#: completes.  ``done`` counts cache replays plus executed tasks.
ProgressCallback = Callable[[int, int], None]


@dataclass
class SweepStats:
    """What one scheduler invocation did, for reporting and benchmarks."""

    tasks_total: int = 0
    cache_hits: int = 0
    executed: int = 0
    executed_inline: bool = False
    chunks: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Summed wall-time of every executed task (the work the pool's worker
    #: lanes actually did; cache replays contribute nothing).
    task_seconds_total: float = 0.0
    #: Wall-time of the slowest chunk (pooled) or task (inline) — the long
    #: tail that guided chunking exists to keep off the critical path.
    task_seconds_max: float = 0.0
    #: Merged per-task metrics (``collect_metrics=True`` only): every
    #: worker's counters folded through the associative/commutative
    #: snapshot merge, so the fold is order- and worker-count-independent.
    metrics: Optional[MetricsSnapshot] = None

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of the task stream replayed from the cache."""
        return self.cache_hits / self.tasks_total if self.tasks_total else 0.0

    @property
    def worker_utilization(self) -> float:
        """Aggregate task time over available lane time (0..1).

        Inline execution has one lane; a pooled run has ``workers``.  Low
        utilization on a pooled sweep means workers idled — a long-tailed
        stream or one dominated by cache replay.
        """
        if self.elapsed_seconds <= 0.0:
            return 0.0
        lanes = 1 if self.executed_inline else self.workers
        return min(self.task_seconds_total / (lanes * self.elapsed_seconds), 1.0)

    def formatted(self) -> str:
        mode = "inline" if self.executed_inline else f"{self.workers} workers"
        line = (f"{self.tasks_total} tasks: {self.cache_hits} cached "
                f"({self.cache_hit_ratio:.0%} hit ratio), "
                f"{self.executed} executed ({mode}, {self.chunks} chunks) "
                f"in {self.elapsed_seconds:.2f}s")
        if self.executed:
            line += (f"; worker task time {self.task_seconds_total:.2f}s "
                     f"({self.worker_utilization:.0%} utilization)")
        return line


class SweepScheduler:
    """Executes task streams for one or many sweeps on a single shared pool.

    Parameters
    ----------
    workers:
        Maximum worker processes.  ``1`` always runs inline.
    cache:
        Optional :class:`RunCache`; hits skip execution, misses are written
        back after the stream completes.
    on_progress:
        Optional callback invoked with ``(done, total)`` as tasks complete —
        once after cache replay, then per task inline or per completed chunk
        pooled — so long sweeps (million-client population shards) are not
        silent for minutes.  Called from the parent process only; exceptions
        propagate to the caller.
    collect_metrics:
        When True, every executed task runs under a metrics-only
        observability capture and the per-task snapshots are merged into
        ``SweepStats.metrics`` (shipped back through the pool one folded
        snapshot per chunk).  Records are byte-identical either way; the
        default keeps the hot path free of the capture.
    """

    def __init__(self, workers: int = 1, cache: Optional[RunCache] = None,
                 on_progress: Optional[ProgressCallback] = None,
                 collect_metrics: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.cache = cache
        self.on_progress = on_progress
        self.collect_metrics = collect_metrics
        self._done = 0
        self._total = 0

    # -- task-level API ------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Task]) -> tuple[list[RunRecord], SweepStats]:
        """Execute fully-resolved tasks, returning records in task order."""
        start_time = time.perf_counter()
        stats = SweepStats(tasks_total=len(tasks), workers=self.workers)
        records: list[Optional[RunRecord]] = [None] * len(tasks)
        self._done = 0
        self._total = len(tasks)

        pending: list[tuple[int, Task]] = []
        if self.cache is not None:
            for index, task in enumerate(tasks):
                cached = self.cache.get(*task)
                if cached is not None:
                    records[index] = cached
                else:
                    pending.append((index, task))
            stats.cache_hits = len(tasks) - len(pending)
            self._report_progress(stats.cache_hits)
        else:
            pending = list(enumerate(tasks))

        stats.executed = len(pending)
        if pending:
            computed = self._execute(pending, stats)
            for (index, _), record in zip(pending, computed):
                records[index] = record

        stats.elapsed_seconds = time.perf_counter() - start_time
        return list(records), stats  # type: ignore[arg-type]

    def _report_progress(self, newly_done: int) -> None:
        self._done += newly_done
        if self.on_progress is not None and newly_done:
            self.on_progress(self._done, self._total)

    def _persist(self, records: Sequence[RunRecord]) -> None:
        """Write freshly-computed records to the cache as they arrive.

        Called from the execution loops (per task inline, per completed chunk
        pooled) rather than after the whole stream, so an interrupted sweep
        still resumes from everything it finished — the append-only store
        tolerates the partial run.
        """
        if self.cache is not None:
            for record in records:
                self.cache.put(record)

    def _execute(self, pending: list[tuple[int, Task]],
                 stats: SweepStats) -> list[RunRecord]:
        """Run the pending tasks, preserving their given order in the result."""
        tasks = [task for _, task in pending]
        # A pool only pays off when there are more tasks than workers;
        # otherwise fork/teardown costs more than the tasks themselves.
        snapshots: list[MetricsSnapshot] = []
        if self.workers == 1 or len(tasks) <= self.workers:
            stats.executed_inline = True
            stats.chunks = len(tasks)
            results_inline: list[RunRecord] = []
            for task in tasks:
                record, duration, snapshot = _execute_task_timed(
                    task, self.collect_metrics)
                stats.task_seconds_total += duration
                stats.task_seconds_max = max(stats.task_seconds_max, duration)
                if snapshot is not None:
                    snapshots.append(snapshot)
                self._persist((record,))
                results_inline.append(record)
                self._report_progress(1)
            if self.collect_metrics:
                stats.metrics = MetricsSnapshot.merge_all(snapshots)
            return results_inline

        jobs: list[tuple[int, list[Task], bool]] = []
        offset = 0
        for size in guided_chunk_sizes(len(tasks), self.workers):
            jobs.append((offset, tasks[offset:offset + size], self.collect_metrics))
            offset += size
        stats.chunks = len(jobs)

        results: list[Optional[list[RunRecord]]] = [None] * len(jobs)
        starts = {start: slot for slot, (start, _, _) in enumerate(jobs)}
        with multiprocessing.Pool(processes=self.workers) as pool:
            # Unordered completion + index-tagged chunks: fast workers move
            # on to the next chunk immediately, determinism comes from the
            # reassembly below rather than from dispatch order.
            for start, chunk_records, task_seconds, snapshot in pool.imap_unordered(
                    _execute_chunk, jobs):
                self._persist(chunk_records)
                results[starts[start]] = chunk_records
                stats.task_seconds_total += task_seconds
                stats.task_seconds_max = max(stats.task_seconds_max, task_seconds)
                if snapshot is not None:
                    snapshots.append(snapshot)
                self._report_progress(len(chunk_records))
        if self.collect_metrics:
            # Merge order does not matter: the snapshot merge is associative
            # and commutative (property-tested), so the folded telemetry is
            # identical no matter which workers finished first.
            stats.metrics = MetricsSnapshot.merge_all(snapshots)
        flattened: list[RunRecord] = []
        for chunk_records in results:
            assert chunk_records is not None
            flattened.extend(chunk_records)
        return flattened

    # -- spec-level API ------------------------------------------------------
    def run_specs(self, specs: Sequence[ExperimentSpec]
                  ) -> tuple[list[ExperimentResult], SweepStats]:
        """Run every spec's cells as one flattened stream; one result per spec.

        Each returned :class:`ExperimentResult` carries the records of its
        spec, in that spec's own task order; ``elapsed_seconds`` is the
        shared wall-clock of the whole stream (the per-spec share is not
        meaningful under a shared pool).
        """
        all_tasks: list[Task] = []
        boundaries: list[tuple[int, int]] = []
        for spec in specs:
            resolved = resolve_spec_tasks(spec)
            boundaries.append((len(all_tasks), len(all_tasks) + len(resolved)))
            all_tasks.extend(resolved)
        records, stats = self.run_tasks(all_tasks)
        results = [
            ExperimentResult(scenario=spec.scenario,
                             records=records[start:stop],
                             elapsed_seconds=stats.elapsed_seconds)
            for spec, (start, stop) in zip(specs, boundaries)
        ]
        return results, stats
