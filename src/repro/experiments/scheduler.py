"""Shared sweep-execution layer: one worker pool for any number of sweeps.

:class:`~repro.experiments.runner.ExperimentRunner` executes one spec;
the defense matrix is five of them, and the pre-scheduler implementation
fanned each row through its *own* ``multiprocessing.Pool`` — paying the pool
spawn cost five times and idling every worker at the barrier between rows.
:class:`SweepScheduler` instead flattens all cells of any list of
:class:`~repro.experiments.runner.ExperimentSpec`\\ s into a single task
stream, executes it on one shared pool, and reassembles the per-spec
:class:`~repro.experiments.results.ExperimentResult`\\ s in deterministic
order.

Guarantees:

* **Determinism** — every task is a pure function of ``(scenario, seed,
  params)`` and results are reassembled by task index, so the output is
  byte-identical no matter how many workers executed it, in which order the
  chunks completed, or how many of the records came from the cache.
* **Long-tail awareness** — tasks are dispatched in *guided* chunks
  (``remaining / (2 * workers)``, floor 1): early chunks are large to
  amortise IPC, late chunks shrink to single tasks so one slow scenario
  cannot leave the other workers idle at the end of the stream.
* **No idle workers** — when the (post-cache) pending task count does not
  exceed the worker count, execution falls back inline: forking a pool that
  runs one task per worker costs more than the tasks themselves for the
  packet-level scenarios in this reproduction.
* **Incremental re-runs** — with a :class:`~repro.experiments.cache.RunCache`
  attached, previously-computed cells are replayed from disk and only the
  genuinely new ``(scenario, seed, params)`` combinations reach the pool;
  new records are written back as they complete (per task inline, per chunk
  pooled — always from the parent process, safe alongside other processes
  appending to the same store), so even an interrupted sweep resumes from
  everything it finished.
* **Crash isolation** — a task whose scenario raises comes back as a
  :class:`TaskFailure` marker instead of poisoning its whole chunk; failed
  tasks are retried inline (``task_retries`` attempts with exponential
  backoff), and only permanent failures raise :class:`SweepError` — after
  the rest of the stream has completed and been persisted.
* **Pool-loss degradation** — a watchdog (``task_timeout`` seconds with no
  chunk completing) detects a lost pool (e.g. a SIGKILLed worker, whose
  in-flight chunk ``multiprocessing.Pool`` silently never redelivers); the
  pool is torn down and every unfinished chunk re-runs inline in the
  parent.  Tasks are pure functions of ``(scenario, seed, params)``, so
  the degraded sweep reproduces the healthy sweep's records byte for byte.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..obs import capture as _obs_capture
from ..obs import current as _obs_current
from ..obs.metrics import MetricsSnapshot
from .cache import RunCache
from .results import ExperimentResult, RunRecord
from .runner import ExperimentSpec, Task, _execute_task, resolve_spec_tasks


def guided_chunk_sizes(task_count: int, workers: int) -> list[int]:
    """Decreasing chunk sizes covering ``task_count`` tasks (guided
    self-scheduling, as in OpenMP's ``schedule(guided)``).

    Each chunk takes ``remaining / (2 * workers)`` tasks (minimum one), so
    dispatch overhead is amortised up front while the tail of the stream is
    handed out one task at a time for load balancing.
    """
    if task_count < 0:
        raise ValueError("task_count must be non-negative")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    sizes: list[int] = []
    remaining = task_count
    while remaining > 0:
        size = max(1, remaining // (2 * workers))
        sizes.append(size)
        remaining -= size
    return sizes


@dataclass
class TaskFailure:
    """Picklable marker for a task whose scenario raised.

    Travels back through the pool in a chunk's record slot so one crashing
    task cannot poison its chunk-mates; the parent retries it inline and
    only then treats it as permanent.
    """

    task: Task
    error: str
    attempts: int = 1


class SweepError(RuntimeError):
    """Raised when tasks still fail after every retry.

    Carries the surviving :attr:`failures` and the sweep's :attr:`stats` —
    every *other* task's record has already been persisted to the cache, so
    a re-run after fixing the cause only recomputes the failed cells.
    """

    def __init__(self, failures: list[TaskFailure], stats: SweepStats) -> None:
        self.failures = failures
        self.stats = stats
        preview = "; ".join(f"{f.task[0]}(seed={f.task[1]}): {f.error}"
                            for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)} task(s) failed after retries: {preview}{more}")


def _execute_task_timed(task: Task, collect_metrics: bool
                        ) -> tuple[RunRecord, float, Optional[MetricsSnapshot]]:
    """Run one task, measuring its wall-time and (optionally) its metrics.

    Metrics collection wraps the run in a metrics-only observability
    capture (no trace ring buffer) so the scenario's instrumented layers
    record into a registry this function snapshots afterwards.  The
    facade is out of band — it draws no RNG and schedules nothing — so
    the returned :class:`RunRecord` is byte-identical either way.
    """
    begun = time.perf_counter()
    if collect_metrics:
        with _obs_capture(trace=False) as ob:
            record = _execute_task(task)
        snapshot = ob.metrics.snapshot()
    else:
        record = _execute_task(task)
        snapshot = None
    return record, time.perf_counter() - begun, snapshot


def _execute_task_guarded(task: Task, collect_metrics: bool):
    """Like :func:`_execute_task_timed`, but a raising scenario yields a
    :class:`TaskFailure` in the record slot instead of propagating."""
    try:
        return _execute_task_timed(task, collect_metrics)
    except Exception as exc:  # noqa: BLE001 - isolation seam: anything a scenario raises
        return TaskFailure(task=task, error=f"{type(exc).__name__}: {exc}"), 0.0, None


def _execute_chunk(job: tuple[int, list[Task], bool]
                   ) -> tuple[int, list[RunRecord], float,
                              Optional[list[Optional[MetricsSnapshot]]]]:
    """Worker entry point: run a chunk, tagged with its stream offset.

    Returns the chunk's records plus its telemetry: summed task wall-time
    and (when requested) one metrics snapshot per task, aligned with the
    record slots — kept per task (not folded) so the parent can persist
    each task's snapshot beside its cache record and merge the stream in
    deterministic task order.  A crashing task contributes a
    :class:`TaskFailure` in its record slot; the rest of the chunk still
    completes.
    """
    start, tasks, collect_metrics = job
    records: list[RunRecord] = []
    task_seconds = 0.0
    snapshots: Optional[list[Optional[MetricsSnapshot]]] = (
        [] if collect_metrics else None)
    for task in tasks:
        record, duration, snapshot = _execute_task_guarded(task, collect_metrics)
        records.append(record)
        task_seconds += duration
        if snapshots is not None:
            snapshots.append(snapshot)
    return start, records, task_seconds, snapshots


#: Progress observer: called with ``(done, total)`` as the task stream
#: completes.  ``done`` counts cache replays plus executed tasks.
ProgressCallback = Callable[[int, int], None]


@dataclass
class SweepStats:
    """What one scheduler invocation did, for reporting and benchmarks."""

    tasks_total: int = 0
    cache_hits: int = 0
    executed: int = 0
    executed_inline: bool = False
    chunks: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Summed wall-time of every executed task (the work the pool's worker
    #: lanes actually did; cache replays contribute nothing).
    task_seconds_total: float = 0.0
    #: Wall-time of the slowest chunk (pooled) or task (inline) — the long
    #: tail that guided chunking exists to keep off the critical path.
    task_seconds_max: float = 0.0
    #: Merged per-task metrics (``collect_metrics=True`` only), folded in
    #: task-stream order — deterministic across worker counts and chunk
    #: completion order.  Cache replays contribute their *stored* snapshots
    #: (persisted beside the record by an earlier metrics-collecting
    #: sweep), so a warm or resumed sweep reports the same merged metrics
    #: as the cold run that computed the cells; cells cached by an
    #: untelemetered sweep replay without a snapshot and are counted in
    #: :attr:`metrics_missing`.
    metrics: Optional[MetricsSnapshot] = None
    #: Tasks whose metrics could not be recovered (cache hits written
    #: without an observability sidecar) in a ``collect_metrics`` sweep.
    metrics_missing: int = 0
    #: Tasks still failing after every retry (the sweep raised
    #: :class:`SweepError` carrying these stats).
    tasks_failed: int = 0
    #: Retry attempts made for tasks whose first execution raised.
    tasks_retried: int = 0
    #: ``on_progress`` callbacks that raised (swallowed, never fatal).
    callback_errors: int = 0
    #: Times the worker pool was declared lost (watchdog timeout or a
    #: broken pipe) and abandoned mid-stream.
    pool_losses: int = 0
    #: Whether any part of the stream fell back to inline execution after
    #: a pool loss or a failed pool start.
    degraded_to_inline: bool = False
    #: Trace events the *ambient* tracer (``REPRO_TRACE=1``) evicted from
    #: its ring buffer during this sweep — silent observability loss made
    #: visible.  Pool workers trace into their own processes, so this
    #: counts the parent's tracer only (inline execution and replay).
    trace_evictions: int = 0
    #: Cache writes that failed during this sweep (persistence degraded;
    #: see :meth:`RunCache._disable_writes`).
    cache_write_errors: int = 0
    #: Duplicate cache lines collapsed while loading shards during this
    #: sweep — a crash-looped earlier writer re-appending the same cells.
    cache_duplicate_lines: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of the task stream replayed from the cache."""
        return self.cache_hits / self.tasks_total if self.tasks_total else 0.0

    @property
    def worker_utilization(self) -> float:
        """Aggregate task time over available lane time (0..1).

        Inline execution has one lane; a pooled run has ``workers``.  Low
        utilization on a pooled sweep means workers idled — a long-tailed
        stream or one dominated by cache replay.
        """
        if self.elapsed_seconds <= 0.0:
            return 0.0
        lanes = 1 if self.executed_inline else self.workers
        return min(self.task_seconds_total / (lanes * self.elapsed_seconds), 1.0)

    def formatted(self) -> str:
        mode = "inline" if self.executed_inline else f"{self.workers} workers"
        line = (f"{self.tasks_total} tasks: {self.cache_hits} cached "
                f"({self.cache_hit_ratio:.0%} hit ratio), "
                f"{self.executed} executed ({mode}, {self.chunks} chunks) "
                f"in {self.elapsed_seconds:.2f}s")
        if self.executed:
            line += (f"; worker task time {self.task_seconds_total:.2f}s "
                     f"({self.worker_utilization:.0%} utilization)")
        if self.tasks_retried or self.tasks_failed:
            line += (f"; {self.tasks_retried} retries, "
                     f"{self.tasks_failed} permanent failures")
        if self.pool_losses:
            line += f"; {self.pool_losses} pool loss(es), degraded to inline"
        if self.callback_errors:
            line += f"; {self.callback_errors} progress-callback errors"
        if self.trace_evictions:
            line += (f"; {self.trace_evictions} trace events evicted "
                     f"(ring buffer full)")
        if self.cache_write_errors:
            line += (f"; cache degraded: {self.cache_write_errors} write "
                     f"error(s), persistence disabled")
        if self.cache_duplicate_lines:
            line += f"; {self.cache_duplicate_lines} duplicate cache lines collapsed"
        if self.metrics_missing:
            line += f"; {self.metrics_missing} cached task(s) without stored metrics"
        return line


class SweepScheduler:
    """Executes task streams for one or many sweeps on a single shared pool.

    Parameters
    ----------
    workers:
        Maximum worker processes.  ``1`` always runs inline.
    cache:
        Optional :class:`RunCache`; hits skip execution, misses are written
        back after the stream completes.
    on_progress:
        Optional callback invoked with ``(done, total)`` as tasks complete —
        once after cache replay, then per task inline or per completed chunk
        pooled — so long sweeps (million-client population shards) are not
        silent for minutes.  Called from the parent process only; a raising
        callback is counted in ``SweepStats.callback_errors`` and swallowed
        — observers never abort a sweep.
    collect_metrics:
        When True, every executed task runs under a metrics-only
        observability capture and the per-task snapshots are merged into
        ``SweepStats.metrics`` (shipped back through the pool one folded
        snapshot per chunk).  Records are byte-identical either way; the
        default keeps the hot path free of the capture.
    task_retries:
        How many times a task whose scenario raised is re-attempted (inline,
        in the parent) before it counts as a permanent failure.
    retry_backoff:
        Base seconds slept before each retry attempt, doubled per attempt.
        The default of ``0.0`` retries immediately — simulated scenarios are
        deterministic, so backoff only matters for tasks touching shared
        host state.
    task_timeout:
        Watchdog: seconds to wait for *any* chunk to complete before the
        pool is declared lost and the remaining chunks re-run inline.
        ``None`` (the default) waits forever — appropriate when tasks are
        trusted to terminate.
    """

    def __init__(self, workers: int = 1, cache: Optional[RunCache] = None,
                 on_progress: Optional[ProgressCallback] = None,
                 collect_metrics: bool = False, task_retries: int = 1,
                 retry_backoff: float = 0.0,
                 task_timeout: Optional[float] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if task_retries < 0:
            raise ValueError("task_retries must be non-negative")
        self.workers = workers
        self.cache = cache
        self.on_progress = on_progress
        self.collect_metrics = collect_metrics
        self.task_retries = task_retries
        self.retry_backoff = retry_backoff
        self.task_timeout = task_timeout
        self._done = 0
        self._total = 0
        self._stats: Optional[SweepStats] = None

    # -- task-level API ------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Task]) -> tuple[list[RunRecord], SweepStats]:
        """Execute fully-resolved tasks, returning records in task order.

        Raises :class:`SweepError` when any task still fails after every
        retry; by then the rest of the stream has completed and (with a
        cache attached) been persisted.
        """
        start_time = time.perf_counter()
        stats = SweepStats(tasks_total=len(tasks), workers=self.workers)
        records: list[Optional[RunRecord]] = [None] * len(tasks)
        snapshots: Optional[list[Optional[MetricsSnapshot]]] = (
            [None] * len(tasks) if self.collect_metrics else None)
        self._done = 0
        self._total = len(tasks)
        self._stats = stats
        ambient = _obs_current()
        evictions_before = ambient.trace.events_evicted if ambient.enabled else 0
        if self.cache is not None:
            writes_failed_before = self.cache.stats.write_errors
            duplicates_before = self.cache.stats.duplicate_lines

        pending: list[tuple[int, Task]] = []
        if self.cache is not None:
            for index, task in enumerate(tasks):
                if snapshots is not None:
                    found = self.cache.get_entry(*task)
                    if found is not None:
                        records[index], snapshots[index] = found
                    else:
                        pending.append((index, task))
                else:
                    cached = self.cache.get(*task)
                    if cached is not None:
                        records[index] = cached
                    else:
                        pending.append((index, task))
            stats.cache_hits = len(tasks) - len(pending)
            self._report_progress(stats.cache_hits)
        else:
            pending = list(enumerate(tasks))

        stats.executed = len(pending)
        failures: list[TaskFailure] = []
        if pending:
            computed, computed_snaps = self._execute(pending, stats)
            for position, ((index, _), record) in enumerate(zip(pending, computed)):
                if isinstance(record, TaskFailure):
                    failures.append(record)
                records[index] = record
                if snapshots is not None and computed_snaps is not None:
                    snapshots[index] = computed_snaps[position]

        if snapshots is not None:
            # Task-stream order: the fold is deterministic no matter which
            # workers finished first or which cells replayed from the cache.
            stats.metrics = MetricsSnapshot.merge_all(snapshots)
            stats.metrics_missing = sum(
                1 for index, snap in enumerate(snapshots)
                if snap is None and not isinstance(records[index], TaskFailure))
        if ambient.enabled:
            stats.trace_evictions = ambient.trace.events_evicted - evictions_before
        if self.cache is not None:
            stats.cache_write_errors = (self.cache.stats.write_errors
                                        - writes_failed_before)
            stats.cache_duplicate_lines = (self.cache.stats.duplicate_lines
                                           - duplicates_before)
        stats.elapsed_seconds = time.perf_counter() - start_time
        if failures:
            stats.tasks_failed = len(failures)
            raise SweepError(failures, stats)
        return list(records), stats  # type: ignore[arg-type]

    def _report_progress(self, newly_done: int) -> None:
        self._done += newly_done
        if self.on_progress is not None and newly_done:
            try:
                self.on_progress(self._done, self._total)
            except Exception:  # noqa: BLE001 - observers must never abort the sweep
                if self._stats is not None:
                    self._stats.callback_errors += 1

    def _persist(self, records: Sequence[RunRecord],
                 snapshots: Optional[Sequence[Optional[MetricsSnapshot]]] = None
                 ) -> None:
        """Write freshly-computed records to the cache as they arrive.

        Called from the execution loops (per task inline, per completed chunk
        pooled) rather than after the whole stream, so an interrupted sweep
        still resumes from everything it finished — the append-only store
        tolerates the partial run.  Each record's metrics snapshot (when
        collected) is persisted beside it in the same cache line, so the
        resumed sweep replays the telemetry too.  :class:`TaskFailure`
        markers are never persisted (a later fixed re-run must recompute
        those cells).
        """
        if self.cache is not None:
            for position, record in enumerate(records):
                if not isinstance(record, TaskFailure):
                    snapshot = (snapshots[position]
                                if snapshots is not None else None)
                    self.cache.put(record, metrics=snapshot)

    def _execute(self, pending: list[tuple[int, Task]], stats: SweepStats
                 ) -> tuple[list[RunRecord],
                            Optional[list[Optional[MetricsSnapshot]]]]:
        """Run the pending tasks, preserving their given order in the result.

        Returns the records plus (when collecting metrics) one snapshot per
        task in the same order.  The record list may contain
        :class:`TaskFailure` markers for tasks that still failed after the
        retry pass; the caller decides whether that is fatal.
        """
        tasks = [task for _, task in pending]
        snapshots: Optional[list[Optional[MetricsSnapshot]]] = (
            [None] * len(tasks) if self.collect_metrics else None)
        # A pool only pays off when there are more tasks than workers;
        # otherwise fork/teardown costs more than the tasks themselves.
        if self.workers == 1 or len(tasks) <= self.workers:
            stats.executed_inline = True
            stats.chunks = len(tasks)
            results_inline: list[RunRecord] = []
            for position, task in enumerate(tasks):
                record, duration, snapshot = _execute_task_guarded(
                    task, self.collect_metrics)
                stats.task_seconds_total += duration
                stats.task_seconds_max = max(stats.task_seconds_max, duration)
                if snapshots is not None:
                    snapshots[position] = snapshot
                self._persist((record,), (snapshot,))
                results_inline.append(record)
                self._report_progress(1)
            self._retry_failures(results_inline, stats, snapshots)
            return results_inline, snapshots

        jobs: list[tuple[int, list[Task], bool]] = []
        offset = 0
        for size in guided_chunk_sizes(len(tasks), self.workers):
            jobs.append((offset, tasks[offset:offset + size], self.collect_metrics))
            offset += size
        stats.chunks = len(jobs)

        results: list[Optional[list[RunRecord]]] = [None] * len(jobs)
        starts = {start: slot for slot, (start, _, _) in enumerate(jobs)}

        def consume(result) -> None:
            start, chunk_records, task_seconds, chunk_snapshots = result
            self._persist(chunk_records, chunk_snapshots)
            results[starts[start]] = chunk_records
            stats.task_seconds_total += task_seconds
            stats.task_seconds_max = max(stats.task_seconds_max, task_seconds)
            if snapshots is not None and chunk_snapshots is not None:
                snapshots[start:start + len(chunk_records)] = chunk_snapshots
            self._report_progress(len(chunk_records))

        pool = None
        try:
            pool = multiprocessing.Pool(processes=self.workers)
        except OSError:
            # Could not even start the pool (fork/pipe exhaustion): the
            # whole stream degrades to inline execution below.
            stats.degraded_to_inline = True
        if pool is not None:
            try:
                # Unordered completion + index-tagged chunks: fast workers
                # move on to the next chunk immediately, determinism comes
                # from the reassembly below rather than from dispatch order.
                stream = pool.imap_unordered(_execute_chunk, jobs)
                for _ in range(len(jobs)):
                    try:
                        consume(stream.next(timeout=self.task_timeout))
                    except StopIteration:  # noqa: PERF203 — watchdog needs per-chunk except
                        break
                    except multiprocessing.TimeoutError:
                        # No chunk completed within the watchdog window.  A
                        # SIGKILLed pool worker loses its in-flight chunk
                        # forever (the pool respawns the process but never
                        # redelivers the chunk), so a silent stream is our
                        # only signal.  Declare the pool lost.
                        stats.pool_losses += 1
                        stats.degraded_to_inline = True
                        break
                    except (OSError, EOFError):
                        # The result pipe itself broke.
                        stats.pool_losses += 1
                        stats.degraded_to_inline = True
                        break
            finally:
                pool.terminate()
                pool.join()
        # Degraded path: every chunk whose result never arrived re-runs
        # inline.  Tasks are pure, so recomputing a lost chunk (even one a
        # dead worker had partially finished) reproduces identical records.
        for slot in range(len(jobs)):
            if results[slot] is None:
                consume(_execute_chunk(jobs[slot]))

        flattened: list[RunRecord] = []
        for chunk_records in results:
            assert chunk_records is not None
            flattened.extend(chunk_records)
        self._retry_failures(flattened, stats, snapshots)
        return flattened, snapshots

    def _retry_failures(self, results: list, stats: SweepStats,
                        snapshots: Optional[list[Optional[MetricsSnapshot]]]
                        ) -> None:
        """Re-attempt every :class:`TaskFailure` in ``results``, in place.

        Retries run inline in the parent with exponential backoff between
        attempts; a recovered task's record (and metrics snapshot) is
        persisted exactly as a first-try success would have been.  Markers
        that survive all attempts stay in the list for the caller to report.
        """
        if self.task_retries == 0:
            return
        for index, outcome in enumerate(results):
            if not isinstance(outcome, TaskFailure):
                continue
            failure = outcome
            for attempt in range(self.task_retries):
                if self.retry_backoff > 0.0:
                    time.sleep(self.retry_backoff * 2 ** attempt)
                stats.tasks_retried += 1
                retried, duration, snapshot = _execute_task_guarded(
                    failure.task, self.collect_metrics)
                stats.task_seconds_total += duration
                if isinstance(retried, TaskFailure):
                    failure = TaskFailure(failure.task, retried.error,
                                          attempts=failure.attempts + 1)
                    continue
                if snapshots is not None:
                    snapshots[index] = snapshot
                self._persist((retried,), (snapshot,))
                results[index] = retried
                break
            else:
                results[index] = failure

    # -- spec-level API ------------------------------------------------------
    def run_specs(self, specs: Sequence[ExperimentSpec]
                  ) -> tuple[list[ExperimentResult], SweepStats]:
        """Run every spec's cells as one flattened stream; one result per spec.

        Each returned :class:`ExperimentResult` carries the records of its
        spec, in that spec's own task order; ``elapsed_seconds`` is the
        shared wall-clock of the whole stream (the per-spec share is not
        meaningful under a shared pool).
        """
        all_tasks: list[Task] = []
        boundaries: list[tuple[int, int]] = []
        for spec in specs:
            resolved = resolve_spec_tasks(spec)
            boundaries.append((len(all_tasks), len(all_tasks) + len(resolved)))
            all_tasks.extend(resolved)
        records, stats = self.run_tasks(all_tasks)
        results = [
            ExperimentResult(scenario=spec.scenario,
                             records=records[start:stop],
                             elapsed_seconds=stats.elapsed_seconds)
            for spec, (start, stop) in zip(specs, boundaries)
        ]
        return results, stats
