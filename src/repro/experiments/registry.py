"""Scenario registry: every attack scenario is runnable by name with a dict.

The registry decouples *what* an experiment runs from *how* it is swept:
:class:`repro.experiments.runner.ExperimentRunner` only ever sees a scenario
name, a seed and a parameter dict, all of which are picklable and travel to
multiprocessing workers by value.  The built-in scenarios (the four attack
scenarios of the paper) live in :mod:`repro.experiments.scenarios` and are
loaded lazily on first lookup, which keeps this module free of imports from
the attacks layer and thereby breaks the ``attacks -> experiments.testbed``
/ ``experiments -> attacks`` cycle.
"""

from __future__ import annotations

import importlib
import sys
from collections.abc import Mapping, Sequence
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Scenario(Protocol):
    """The contract every registered scenario implements.

    ``run`` must be a pure function of ``(seed, params)`` returning a flat
    dict of picklable metrics (bools, numbers, strings, small lists) so that
    sweeps are reproducible and results can travel across process
    boundaries.  ``default_params`` enumerates every accepted parameter;
    unknown keys are rejected by :func:`merge_params`.
    """

    name: str
    description: str

    def default_params(self) -> dict[str, Any]:
        ...

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        ...


_REGISTRY: dict[str, Scenario] = {}

#: Modules imported on first lookup; importing them registers the builtins.
_BUILTIN_MODULES = ("repro.experiments.scenarios", "repro.population.scenario")
_builtins_loaded = False


def register_scenario(scenario: Any) -> Any:
    """Register a scenario (class decorator or direct call with an instance).

    When used on a class the class is instantiated once; the registry holds
    singletons because scenarios are stateless adapters.
    """
    instance = scenario() if isinstance(scenario, type) else scenario
    name = instance.name
    if name in _REGISTRY:
        raise ValueError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = instance
    return scenario


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    # A failed import must surface again on the next lookup: the loaded flag
    # is only set after every import succeeded, and partial registrations are
    # unwound so the retried module re-executes without duplicate-name errors.
    snapshot = dict(_REGISTRY)
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        _REGISTRY.clear()
        _REGISTRY.update(snapshot)
        for module in _BUILTIN_MODULES:
            sys.modules.pop(module, None)
        raise
    _builtins_loaded = True


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by its registry name."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; available: "
                       f"{', '.join(sorted(_REGISTRY))}") from None


def available_scenarios() -> dict[str, str]:
    """Mapping of every registered scenario name to its description."""
    _load_builtins()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def merge_params(defaults: Mapping[str, Any], params: Mapping[str, Any],
                 optional: Sequence[str] = ()) -> dict[str, Any]:
    """Overlay ``params`` on ``defaults``, rejecting unknown keys.

    Scenario configs are flat dicts; a typo'd key silently falling through
    would make a sweep measure the wrong thing, so unknown keys are errors.

    ``optional`` names extra accepted keys that have *no* default: they
    appear in the merged dict only when explicitly supplied.  This is how a
    scenario grows a new opt-in knob (``faults``) without perturbing the
    resolved parameter dict — and therefore the pinned digests and cache
    keys — of every sweep that never uses it.
    """
    accepted = set(defaults) | set(optional)
    unknown = set(params) - accepted
    if unknown:
        raise ValueError(f"unknown scenario parameter(s): {', '.join(sorted(unknown))}; "
                         f"accepted: {', '.join(sorted(accepted))}")
    merged = dict(defaults)
    merged.update(params)
    return merged


def optional_params(scenario: Scenario) -> tuple[str, ...]:
    """The scenario's declared opt-in parameter names (``()`` by default).

    Declared via an ``optional_params()`` method on the scenario; optional
    precisely so that existing third-party scenarios keep working unchanged.
    """
    declare = getattr(scenario, "optional_params", None)
    return tuple(declare()) if declare is not None else ()
