"""Parallel multi-seed experiment execution over the scenario registry.

An :class:`ExperimentSpec` describes a sweep declaratively — one scenario, a
set of seeds, and either a cartesian parameter ``grid`` or an explicit list
of ``param_sets`` — and :class:`ExperimentRunner` fans it out over a
``multiprocessing`` pool.  Tasks are pure (scenario name, seed, params)
tuples, workers return :class:`~repro.experiments.results.RunRecord` values,
and the pool's ``map`` reassembles them in submission order, so the result
of a sweep is byte-identical no matter how many workers executed it.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .registry import get_scenario, merge_params
from .results import ExperimentResult, RunRecord

#: A unit of work: (scenario name, seed, fully-resolved parameter dict).
Task = Tuple[str, int, Dict[str, Any]]


def run_scenario(name: str, seed: int,
                 params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Run one scenario once by registry name; the runner's building block.

    Also the recommended way for analysis code to drive a single packet-level
    run without constructing scenario objects by hand.
    """
    scenario = get_scenario(name)
    return scenario.run(seed, dict(params or {}))


def _execute_task(task: Task) -> RunRecord:
    """Module-level worker function so tasks pickle cleanly to subprocesses."""
    name, seed, params = task
    metrics = run_scenario(name, seed, params)
    return RunRecord(scenario=name, seed=seed, params=params, metrics=metrics)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one sweep.

    ``grid`` expands to the cartesian product of its value lists (key order
    preserved); ``param_sets`` is an explicit list of overlays for
    heterogeneous sweeps (e.g. the mitigation table).  The two are mutually
    exclusive.  Every parameter set runs once per seed, seeds innermost.
    """

    scenario: str
    seeds: Tuple[int, ...] = (1,)
    base_params: Mapping[str, Any] = field(default_factory=dict)
    grid: Optional[Mapping[str, Sequence[Any]]] = None
    param_sets: Optional[Tuple[Mapping[str, Any], ...]] = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")
        if self.grid is not None and self.param_sets is not None:
            raise ValueError("grid and param_sets are mutually exclusive")

    def parameter_sets(self) -> List[Dict[str, Any]]:
        """The ordered parameter overlays this spec expands to."""
        base = dict(self.base_params)
        if self.param_sets is not None:
            return [{**base, **overlay} for overlay in self.param_sets]
        if not self.grid:
            return [base]
        keys = list(self.grid)
        return [{**base, **dict(zip(keys, values))}
                for values in product(*(self.grid[key] for key in keys))]

    def tasks(self) -> List[Task]:
        return [(self.scenario, seed, params)
                for params in self.parameter_sets()
                for seed in self.seeds]


class ExperimentRunner:
    """Fans a scenario out over seeds and a parameter grid, optionally in
    parallel, and aggregates the runs into an :class:`ExperimentResult`.

    ``workers=1`` runs inline (no subprocesses); any higher count uses a
    ``multiprocessing`` pool with ``chunksize=1`` so long-tailed runs load-
    balance.  Because every run is fully determined by ``(scenario, seed,
    params)`` and results are reassembled in task order, the aggregate is
    byte-identical across worker counts.
    """

    def __init__(self, scenario: Optional[str] = None, *,
                 seeds: Sequence[int] = (1,),
                 base_params: Optional[Mapping[str, Any]] = None,
                 grid: Optional[Mapping[str, Sequence[Any]]] = None,
                 param_sets: Optional[Sequence[Mapping[str, Any]]] = None,
                 workers: int = 1,
                 spec: Optional[ExperimentSpec] = None) -> None:
        if (spec is None) == (scenario is None):
            raise ValueError("pass either a scenario name or a prebuilt spec")
        if spec is None:
            spec = ExperimentSpec(
                scenario=scenario,
                seeds=tuple(seeds),
                base_params=dict(base_params or {}),
                grid=dict(grid) if grid is not None else None,
                param_sets=tuple(dict(overlay) for overlay in param_sets)
                if param_sets is not None else None,
            )
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.spec = spec
        self.workers = workers

    def tasks(self) -> List[Task]:
        """Fully-resolved task list: defaults merged, unknown keys rejected.

        Resolving up-front (rather than in the worker) means every
        :class:`RunRecord` carries the complete effective configuration and
        a bad parameter name fails fast, before any subprocess is spawned.
        """
        defaults = get_scenario(self.spec.scenario).default_params()
        return [(name, seed, merge_params(defaults, params))
                for name, seed, params in self.spec.tasks()]

    def run(self) -> ExperimentResult:
        tasks = self.tasks()
        start = time.perf_counter()
        if self.workers == 1 or len(tasks) <= 1:
            records = [_execute_task(task) for task in tasks]
        else:
            with multiprocessing.Pool(processes=self.workers) as pool:
                records = pool.map(_execute_task, tasks, chunksize=1)
        elapsed = time.perf_counter() - start
        return ExperimentResult(scenario=self.spec.scenario, records=records,
                                elapsed_seconds=elapsed)
