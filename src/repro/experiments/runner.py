"""Parallel multi-seed experiment execution over the scenario registry.

An :class:`ExperimentSpec` describes a sweep declaratively — one scenario, a
set of seeds, and either a cartesian parameter ``grid`` or an explicit list
of ``param_sets`` — and :class:`ExperimentRunner` fans it out through the
shared :class:`~repro.experiments.scheduler.SweepScheduler`.  Tasks are pure
(scenario name, seed, params) tuples, workers return
:class:`~repro.experiments.results.RunRecord` values, and the scheduler
reassembles them in submission order, so the result of a sweep is
byte-identical no matter how many workers executed it.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from itertools import product
from typing import TYPE_CHECKING, Any, Optional

from .registry import get_scenario, merge_params, optional_params
from .results import ExperimentResult, RunRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .cache import RunCache

#: A unit of work: (scenario name, seed, fully-resolved parameter dict).
Task = tuple[str, int, dict[str, Any]]


def run_scenario(name: str, seed: int,
                 params: Optional[Mapping[str, Any]] = None) -> dict[str, Any]:
    """Run one scenario once by registry name; the runner's building block.

    Also the recommended way for analysis code to drive a single packet-level
    run without constructing scenario objects by hand.
    """
    scenario = get_scenario(name)
    return scenario.run(seed, dict(params or {}))


def _execute_task(task: Task) -> RunRecord:
    """Module-level worker function so tasks pickle cleanly to subprocesses."""
    name, seed, params = task
    metrics = run_scenario(name, seed, params)
    return RunRecord(scenario=name, seed=seed, params=params, metrics=metrics)


def resolve_spec_tasks(spec: ExperimentSpec) -> list[Task]:
    """A spec's fully-resolved task list: defaults merged, unknown keys rejected.

    Resolving up-front (rather than in the worker) means every
    :class:`RunRecord` carries the complete effective configuration and a bad
    parameter name fails fast, before any subprocess is spawned.  The single
    definition is shared by :meth:`ExperimentRunner.tasks` and the scheduler's
    multi-spec path so the two can never diverge.
    """
    scenario = get_scenario(spec.scenario)
    defaults = scenario.default_params()
    optional = optional_params(scenario)
    return [(name, seed, merge_params(defaults, params, optional))
            for name, seed, params in spec.tasks()]


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one sweep.

    ``grid`` expands to the cartesian product of its value lists (key order
    preserved); ``param_sets`` is an explicit list of overlays for
    heterogeneous sweeps (e.g. the mitigation table).  The two are mutually
    exclusive.  Every parameter set runs once per seed, seeds innermost.
    """

    scenario: str
    seeds: tuple[int, ...] = (1,)
    base_params: Mapping[str, Any] = field(default_factory=dict)
    grid: Optional[Mapping[str, Sequence[Any]]] = None
    param_sets: Optional[tuple[Mapping[str, Any], ...]] = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")
        if self.grid is not None and self.param_sets is not None:
            raise ValueError("grid and param_sets are mutually exclusive")

    def parameter_sets(self) -> list[dict[str, Any]]:
        """The ordered parameter overlays this spec expands to."""
        base = dict(self.base_params)
        if self.param_sets is not None:
            return [{**base, **overlay} for overlay in self.param_sets]
        if not self.grid:
            return [base]
        keys = list(self.grid)
        return [{**base, **dict(zip(keys, values))}
                for values in product(*(self.grid[key] for key in keys))]

    def tasks(self) -> list[Task]:
        return [(self.scenario, seed, params)
                for params in self.parameter_sets()
                for seed in self.seeds]


class ExperimentRunner:
    """Fans a scenario out over seeds and a parameter grid, optionally in
    parallel, and aggregates the runs into an :class:`ExperimentResult`.

    Execution is delegated to :class:`~repro.experiments.scheduler.
    SweepScheduler`: ``workers=1`` — or any sweep with no more tasks than
    workers, where forking a pool would idle workers and cost more than the
    tasks — runs inline, larger sweeps share a ``multiprocessing`` pool with
    guided (decreasing) chunk sizes so long-tailed runs load-balance.
    Because every run is fully determined by ``(scenario, seed, params)`` and
    results are reassembled in task order, the aggregate is byte-identical
    across worker counts.  Passing a :class:`~repro.experiments.cache.
    RunCache` makes re-runs incremental: previously-computed cells replay
    from disk.
    """

    def __init__(self, scenario: Optional[str] = None, *,
                 seeds: Sequence[int] = (1,),
                 base_params: Optional[Mapping[str, Any]] = None,
                 grid: Optional[Mapping[str, Sequence[Any]]] = None,
                 param_sets: Optional[Sequence[Mapping[str, Any]]] = None,
                 workers: int = 1,
                 cache: Optional["RunCache"] = None,
                 spec: Optional[ExperimentSpec] = None) -> None:
        if (spec is None) == (scenario is None):
            raise ValueError("pass either a scenario name or a prebuilt spec")
        if spec is None:
            spec = ExperimentSpec(
                scenario=scenario,
                seeds=tuple(seeds),
                base_params=dict(base_params or {}),
                grid=dict(grid) if grid is not None else None,
                param_sets=tuple(dict(overlay) for overlay in param_sets)
                if param_sets is not None else None,
            )
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.spec = spec
        self.workers = workers
        self.cache = cache

    def tasks(self) -> list[Task]:
        """Fully-resolved task list (see :func:`resolve_spec_tasks`)."""
        return resolve_spec_tasks(self.spec)

    def run(self) -> ExperimentResult:
        # Imported here (not at module top) because the scheduler imports
        # this module for the picklable task/worker definitions.
        from .scheduler import SweepScheduler

        scheduler = SweepScheduler(workers=self.workers, cache=self.cache)
        start = time.perf_counter()
        records, _ = scheduler.run_tasks(self.tasks())
        elapsed = time.perf_counter() - start
        return ExperimentResult(scenario=self.spec.scenario, records=records,
                                elapsed_seconds=elapsed)
