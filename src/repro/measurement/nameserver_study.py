"""Fragmentation/DNSSEC study of pool.ntp.org nameservers (§II.A statistics).

The study proceeds the way the real measurement did: for every nameserver,
probe whether a large response is fragmented when the path MTU is lowered to
the study threshold (548 bytes), and whether the zone is DNSSEC-signed; then
aggregate.  The probe itself runs against either a static
:class:`repro.measurement.population.NameserverProfile` or a live simulated
nameserver whose behaviour is configured from that profile, so the same
classification code serves the synthetic study and the packet-level
experiments.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..attacks.frag_poisoning import FragmentationAttackConditions
from ..dns.message import response_size_for_a_records
from .population import STUDY_MTU_THRESHOLD, NameserverProfile


@dataclass(frozen=True)
class NameserverProbeResult:
    """Outcome of probing one nameserver."""

    address: str
    fragments_at_study_mtu: bool
    supports_dnssec: bool
    #: Size of the response used for the probe (bytes).
    probe_response_size: int

    @property
    def usable_for_fragmentation_poisoning(self) -> bool:
        return self.fragments_at_study_mtu and not self.supports_dnssec


@dataclass
class NameserverStudyReport:
    """Aggregate statistics over a nameserver population."""

    total: int
    fragmenting_without_dnssec: int
    fragmenting: int
    dnssec_enabled: int
    probes: list[NameserverProbeResult] = field(default_factory=list)

    @property
    def fragmenting_fraction(self) -> float:
        return self.fragmenting_without_dnssec / self.total if self.total else 0.0

    def summary_row(self) -> str:
        """The row the paper reports: "16 out of 30 nameservers ..."."""
        return (f"{self.fragmenting_without_dnssec} out of {self.total} nameservers "
                f"fragment DNS responses down to an MTU of {STUDY_MTU_THRESHOLD} bytes "
                f"while not supporting DNSSEC")


def probe_nameserver(profile: NameserverProfile,
                     probe_record_count: int = 40,
                     qname: str = "pool.ntp.org",
                     study_mtu: int = STUDY_MTU_THRESHOLD) -> NameserverProbeResult:
    """Probe one nameserver profile the way the measurement script would.

    A response large enough to exceed the study MTU is requested; the server
    "fragments at the study MTU" when it is willing to lower its effective
    MTU to that value (rather than refusing / truncating).
    """
    response_size = response_size_for_a_records(qname, probe_record_count)
    conditions = FragmentationAttackConditions(
        nameserver_min_mtu=profile.min_fragmentation_mtu,
        nameserver_has_dnssec=profile.supports_dnssec,
        resolver_accepts_fragments=True,
        response_size=response_size,
    )
    fragments = profile.fragments_to(study_mtu) and conditions.response_fragments()
    return NameserverProbeResult(
        address=profile.address,
        fragments_at_study_mtu=fragments,
        supports_dnssec=profile.supports_dnssec,
        probe_response_size=response_size,
    )


def run_nameserver_study(population: Sequence[NameserverProfile],
                         probe_record_count: int = 40,
                         study_mtu: int = STUDY_MTU_THRESHOLD) -> NameserverStudyReport:
    """Probe every nameserver in the population and aggregate the statistics."""
    probes = [probe_nameserver(profile, probe_record_count=probe_record_count,
                               study_mtu=study_mtu)
              for profile in population]
    return NameserverStudyReport(
        total=len(probes),
        fragmenting_without_dnssec=sum(1 for p in probes if p.usable_for_fragmentation_poisoning),
        fragmenting=sum(1 for p in probes if p.fragments_at_study_mtu),
        dnssec_enabled=sum(1 for p in probes if p.supports_dnssec),
        probes=probes,
    )
