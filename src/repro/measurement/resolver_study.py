"""Ad-network-style resolver study (§II.A statistics).

The original measurement served web clients an advertisement that caused
their resolvers to fetch attacker-observable names, then probed each resolver
for (a) acceptance of fragmented responses at various fragment sizes and
(b) whether the attacker could trigger queries through the resolver via a
third party (SMTP servers sharing it, or the resolver being open).

The same classification runs here over a synthetic population whose marginals
match the published numbers (90 % accept some fragment size, 64 % accept the
minimal 68-byte fragments, 14 % triggerable).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from .population import MINIMUM_FRAGMENT_MTU, ResolverProfile


@dataclass(frozen=True)
class ResolverProbeResult:
    """Outcome of probing one resolver."""

    identifier: str
    accepts_any_fragments: bool
    accepts_minimum_fragments: bool
    triggerable: bool
    triggerable_via: str


@dataclass
class ResolverStudyReport:
    """Aggregate statistics over a resolver population."""

    total: int
    accept_any: int
    accept_minimum: int
    triggerable: int
    by_trigger_method: dict[str, int] = field(default_factory=dict)
    probes: list[ResolverProbeResult] = field(default_factory=list)

    @property
    def accept_any_fraction(self) -> float:
        return self.accept_any / self.total if self.total else 0.0

    @property
    def accept_minimum_fraction(self) -> float:
        return self.accept_minimum / self.total if self.total else 0.0

    @property
    def triggerable_fraction(self) -> float:
        return self.triggerable / self.total if self.total else 0.0

    def summary_rows(self) -> list[str]:
        """The three §II statements, formatted like the paper."""
        return [
            f"{self.accept_any_fraction:.0%} of resolvers accept fragments of some size",
            (f"{self.accept_minimum_fraction:.0%} accept even the tiniest possible "
             f"fragment size of {MINIMUM_FRAGMENT_MTU} bytes MTU"),
            (f"for {self.triggerable_fraction:.0%} of DNS resolvers queries can be "
             f"triggered via either SMTP servers or open resolvers"),
        ]


def probe_resolver(profile: ResolverProfile) -> ResolverProbeResult:
    """Classify one resolver the way the measurement pipeline would."""
    if profile.triggerable_via_smtp:
        via = "smtp"
    elif profile.open_resolver:
        via = "open-resolver"
    else:
        via = "none"
    return ResolverProbeResult(
        identifier=profile.identifier,
        accepts_any_fragments=profile.accepts_any_fragments,
        accepts_minimum_fragments=profile.accepts_minimum_fragments,
        triggerable=profile.externally_triggerable,
        triggerable_via=via,
    )


def run_resolver_study(population: Sequence[ResolverProfile]) -> ResolverStudyReport:
    """Probe every resolver in the population and aggregate the statistics."""
    probes = [probe_resolver(profile) for profile in population]
    by_method: dict[str, int] = {}
    for probe in probes:
        if probe.triggerable:
            by_method[probe.triggerable_via] = by_method.get(probe.triggerable_via, 0) + 1
    return ResolverStudyReport(
        total=len(probes),
        accept_any=sum(1 for p in probes if p.accepts_any_fragments),
        accept_minimum=sum(1 for p in probes if p.accepts_minimum_fragments),
        triggerable=sum(1 for p in probes if p.triggerable),
        by_trigger_method=by_method,
        probes=probes,
    )
