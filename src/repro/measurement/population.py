"""Synthetic populations for the DNS measurement study (§II).

The paper relies on a companion measurement ([3], "The Impact of DNS
Insecurity on Time") for three statistics:

* 16 of the 30 pool.ntp.org nameservers fragment DNS responses down to a
  548-byte MTU while not supporting DNSSEC;
* 90 % of resolvers (observed through an ad-network study) accept fragmented
  responses of some size, and 64 % accept even the minimum 68-byte MTU;
* for 14 % of the resolvers used by web clients, the attacker can trigger
  queries via SMTP servers or open resolvers.

We cannot re-run an Internet measurement, so — per the substitution rule in
DESIGN.md — the populations here are synthetic: attribute distributions are
seeded so that the *marginals* match the published numbers, while the study
code in :mod:`repro.measurement.nameserver_study` and
:mod:`repro.measurement.resolver_study` computes the statistics from the
population exactly the way a measurement script would (probe, classify,
aggregate), so the analysis pipeline is exercised end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

#: The MTU the companion study probed pool.ntp.org nameservers down to.
STUDY_MTU_THRESHOLD = 548
#: The smallest fragment size probed at resolvers (IPv4 minimum MTU).
MINIMUM_FRAGMENT_MTU = 68

#: Published marginals reproduced by the default populations.
PAPER_NAMESERVER_TOTAL = 30
PAPER_NAMESERVERS_FRAGMENTING = 16
PAPER_RESOLVER_ACCEPT_ANY_FRACTION = 0.90
PAPER_RESOLVER_ACCEPT_MINIMUM_FRACTION = 0.64
PAPER_RESOLVER_TRIGGERABLE_FRACTION = 0.14


@dataclass(frozen=True)
class NameserverProfile:
    """Measured properties of one pool.ntp.org authoritative nameserver."""

    address: str
    #: Smallest MTU the server is willing to fragment responses down to
    #: (1500 means "never fragments below a full Ethernet frame").
    min_fragmentation_mtu: int
    supports_dnssec: bool

    def fragments_to(self, mtu: int) -> bool:
        """Would this server fragment a large response at path MTU ``mtu``?"""
        return self.min_fragmentation_mtu <= mtu

    @property
    def vulnerable_to_fragmentation_poisoning(self) -> bool:
        """The §II.A criterion: fragments to the study MTU and no DNSSEC."""
        return self.fragments_to(STUDY_MTU_THRESHOLD) and not self.supports_dnssec


@dataclass(frozen=True)
class ResolverProfile:
    """Measured properties of one recursive resolver in the wild."""

    identifier: str
    #: Smallest fragment MTU the resolver accepts; ``None`` means the
    #: resolver rejects fragmented responses entirely.
    min_accepted_fragment_mtu: Optional[int]
    #: Whether an attacker can make the resolver issue a query via an SMTP
    #: server sharing it.
    triggerable_via_smtp: bool
    #: Whether the resolver answers queries from arbitrary sources.
    open_resolver: bool

    @property
    def accepts_any_fragments(self) -> bool:
        return self.min_accepted_fragment_mtu is not None

    def accepts_fragment_mtu(self, mtu: int) -> bool:
        return self.accepts_any_fragments and mtu >= self.min_accepted_fragment_mtu

    @property
    def accepts_minimum_fragments(self) -> bool:
        return self.accepts_fragment_mtu(MINIMUM_FRAGMENT_MTU)

    @property
    def externally_triggerable(self) -> bool:
        """Can the attacker trigger queries through a third party (§II.A)?"""
        return self.triggerable_via_smtp or self.open_resolver


def generate_nameserver_population(seed: int = 0,
                                   total: int = PAPER_NAMESERVER_TOTAL,
                                   fragmenting: int = PAPER_NAMESERVERS_FRAGMENTING,
                                   rng: Optional[random.Random] = None,
                                   ) -> list[NameserverProfile]:
    """Build a nameserver population matching the published 16-of-30 marginal.

    ``rng`` lets experiment harnesses supply their own generator so population
    studies compose with experiment-level seeding; when omitted, a locally
    seeded generator preserves the historical default-seed populations.
    """
    if fragmenting > total:
        raise ValueError("fragmenting count cannot exceed the population size")
    if rng is None:
        rng = random.Random(seed)
    profiles: list[NameserverProfile] = []
    indices = list(range(total))
    rng.shuffle(indices)
    fragmenting_set = set(indices[:fragmenting])
    for index in range(total):
        address = f"192.0.2.{index + 1}"
        if index in fragmenting_set:
            # Fragmenting servers in the study accepted the 548-byte probe;
            # give them a minimum MTU at or below it, and no DNSSEC.
            min_mtu = rng.choice([548, 512, 296, 68])
            dnssec = False
        else:
            min_mtu = rng.choice([1500, 1400, 1280])
            dnssec = rng.random() < 0.3
        profiles.append(NameserverProfile(address=address,
                                          min_fragmentation_mtu=min_mtu,
                                          supports_dnssec=dnssec))
    return profiles


def generate_resolver_population(seed: int = 0, total: int = 5000,
                                 accept_any_fraction: float = PAPER_RESOLVER_ACCEPT_ANY_FRACTION,
                                 accept_minimum_fraction: float = PAPER_RESOLVER_ACCEPT_MINIMUM_FRACTION,
                                 triggerable_fraction: float = PAPER_RESOLVER_TRIGGERABLE_FRACTION,
                                 rng: Optional[random.Random] = None,
                                 ) -> list[ResolverProfile]:
    """Build a resolver population matching the published 90 % / 64 % / 14 % marginals.

    The fractions are enforced by construction (deterministic quotas over a
    shuffled population) rather than by sampling, so small populations still
    reproduce the marginals exactly up to rounding.  As with
    :func:`generate_nameserver_population`, an injected ``rng`` takes
    precedence over ``seed``.
    """
    if not 0 <= accept_minimum_fraction <= accept_any_fraction <= 1:
        raise ValueError("fractions must satisfy 0 <= minimum <= any <= 1")
    if rng is None:
        rng = random.Random(seed)
    indices = list(range(total))
    rng.shuffle(indices)
    accept_any_count = int(round(accept_any_fraction * total))
    accept_minimum_count = int(round(accept_minimum_fraction * total))
    accept_any = set(indices[:accept_any_count])
    accept_minimum = set(indices[:accept_minimum_count])

    trigger_order = list(range(total))
    rng.shuffle(trigger_order)
    triggerable = set(trigger_order[: int(round(triggerable_fraction * total))])

    profiles: list[ResolverProfile] = []
    for index in range(total):
        if index in accept_minimum:
            min_mtu: Optional[int] = MINIMUM_FRAGMENT_MTU
        elif index in accept_any:
            min_mtu = rng.choice([256, 296, 512, 548, 1280])
        else:
            min_mtu = None
        is_triggerable = index in triggerable
        via_smtp = is_triggerable and rng.random() < 0.6
        is_open = is_triggerable and not via_smtp
        profiles.append(ResolverProfile(
            identifier=f"resolver-{index}",
            min_accepted_fragment_mtu=min_mtu,
            triggerable_via_smtp=via_smtp,
            open_resolver=is_open,
        ))
    return profiles
