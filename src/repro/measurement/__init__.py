"""Measurement-study substrate reproducing the §II DNS statistics."""

from .nameserver_study import (
    NameserverProbeResult,
    NameserverStudyReport,
    probe_nameserver,
    run_nameserver_study,
)
from .population import (
    MINIMUM_FRAGMENT_MTU,
    PAPER_NAMESERVER_TOTAL,
    PAPER_NAMESERVERS_FRAGMENTING,
    PAPER_RESOLVER_ACCEPT_ANY_FRACTION,
    PAPER_RESOLVER_ACCEPT_MINIMUM_FRACTION,
    PAPER_RESOLVER_TRIGGERABLE_FRACTION,
    STUDY_MTU_THRESHOLD,
    NameserverProfile,
    ResolverProfile,
    generate_nameserver_population,
    generate_resolver_population,
)
from .resolver_study import (
    ResolverProbeResult,
    ResolverStudyReport,
    probe_resolver,
    run_resolver_study,
)

__all__ = [
    "NameserverProbeResult",
    "NameserverStudyReport",
    "probe_nameserver",
    "run_nameserver_study",
    "MINIMUM_FRAGMENT_MTU",
    "PAPER_NAMESERVER_TOTAL",
    "PAPER_NAMESERVERS_FRAGMENTING",
    "PAPER_RESOLVER_ACCEPT_ANY_FRACTION",
    "PAPER_RESOLVER_ACCEPT_MINIMUM_FRACTION",
    "PAPER_RESOLVER_TRIGGERABLE_FRACTION",
    "STUDY_MTU_THRESHOLD",
    "NameserverProfile",
    "ResolverProfile",
    "generate_nameserver_population",
    "generate_resolver_population",
    "ResolverProbeResult",
    "ResolverStudyReport",
    "probe_resolver",
    "run_resolver_study",
]
