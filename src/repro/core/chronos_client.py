"""The Chronos NTP client.

Combines the two pieces the DSN paper identifies as Chronos' changes over a
traditional client (§III):

* a **bigger pool** of upstream servers, built by
  :class:`repro.core.pool_generation.ChronosPoolGenerator` from repeated
  DNS queries, and
* a **provably secure selection algorithm**
  (:func:`repro.core.selection.chronos_select`) with resampling and panic
  mode.

The client is a simulated host: it talks real DNS to its recursive resolver
and real NTP to the servers in its pool, so the attack experiments exercise
the complete path from a poisoned cache entry to a shifted victim clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..defenses.stack import DefenseStack
from ..dns.resolver import DNSStub
from ..netsim.network import Host, Network
from ..netsim.packets import UDPDatagram
from ..ntp.clock import ClockErrorTrace, SystemClock
from ..ntp.query import NTPQuerier, TimeSample
from .pool_generation import ChronosPoolGenerator, GeneratedPool, PoolGenerationPolicy
from .selection import ChronosConfig, ChronosSelectionResult, chronos_select, panic_select


class UpdateOutcome(enum.Enum):
    """How a Chronos update round concluded."""

    APPLIED = "applied"
    RETRIED = "retried"
    PANIC = "panic"
    NO_SAMPLES = "no-samples"


@dataclass
class ChronosUpdateRecord:
    """Diagnostics for one Chronos update round (including retries)."""

    started_at: float
    sampled_servers: list[str] = field(default_factory=list)
    samples: list[TimeSample] = field(default_factory=list)
    attempts: int = 0
    outcome: Optional[UpdateOutcome] = None
    applied_offset: Optional[float] = None
    selection: Optional[ChronosSelectionResult] = None
    panic_used: bool = False


class ChronosClient(Host):
    """A Chronos-enhanced NTP client running on the simulated network."""

    def __init__(self, network: Network, address: str, resolver_address: str,
                 hostname: str = "pool.ntp.org",
                 config: Optional[ChronosConfig] = None,
                 pool_policy: Optional[PoolGenerationPolicy] = None,
                 clock: Optional[SystemClock] = None,
                 name: Optional[str] = None,
                 defenses: Optional[DefenseStack] = None) -> None:
        super().__init__(network, address, name=name or f"chronos-{address}")
        self.config = config or ChronosConfig()
        self.clock = clock or SystemClock(network.simulator)
        self.dns = DNSStub(self, resolver_address)
        self.querier = NTPQuerier(self, self.clock)
        #: Client-side hooks of the experiment's defense stack (pool
        #: admission filtering and NTP-sample vetoes).
        self.defenses = defenses
        self.pool_generator = ChronosPoolGenerator(self.dns, hostname=hostname,
                                                   policy=pool_policy,
                                                   defenses=defenses)
        self.hostname = hostname
        self.pool: Optional[GeneratedPool] = None
        self.update_history: list[ChronosUpdateRecord] = []
        self.error_trace = ClockErrorTrace()
        self.panic_count = 0
        self.started = False
        self._last_update_time: Optional[float] = None
        self._current: Optional[ChronosUpdateRecord] = None
        self._outstanding = 0
        self._attempt = 0
        self._in_panic = False

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Begin pool generation; time updates start once the pool is ready."""
        if self.started:
            return
        self.started = True
        self.pool_generator.generate(self._on_pool_ready)

    def _on_pool_ready(self, pool: GeneratedPool) -> None:
        self.pool = pool
        self.begin_updates()

    def begin_updates(self) -> None:
        """Start the periodic update loop on the current pool.

        Normally invoked automatically once pool generation finishes; exposed
        so experiment harnesses that drive pool generation themselves (e.g.
        the attack scenarios) can start the time-update phase explicitly.
        """
        if self.pool is None:
            raise RuntimeError("cannot start updates without a generated pool")
        self._last_update_time = self.network.simulator.now
        self._begin_update()

    # -- update rounds ---------------------------------------------------------
    def _begin_update(self) -> None:
        if self.pool is None or not self.pool.servers:
            return
        self._attempt = 0
        self._in_panic = False
        record = ChronosUpdateRecord(started_at=self.network.simulator.now)
        self._current = record
        self._start_attempt(record)

    def _start_attempt(self, record: ChronosUpdateRecord) -> None:
        record.attempts += 1
        pool_servers = self.pool.servers
        sample_size = min(self.config.sample_size, len(pool_servers))
        servers = self.network.simulator.rng.sample(pool_servers, sample_size)
        record.sampled_servers = servers
        record.samples = []
        self._outstanding = len(servers)
        for server in servers:
            self.querier.query(server, lambda sample, rec=record: self._on_sample(rec, sample))

    def _start_panic(self, record: ChronosUpdateRecord) -> None:
        self._in_panic = True
        record.panic_used = True
        self.panic_count += 1
        obs = self.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("chronos.panic_rounds").inc()
            obs.trace.instant("chronos.panic", category="ntp",
                              client=self.address, attempts=record.attempts)
        servers = list(self.pool.servers)
        record.sampled_servers = servers
        record.samples = []
        self._outstanding = len(servers)
        for server in servers:
            self.querier.query(server, lambda sample, rec=record: self._on_sample(rec, sample))

    def _on_sample(self, record: ChronosUpdateRecord, sample: Optional[TimeSample]) -> None:
        if record is not self._current:
            return
        if (sample is not None and self.defenses is not None
                and not self.defenses.on_ntp_sample(sample)):
            sample = None  # vetoed by a defense; treat like a lost exchange
        if sample is not None:
            record.samples.append(sample)
        self._outstanding -= 1
        if self._outstanding == 0:
            self._finish_attempt(record)

    def _finish_attempt(self, record: ChronosUpdateRecord) -> None:
        offsets = [sample.offset for sample in record.samples if sample.plausible]
        elapsed = (self.network.simulator.now - self._last_update_time
                   if self._last_update_time is not None else 0.0)
        if not offsets:
            record.outcome = UpdateOutcome.NO_SAMPLES
            self._complete_update(record)
            return
        if self._in_panic:
            result = panic_select(offsets, self.config)
            record.selection = result
            record.outcome = UpdateOutcome.PANIC
            if result.accepted:
                self._apply_offset(record, result.offset)
            self._complete_update(record)
            return
        result = chronos_select(offsets, self.config, elapsed_since_update=elapsed)
        record.selection = result
        if result.accepted:
            record.outcome = UpdateOutcome.APPLIED
            self._apply_offset(record, result.offset)
            self._complete_update(record)
            return
        if self._attempt < self.config.max_retries:
            self._attempt += 1
            record.outcome = UpdateOutcome.RETRIED
            self._start_attempt(record)
            return
        self._start_panic(record)

    def _apply_offset(self, record: ChronosUpdateRecord, offset: float) -> None:
        record.applied_offset = offset
        self.clock.adjust(offset, source="chronos")

    def _complete_update(self, record: ChronosUpdateRecord) -> None:
        obs = self.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("chronos.updates",
                                outcome=record.outcome.value).inc()
        self._current = None
        self._last_update_time = self.network.simulator.now
        self.update_history.append(record)
        self.error_trace.record(self.clock)
        self.network.simulator.schedule(self.config.poll_interval, self._begin_update)

    # -- datagram dispatch -------------------------------------------------------
    def handle_datagram(self, datagram: UDPDatagram) -> None:
        if self.dns.handle_datagram(datagram):
            return
        self.querier.handle_datagram(datagram)

    # -- reporting ---------------------------------------------------------------
    @property
    def applied_updates(self) -> list[ChronosUpdateRecord]:
        return [record for record in self.update_history if record.applied_offset is not None]

    @property
    def clock_error(self) -> float:
        """Current signed error of the victim clock versus true time."""
        return self.clock.error
