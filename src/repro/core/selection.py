"""The Chronos time-sampling / selection algorithm (Deutsch et al., NDSS 2018).

Chronos replaces ntpd's select/cluster/combine pipeline with a provably
secure procedure (the paper under reproduction summarises it in §III):

1. sample ``m`` servers uniformly at random from a large pool;
2. order the obtained time samples (offsets relative to the local clock) and
   **discard the bottom third and the top third**;
3. check that the surviving samples agree with each other (lie within a small
   window ``w``) and with the local clock (their average is within an
   acceptable drift-derived bound);
4. if the checks pass, adjust the clock to the average of the survivors;
   otherwise resample, and after ``max_retries`` failed attempts enter
   *panic mode*: query every server in the pool, again discard the top and
   bottom thirds, and average the rest.

The security argument is that an attacker controlling fewer than a third of
the queried servers can neither drag the trimmed average far from true time
nor force panic mode to a bad value.  The argument silently assumes the pool
itself has an honest (two-thirds) super-majority — the assumption the DSN
paper's DNS attack destroys.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass
from statistics import mean
from typing import Optional


class ChronosConfigError(ValueError):
    """Raised when a :class:`ChronosConfig` is internally inconsistent."""


@dataclass(frozen=True)
class ChronosConfig:
    """Parameters of the Chronos algorithm.

    Defaults follow the NDSS'18 evaluation: samples of ``m = 15`` servers,
    drift bound of 10 ppm, a per-sample error bound ``err`` of 100 ms, and at
    most two resamplings before panic.
    """

    #: Number of servers sampled per update (``m``).
    sample_size: int = 15
    #: Bound on the time-sample error of an honest server (seconds); the
    #: agreement window is ``2 * err``.
    err: float = 0.1
    #: Assumed local clock drift (parts per million) used for the
    #: local-agreement bound between updates.
    drift_ppm: float = 10.0
    #: Number of resampling attempts before panic mode (``K``).
    max_retries: int = 2
    #: Interval between Chronos updates (seconds).
    poll_interval: float = 3600.0 / 4
    #: Target pool size the pool-generation phase aims for.
    target_pool_size: int = 96

    def __post_init__(self) -> None:
        if self.sample_size < 3:
            raise ChronosConfigError("sample_size must be at least 3")
        if self.err <= 0:
            raise ChronosConfigError("err must be positive")
        if self.max_retries < 0:
            raise ChronosConfigError("max_retries cannot be negative")
        if self.poll_interval <= 0:
            raise ChronosConfigError("poll_interval must be positive")

    @property
    def trim_count(self) -> int:
        """How many samples are discarded at *each* end (``m // 3``)."""
        return self.sample_size // 3

    @property
    def agreement_window(self) -> float:
        """Maximum spread allowed among surviving samples (``2 * err``)."""
        return 2.0 * self.err

    def local_bound(self, elapsed_since_update: float) -> float:
        """How far the surviving average may be from the local clock."""
        return self.err + self.drift_ppm * 1e-6 * max(elapsed_since_update, 0.0)

    @property
    def attack_threshold(self) -> int:
        """Minimum number of attacker samples needed to control an update.

        To fully control the trimmed average the attacker must survive the
        trimming *and* dominate the survivors, which requires controlling at
        least two-thirds of the sampled servers.
        """
        return self.sample_size - self.trim_count


class SelectionStatus(enum.Enum):
    """Outcome of a single Chronos sampling attempt."""

    OK = "ok"
    TOO_FEW_SAMPLES = "too-few-samples"
    WIDE_SPREAD = "wide-spread"
    FAR_FROM_LOCAL = "far-from-local"


@dataclass(frozen=True)
class ChronosSelectionResult:
    """Result of applying the Chronos selection rule to one set of samples."""

    status: SelectionStatus
    offset: Optional[float]
    surviving_offsets: tuple[float, ...]
    discarded_offsets: tuple[float, ...]

    @property
    def accepted(self) -> bool:
        return self.status is SelectionStatus.OK


def trim_offsets(offsets: Sequence[float], trim_count: int) -> tuple[list[float], list[float]]:
    """Order offsets and drop ``trim_count`` from each end.

    Returns ``(survivors, discarded)``.
    """
    ordered = sorted(offsets)
    if trim_count == 0:
        return ordered, []
    if len(ordered) <= 2 * trim_count:
        return [], ordered
    survivors = ordered[trim_count:len(ordered) - trim_count]
    discarded = ordered[:trim_count] + ordered[len(ordered) - trim_count:]
    return survivors, discarded


def chronos_select(offsets: Sequence[float], config: ChronosConfig,
                   elapsed_since_update: float = 0.0,
                   enforce_checks: bool = True) -> ChronosSelectionResult:
    """Apply the Chronos selection rule to offsets measured this round.

    ``offsets`` are clock offsets relative to the local clock (what the NTP
    exchange computes), so the "agreement with the local clock" check is a
    bound on the surviving average's absolute value.

    ``enforce_checks=False`` gives the *panic-mode* behaviour: the trimmed
    average is adopted regardless of the agreement checks.
    """
    minimum_required = 2 * config.trim_count + 1
    if len(offsets) < minimum_required:
        return ChronosSelectionResult(SelectionStatus.TOO_FEW_SAMPLES, None, (), tuple(offsets))
    survivors, discarded = trim_offsets(offsets, config.trim_count)
    if not survivors:
        return ChronosSelectionResult(SelectionStatus.TOO_FEW_SAMPLES, None, (), tuple(offsets))
    average = mean(survivors)
    if enforce_checks:
        spread = max(survivors) - min(survivors)
        if spread > config.agreement_window:
            return ChronosSelectionResult(SelectionStatus.WIDE_SPREAD, None,
                                          tuple(survivors), tuple(discarded))
        if abs(average) > config.local_bound(elapsed_since_update):
            return ChronosSelectionResult(SelectionStatus.FAR_FROM_LOCAL, None,
                                          tuple(survivors), tuple(discarded))
    return ChronosSelectionResult(SelectionStatus.OK, average,
                                  tuple(survivors), tuple(discarded))


def panic_select(offsets: Sequence[float], config: ChronosConfig) -> ChronosSelectionResult:
    """Panic mode: trim a third at each end of *all* pool samples and average.

    Panic mode ignores the agreement checks — it is the last-resort recovery
    step — which is exactly why an attacker holding two-thirds of the *pool*
    (as after the DNS attack) controls its outcome completely.
    """
    trim = len(offsets) // 3
    ordered = sorted(offsets)
    survivors = ordered[trim:len(ordered) - trim] if len(ordered) > 2 * trim else ordered
    if not survivors:
        return ChronosSelectionResult(SelectionStatus.TOO_FEW_SAMPLES, None, (), tuple(offsets))
    discarded = ordered[:trim] + ordered[len(ordered) - trim:] if trim else []
    return ChronosSelectionResult(SelectionStatus.OK, mean(survivors),
                                  tuple(survivors), tuple(discarded))
