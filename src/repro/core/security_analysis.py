"""Analytical security bounds for Chronos (and their collapse under the DNS attack).

The NDSS'18 Chronos paper argues that a man-in-the-middle attacker who
controls fewer than a third of the servers in the pool needs *years to
decades* of continuous effort before a single update round samples enough
attacker-controlled servers to let it shift the victim's clock — the DSN
paper quotes the headline "20 years of effort to shift time by 100 ms"
(§III).  This module reproduces that style of bound from first principles:

* the per-round probability that at least ``threshold`` of the ``m`` sampled
  servers are attacker-controlled is an exact hypergeometric tail (sampling
  without replacement from the pool);
* rounds are independent Bernoulli trials, so the expected number of rounds
  to the first success is ``1/p`` and the expected calendar time is
  ``poll_interval / p``.

The same functions, evaluated at the post-attack pool composition produced
by the DNS poisoning (attacker fraction ≥ 2/3), show the expected effort
collapsing to a single round — the quantitative core of the paper's claim
that the DNS route makes attacking Chronos easier than attacking plain NTP.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


class AnalysisError(ValueError):
    """Raised for inconsistent analysis parameters."""


def hypergeometric_pmf(population: int, successes: int, draws: int, observed: int) -> float:
    """P[X = observed] for a hypergeometric(population, successes, draws) variable."""
    if population < 0 or successes < 0 or draws < 0:
        raise AnalysisError("population, successes and draws must be non-negative")
    if successes > population or draws > population:
        raise AnalysisError("successes and draws cannot exceed the population")
    if observed < 0 or observed > draws or observed > successes:
        return 0.0
    if draws - observed > population - successes:
        return 0.0
    return (
        math.comb(successes, observed)
        * math.comb(population - successes, draws - observed)
        / math.comb(population, draws)
    )


def hypergeometric_tail(population: int, successes: int, draws: int, at_least: int) -> float:
    """P[X >= at_least] for a hypergeometric variable."""
    at_least = max(at_least, 0)
    upper = min(draws, successes)
    if at_least > upper:
        return 0.0
    return sum(hypergeometric_pmf(population, successes, draws, k)
               for k in range(at_least, upper + 1))


def attack_threshold(sample_size: int) -> int:
    """Samples the attacker must control to dictate the trimmed average.

    With ``d = m // 3`` trimmed from each end, ``m - d`` attacker samples
    guarantee every survivor is attacker-controlled (the NDSS'18 two-thirds
    condition).
    """
    return sample_size - sample_size // 3


@dataclass(frozen=True)
class ShiftAttackBound:
    """The security bound for one configuration."""

    pool_size: int
    malicious_servers: int
    sample_size: int
    threshold: int
    per_round_probability: float
    poll_interval: float

    @property
    def malicious_fraction(self) -> float:
        return self.malicious_servers / self.pool_size if self.pool_size else 0.0

    @property
    def expected_rounds_to_success(self) -> float:
        if self.per_round_probability <= 0.0:
            return math.inf
        return 1.0 / self.per_round_probability

    @property
    def expected_seconds_to_success(self) -> float:
        return self.expected_rounds_to_success * self.poll_interval

    @property
    def expected_years_to_success(self) -> float:
        return self.expected_seconds_to_success / SECONDS_PER_YEAR

    def probability_within(self, duration_seconds: float) -> float:
        """Probability of at least one successful round within ``duration_seconds``."""
        if self.per_round_probability <= 0.0:
            return 0.0
        rounds = max(int(duration_seconds // self.poll_interval), 0)
        return 1.0 - (1.0 - self.per_round_probability) ** rounds


def shift_attack_bound(pool_size: int, malicious_servers: int, sample_size: int,
                       poll_interval: float = 900.0,
                       threshold: Optional[int] = None) -> ShiftAttackBound:
    """Compute the Chronos shift-attack bound for a pool composition.

    Parameters mirror the Chronos analysis: ``pool_size`` servers of which
    ``malicious_servers`` are attacker-controlled, ``sample_size`` drawn per
    update round, one round every ``poll_interval`` seconds.
    """
    if malicious_servers > pool_size:
        raise AnalysisError("malicious_servers cannot exceed pool_size")
    if sample_size > pool_size:
        sample_size = pool_size
    if threshold is None:
        threshold = attack_threshold(sample_size)
    probability = hypergeometric_tail(pool_size, malicious_servers, sample_size, threshold)
    return ShiftAttackBound(
        pool_size=pool_size,
        malicious_servers=malicious_servers,
        sample_size=sample_size,
        threshold=threshold,
        per_round_probability=probability,
        poll_interval=poll_interval,
    )


def years_of_effort(pool_size: int, malicious_servers: int, sample_size: int = 15,
                    poll_interval: float = 900.0) -> float:
    """Convenience wrapper returning the expected years to a successful shift."""
    return shift_attack_bound(pool_size, malicious_servers, sample_size,
                              poll_interval).expected_years_to_success


def sweep_malicious_fraction(pool_size: int, sample_size: int,
                             fractions: Sequence[float],
                             poll_interval: float = 900.0) -> list[ShiftAttackBound]:
    """Evaluate the bound across attacker pool fractions (for E3/E6 plots)."""
    bounds = []
    for fraction in fractions:
        malicious = min(pool_size, int(round(fraction * pool_size)))
        bounds.append(shift_attack_bound(pool_size, malicious, sample_size, poll_interval))
    return bounds


def panic_mode_controlled(pool_size: int, malicious_servers: int) -> bool:
    """Whether the attacker controls panic mode's trimmed average.

    Panic mode queries the whole pool and trims a third at each end, so the
    attacker needs at least two-thirds of the pool — which is precisely the
    composition the DNS attack produces.
    """
    if pool_size == 0:
        return False
    return malicious_servers >= pool_size - pool_size // 3


@dataclass(frozen=True)
class CumulativeShiftBound:
    """Effort to accumulate a *target* shift, not just win one round.

    Chronos caps how far a single accepted update may move the clock (the
    surviving average must stay within the ``err``-derived bound of the local
    clock), so an attacker below the pool two-thirds mark must win many
    *consecutive* sampling rounds to accumulate a large shift — the source of
    the "20 years of effort for 100 ms" style claims quoted in §III.  An
    attacker that owns two-thirds of the *pool* instead controls panic mode
    and every regular round, so the same target falls in a handful of rounds.
    """

    target_shift: float
    per_round_shift: float
    rounds_required: int
    per_round_probability: float
    consecutive_success_probability: float
    poll_interval: float
    panic_controlled: bool

    @property
    def expected_seconds(self) -> float:
        if self.panic_controlled:
            # The attacker controls both regular rounds and panic mode; the
            # shift lands as fast as the required rounds can run.
            return self.rounds_required * self.poll_interval
        p = self.per_round_probability
        k = self.rounds_required
        if p <= 0.0:
            return math.inf
        if p >= 1.0:
            return k * self.poll_interval
        block_probability = p ** k
        # Expected number of trials until k consecutive successes of a
        # Bernoulli(p) process (standard renewal argument).
        expected_rounds = (1.0 - block_probability) / (block_probability * (1.0 - p))
        return expected_rounds * self.poll_interval

    @property
    def expected_years(self) -> float:
        return self.expected_seconds / SECONDS_PER_YEAR


def cumulative_shift_bound(pool_size: int, malicious_servers: int, sample_size: int = 15,
                           target_shift: float = 0.1, per_round_shift: float = 0.025,
                           poll_interval: float = 900.0) -> CumulativeShiftBound:
    """Expected effort for the attacker to shift the clock by ``target_shift``.

    ``per_round_shift`` is the largest offset a single accepted Chronos update
    can introduce without tripping the local-agreement check (on the order of
    the per-sample error bound ``err``).
    """
    if target_shift <= 0 or per_round_shift <= 0:
        raise AnalysisError("target_shift and per_round_shift must be positive")
    rounds_required = max(1, math.ceil(target_shift / per_round_shift))
    single = shift_attack_bound(pool_size, malicious_servers, sample_size, poll_interval)
    probability = single.per_round_probability
    return CumulativeShiftBound(
        target_shift=target_shift,
        per_round_shift=per_round_shift,
        rounds_required=rounds_required,
        per_round_probability=probability,
        consecutive_success_probability=probability ** rounds_required,
        poll_interval=poll_interval,
        panic_controlled=panic_mode_controlled(pool_size, malicious_servers),
    )


@dataclass(frozen=True)
class AttackComparison:
    """Effort comparison used by experiment E6."""

    scenario: str
    dns_poisoning_opportunities: int
    dns_successes_required: int
    ntp_rounds_expected: float
    expected_years: float
    notes: str = ""


def mitm_reference_bound(pool_size: int = 500, sample_size: int = 15,
                         poll_interval: float = 900.0,
                         malicious_fraction: float = 1.0 / 3.0 - 1e-9) -> ShiftAttackBound:
    """The "strong MitM needs decades" reference configuration from §III.

    The strongest attacker Chronos claims to tolerate controls just under a
    third of the pool; this helper evaluates the bound there.
    """
    malicious = int(pool_size * malicious_fraction)
    return shift_attack_bound(pool_size, malicious, sample_size, poll_interval)
