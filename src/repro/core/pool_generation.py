"""Chronos server-pool generation — the mechanism the paper attacks.

Chronos needs a pool of "roughly a hundred" NTP servers so that random
sampling has an honest super-majority to draw from.  The NDSS'18 design
obtains it by resolving ``pool.ntp.org`` **once per hour for 24 hours**;
each response carries 4 addresses, so the pool converges to ~96 servers
(fewer after de-duplication).

The DSN paper's observation (§IV) is that this very mechanism hands an
off-path attacker 24 independent chances to poison the resolver's cache, and
that a single success is enough when the poisoned response

* carries far more than 4 addresses (up to 89 fit unfragmented), and
* has a TTL longer than the remaining generation window, so every later
  hourly query is answered from cache and adds no further benign servers.

:class:`PoolGenerationPolicy` also exposes the two §V mitigations (cap the
number of accepted addresses per response, reject high TTLs) so their
effect can be measured.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..defenses.base import HIGH_TTL_REASON, PoolAcceptContext
from ..defenses.pool import pool_policy_defenses
from ..defenses.stack import DefenseStack
from ..dns.message import DNSMessage
from ..dns.records import RecordType
from ..dns.resolver import DNSStub

#: Number of DNS queries the NDSS'18 pool generation performs.
DEFAULT_QUERY_COUNT = 24
#: Interval between pool-generation queries (one hour).
DEFAULT_QUERY_INTERVAL = 3600.0


@dataclass(frozen=True)
class PoolGenerationPolicy:
    """Knobs of the pool-generation procedure and its §V mitigations."""

    #: Total number of DNS queries (the paper and NDSS'18 use 24).
    query_count: int = DEFAULT_QUERY_COUNT
    #: Seconds between queries (hourly).
    query_interval: float = DEFAULT_QUERY_INTERVAL
    #: Keep only unique addresses (the Chronos design de-duplicates; the
    #: paper's 44-vs-89 arithmetic counts addresses, so both are supported).
    dedupe: bool = True
    #: Mitigation 1 (§V): accept at most this many addresses from a single
    #: response (``None`` disables the cap; the paper recommends 4).
    max_addresses_per_response: Optional[int] = None
    #: Mitigation 2 (§V): discard responses whose minimum TTL exceeds this
    #: many seconds (``None`` disables the check).
    max_accepted_ttl: Optional[int] = None

    def __post_init__(self) -> None:
        if self.query_count < 1:
            raise ValueError("query_count must be at least 1")
        if self.query_interval <= 0:
            raise ValueError("query_interval must be positive")


@dataclass
class PoolQueryRecord:
    """What one pool-generation query contributed."""

    index: int
    issued_at: float
    addresses: list[str] = field(default_factory=list)
    accepted_addresses: list[str] = field(default_factory=list)
    min_ttl: Optional[int] = None
    rejected_high_ttl: bool = False
    failed: bool = False


@dataclass
class GeneratedPool:
    """The outcome of a full pool-generation run."""

    servers: list[str]
    queries: list[PoolQueryRecord]
    started_at: float
    completed_at: float

    @property
    def size(self) -> int:
        return len(self.servers)

    def composition(self, malicious: Sequence[str]) -> PoolComposition:
        """Split the pool against a known set of attacker addresses."""
        malicious_set = set(malicious)
        bad = [server for server in self.servers if server in malicious_set]
        good = [server for server in self.servers if server not in malicious_set]
        return PoolComposition(benign=len(good), malicious=len(bad))


@dataclass(frozen=True)
class PoolComposition:
    """Benign/malicious counts of a generated pool."""

    benign: int
    malicious: int

    @property
    def total(self) -> int:
        return self.benign + self.malicious

    @property
    def malicious_fraction(self) -> float:
        return self.malicious / self.total if self.total else 0.0

    @property
    def attacker_has_two_thirds(self) -> bool:
        """Whether the attacker meets the 2/3 bound that defeats Chronos."""
        return self.total > 0 and self.malicious * 3 >= self.total * 2


PoolCallback = Callable[[GeneratedPool], None]


class ChronosPoolGenerator:
    """Runs the 24-hourly-query pool generation over a host's DNS stub.

    Response acceptance is a defense pipeline: the experiment's configured
    stack first (so cross-checking defenses see the raw response), then the
    policy's §V mitigation knobs — which are materialised as the *same*
    :class:`~repro.defenses.base.Defense` classes, keeping the analytic
    mitigation table and the packet-level simulation on one definition.
    """

    def __init__(self, dns: DNSStub, hostname: str = "pool.ntp.org",
                 policy: Optional[PoolGenerationPolicy] = None,
                 defenses: Optional[DefenseStack] = None) -> None:
        self.dns = dns
        self.hostname = hostname
        self.policy = policy or PoolGenerationPolicy()
        self.defenses = defenses
        self._policy_defenses = DefenseStack(pool_policy_defenses(self.policy))
        self.queries: list[PoolQueryRecord] = []
        self._servers: list[str] = []
        self._seen = set()
        self._callback: Optional[PoolCallback] = None
        self._started_at: Optional[float] = None
        self.running = False

    # -- public API -------------------------------------------------------------
    def generate(self, callback: PoolCallback) -> None:
        """Start pool generation; ``callback`` receives the finished pool."""
        if self.running:
            raise RuntimeError("pool generation already running")
        self.running = True
        self._callback = callback
        self._servers = []
        self._seen = set()
        self.queries = []
        self._started_at = self._now()
        self._issue_query(0)

    @property
    def partial_pool(self) -> list[str]:
        """Servers accumulated so far (useful for mid-run inspection)."""
        return list(self._servers)

    # -- internals ------------------------------------------------------------
    def _now(self) -> float:
        return self.dns.host.network.simulator.now

    def _issue_query(self, index: int) -> None:
        record = PoolQueryRecord(index=index, issued_at=self._now())
        self.queries.append(record)
        self.dns.lookup_message(
            self.hostname,
            lambda response, rec=record, idx=index: self._on_response(rec, idx, response),
        )

    def _on_response(self, record: PoolQueryRecord, index: int,
                     response: Optional[DNSMessage]) -> None:
        if response is None or not response.answers:
            record.failed = True
        else:
            a_records = [rr for rr in response.answers if rr.rtype == RecordType.A]
            record.addresses = [rr.rdata for rr in a_records]
            record.min_ttl = min((rr.ttl for rr in a_records), default=None)
            context = PoolAcceptContext(addresses=list(record.addresses),
                                        min_ttl=record.min_ttl,
                                        response=response)
            if self.defenses is not None:
                self.defenses.on_pool_accept(context)
            if context.rejected_by is None:
                self._policy_defenses.on_pool_accept(context)
            record.rejected_high_ttl = context.rejected_reason == HIGH_TTL_REASON
            record.accepted_addresses = list(context.addresses)
            self._absorb(record.accepted_addresses)
        next_index = index + 1
        if next_index >= self.policy.query_count:
            self._finish()
            return
        self.dns.host.network.simulator.schedule(
            self.policy.query_interval, lambda: self._issue_query(next_index))

    def _absorb(self, addresses: Sequence[str]) -> None:
        for address in addresses:
            if self.policy.dedupe:
                if address in self._seen:
                    continue
                self._seen.add(address)
            self._servers.append(address)

    def _finish(self) -> None:
        self.running = False
        pool = GeneratedPool(
            servers=list(self._servers),
            queries=list(self.queries),
            started_at=self._started_at or 0.0,
            completed_at=self._now(),
        )
        callback = self._callback
        self._callback = None
        if callback is not None:
            callback(pool)
