"""Response-rate limiting (RRL) as a stack member.

The serving-layer counterpart of the client-side defenses: instead of
hardening the resolver's queries, RRL hardens the *nameserver's* answer
rate.  A per-source-prefix token bucket (BIND's ``rate-limit`` block)
caps how many UDP responses any /24 receives per second; over-limit
responses are dropped, except that every ``slip``-th one goes out
truncated (TC=1) to push legitimate resolvers onto TCP where the limiter
does not apply.

Against this paper's attacks the interaction is two-sided:

* the fragmentation race needs the nameserver to keep *emitting* large
  fragmenting responses to the resolver — a sustained trigger burst
  (the ``sustained_load`` attack row) runs straight into the bucket, so
  most races never see a spoofable response at all;
* but RRL alone answers with plaintext once the bucket refills, so the
  ``downgrade`` attacker is unaffected — and an *opportunistic* DoT
  resolver behind RRL is still downgradeable.  Only ``rrl_plus_dot``
  (strict) closes that row; the matrix columns make the pairing visible.

All bucket state is deterministic (no RNG), so matrix digests stay
byte-identical across worker counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..dns.nameserver import ResponseRateLimiter
from .base import Defense
from .registry import register_defense

if TYPE_CHECKING:
    from ..experiments.testbed import Testbed, TestbedConfig


@register_defense
class ResponseRateLimit(Defense):
    """Per-source-prefix UDP response-rate limiting on the nameserver."""

    name = "response_rate_limit"

    def __init__(self, rate: float = 1.0, burst: int = 2, slip: int = 2,
                 leak: int = 0, prefix_len: int = 24) -> None:
        #: Sustained tokens per second per source prefix.
        self.rate = rate
        #: Bucket depth — responses a cold prefix gets before throttling.
        self.burst = burst
        #: Every ``slip``-th suppressed response goes out TC=1 (0 = never).
        self.slip = slip
        #: Every ``leak``-th suppressed response escapes full-size (0 = never).
        self.leak = leak
        #: Aggregation width for the per-source buckets.
        self.prefix_len = prefix_len

    def configure_testbed(self, config: TestbedConfig) -> None:
        # The TC=1 slip path needs a stream listener to land on.
        config.nameserver_transports = tuple(
            dict.fromkeys((*config.nameserver_transports, "tcp")))

    def attach_testbed(self, testbed: Testbed) -> None:
        testbed.nameserver.rate_limiter = ResponseRateLimiter(
            rate=self.rate, burst=self.burst, slip=self.slip,
            leak=self.leak, prefix_len=self.prefix_len)
