"""The classic off-path defenses every real resolver already deploys.

These are the protections the paper's §II takes as *given* — and then goes
around: random transaction ids and source ports (RFC 5452), response
matching (source address + question echo), and the resolver-side caps some
operators add on top.  Before the defense subsystem existed they were inline
code in :class:`repro.dns.resolver.RecursiveResolver`; now they are stack
members, and :func:`default_resolver_defenses` translates a
:class:`~repro.dns.resolver.ResolverPolicy` into the equivalent stack prefix
so existing policy-driven configurations behave exactly as before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .base import Defense, QueryContext, ResponseContext
from .registry import register_defense

if TYPE_CHECKING:
    from ..dns.resolver import ResolverPolicy


@register_defense
class RandomTransactionID(Defense):
    """Randomise the 16-bit DNS transaction id per query (RFC 5452)."""

    name = "random_txid"

    def on_outgoing_query(self, ctx: QueryContext) -> None:
        ctx.transaction_id = ctx.rng.randrange(0, 0x10000)


@register_defense
class RandomSourcePort(Defense):
    """Randomise the resolver's UDP source port per query (RFC 5452)."""

    name = "random_source_port"

    def on_outgoing_query(self, ctx: QueryContext) -> None:
        ctx.source_port = ctx.rng.randrange(20000, 60000)


@register_defense
class ResponseMatching(Defense):
    """Match a response's port, source address and question to the query.

    This is the validation the paper's two vectors bypass wholesale: after a
    BGP hijack the attacker *receives* the query and can echo everything, and
    in the fragmentation attack every matched field lives in the genuine
    first fragment.
    """

    name = "response_matching"

    def __init__(self, check_source_address: bool = True) -> None:
        self.check_source_address = check_source_address

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        if ctx.datagram.dst_port != ctx.query.source_port:
            return "destination port does not match the query's source port"
        if self.check_source_address and ctx.datagram.src_ip != ctx.query.nameserver_address:
            return "source address is not the queried nameserver"
        if not ctx.response.matches_query(ctx.query.query):
            return "transaction id or question mismatch"
        return None


@register_defense
class FragmentedResponseRejection(Defense):
    """Refuse responses reassembled with spoofed fragments.

    The companion measurement found ~10% of resolvers do not accept
    fragmented responses at all; they are immune to the defragmentation
    vector.  The simulation models that hardening as rejecting any response
    whose reassembly involved a spoofed fragment — a benign-path resolver
    never sees the difference, so the observable effect is identical.
    """

    name = "fragment_rejection"

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        if ctx.poisoned:
            return "response was reassembled from injected fragments"
        return None


@register_defense
class ResponseRecordCap(Defense):
    """Accept at most ``limit`` records from a single response (resolver side)."""

    name = "response_record_cap"

    def __init__(self, limit: int = 4) -> None:
        self.limit = limit

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        ctx.answers = ctx.answers[: self.limit]


@register_defense
class CacheTTLCap(Defense):
    """Cap the TTL under which any response is cached (resolver side).

    A cap below the 24-hour pool-generation window bounds how long a single
    poisoned entry can starve the hourly queries — one of the §V directions.
    """

    name = "cache_ttl_cap"

    def __init__(self, max_ttl: int = 3600) -> None:
        self.max_ttl = max_ttl

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        ctx.answers = [record if record.ttl <= self.max_ttl
                       else record.with_ttl(self.max_ttl)
                       for record in ctx.answers]


def default_resolver_defenses(policy: ResolverPolicy) -> list[Defense]:
    """The stack prefix equivalent to a :class:`ResolverPolicy`.

    Ordering is load-bearing twice over: the transaction id is drawn before
    the source port (preserving the RNG stream of the pre-refactor resolver,
    so seeded experiments reproduce bit-for-bit), and response matching runs
    before any capping defense.
    """
    defenses: list[Defense] = []
    if policy.randomise_source_port:
        defenses.append(RandomTransactionID())
        defenses.append(RandomSourcePort())
    defenses.append(ResponseMatching(check_source_address=policy.check_source_address))
    if not policy.accept_fragmented_responses:
        defenses.append(FragmentedResponseRejection())
    if policy.max_records_per_response is not None:
        defenses.append(ResponseRecordCap(policy.max_records_per_response))
    return defenses
