"""Pool-side and NTP-side countermeasures: the §V mitigations and beyond.

The paper's §V proposes two changes to Chronos' pool generation — accept at
most 4 addresses from any single DNS response, and discard responses whose
TTL is suspiciously high.  Both are :class:`Defense` instances here, and the
legacy :class:`~repro.core.pool_generation.PoolGenerationPolicy` knobs are
translated into the *same* instances by :func:`pool_policy_defenses`, so the
analytic mitigation table and the packet-level simulation share one
definition of each mitigation.

:class:`MultiVantageCrossCheck` goes further than §V: it validates responses
(and pool admissions, and NTP samples) against what independent vantage
points observe about the zone — the published response profile (4 records,
150-second TTL) and roughly-true time.  It degrades the hijack vector's
*flooding* variant, but an attacker who mimics the public profile under a
sustained 24-hour hijack still owns the pool: the residual risk §V concedes
survives every pool-side defense.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..dns.records import RecordType
from .base import HIGH_TTL_REASON, Defense, PoolAcceptContext, ResponseContext
from .registry import register_defense

if TYPE_CHECKING:
    from ..core.pool_generation import PoolGenerationPolicy
    from ..experiments.testbed import Testbed
    from ..ntp.query import TimeSample


@register_defense
class PerResponseAddressCap(Defense):
    """§V mitigation 1: accept at most ``limit`` addresses per DNS response."""

    name = "address_cap"

    def __init__(self, limit: int = 4) -> None:
        self.limit = limit

    def on_pool_accept(self, ctx: PoolAcceptContext) -> None:
        ctx.addresses = ctx.addresses[: self.limit]


@register_defense
class HighTTLDiscard(Defense):
    """§V mitigation 2: discard responses whose minimum TTL exceeds a bound.

    The attack *needs* a TTL longer than the remaining generation window so
    that later hourly queries starve from cache; a response whose TTL dwarfs
    the zone's published 150 seconds is therefore discarded outright.
    """

    name = "ttl_discard"

    def __init__(self, max_ttl: int = 3600) -> None:
        self.max_ttl = max_ttl

    def on_pool_accept(self, ctx: PoolAcceptContext) -> None:
        if ctx.min_ttl is not None and ctx.min_ttl > self.max_ttl:
            ctx.discard(self.name, HIGH_TTL_REASON)


@register_defense
class MultiVantageCrossCheck(Defense):
    """Cross-check responses, pool admissions and NTP samples against vantage
    observations.

    What independent vantage points can corroborate about pool.ntp.org is its
    *published behaviour*: every response carries ``records_per_response``
    addresses under a short TTL, and the servers serve roughly true time.
    The defense captures that profile from the built testbed (standing in
    for out-of-band vantage queries) and rejects:

    * responses carrying more addresses than the profile, or TTLs far above
      it — which kills the 89-record / 2-day-TTL flood of §IV;
    * NTP samples whose offset exceeds ``max_sample_offset`` — a vantage
      majority would contradict them.

    It deliberately does *not* authenticate content, so a profile-mimicking
    attacker under a sustained hijack walks through — the residual attack.
    """

    name = "multi_vantage"

    def __init__(self, ttl_tolerance: float = 4.0, ttl_floor: int = 600,
                 max_sample_offset: float = 60.0) -> None:
        self.ttl_tolerance = ttl_tolerance
        self.ttl_floor = ttl_floor
        self.max_sample_offset = max_sample_offset
        self._expected_count: Optional[int] = None
        self._expected_ttl: Optional[int] = None

    def attach_testbed(self, testbed: Testbed) -> None:
        self._expected_count = testbed.nameserver.records_per_response
        self._expected_ttl = testbed.nameserver.ttl

    @property
    def max_plausible_ttl(self) -> Optional[int]:
        if self._expected_ttl is None:
            return None
        return max(int(self._expected_ttl * self.ttl_tolerance), self.ttl_floor)

    def _profile_violation(self, count: int, highest_ttl: Optional[int]) -> Optional[str]:
        if self._expected_count is not None and count > self._expected_count:
            return (f"{count} addresses in one response; vantage points "
                    f"observe at most {self._expected_count}")
        limit = self.max_plausible_ttl
        # Any record far above the published TTL is implausible — checking
        # the *highest* TTL also catches spliced responses whose genuine
        # first-fragment records still carry the benign TTL.
        if limit is not None and highest_ttl is not None and highest_ttl > limit:
            return (f"TTL {highest_ttl} far above the vantage-observed "
                    f"{self._expected_ttl}")
        return None

    @staticmethod
    def _highest_a_ttl(response) -> Optional[int]:
        ttls = [record.ttl for record in response.answers
                if record.rtype == RecordType.A]
        return max(ttls) if ttls else None

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        a_count = sum(1 for record in ctx.response.answers
                      if record.rtype == RecordType.A)
        if a_count == 0:
            return None
        return self._profile_violation(a_count, self._highest_a_ttl(ctx.response))

    def on_pool_accept(self, ctx: PoolAcceptContext) -> None:
        highest = (self._highest_a_ttl(ctx.response) if ctx.response is not None
                   else ctx.min_ttl)
        reason = self._profile_violation(len(ctx.addresses), highest)
        if reason is not None:
            ctx.discard(self.name, reason)

    def on_ntp_sample(self, sample: TimeSample) -> Optional[str]:
        if abs(sample.offset) > self.max_sample_offset:
            return (f"sample offset {sample.offset:.1f}s contradicts the "
                    f"vantage reference clocks")
        return None


def pool_policy_defenses(policy: PoolGenerationPolicy) -> list[Defense]:
    """The defense instances equivalent to a policy's §V mitigation knobs.

    TTL discard runs before the address cap, preserving the acceptance
    order of the pre-refactor pool generator.
    """
    defenses: list[Defense] = []
    if policy.max_accepted_ttl is not None:
        defenses.append(HighTTLDiscard(policy.max_accepted_ttl))
    if policy.max_addresses_per_response is not None:
        defenses.append(PerResponseAddressCap(policy.max_addresses_per_response))
    return defenses
