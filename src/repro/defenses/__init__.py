"""repro.defenses — composable DNS/NTP countermeasures.

A :class:`Defense` is a small object with lifecycle hooks (configure/attach
testbed, outgoing query, incoming response, pool admission, NTP sample); a
:class:`DefenseStack` composes them deterministically; the registry makes
every defense buildable from a plain name so experiment configs stay flat
and picklable.

Quick start::

    from repro.experiments import run_scenario

    # Any attack scenario accepts a ``defenses`` tuple of registry names:
    metrics = run_scenario("bgp_hijack", seed=1,
                           params={"defenses": ("multi_vantage",)})

The built-in defenses span both protocol layers:

========================  =====================================================
``random_txid``           random DNS transaction ids (classic, RFC 5452)
``random_source_port``    random resolver source ports (classic, RFC 5452)
``response_matching``     source-address + question echo validation (classic)
``fragment_rejection``    refuse responses reassembled from spoofed fragments
``response_record_cap``   resolver-side cap on records accepted per response
``cache_ttl_cap``         resolver-side cap on cached TTLs
``dns_0x20``              query-name case randomisation + echo verification
``dns_cookies``           RFC 7873-style cookie echo verification
``pmtu_floor``            nameserver refuses to fragment responses
``response_signing``      DNSSEC-style RRset signing + validation
``address_cap``           §V mitigation 1: ≤4 addresses per response (pool)
``ttl_discard``           §V mitigation 2: discard high-TTL responses (pool)
``multi_vantage``         cross-check responses/pool/samples against vantage
                          observations of the zone profile and true time
``encrypted_transport``   strict DNS-over-TLS upstream (fail closed)
``encrypted_transport_opportunistic``
                          DoT with plaintext fallback (downgradeable)
``encrypted_transport_doh``
                          strict DNS-over-HTTPS upstream
========================  =====================================================
"""

from .base import (
    HIGH_TTL_REASON,
    Defense,
    PoolAcceptContext,
    QueryContext,
    ResponseContext,
)
from .classic import (
    CacheTTLCap,
    FragmentedResponseRejection,
    RandomSourcePort,
    RandomTransactionID,
    ResponseMatching,
    ResponseRecordCap,
    default_resolver_defenses,
)
from .hardening import DNS0x20Encoding, DNSCookies, PMTUFloor, ResponseSigning
from .pool import (
    HighTTLDiscard,
    MultiVantageCrossCheck,
    PerResponseAddressCap,
    pool_policy_defenses,
)
from .registry import available_defenses, build_defense, register_defense
from .stack import DefenseSpec, DefenseStack
from .transport import (
    EncryptedTransport,
    EncryptedTransportDoH,
    OpportunisticEncryptedTransport,
)

__all__ = [
    "HIGH_TTL_REASON",
    "Defense",
    "PoolAcceptContext",
    "QueryContext",
    "ResponseContext",
    "CacheTTLCap",
    "FragmentedResponseRejection",
    "RandomSourcePort",
    "RandomTransactionID",
    "ResponseMatching",
    "ResponseRecordCap",
    "default_resolver_defenses",
    "DNS0x20Encoding",
    "DNSCookies",
    "PMTUFloor",
    "ResponseSigning",
    "HighTTLDiscard",
    "MultiVantageCrossCheck",
    "PerResponseAddressCap",
    "pool_policy_defenses",
    "available_defenses",
    "build_defense",
    "register_defense",
    "DefenseSpec",
    "DefenseStack",
    "EncryptedTransport",
    "EncryptedTransportDoH",
    "OpportunisticEncryptedTransport",
]
