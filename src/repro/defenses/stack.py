"""Deterministic composition of defenses into a stack.

A :class:`DefenseStack` is an ordered list of :class:`~repro.defenses.base.Defense`
instances.  Hooks run strictly in stack order: query-hardening hooks each get
to mutate the outgoing query; validation hooks short-circuit on the first
rejection (and the stack records *which* defense rejected, so experiments can
attribute blocked attacks); pool/sample filters run in order over the shared
context.  Because composition is a plain ordered fold, two stacks built from
the same spec behave identically — which is what keeps the attack × defense
matrix byte-reproducible across worker counts.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Optional, Union

from .base import Defense, PoolAcceptContext, QueryContext, ResponseContext

if TYPE_CHECKING:
    from ..experiments.testbed import Testbed, TestbedConfig
    from ..ntp.query import TimeSample

#: What a stack can be built from: registry names and/or ready instances.
DefenseSpec = Sequence[Union[str, Defense]]


class DefenseStack:
    """An ordered, deterministically-composed set of defenses."""

    def __init__(self, defenses: Iterable[Defense] = ()) -> None:
        self.defenses: list[Defense] = list(defenses)
        #: defense name -> number of responses/samples it rejected.
        self.rejections: Counter = Counter()

    @classmethod
    def from_spec(cls, spec: DefenseSpec) -> DefenseStack:
        """Build a stack from registry names and/or defense instances."""
        from .registry import build_defense

        return cls(item if isinstance(item, Defense) else build_defense(item)
                   for item in spec)

    # -- introspection ---------------------------------------------------------
    def __iter__(self) -> Iterator[Defense]:
        return iter(self.defenses)

    def __len__(self) -> int:
        return len(self.defenses)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(defense.name for defense in self.defenses)

    def has(self, name: str) -> bool:
        return name in self.names

    def extended(self, defenses: Iterable[Defense]) -> DefenseStack:
        """A new stack with ``defenses`` appended (rejection counters fresh)."""
        return DefenseStack([*self.defenses, *defenses])

    # -- lifecycle dispatch -----------------------------------------------------
    def configure_testbed(self, config: TestbedConfig) -> None:
        for defense in self.defenses:
            defense.configure_testbed(config)

    def attach_testbed(self, testbed: Testbed) -> None:
        for defense in self.defenses:
            defense.attach_testbed(testbed)

    # -- resolver dispatch -------------------------------------------------------
    def on_outgoing_query(self, ctx: QueryContext) -> None:
        for defense in self.defenses:
            defense.on_outgoing_query(ctx)

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[tuple[str, str]]:
        """First rejection wins; returns ``(defense name, reason)`` or None."""
        for defense in self.defenses:
            reason = defense.on_incoming_response(ctx)
            if reason is not None:
                self.rejections[defense.name] += 1
                return defense.name, reason
        return None

    # -- client dispatch -----------------------------------------------------------
    def on_pool_accept(self, ctx: PoolAcceptContext) -> PoolAcceptContext:
        for defense in self.defenses:
            defense.on_pool_accept(ctx)
            if ctx.rejected_by is not None:
                self.rejections[ctx.rejected_by] += 1
                break
        return ctx

    def on_ntp_sample(self, sample: TimeSample) -> bool:
        """Whether the sample survives every defense."""
        for defense in self.defenses:
            reason = defense.on_ntp_sample(sample)
            if reason is not None:
                self.rejections[defense.name] += 1
                return False
        return True
