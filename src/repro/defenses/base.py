"""The :class:`Defense` protocol: pluggable DNS/NTP countermeasures.

The paper's argument is structured around defenses: the standard off-path
protections (random transaction id, source-port randomisation, response
matching) do *not* stop the fragmentation and BGP-hijack vectors, and the §V
mitigations (per-response address cap, high-TTL discard) still leave a
residual 24-hour-hijack attack.  To make that argument *sweepable* — any
attack against any combination of countermeasures — every defense is a small
object with lifecycle hooks, and a :class:`~repro.defenses.stack.DefenseStack`
composes them deterministically.

A defense may participate at any subset of five points:

* ``configure_testbed`` — before the world is built, adjust the declarative
  :class:`~repro.experiments.testbed.TestbedConfig` (e.g. a PMTU floor stops
  the nameserver from fragmenting; response signing provisions a zone key);
* ``attach_testbed`` — after the world is built, capture whatever the defense
  needs at runtime (e.g. the zone's published response profile);
* ``on_outgoing_query`` — harden a resolver's upstream query (randomise the
  transaction id / source port, add 0x20 case encoding, attach a cookie);
* ``on_incoming_response`` — validate a response before it is accepted into
  the cache; returning a reason string rejects it;
* ``on_pool_accept`` — filter what a Chronos pool-generation response
  contributes to the pool (the §V mitigations live here);
* ``on_ntp_sample`` — veto individual NTP samples before selection.

Hooks default to no-ops so a defense implements only the layers it touches.
Every hook must draw randomness exclusively from the context's simulator RNG
(or be deterministic), keeping experiment sweeps reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # only for annotations; keeps this module import-cycle-free
    import random

    from ..dns.message import DNSMessage
    from ..dns.records import ResourceRecord
    from ..experiments.testbed import Testbed, TestbedConfig
    from ..netsim.packets import UDPDatagram
    from ..ntp.query import TimeSample


@dataclass
class QueryContext:
    """Mutable state of one upstream query as it leaves the resolver.

    Defenses mutate ``query`` (via :func:`dataclasses.replace`),
    ``transaction_id`` and ``source_port``; per-query verification state goes
    into ``state`` and is available again when the response arrives.
    """

    query: DNSMessage
    transaction_id: int
    source_port: int
    nameserver_address: str
    rng: random.Random
    state: dict[str, Any] = field(default_factory=dict)


@dataclass
class ResponseContext:
    """One candidate response, paired with the query context it answers.

    ``answers`` starts as the question-type records of the response; defenses
    may trim or TTL-cap it, and whatever remains is cached.  ``poisoned``
    marks a datagram reassembled from spoofed fragments.
    """

    response: DNSMessage
    datagram: UDPDatagram
    query: QueryContext
    poisoned: bool
    answers: list[ResourceRecord]


#: Reason string used by high-TTL discards; the pool generator translates it
#: into the ``rejected_high_ttl`` flag of its per-query record.
HIGH_TTL_REASON = "high-ttl"


@dataclass
class PoolAcceptContext:
    """One pool-generation response on its way into the Chronos pool."""

    addresses: list[str]
    min_ttl: Optional[int]
    response: Optional[DNSMessage] = None
    rejected_by: Optional[str] = None
    rejected_reason: Optional[str] = None

    def discard(self, defense_name: str, reason: str) -> None:
        """Reject the whole response; no address reaches the pool."""
        self.addresses = []
        self.rejected_by = defense_name
        self.rejected_reason = reason


class Defense:
    """Base class with no-op hooks; subclasses override what they need.

    ``name`` is the registry key (see :mod:`repro.defenses.registry`) and the
    label used in rejection accounting.
    """

    name = "defense"

    # -- testbed lifecycle ---------------------------------------------------
    def configure_testbed(self, config: TestbedConfig) -> None:
        """Adjust the declarative world description before it is built."""

    def attach_testbed(self, testbed: Testbed) -> None:
        """Capture runtime state from the built world."""

    # -- resolver-side hooks ---------------------------------------------------
    def on_outgoing_query(self, ctx: QueryContext) -> None:
        """Harden an upstream query before it is sent."""

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        """Validate a response; return a reason string to reject it."""

    # -- client-side hooks -------------------------------------------------------
    def on_pool_accept(self, ctx: PoolAcceptContext) -> None:
        """Filter the addresses one response contributes to the pool."""

    def on_ntp_sample(self, sample: TimeSample) -> Optional[str]:
        """Veto an NTP sample; return a reason string to drop it."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
