"""Protocol-hardening defenses beyond the classic RFC 5452 set.

Each models a deployed or proposed DNS hardening and blocks exactly the
vectors it blocks in the paper's analysis:

* **DNS-0x20** and **DNS cookies** add entropy a *blind* off-path spoofer
  cannot guess — but both are echoed by a BGP hijacker (who receives the
  query) and both live in the genuine first fragment of a fragmented
  response, so neither stops the paper's two vectors;
* a **PMTU floor** refuses to fragment responses at all, killing the
  defragmentation vector at the source;
* **response signing** (the DNSSEC model) protects the answer *content*,
  which is the only thing that defeats both vectors — matching the paper's
  own conclusion that DNSSEC, not more entropy, is the real fix.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import TYPE_CHECKING, Optional

from ..dns.records import RecordType, rrset_signature
from ..dns.wire import letter_count
from .base import Defense, QueryContext, ResponseContext
from .registry import register_defense

if TYPE_CHECKING:
    from ..experiments.testbed import Testbed, TestbedConfig


@register_defense
class DNS0x20Encoding(Defense):
    """Randomise the question name's letter cases; verify the echo (DNS-0x20).

    ``pool.ntp.org`` has ten letters, so the defense adds ~10 bits of entropy
    against blind spoofing.  Both the hijack and the fragmentation vector
    are unaffected: the hijacker echoes the question verbatim, and the case
    pattern sits in the question section — inside the genuine first fragment.
    """

    name = "dns_0x20"

    def on_outgoing_query(self, ctx: QueryContext) -> None:
        letters = letter_count(ctx.query.question.name)
        if letters == 0:
            return
        nonce = ctx.rng.getrandbits(letters)
        ctx.state[self.name] = nonce
        ctx.query = replace(ctx.query, case_nonce=nonce or None)

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        expected = ctx.query.state.get(self.name)
        if expected is None:
            return None
        if (ctx.response.case_nonce or 0) != expected:
            return "0x20 case pattern of the question was not echoed"
        return None


@register_defense
class DNSCookies(Defense):
    """Attach a per-(resolver, server) cookie to queries; require the echo.

    Models RFC 7873: the cookie is derived from a resolver-local secret and
    the server address, so a blind spoofer cannot produce it.  A hijacker
    receives the query — cookie included — and echoes it; the fragmentation
    attacker never touches it, because the simulation carries the cookie
    alongside the transaction id in the first (genuine) fragment.
    """

    name = "dns_cookies"

    def __init__(self) -> None:
        self._salt = "cookie-secret|unattached"

    def attach_testbed(self, testbed: Testbed) -> None:
        # Deterministic per (resolver, seed); secret by convention — no
        # attacker code ever reads it.
        self._salt = f"cookie-secret|{testbed.resolver.address}|{testbed.config.seed}"

    def _cookie_for(self, server_address: str) -> int:
        digest = hashlib.sha256(f"{self._salt}|{server_address}".encode("ascii")).digest()
        return int.from_bytes(digest[:8], "big")

    def on_outgoing_query(self, ctx: QueryContext) -> None:
        cookie = self._cookie_for(ctx.nameserver_address)
        ctx.state[self.name] = cookie
        ctx.query = replace(ctx.query, cookie=cookie)

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        expected = ctx.query.state.get(self.name)
        if expected is None:
            return None
        if ctx.response.cookie != expected:
            return "response does not echo the query's DNS cookie"
        return None


@register_defense
class PMTUFloor(Defense):
    """Refuse to fragment DNS responses below a floor (anti-fragmentation).

    The companion measurement's core finding is that 16 of 30 pool.ntp.org
    nameservers fragment down to 548 bytes; a nameserver that enforces a
    1500-byte floor never emits the fragmented response the splice needs.
    """

    name = "pmtu_floor"

    def __init__(self, floor: int = 1500) -> None:
        self.floor = floor

    def configure_testbed(self, config: TestbedConfig) -> None:
        config.nameserver_min_mtu = max(config.nameserver_min_mtu, self.floor)


@register_defense
class ResponseSigning(Defense):
    """Zone signing plus resolver-side validation (the DNSSEC model).

    ``configure_testbed`` provisions a zone key (the nameserver then appends
    a signature record over each answer RRset); ``on_incoming_response``
    recomputes and checks it.  A hijacker cannot sign, and a fragment splice
    changes the records the genuine signature covered — so this is the one
    hardening that stops both vectors, at the price the paper notes: it only
    helps where both zone and resolver deploy it.
    """

    name = "response_signing"

    def __init__(self) -> None:
        self._zone_key: Optional[str] = None

    def configure_testbed(self, config: TestbedConfig) -> None:
        if config.zone_key is None:
            config.zone_key = f"zsk|{config.zone}|{config.seed}"
        config.nameserver_dnssec = True
        self._zone_key = config.zone_key

    def attach_testbed(self, testbed: Testbed) -> None:
        self._zone_key = testbed.config.zone_key

    def on_incoming_response(self, ctx: ResponseContext) -> Optional[str]:
        if self._zone_key is None:
            return None
        qname = ctx.response.question.name
        a_records = [record for record in ctx.response.answers
                     if record.rtype == RecordType.A]
        if not a_records:
            return None
        expected = rrset_signature(self._zone_key, qname, a_records)
        signatures = [record.rdata for record in ctx.response.answers
                      if record.rtype == RecordType.TXT and record.name == qname]
        if expected not in signatures:
            return "answer RRset signature missing or invalid"
        return None
