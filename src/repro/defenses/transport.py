"""The encrypted-transport defense: DoT/DoH as a stack member.

The paper's countermeasure analysis ends where entropy runs out: every
hardening that adds unguessable bits to a *datagram* (0x20, cookies, random
ports) is either echoed by a hijacker or bypassed by the fragment splice.
Encrypted transports change the game instead of the odds — the resolver
speaks to its nameservers over an authenticated, sequence-checked stream, so
there is no datagram to spoof and no handshake a hijacker can complete
without the zone's certificate key.  The price is the changed trust model
the paper flags: the defense only exists where both ends deploy it, and the
*policy* for partial deployment decides everything:

* ``encrypted_transport`` (**strict** DoT) — plaintext is never spoken.  A
  failed encrypted connection means a failed query (SERVFAIL), never a
  downgraded one.  This closes every off-path row of the matrix, including
  the sustained 24-hour hijack: the attacker can deny resolution, but can
  no longer answer it.
* ``encrypted_transport_opportunistic`` — prefer DoT, fall back to
  plaintext UDP when the encrypted transport fails.  Availability is
  preserved, but an attacker who can *make* the transport fail (SYN-flood
  the nameserver's listeners, blackhole 853 behind a hijack) re-opens the
  entire plaintext attack surface — measured by the ``downgrade`` attack
  row (:mod:`repro.attacks.downgrade`).
* ``encrypted_transport_doh`` — strict DNS-over-HTTPS; same guarantees as
  strict DoT behind HTTP framing on 443.

``configure_testbed`` provisions the zone's certificate key and the
nameserver's stream listeners (plain TCP is always included so the TC-bit
fallback has a target); ``attach_testbed`` pins the resolver to the zone
identity and routes its upstream queries through a
:class:`~repro.dns.transport.ResolverUpstreamTransport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..dns.transport import EncryptedTransportPolicy, ResolverUpstreamTransport
from .base import Defense
from .registry import register_defense

if TYPE_CHECKING:
    from ..experiments.testbed import Testbed, TestbedConfig


@register_defense
class EncryptedTransport(Defense):
    """Strict DNS-over-TLS between the resolver and its nameservers."""

    name = "encrypted_transport"
    protocol = "dot"
    strict = True

    def __init__(self, connect_timeout: float = 1.0, holddown: float = 600.0,
                 reuse_connections: bool = False, idle_timeout: float = 30.0,
                 zero_rtt: bool = False) -> None:
        #: Seconds before an unanswered encrypted connection attempt fails.
        #: Kept well under the resolver's query timeout so an opportunistic
        #: fallback still answers the original query in time.
        self.connect_timeout = connect_timeout
        #: Opportunistic only: seconds a failed nameserver stays plaintext.
        self.holddown = holddown
        #: Keep established streams open and pipeline queries over them
        #: (RFC 7766 §6.2) instead of paying the handshake per query.
        self.reuse_connections = reuse_connections
        #: Seconds an idle pooled connection survives before closing.
        self.idle_timeout = idle_timeout
        #: Resume later connections from session tickets and send the query
        #: as 0-RTT early data in the first flight (implies pooling).
        self.zero_rtt = zero_rtt

    def configure_testbed(self, config: TestbedConfig) -> None:
        if config.transport_cert_key is None:
            config.transport_cert_key = f"tls|{config.zone}|{config.seed}"
        wanted = ("tcp", self.protocol)
        config.nameserver_transports = tuple(
            dict.fromkeys((*config.nameserver_transports, *wanted)))
        if self.zero_rtt:
            config.nameserver_session_resumption = True

    def attach_testbed(self, testbed: Testbed) -> None:
        policy = EncryptedTransportPolicy(
            protocol=self.protocol,
            strict=self.strict,
            connect_timeout=self.connect_timeout,
            holddown=self.holddown,
            reuse_connections=self.reuse_connections,
            idle_timeout=self.idle_timeout,
            zero_rtt=self.zero_rtt,
        )
        testbed.resolver.use_upstream_transport(ResolverUpstreamTransport(
            testbed.resolver,
            policy=policy,
            trust_anchor=testbed.config.transport_cert_key,
            expected_identity=testbed.config.zone,
        ))


@register_defense
class OpportunisticEncryptedTransport(EncryptedTransport):
    """Opportunistic DoT: prefer TLS, fall back to plaintext on failure."""

    name = "encrypted_transport_opportunistic"
    strict = False


@register_defense
class EncryptedTransportDoH(EncryptedTransport):
    """Strict DNS-over-HTTPS between the resolver and its nameservers."""

    name = "encrypted_transport_doh"
    protocol = "doh"
