"""Defense registry: every countermeasure is buildable by name.

Experiment configs carry defenses as plain name tuples (picklable, hashable,
JSON-encodable), and the testbed builder materialises fresh instances per
run via :func:`build_defense` — defenses hold per-run state (verification
nonces, rejection counts), so instances are never shared across runs.  The
built-in modules are imported lazily on first lookup, mirroring the scenario
registry, so this module stays import-cycle-free.
"""

from __future__ import annotations

import importlib
import sys
from collections.abc import Callable

from .base import Defense

DefenseFactory = Callable[[], Defense]

_REGISTRY: dict[str, DefenseFactory] = {}

#: Modules imported on first lookup; importing them registers the builtins.
_BUILTIN_MODULES = (
    "repro.defenses.classic",
    "repro.defenses.hardening",
    "repro.defenses.pool",
    "repro.defenses.resilience",
    "repro.defenses.rrl",
    "repro.defenses.transport",
)
_builtins_loaded = False


def register_defense(factory: DefenseFactory) -> DefenseFactory:
    """Register a defense class (or zero-argument factory) under its name.

    Unlike scenarios, defenses are registered as *factories*: every lookup
    constructs a fresh instance with that defense's default parameters.
    Parameterised variants are passed to stacks as instances instead.
    """
    name = getattr(factory, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"defense factory {factory!r} needs a class-level name")
    if name in _REGISTRY:
        raise ValueError(f"defense {name!r} is already registered")
    _REGISTRY[name] = factory
    return factory


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    snapshot = dict(_REGISTRY)
    already_imported = {module for module in _BUILTIN_MODULES if module in sys.modules}
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        # Unwind partial registration so a retried import does not trip the
        # duplicate-name check (same contract as the scenario registry).
        # Only modules *this* attempt imported are evicted: modules already
        # in sys.modules (e.g. classic, imported eagerly by the resolver)
        # kept their snapshot entries and must not re-execute on retry.
        _REGISTRY.clear()
        _REGISTRY.update(snapshot)
        for module in _BUILTIN_MODULES:
            if module not in already_imported:
                sys.modules.pop(module, None)
        raise
    _builtins_loaded = True


def build_defense(name: str) -> Defense:
    """Construct a fresh instance of the named defense."""
    _load_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown defense {name!r}; available: "
                       f"{', '.join(sorted(_REGISTRY))}") from None
    return factory()


def available_defenses() -> dict[str, str]:
    """Mapping of every registered defense name to its docstring headline."""
    _load_builtins()
    return {name: (factory.__doc__ or "").strip().splitlines()[0]
            for name, factory in sorted(_REGISTRY.items())}
