"""Resilience "defenses": availability hardening under degraded networks.

These columns answer a different question than the RFC 5452 set.  Classic
defenses reduce an attacker's per-response success odds; the resilience
knobs keep the *resolver answering at all* when the network misbehaves —
which is exactly the regime the fault-injection matrix explores
(:mod:`repro.faults`).  Both are deliberately double-edged:

* **serve_stale** (RFC 8767) answers from expired cache entries while the
  authoritative path is unreachable.  Under a nameserver outage it preserves
  availability — but if the expired entry is *poisoned*, staleness prolongs
  the attacker's tenancy beyond the record TTL the attacker paid for;
* **upstream_retries** retransmits timed-out upstream queries with
  exponential backoff.  Under loss it recovers queries that would have
  SERVFAILed — but every retransmission is one more transaction a blind
  spoofer can race, so the defense *increases* the classic §III-A attack
  surface in proportion to the loss rate.

Surfacing them as matrix columns lets the sweep quantify both edges.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional

from .base import Defense
from .registry import register_defense

if TYPE_CHECKING:
    from ..experiments.testbed import TestbedConfig


@register_defense
class ServeStale(Defense):
    """RFC 8767 serve-stale: answer from expired entries on upstream failure.

    ``window`` is how long past expiry an entry remains usable.  The resolver
    serves the stale answer with a short TTL and refreshes in the background,
    so availability survives a nameserver outage window — at the price that
    a poisoned entry also outlives its TTL.
    """

    name = "serve_stale"

    def __init__(self, window: float = 3600.0) -> None:
        self.window = window

    def configure_testbed(self, config: TestbedConfig) -> None:
        config.resolver_policy = replace(
            config.resolver_policy,
            serve_stale=True,
            serve_stale_window=self.window,
        )


@register_defense
class UpstreamRetries(Defense):
    """Retry timed-out upstream queries with exponential backoff + jitter.

    ``budget`` caps total retransmissions per resolver lifetime (``None`` =
    unbounded), bounding the extra spoofing surface the retries open.
    """

    name = "upstream_retries"

    def __init__(self, retries: int = 2, backoff: float = 0.25,
                 factor: float = 2.0, jitter: float = 0.05,
                 budget: Optional[int] = None) -> None:
        self.retries = retries
        self.backoff = backoff
        self.factor = factor
        self.jitter = jitter
        self.budget = budget

    def configure_testbed(self, config: TestbedConfig) -> None:
        config.resolver_policy = replace(
            config.resolver_policy,
            query_retries=self.retries,
            retry_backoff=self.backoff,
            retry_backoff_factor=self.factor,
            retry_jitter=self.jitter,
            retry_budget=self.budget,
        )
