"""NTP servers: honest time sources and attacker-controlled ones.

An honest server replies with its own (approximately correct) clock.  A
malicious server replies with a constant or attacker-scripted shift — the
behaviour the Chronos threat model calls a "corrupted server" and the
behaviour every address the attacker injects into the Chronos pool exhibits
once the time-shifting phase of the attack starts.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional

from ..netsim.network import Host, Network
from ..netsim.packets import UDPDatagram
from .clock import SystemClock
from .packet import NTP_PORT, LeapIndicator, NTPMode, NTPPacket, PacketFormatError

#: Scripted shift: maps true time to the shift (seconds) the server applies.
ShiftSchedule = Callable[[float], float]


class NTPServer(Host):
    """An NTP server answering mode-3 requests from its local clock."""

    def __init__(self, network: Network, address: str, clock: Optional[SystemClock] = None,
                 stratum: int = 2, name: Optional[str] = None,
                 clock_error: float = 0.0, response_loss: float = 0.0) -> None:
        super().__init__(network, address, name=name or f"ntp-{address}")
        self.clock = clock or SystemClock(network.simulator, offset=clock_error)
        self.stratum = stratum
        self.response_loss = response_loss
        self.requests_received = 0
        self.responses_sent = 0

    # -- behaviour hooks ------------------------------------------------------
    def served_time(self) -> float:
        """The time of day this server reports right now."""
        return self.clock.now()

    def leap_indicator(self) -> LeapIndicator:
        return LeapIndicator.NO_WARNING

    # -- protocol ---------------------------------------------------------------
    def handle_datagram(self, datagram: UDPDatagram) -> None:
        if datagram.dst_port != NTP_PORT:
            return
        try:
            request = NTPPacket.decode(datagram.payload)
        except PacketFormatError:
            return
        if request.mode != NTPMode.CLIENT:
            return
        self.requests_received += 1
        if self.response_loss and self.network.simulator.rng.random() < self.response_loss:
            return
        receive_time = self.served_time()
        transmit_time = self.served_time()
        reply = request.server_reply(
            receive_time=receive_time,
            transmit_time=transmit_time,
            stratum=self.stratum,
            reference_time=receive_time - 1.0,
            leap=self.leap_indicator(),
        )
        self.responses_sent += 1
        self.send_datagram(
            UDPDatagram(
                src_ip=self.address,
                dst_ip=datagram.src_ip,
                src_port=NTP_PORT,
                dst_port=datagram.src_port,
                payload=reply.encode(),
            )
        )


class MaliciousNTPServer(NTPServer):
    """An attacker-controlled NTP server serving shifted time.

    ``time_shift`` is the constant shift in seconds; alternatively a
    ``shift_schedule`` callable lets experiments model gradually increasing
    shifts (the strategy used to stay inside per-update acceptance windows).
    """

    def __init__(self, network: Network, address: str, time_shift: float = 0.0,
                 shift_schedule: Optional[ShiftSchedule] = None,
                 stratum: int = 2, name: Optional[str] = None) -> None:
        super().__init__(network, address, stratum=stratum,
                         name=name or f"evil-ntp-{address}")
        self.time_shift = time_shift
        self.shift_schedule = shift_schedule

    def current_shift(self) -> float:
        if self.shift_schedule is not None:
            return self.shift_schedule(self.clock.true_time())
        return self.time_shift

    def served_time(self) -> float:
        return self.clock.now() + self.current_shift()
