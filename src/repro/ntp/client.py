"""The traditional NTP client — the paper's baseline victim.

It mirrors the behaviour the paper attributes to "plain NTP" clients:

* one DNS resolution of the pool hostname at start-up, yielding the (up to
  four) upstream servers the client will use from then on;
* periodic polling of those servers;
* the classic select/cluster/combine pipeline to discipline the clock.

The single start-up DNS query is exactly why the paper calls attacking a
traditional client via DNS *harder* than attacking Chronos: the attacker gets
one shot at the poisoning race instead of 24.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..defenses.stack import DefenseStack
from ..dns.resolver import DNSStub
from ..netsim.network import Host, Network
from ..netsim.packets import UDPDatagram
from .clock import ClockErrorTrace, SystemClock
from .query import NTPQuerier, TimeSample
from .selection import SelectionResult, ntpd_select

DEFAULT_POLL_INTERVAL = 64.0
DEFAULT_MAX_SERVERS = 4


@dataclass
class PollRecord:
    """Diagnostics for one completed poll round."""

    started_at: float
    samples: list[TimeSample] = field(default_factory=list)
    result: Optional[SelectionResult] = None
    applied_offset: Optional[float] = None


class TraditionalNTPClient(Host):
    """An ntpd-style client using up to four servers from one DNS lookup."""

    def __init__(self, network: Network, address: str, resolver_address: str,
                 hostname: str = "pool.ntp.org",
                 max_servers: int = DEFAULT_MAX_SERVERS,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 clock: Optional[SystemClock] = None,
                 max_adjustment: Optional[float] = None,
                 name: Optional[str] = None,
                 defenses: Optional[DefenseStack] = None) -> None:
        super().__init__(network, address, name=name or f"ntp-client-{address}")
        self.clock = clock or SystemClock(network.simulator)
        self.dns = DNSStub(self, resolver_address)
        self.querier = NTPQuerier(self, self.clock)
        #: NTP-sample vetoes from the experiment's defense stack.
        self.defenses = defenses
        self.hostname = hostname
        self.max_servers = max_servers
        self.poll_interval = poll_interval
        #: Optional cap on the per-poll adjustment ("panic threshold" in
        #: ntpd terms); None applies the computed offset unconditionally.
        self.max_adjustment = max_adjustment
        self.servers: list[str] = []
        self.poll_history: list[PollRecord] = []
        self.error_trace = ClockErrorTrace()
        self.started = False
        self._current_poll: Optional[PollRecord] = None
        self._outstanding = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Resolve the pool hostname, then begin periodic polling."""
        if self.started:
            return
        self.started = True
        self.dns.lookup(self.hostname, self._on_resolved)

    def _on_resolved(self, addresses: list[str]) -> None:
        self.servers = addresses[: self.max_servers]
        if not self.servers:
            # Resolution failed; retry after a backoff, as real clients do.
            self.network.simulator.schedule(30.0, lambda: self.dns.lookup(self.hostname, self._on_resolved))
            return
        self._poll()

    # -- polling -----------------------------------------------------------------
    def _poll(self) -> None:
        if not self.servers:
            return
        record = PollRecord(started_at=self.network.simulator.now)
        self._current_poll = record
        self._outstanding = len(self.servers)
        for server in self.servers:
            self.querier.query(server, self._on_sample)

    def _on_sample(self, sample: Optional[TimeSample]) -> None:
        record = self._current_poll
        if record is None:
            return
        if (sample is not None and self.defenses is not None
                and not self.defenses.on_ntp_sample(sample)):
            sample = None  # vetoed by a defense; treat like a lost exchange
        if sample is not None:
            record.samples.append(sample)
        self._outstanding -= 1
        if self._outstanding == 0:
            self._finish_poll(record)

    def _finish_poll(self, record: PollRecord) -> None:
        self._current_poll = None
        if record.samples:
            result = ntpd_select(record.samples)
            record.result = result
            if result.succeeded:
                offset = result.offset
                if self.max_adjustment is not None and abs(offset) > self.max_adjustment:
                    offset = 0.0
                record.applied_offset = offset
                if offset:
                    self.clock.adjust(offset, source="ntpd")
        self.poll_history.append(record)
        self.error_trace.record(self.clock)
        self.network.simulator.schedule(self.poll_interval, self._poll)

    # -- datagram dispatch ---------------------------------------------------------
    def handle_datagram(self, datagram: UDPDatagram) -> None:
        if self.dns.handle_datagram(datagram):
            return
        self.querier.handle_datagram(datagram)
