"""Shared client-side machinery for querying NTP servers.

Both the traditional NTP client (the paper's baseline) and the Chronos client
use the same request/response exchange; what differs is *which* servers they
ask and how the resulting samples are combined.  :class:`NTPQuerier` owns the
exchange: it sends a mode-3 request, matches the mode-4 reply by the echoed
origin timestamp (the standard anti-spoofing nonce), and produces a
:class:`TimeSample` with the four-timestamp offset/delay computation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Optional

from ..netsim.network import Host
from ..netsim.packets import UDPDatagram
from .clock import SystemClock
from .packet import NTP_PORT, NTPMode, NTPPacket, PacketFormatError
from .timestamps import ExchangeTimestamps


@dataclass(frozen=True)
class TimeSample:
    """One completed exchange with one server."""

    server: str
    offset: float
    delay: float
    stratum: int
    root_dispersion: float
    completed_at: float

    @property
    def plausible(self) -> bool:
        """Bounded, non-negative delay — the minimal sanity filter."""
        return 0.0 <= self.delay <= 16.0


#: Callback receiving the sample, or ``None`` when the query timed out.
SampleCallback = Callable[[Optional[TimeSample]], None]


@dataclass
class _PendingQuery:
    server: str
    origin_time: float
    callback: SampleCallback
    timeout_handle: object
    #: Which retransmission this attempt is (0 = the original request).
    attempt: int = 0


class NTPQuerier:
    """Issues NTP client requests from a host and collects samples.

    ``retries`` > 0 re-queries a timed-out server with exponential backoff
    (base ``retry_backoff``, multiplied by ``retry_backoff_factor`` per
    attempt, plus uniform jitter drawn from the simulator RNG).  Each retry
    is a fresh exchange — new origin timestamp, new source port — and the
    caller's callback fires exactly once, on the final outcome.
    """

    def __init__(self, host: Host, clock: SystemClock, timeout: float = 2.0,
                 retries: int = 0, retry_backoff: float = 0.5,
                 retry_backoff_factor: float = 2.0,
                 retry_jitter: float = 0.0) -> None:
        self.host = host
        self.clock = clock
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_factor = retry_backoff_factor
        self.retry_jitter = retry_jitter
        self._pending: dict[tuple[str, int], _PendingQuery] = {}
        self.queries_sent = 0
        self.responses_received = 0
        self.timeouts = 0
        self.retries_sent = 0
        self.invalid_responses = 0

    def query(self, server_address: str, callback: SampleCallback) -> None:
        """Send one request to ``server_address``; callback fires exactly once."""
        self._send_attempt(server_address, callback, attempt=0)

    def _send_attempt(self, server_address: str, callback: SampleCallback,
                      attempt: int) -> None:
        origin_time = self.clock.now()
        request = NTPPacket.client_request(transmit_time=origin_time)
        port = self.host.network.simulator.rng.randrange(20000, 60000)
        key = (server_address, port)
        # Re-draw on a (server, port) collision with an in-flight query:
        # overwriting the pending entry would orphan its callback (the reply
        # matches whichever entry holds the key), wedging clients that query
        # the same server many times concurrently — e.g. panic mode over an
        # address-counting (dedupe=False) pool.  Collisions are impossible
        # when concurrent queries target distinct servers, so this loop
        # consumes no extra draws there.
        while key in self._pending:
            port = self.host.network.simulator.rng.randrange(20000, 60000)
            key = (server_address, port)
        handle = self.host.network.simulator.schedule(
            self.timeout, lambda k=key: self._on_timeout(k))
        self._pending[key] = _PendingQuery(server_address, origin_time, callback,
                                           handle, attempt=attempt)
        self.queries_sent += 1
        obs = self.host.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("ntp.queries_sent").inc()
        self.host.send_datagram(
            UDPDatagram(
                src_ip=self.host.address,
                dst_ip=server_address,
                src_port=port,
                dst_port=NTP_PORT,
                payload=request.encode(),
            )
        )

    def _on_timeout(self, key: tuple[str, int]) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        self.timeouts += 1
        obs = self.host.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("ntp.query_timeouts").inc()
            obs.trace.instant("ntp.timeout", category="ntp",
                              client=self.host.address, server=pending.server)
        if pending.attempt < self.retries:
            rng = self.host.network.simulator.rng
            delay = self.retry_backoff * self.retry_backoff_factor ** pending.attempt
            if self.retry_jitter > 0.0:
                delay += rng.uniform(0.0, self.retry_jitter)
            self.retries_sent += 1
            if obs.enabled:
                obs.metrics.counter("ntp.query_retries").inc()
                obs.trace.instant("ntp.query.retry", category="ntp",
                                  client=self.host.address, server=pending.server,
                                  attempt=pending.attempt + 1)
            self.host.network.simulator.schedule(
                delay,
                lambda p=pending: self._send_attempt(p.server, p.callback,
                                                     attempt=p.attempt + 1))
            return
        pending.callback(None)

    def handle_datagram(self, datagram: UDPDatagram) -> bool:
        """Offer an incoming datagram; returns True when it was an NTP reply."""
        if datagram.src_port != NTP_PORT:
            return False
        try:
            packet = NTPPacket.decode(datagram.payload)
        except PacketFormatError:
            return False
        if packet.mode != NTPMode.SERVER:
            return False
        key = (datagram.src_ip, datagram.dst_port)
        pending = self._pending.get(key)
        if pending is None:
            return True
        if not packet.valid_server_reply_to(pending.origin_time):
            self.invalid_responses += 1
            obs = self.host.network.simulator.obs
            if obs.enabled:
                obs.metrics.counter("ntp.invalid_responses").inc()
                obs.trace.instant("ntp.invalid_response", category="ntp",
                                  client=self.host.address,
                                  server=datagram.src_ip)
            return True
        del self._pending[key]
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        destination_time = self.clock.now()
        exchange = ExchangeTimestamps(
            origin=packet.origin_time,
            receive=packet.receive_time,
            transmit=packet.transmit_time,
            destination=destination_time,
        )
        sample = TimeSample(
            server=datagram.src_ip,
            offset=exchange.offset,
            delay=exchange.delay,
            stratum=packet.stratum,
            root_dispersion=packet.root_dispersion,
            completed_at=self.host.network.simulator.now,
        )
        self.responses_received += 1
        obs = self.host.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("ntp.samples_collected").inc()
            obs.metrics.histogram("ntp.sample_offset_abs").observe(abs(sample.offset))
        pending.callback(sample)
        return True
