"""NTP substrate: packet format, timestamps, clocks, servers, traditional client."""

from .client import DEFAULT_MAX_SERVERS, DEFAULT_POLL_INTERVAL, PollRecord, TraditionalNTPClient
from .clock import DEFAULT_EPOCH, ClockAdjustment, ClockErrorTrace, SystemClock
from .packet import (
    NTP_PACKET_SIZE,
    NTP_PORT,
    NTP_VERSION,
    LeapIndicator,
    NTPMode,
    NTPPacket,
    PacketFormatError,
)
from .query import NTPQuerier, TimeSample
from .selection import (
    SelectionResult,
    cluster_survivors,
    combine_offset,
    marzullo_intersection,
    ntpd_select,
    sample_interval,
    select_truechimers,
)
from .server import MaliciousNTPServer, NTPServer
from .timestamps import (
    FRACTION_SCALE,
    NTP_UNIX_EPOCH_DELTA,
    ExchangeTimestamps,
    TimestampError,
    from_short_format,
    ntp_to_unix,
    short_format,
    unix_to_ntp,
)

__all__ = [
    "DEFAULT_MAX_SERVERS",
    "DEFAULT_POLL_INTERVAL",
    "PollRecord",
    "TraditionalNTPClient",
    "DEFAULT_EPOCH",
    "ClockAdjustment",
    "ClockErrorTrace",
    "SystemClock",
    "NTP_PACKET_SIZE",
    "NTP_PORT",
    "NTP_VERSION",
    "LeapIndicator",
    "NTPMode",
    "NTPPacket",
    "PacketFormatError",
    "NTPQuerier",
    "TimeSample",
    "SelectionResult",
    "combine_offset",
    "cluster_survivors",
    "marzullo_intersection",
    "ntpd_select",
    "sample_interval",
    "select_truechimers",
    "MaliciousNTPServer",
    "NTPServer",
    "FRACTION_SCALE",
    "NTP_UNIX_EPOCH_DELTA",
    "ExchangeTimestamps",
    "TimestampError",
    "from_short_format",
    "ntp_to_unix",
    "short_format",
    "unix_to_ntp",
]
