"""NTP timestamp arithmetic.

NTP represents time as a 64-bit fixed-point number: 32 bits of seconds since
1 January 1900 and 32 bits of fraction.  The simulation keeps time as float
seconds on a Unix-like epoch; these helpers convert between the two and
implement the four-timestamp offset/delay computation every NTP client
(traditional or Chronos) performs on a server exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds between the NTP epoch (1900-01-01) and the Unix epoch (1970-01-01).
NTP_UNIX_EPOCH_DELTA = 2208988800
#: 2**32, the fixed-point scale of the fractional part.
FRACTION_SCALE = 1 << 32


class TimestampError(ValueError):
    """Raised for timestamps outside the representable NTP range."""


def unix_to_ntp(unix_seconds: float) -> int:
    """Convert Unix-epoch float seconds to a 64-bit NTP timestamp.

    The integer and fractional parts are split *before* adding the 1900/1970
    epoch delta so the conversion keeps the full float precision of the input
    (adding ~2.2e9 in floating point first would throw away sub-microsecond
    precision and break the origin-timestamp echo check clients rely on).
    """
    if unix_seconds + NTP_UNIX_EPOCH_DELTA < 0:
        raise TimestampError(f"time before NTP epoch: {unix_seconds}")
    whole = int(unix_seconds // 1)
    fractional = unix_seconds - whole
    seconds = whole + NTP_UNIX_EPOCH_DELTA
    fraction = int(round(fractional * FRACTION_SCALE))
    if fraction >= FRACTION_SCALE:
        seconds += 1
        fraction = 0
    if seconds >= 1 << 32:
        raise TimestampError(f"time beyond NTP era 0: {unix_seconds}")
    if seconds < 0:
        raise TimestampError(f"time before NTP epoch: {unix_seconds}")
    return (seconds << 32) | fraction


def ntp_to_unix(ntp_timestamp: int) -> float:
    """Convert a 64-bit NTP timestamp back to Unix-epoch float seconds."""
    if not 0 <= ntp_timestamp < 1 << 64:
        raise TimestampError(f"timestamp out of range: {ntp_timestamp}")
    seconds = ntp_timestamp >> 32
    fraction = ntp_timestamp & 0xFFFFFFFF
    return seconds - NTP_UNIX_EPOCH_DELTA + fraction / FRACTION_SCALE


def short_format(seconds: float) -> int:
    """Encode a small interval (root delay/dispersion) in NTP short format."""
    if seconds < 0:
        raise TimestampError("negative interval")
    value = int(round(seconds * (1 << 16)))
    return min(value, 0xFFFFFFFF)


def from_short_format(value: int) -> float:
    """Decode NTP short format back to float seconds."""
    return value / (1 << 16)


@dataclass(frozen=True)
class ExchangeTimestamps:
    """The four timestamps of one client/server exchange.

    ``origin``    (t1) — client clock when the request left;
    ``receive``   (t2) — server clock when the request arrived;
    ``transmit``  (t3) — server clock when the response left;
    ``destination`` (t4) — client clock when the response arrived.
    """

    origin: float
    receive: float
    transmit: float
    destination: float

    @property
    def offset(self) -> float:
        """Estimated offset of the server clock relative to the client clock."""
        return ((self.receive - self.origin) + (self.transmit - self.destination)) / 2.0

    @property
    def delay(self) -> float:
        """Round-trip network delay of the exchange."""
        return (self.destination - self.origin) - (self.transmit - self.receive)

    def is_plausible(self, max_delay: float = 16.0) -> bool:
        """Basic sanity: non-negative, bounded round-trip delay."""
        return 0 <= self.delay <= max_delay
