"""The 48-byte NTPv4 packet format (client/server modes).

Encoded and decoded byte-for-byte so the simulated exchanges carry the same
information as real NTP traffic; attacks that rewrite server responses
operate on these structures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from .timestamps import from_short_format, ntp_to_unix, short_format, unix_to_ntp

NTP_PACKET_SIZE = 48
NTP_PORT = 123
NTP_VERSION = 4


class NTPMode(enum.IntEnum):
    """NTP association modes (subset used by client/server operation)."""

    SYMMETRIC_ACTIVE = 1
    SYMMETRIC_PASSIVE = 2
    CLIENT = 3
    SERVER = 4
    BROADCAST = 5


class LeapIndicator(enum.IntEnum):
    NO_WARNING = 0
    LAST_MINUTE_61 = 1
    LAST_MINUTE_59 = 2
    UNSYNCHRONISED = 3


class PacketFormatError(ValueError):
    """Raised when decoding malformed NTP packets."""


@dataclass(frozen=True)
class NTPPacket:
    """A single NTP packet.  Timestamps are Unix-epoch float seconds."""

    mode: NTPMode
    stratum: int = 0
    leap: LeapIndicator = LeapIndicator.NO_WARNING
    version: int = NTP_VERSION
    poll: int = 6
    precision: int = -20
    root_delay: float = 0.0
    root_dispersion: float = 0.0
    reference_id: int = 0
    reference_time: float = 0.0
    origin_time: float = 0.0
    receive_time: float = 0.0
    transmit_time: float = 0.0

    # -- constructors -------------------------------------------------------
    @classmethod
    def client_request(cls, transmit_time: float) -> NTPPacket:
        """A mode-3 request; only the transmit timestamp is meaningful."""
        return cls(mode=NTPMode.CLIENT, transmit_time=transmit_time)

    def server_reply(self, receive_time: float, transmit_time: float, stratum: int,
                     reference_time: float, reference_id: int = 0,
                     root_delay: float = 0.0, root_dispersion: float = 0.0,
                     leap: LeapIndicator = LeapIndicator.NO_WARNING) -> NTPPacket:
        """Build the mode-4 reply to this request (origin = our transmit)."""
        return NTPPacket(
            mode=NTPMode.SERVER,
            stratum=stratum,
            leap=leap,
            poll=self.poll,
            root_delay=root_delay,
            root_dispersion=root_dispersion,
            reference_id=reference_id,
            reference_time=reference_time,
            origin_time=self.transmit_time,
            receive_time=receive_time,
            transmit_time=transmit_time,
        )

    def shifted(self, shift: float) -> NTPPacket:
        """Copy with server-side timestamps shifted by ``shift`` seconds.

        This is what a malicious (or MitM-rewritten) server reply looks like:
        the origin timestamp still echoes the client's nonce, but receive and
        transmit claim a different time of day.
        """
        return replace(
            self,
            receive_time=self.receive_time + shift,
            transmit_time=self.transmit_time + shift,
            reference_time=self.reference_time + shift,
        )

    # -- validity ------------------------------------------------------------
    @property
    def kiss_of_death(self) -> bool:
        return self.stratum == 0 and self.mode == NTPMode.SERVER

    def valid_server_reply_to(self, origin_time: float) -> bool:
        """The anti-spoofing check: the reply must echo our transmit time.

        The tolerance covers the NTP fixed-point quantisation of the echoed
        timestamp (a couple of nanoseconds at current epochs); a real client
        compares the raw 64-bit values.
        """
        return self.mode == NTPMode.SERVER and abs(self.origin_time - origin_time) < 1e-6

    # -- wire format -----------------------------------------------------------
    def encode(self) -> bytes:
        out = bytearray(NTP_PACKET_SIZE)
        out[0] = ((int(self.leap) & 0x3) << 6) | ((self.version & 0x7) << 3) | (int(self.mode) & 0x7)
        out[1] = self.stratum & 0xFF
        out[2] = self.poll & 0xFF
        out[3] = self.precision & 0xFF
        out[4:8] = short_format(self.root_delay).to_bytes(4, "big")
        out[8:12] = short_format(self.root_dispersion).to_bytes(4, "big")
        out[12:16] = (self.reference_id & 0xFFFFFFFF).to_bytes(4, "big")
        out[16:24] = unix_to_ntp(self.reference_time).to_bytes(8, "big") if self.reference_time else b"\x00" * 8
        out[24:32] = unix_to_ntp(self.origin_time).to_bytes(8, "big") if self.origin_time else b"\x00" * 8
        out[32:40] = unix_to_ntp(self.receive_time).to_bytes(8, "big") if self.receive_time else b"\x00" * 8
        out[40:48] = unix_to_ntp(self.transmit_time).to_bytes(8, "big") if self.transmit_time else b"\x00" * 8
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> NTPPacket:
        if len(data) < NTP_PACKET_SIZE:
            raise PacketFormatError(f"NTP packet too short: {len(data)} bytes")
        leap = LeapIndicator((data[0] >> 6) & 0x3)
        version = (data[0] >> 3) & 0x7
        mode = NTPMode(data[0] & 0x7)
        precision = data[3] if data[3] < 128 else data[3] - 256

        def timestamp(offset: int) -> float:
            raw = int.from_bytes(data[offset:offset + 8], "big")
            return ntp_to_unix(raw) if raw else 0.0

        return cls(
            mode=mode,
            stratum=data[1],
            leap=leap,
            version=version,
            poll=data[2],
            precision=precision,
            root_delay=from_short_format(int.from_bytes(data[4:8], "big")),
            root_dispersion=from_short_format(int.from_bytes(data[8:12], "big")),
            reference_id=int.from_bytes(data[12:16], "big"),
            reference_time=timestamp(16),
            origin_time=timestamp(24),
            receive_time=timestamp(32),
            transmit_time=timestamp(40),
        )
