"""Classic NTP clock-selection algorithms (the baseline Chronos replaces).

A traditional NTP client (ntpd-style) combines the samples of its few
configured servers with:

1. *selection* — Marzullo/intersection algorithm over the confidence
   intervals ``[offset - margin, offset + margin]`` of each server, keeping
   the "truechimers" whose intervals mutually agree;
2. *clustering* — discard statistical outliers among the truechimers;
3. *combining* — a weighted average of the survivors.

The security-relevant property, and the reason the paper treats the
traditional client as *easier* to attack at the NTP layer yet *harder* via
DNS: with only ~4 upstream servers, a single poisoned DNS response replaces
the entire upstream set, but the client only gives the attacker one DNS
query to poison.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from statistics import median
from typing import Optional

from ..obs import current as _current_obs
from .query import TimeSample


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a selection/combine run over a set of samples."""

    offset: Optional[float]
    survivors: tuple[TimeSample, ...]
    rejected: tuple[TimeSample, ...]

    @property
    def succeeded(self) -> bool:
        return self.offset is not None


def sample_interval(sample: TimeSample, margin: Optional[float] = None) -> tuple[float, float]:
    """Confidence interval for a sample's offset.

    The margin defaults to half the round-trip delay plus the server's root
    dispersion — the standard bound on how wrong a single exchange can be.
    """
    if margin is None:
        margin = sample.delay / 2.0 + sample.root_dispersion + 1e-6
    return (sample.offset - margin, sample.offset + margin)


def marzullo_intersection(intervals: Sequence[tuple[float, float]]) -> tuple[int, Optional[tuple[float, float]]]:
    """Marzullo's algorithm: the interval contained in the most input intervals.

    Returns ``(count, interval)`` where ``count`` is the number of source
    intervals overlapping the returned interval; ``interval`` is ``None``
    when the input is empty.
    """
    if not intervals:
        return 0, None
    edges: list[tuple[float, int]] = []
    for low, high in intervals:
        if high < low:
            low, high = high, low
        edges.append((low, -1))   # interval opens
        edges.append((high, +1))  # interval closes
    edges.sort()
    best_count = 0
    count = 0
    best_start = None
    for value, edge_type in edges:
        if edge_type == -1:
            count += 1
            if count > best_count:
                best_count = count
                best_start = value
        else:
            count -= 1
    if best_start is None:
        return 0, None
    # Find the end of the best interval: the first closing edge at or after
    # best_start while best_count intervals are open.
    count = 0
    start = None
    for value, edge_type in edges:
        if edge_type == -1:
            count += 1
            if count == best_count and start is None and value >= best_start - 1e-18:
                start = value
        else:
            if start is not None:
                return best_count, (start, value)
            count -= 1
    return best_count, (best_start, best_start)


def select_truechimers(samples: Sequence[TimeSample],
                       minimum_agreeing: int = 1) -> tuple[list[TimeSample], list[TimeSample]]:
    """Split samples into truechimers (agreeing majority) and falsetickers."""
    valid = [sample for sample in samples if sample.plausible]
    if not valid:
        return [], list(samples)
    intervals = [sample_interval(sample) for sample in valid]
    count, interval = marzullo_intersection(intervals)
    if interval is None or count < minimum_agreeing:
        return [], list(samples)
    low, high = interval
    truechimers = []
    falsetickers = [sample for sample in samples if not sample.plausible]
    for sample in valid:
        s_low, s_high = sample_interval(sample)
        if s_low <= high and low <= s_high:
            truechimers.append(sample)
        else:
            falsetickers.append(sample)
    return truechimers, falsetickers


def cluster_survivors(samples: Sequence[TimeSample], max_survivors: int = 10) -> list[TimeSample]:
    """Iteratively drop the sample farthest from the median offset."""
    survivors = list(samples)
    while len(survivors) > max(3, 1) and len(survivors) > max_survivors:
        offsets = [sample.offset for sample in survivors]
        centre = median(offsets)
        farthest = max(survivors, key=lambda sample: abs(sample.offset - centre))
        survivors.remove(farthest)
    return survivors


def combine_offset(samples: Sequence[TimeSample]) -> float:
    """Delay-weighted average of the surviving offsets."""
    if not samples:
        raise ValueError("no samples to combine")
    weights = [1.0 / (sample.delay + 1e-3) for sample in samples]
    total = sum(weights)
    return sum(sample.offset * weight for sample, weight in zip(samples, weights)) / total


def ntpd_select(samples: Sequence[TimeSample]) -> SelectionResult:
    """The full baseline pipeline: select, cluster, combine."""
    # A pure function with no simulator at hand: observability comes from
    # the installed facade (the one the enclosing run's simulator adopted).
    obs = _current_obs()
    truechimers, falsetickers = select_truechimers(samples)
    if not truechimers:
        if obs.enabled:
            obs.metrics.counter("ntp.selection_runs", succeeded=False).inc()
        return SelectionResult(offset=None, survivors=(), rejected=tuple(samples))
    survivors = cluster_survivors(truechimers)
    offset = combine_offset(survivors)
    rejected = [sample for sample in samples if sample not in survivors]
    if obs.enabled:
        obs.metrics.counter("ntp.selection_runs", succeeded=True).inc()
        obs.metrics.counter("ntp.falsetickers_rejected").inc(len(rejected))
    return SelectionResult(offset=offset, survivors=tuple(survivors), rejected=tuple(rejected))
