"""Simulated system clocks.

Every host that cares about time of day owns a :class:`SystemClock` bound to
the shared simulator.  "True" time is defined as ``epoch + simulator.now``;
each clock then carries its own offset (initial error plus any adjustments
applied by the NTP/Chronos clients) and a constant drift rate, so experiments
can measure precisely how far an attack managed to shift a victim clock from
true time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.simulator import Simulator

#: Default epoch for simulated wall-clock time (2021-01-01T00:00:00Z);
#: any value inside NTP era 0 works.
DEFAULT_EPOCH = 1609459200.0


@dataclass
class ClockAdjustment:
    """Record of one clock adjustment (for audit in experiments)."""

    applied_at: float
    delta: float
    source: str


class SystemClock:
    """A drifting, adjustable clock derived from the simulator's time base."""

    def __init__(self, simulator: Simulator, offset: float = 0.0,
                 drift_ppm: float = 0.0, epoch: float = DEFAULT_EPOCH) -> None:
        self.simulator = simulator
        self.epoch = epoch
        self._offset = offset
        self.drift_ppm = drift_ppm
        self._drift_reference = simulator.now
        self._accumulated_drift = 0.0
        self.adjustments: list[ClockAdjustment] = []

    # -- reading ----------------------------------------------------------
    def true_time(self) -> float:
        """The reference ("UTC") time no attacker can influence."""
        return self.epoch + self.simulator.now

    def _current_drift(self) -> float:
        elapsed = self.simulator.now - self._drift_reference
        return self._accumulated_drift + elapsed * self.drift_ppm * 1e-6

    def now(self) -> float:
        """The time this clock currently believes it is."""
        return self.true_time() + self._offset + self._current_drift()

    @property
    def error(self) -> float:
        """Signed difference between this clock and true time (seconds)."""
        return self.now() - self.true_time()

    # -- adjusting ----------------------------------------------------------
    def adjust(self, delta: float, source: str = "ntp") -> None:
        """Slew/step the clock by ``delta`` seconds (positive = forwards)."""
        self._offset += delta
        self.adjustments.append(ClockAdjustment(self.simulator.now, delta, source))

    def set_offset(self, offset: float, source: str = "manual") -> None:
        """Set the absolute offset from true time, folding in current drift."""
        delta = offset - (self._offset + self._current_drift())
        self.adjust(delta, source=source)

    def freeze_drift(self) -> None:
        """Fold accumulated drift into the explicit offset (after discipline)."""
        self._accumulated_drift = self._current_drift()
        self._drift_reference = self.simulator.now


@dataclass
class ClockErrorTrace:
    """Samples of a clock's error over time, for plotting/aggregation."""

    samples: list[tuple[float, float]] = field(default_factory=list)

    def record(self, clock: SystemClock) -> None:
        self.samples.append((clock.simulator.now, clock.error))

    @property
    def max_abs_error(self) -> float:
        return max((abs(error) for _, error in self.samples), default=0.0)

    @property
    def final_error(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0
