"""Campaign observatory: resumable studies over the sweep substrate.

A *campaign* is a declarative study — named sweeps over scenarios ×
defense stacks × seed budgets, plus the analyses and figures derived from
them — compiled into a dependency-ordered step graph and executed
incrementally over :class:`~repro.experiments.scheduler.SweepScheduler`
and :class:`~repro.experiments.cache.RunCache`.  The package adds the
layer the cell-level substrate lacks: an atomic checkpoint journal, a
live status surface, and a self-contained report artifact, with the
guarantee that a SIGKILLed campaign resumes where it stopped and
reproduces byte-identical step digests and report bytes.

Entry points: :func:`run_campaign` (one call: manifest dict in,
:class:`CampaignResult` out), :func:`campaign_status` (text view), and
``python -m repro.campaign`` (CLI).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from pathlib import Path
from typing import Any, Optional

from .manifest import (
    ATTACK_GROUPS,
    STACK_GROUPS,
    AnalysisSpec,
    CampaignManifest,
    FigureSpec,
    GridSweep,
    MatrixSweep,
    Step,
    dependency_order,
)
from .report import build_report_markdown, emit_report
from .runner import (
    CampaignError,
    CampaignResult,
    CampaignRunner,
    StepOutcome,
    campaign_status,
)
from .state import CampaignState

__all__ = [
    "ATTACK_GROUPS",
    "STACK_GROUPS",
    "AnalysisSpec",
    "CampaignError",
    "CampaignManifest",
    "CampaignResult",
    "CampaignRunner",
    "CampaignState",
    "FigureSpec",
    "GridSweep",
    "MatrixSweep",
    "Step",
    "StepOutcome",
    "build_report_markdown",
    "campaign_status",
    "dependency_order",
    "emit_report",
    "run_campaign",
]


def run_campaign(spec: Mapping[str, Any] | CampaignManifest, directory: Path,
                 workers: int = 1,
                 on_progress: Optional[Callable[[str, int, int], None]] = None,
                 ) -> CampaignResult:
    """Validate (if needed) and run a campaign in *directory*.

    Safe to call repeatedly with the same directory: completed work
    replays from the campaign's cache and only missing cells execute.
    """
    manifest = (spec if isinstance(spec, CampaignManifest)
                else CampaignManifest.from_spec(spec))
    runner = CampaignRunner(manifest, Path(directory), workers=workers,
                            on_progress=on_progress)
    return runner.run()
