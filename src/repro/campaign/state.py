"""Atomic checkpoint journal for campaign runs.

The state file is a single JSON document written atomically (tmp file +
``Path.replace``) at every step transition, so a SIGKILL at any instant
leaves either the previous or the next consistent journal on disk — never
a torn one.  If the file *is* damaged some other way (disk corruption,
manual edits), :meth:`CampaignState.load` degrades to a fresh journal and
the campaign recomputes through the :class:`~repro.experiments.cache.RunCache`,
which remains the cell-level source of truth.  Losing the journal costs
bookkeeping, never results.

Per step the journal records status, the digest and seed range it
completed with, the merged :class:`~repro.obs.metrics.MetricsSnapshot`
(JSON round-trip exact), wall-clock and cache-hit telemetry, and a digest
*history* across runs — the raw material for the report ledger's drift
highlighting.  The manifest fingerprint is pinned in the journal; resuming
with an edited manifest marks affected checkpoints stale instead of
trusting them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional

STATE_VERSION = 1

#: Step lifecycle: pending -> running -> done | failed.  ``stale`` marks a
#: checkpoint recorded under a different manifest fingerprint.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STALE = "stale"


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    """Write *payload* so readers always see a complete JSON document.

    Key order is preserved (steps stay in dependency order for human
    readers); the document is bookkeeping, not digest input.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    tmp.replace(path)


class CampaignState:
    """The persisted journal for one campaign directory.

    All mutating helpers save immediately; the in-memory dict mirrors the
    on-disk document at every step boundary.
    """

    def __init__(self, path: Path, name: str, fingerprint: str,
                 step_names: list[str]) -> None:
        self.path = Path(path)
        self.recovered_from_corruption = False
        loaded = self.load(self.path)
        if loaded is None:
            self.recovered_from_corruption = self.path.exists()
            loaded = {"version": STATE_VERSION, "campaign": name,
                      "fingerprint": fingerprint, "runs": 0, "steps": {}}
        self.data = loaded
        self._reconcile(name, fingerprint, step_names)

    # -- loading -------------------------------------------------------------
    @staticmethod
    def load(path: Path) -> Optional[dict[str, Any]]:
        """Best-effort read; ``None`` for missing, torn, or foreign files."""
        try:
            raw = Path(path).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(data, dict) or "steps" not in data:
            return None
        if data.get("version") != STATE_VERSION:
            return None
        if not isinstance(data.get("steps"), dict):
            return None
        return data

    def _reconcile(self, name: str, fingerprint: str,
                   step_names: list[str]) -> None:
        """Align the loaded journal with the manifest being run.

        A different fingerprint (edited manifest, grown seed budget) or a
        different campaign name demotes every recorded checkpoint to
        ``stale``: its digest history is kept for the drift ledger, but the
        step must re-run — cheaply, through the cache — before it counts
        as done again.  Steps that vanished from the manifest are dropped;
        new steps appear as ``pending``.
        """
        self.stale_checkpoint = (
            self.data.get("campaign") != name
            or self.data.get("fingerprint") != fingerprint)
        steps: dict[str, Any] = self.data.get("steps", {})
        reconciled: dict[str, Any] = {}
        for step_name in step_names:
            entry = steps.get(step_name)
            if not isinstance(entry, dict):
                entry = {"status": PENDING, "history": []}
            elif self.stale_checkpoint or entry.get("status") == RUNNING:
                # A RUNNING step in a loaded journal means the process was
                # killed mid-step: the checkpoint is an honest "unfinished".
                entry = dict(entry)
                entry["status"] = STALE if self.stale_checkpoint else PENDING
            reconciled[step_name] = entry
        self.data["campaign"] = name
        self.data["fingerprint"] = fingerprint
        self.data["version"] = STATE_VERSION
        self.data["steps"] = reconciled

    # -- accessors -----------------------------------------------------------
    @property
    def runs(self) -> int:
        return int(self.data.get("runs", 0))

    def step(self, name: str) -> dict[str, Any]:
        return self.data["steps"][name]

    def status(self, name: str) -> str:
        return self.step(name).get("status", PENDING)

    def digest(self, name: str) -> Optional[str]:
        return self.step(name).get("digest")

    def previous_digest(self, name: str) -> Optional[str]:
        """The most recent *comparable* digest from an earlier run, if any.

        Comparable means recorded under the current manifest fingerprint:
        an edited manifest (grown seed budget, new stack) is *expected* to
        move digests, so those history entries must not read as drift —
        drift is a digest change with the study held fixed.
        """
        history = self.step(name).get("history") or []
        fingerprint = self.data.get("fingerprint")
        for entry in reversed(history[:-1]):
            if entry.get("fingerprint") == fingerprint:
                return entry.get("digest")
        return None

    # -- transitions (each saves atomically) ---------------------------------
    def begin_run(self) -> int:
        self.data["runs"] = self.runs + 1
        self.save()
        return self.runs

    def step_started(self, name: str, total_tasks: int) -> None:
        entry = self.step(name)
        entry["status"] = RUNNING
        entry["total_tasks"] = total_tasks
        entry.pop("error", None)
        self.save()

    def step_completed(self, name: str, digest: str, *,
                       seeds: Optional[list[int]] = None,
                       metrics: Optional[dict[str, Any]] = None,
                       telemetry: Optional[dict[str, Any]] = None) -> None:
        entry = self.step(name)
        entry["status"] = DONE
        entry["digest"] = digest
        if seeds is not None:
            entry["seeds"] = list(seeds)
        if metrics is not None:
            entry["metrics"] = metrics
        if telemetry is not None:
            entry["telemetry"] = telemetry
        history = entry.setdefault("history", [])
        history.append({"run": self.runs, "digest": digest,
                        "fingerprint": self.data.get("fingerprint")})
        # The history is a drift record, not an unbounded log.
        del history[:-20]
        self.save()

    def step_failed(self, name: str, error: str) -> None:
        entry = self.step(name)
        entry["status"] = FAILED
        entry["error"] = error
        self.save()

    def save(self) -> None:
        _atomic_write_json(self.path, self.data)

    # -- summaries -----------------------------------------------------------
    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.data["steps"].values():
            status = entry.get("status", PENDING)
            counts[status] = counts.get(status, 0) + 1
        return counts

    def formatted(self) -> str:
        """One status line per step, suitable for ``campaign status``."""
        lines = [f"campaign {self.data['campaign']!r} "
                 f"(fingerprint {self.data['fingerprint'][:12]}, "
                 f"runs={self.runs})"]
        for name, entry in self.data["steps"].items():
            status = entry.get("status", PENDING)
            parts = [f"  {name:<28} {status:<8}"]
            if entry.get("digest"):
                parts.append(f"digest={entry['digest'][:12]}")
            telemetry = entry.get("telemetry") or {}
            if "tasks" in telemetry:
                parts.append(f"tasks={telemetry['tasks']}")
            if "cache_hits" in telemetry:
                parts.append(f"cache_hits={telemetry['cache_hits']}")
            if "wall_seconds" in telemetry:
                parts.append(f"wall={telemetry['wall_seconds']:.2f}s")
            if entry.get("error"):
                parts.append(f"error={entry['error']}")
            lines.append(" ".join(parts))
        return "\n".join(lines)


def now() -> float:
    """Wall-clock for telemetry only — never feeds digests or reports."""
    return time.monotonic()
