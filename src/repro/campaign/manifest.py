"""Declarative campaign manifests compiled into dependency-ordered steps.

A campaign is a *study*: several named sweeps (attack × defense matrix
grids and/or parameter-grid sweeps) plus the analyses and figures derived
from them, executed incrementally over the
:class:`~repro.experiments.scheduler.SweepScheduler` /
:class:`~repro.experiments.cache.RunCache` substrate and always ending in
a self-contained report artifact.  The manifest is a plain dict (JSON on
disk) so studies are diffable, versionable and shareable:

.. code-block:: python

    {
        "name": "chronos-study",
        "seeds": 4,                         # default budget: seeds 1..4
        "sweeps": {
            "grid":     {"kind": "matrix", "attacks": "default",
                         "stacks": "default"},
            "overhead": {"kind": "grid", "scenario": "transport_overhead",
                         "grid": {"transport": ["udp", "tcp", "dot", "doh"]}},
        },
        "analyses": {"section5": {"kind": "section5", "sweep": "grid"}},
        "figures": {
            "heatmap":  {"kind": "heatmap", "sweep": "grid"},
            "overhead": {"kind": "curve", "sweep": "overhead",
                         "x": "transport", "y": "mean_time_to_answer"},
        },
        "expected_digests": {"sweep:grid": "8fd76ec9..."},   # optional pins
    }

Attack and stack axes name the registered groups from
:mod:`repro.experiments.matrix` (``"legacy"``, ``"default"``,
``"serving"``, ...) and/or inline dicts, so a manifest can reproduce the
pinned grids or define brand-new ones.  :meth:`CampaignManifest.steps`
compiles the manifest into a topologically-ordered step list (sweeps,
then the analyses/figures that consume them, then the report), and
:meth:`CampaignManifest.fingerprint` hashes the canonical spec — the
checkpoint journal stores it, so a drifted manifest is detected instead
of silently resuming the wrong study.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Optional

from ..analysis.mitigations import SECTION5_MATRIX_CELLS
from ..experiments.cache import canonical_json
from ..experiments.matrix import (
    DEFAULT_ATTACKS,
    DEFAULT_STACKS,
    LEGACY_ATTACKS,
    LEGACY_STACKS,
    RESILIENCE_STACKS,
    SERVING_ATTACKS,
    SERVING_STACKS,
    AttackSpec,
    DefenseStackSpec,
)
from ..experiments.registry import get_scenario

#: Named attack-row groups a manifest may reference by string.
ATTACK_GROUPS: dict[str, tuple[AttackSpec, ...]] = {
    "legacy": LEGACY_ATTACKS,
    "default": DEFAULT_ATTACKS,
    "serving": SERVING_ATTACKS,
}

#: Named defense-column groups a manifest may reference by string.
STACK_GROUPS: dict[str, tuple[DefenseStackSpec, ...]] = {
    "legacy": LEGACY_STACKS,
    "default": DEFAULT_STACKS,
    "resilience": RESILIENCE_STACKS,
    "serving": SERVING_STACKS,
}

SWEEP_KINDS = ("matrix", "grid")
ANALYSIS_KINDS = ("section5", "success_summary")
FIGURE_KINDS = ("heatmap", "curve")
STEP_REPORT = "report"


def _freeze(value: Any) -> Any:
    """Recursively hashable form of a JSON-ish value (dicts -> item tuples)."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for the dict/list shapes it produces."""
    if isinstance(value, tuple):
        if all(isinstance(item, tuple) and len(item) == 2
               and isinstance(item[0], str) for item in value):
            return {k: _thaw(v) for k, v in value}
        return [_thaw(v) for v in value]
    return value


def _resolve_seeds(spec: Any, default: tuple[int, ...]) -> tuple[int, ...]:
    """A seed budget: ``None`` inherits, ``n`` means 1..n, a list is explicit."""
    if spec is None:
        return default
    if isinstance(spec, bool):
        raise ValueError("seed budget must be an int or a list of ints")
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError("seed budget must be at least 1")
        return tuple(range(1, spec + 1))
    if isinstance(spec, Sequence) and not isinstance(spec, str):
        seeds = tuple(int(seed) for seed in spec)
        if not seeds:
            raise ValueError("an explicit seed list must not be empty")
        return seeds
    raise ValueError(f"unsupported seed budget: {spec!r}")


def _resolve_attacks(spec: Any) -> tuple[AttackSpec, ...]:
    """Attack rows from a group name, inline dicts, or a mixed list."""
    if isinstance(spec, str):
        try:
            return ATTACK_GROUPS[spec]
        except KeyError:
            raise ValueError(f"unknown attack group {spec!r}; known: "
                             f"{sorted(ATTACK_GROUPS)}") from None
    if isinstance(spec, Mapping):
        spec = [spec]
    if not isinstance(spec, Sequence):
        raise ValueError(f"unsupported attacks spec: {spec!r}")
    attacks: list[AttackSpec] = []
    for entry in spec:
        if isinstance(entry, str):
            attacks.extend(_resolve_attacks(entry))
        elif isinstance(entry, AttackSpec):
            attacks.append(entry)
        elif isinstance(entry, Mapping):
            unknown = set(entry) - {"label", "scenario", "params"}
            if unknown:
                raise ValueError(f"unknown attack keys: {sorted(unknown)}")
            scenario = entry.get("scenario")
            if not scenario:
                raise ValueError(f"attack entry needs a 'scenario': {entry!r}")
            _require_scenario(scenario)
            attacks.append(AttackSpec(
                label=str(entry.get("label", scenario)),
                scenario=str(scenario),
                params=dict(entry.get("params", {}))))
        else:
            raise ValueError(f"unsupported attack entry: {entry!r}")
    if not attacks:
        raise ValueError("a matrix sweep needs at least one attack row")
    return tuple(attacks)


def _resolve_stacks(spec: Any) -> tuple[DefenseStackSpec, ...]:
    """Defense columns from a group name, inline dicts, or a mixed list."""
    if isinstance(spec, str):
        try:
            return STACK_GROUPS[spec]
        except KeyError:
            raise ValueError(f"unknown stack group {spec!r}; known: "
                             f"{sorted(STACK_GROUPS)}") from None
    if isinstance(spec, Mapping):
        spec = [spec]
    if not isinstance(spec, Sequence):
        raise ValueError(f"unsupported stacks spec: {spec!r}")
    stacks: list[DefenseStackSpec] = []
    for entry in spec:
        if isinstance(entry, str):
            stacks.extend(_resolve_stacks(entry))
        elif isinstance(entry, DefenseStackSpec):
            stacks.append(entry)
        elif isinstance(entry, Mapping):
            unknown = set(entry) - {"name", "defenses", "description"}
            if unknown:
                raise ValueError(f"unknown stack keys: {sorted(unknown)}")
            if "name" not in entry:
                raise ValueError(f"stack entry needs a 'name': {entry!r}")
            stacks.append(DefenseStackSpec(
                name=str(entry["name"]),
                defenses=tuple(entry.get("defenses", ())),
                description=str(entry.get("description", ""))))
        else:
            raise ValueError(f"unsupported stack entry: {entry!r}")
    if not stacks:
        raise ValueError("a matrix sweep needs at least one defense stack")
    return tuple(stacks)


def _require_scenario(name: str) -> None:
    try:
        get_scenario(name)
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}") from None


@dataclass(frozen=True)
class MatrixSweep:
    """One named attack × defense-stack grid within a campaign."""

    name: str
    attacks: tuple[AttackSpec, ...]
    stacks: tuple[DefenseStackSpec, ...]
    seeds: tuple[int, ...]

    kind = "matrix"

    @property
    def cell_count(self) -> int:
        return len(self.attacks) * len(self.stacks) * len(self.seeds)

    def to_spec(self) -> dict[str, Any]:
        return {
            "kind": "matrix",
            "attacks": [{"label": a.label, "scenario": a.scenario,
                         "params": dict(a.params)} for a in self.attacks],
            "stacks": [{"name": s.name, "defenses": list(s.defenses),
                        "description": s.description} for s in self.stacks],
            "seeds": list(self.seeds),
        }


@dataclass(frozen=True)
class GridSweep:
    """One named scenario × parameter-grid sweep within a campaign."""

    name: str
    scenario: str
    base_params: Any  # frozen mapping (see _freeze)
    grid: Any  # frozen mapping of param -> value list
    seeds: tuple[int, ...]

    kind = "grid"

    @property
    def base_params_dict(self) -> dict[str, Any]:
        return _thaw(self.base_params) if self.base_params else {}

    @property
    def grid_dict(self) -> dict[str, list[Any]]:
        return _thaw(self.grid) if self.grid else {}

    @property
    def cell_count(self) -> int:
        points = 1
        for values in self.grid_dict.values():
            points *= len(values)
        return points * len(self.seeds)

    def to_spec(self) -> dict[str, Any]:
        return {
            "kind": "grid",
            "scenario": self.scenario,
            "base_params": self.base_params_dict,
            "grid": self.grid_dict,
            "seeds": list(self.seeds),
        }


@dataclass(frozen=True)
class AnalysisSpec:
    """A derived, deterministic analysis over one sweep's results."""

    name: str
    kind: str
    sweep: str

    def to_spec(self) -> dict[str, Any]:
        return {"kind": self.kind, "sweep": self.sweep}


@dataclass(frozen=True)
class FigureSpec:
    """A report figure rendered from one sweep's results."""

    name: str
    kind: str
    sweep: str
    x: str = ""
    y: str = ""
    title: str = ""

    def to_spec(self) -> dict[str, Any]:
        spec: dict[str, Any] = {"kind": self.kind, "sweep": self.sweep}
        if self.x:
            spec["x"] = self.x
        if self.y:
            spec["y"] = self.y
        if self.title:
            spec["title"] = self.title
        return spec


@dataclass(frozen=True)
class Step:
    """One node of the campaign's dependency-ordered execution graph."""

    name: str
    kind: str  # "sweep" | "analysis" | "figure" | "report"
    depends: tuple[str, ...]
    payload: Optional[object] = None


def dependency_order(steps: Sequence[Step]) -> list[Step]:
    """Kahn's topological sort, stable on the given order; cycles raise.

    The compiler only emits backward edges, so this is a validation pass —
    but hand-built step lists (tests, future extensions) go through the
    same gate.
    """
    by_name = {step.name: step for step in steps}
    missing = {dep for step in steps for dep in step.depends} - set(by_name)
    if missing:
        raise ValueError(f"steps depend on unknown steps: {sorted(missing)}")
    remaining = {step.name: set(step.depends) for step in steps}
    ordered: list[Step] = []
    while remaining:
        ready = [name for name, deps in remaining.items() if not deps]
        if not ready:
            raise ValueError(f"dependency cycle among: {sorted(remaining)}")
        for name in ready:
            ordered.append(by_name[name])
            del remaining[name]
        for deps in remaining.values():
            deps.difference_update(ready)
    return ordered


@dataclass(frozen=True)
class CampaignManifest:
    """A validated campaign: named sweeps plus derived analyses and figures."""

    name: str
    sweeps: tuple[Any, ...]  # MatrixSweep | GridSweep, in manifest order
    analyses: tuple[AnalysisSpec, ...] = ()
    figures: tuple[FigureSpec, ...] = ()
    expected_digests: Any = ()  # frozen mapping of step name -> digest

    def __post_init__(self) -> None:
        names = [sweep.name for sweep in self.sweeps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate sweep names: {names}")

    # -- construction --------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> CampaignManifest:
        """Validate a plain dict/JSON manifest; raises ``ValueError`` early.

        Fail-fast matters here: a campaign may run for hours, so a typo'd
        scenario name or a figure referencing a missing sweep must die at
        compile time, not at step 7.
        """
        unknown = set(spec) - {"name", "seeds", "sweeps", "analyses",
                               "figures", "expected_digests"}
        if unknown:
            raise ValueError(f"unknown manifest keys: {sorted(unknown)}")
        name = spec.get("name")
        if not name or not isinstance(name, str):
            raise ValueError("manifest needs a non-empty string 'name'")
        default_seeds = _resolve_seeds(spec.get("seeds"), (1, 2))
        sweeps_spec = spec.get("sweeps")
        if not isinstance(sweeps_spec, Mapping) or not sweeps_spec:
            raise ValueError("manifest needs a non-empty 'sweeps' mapping")

        sweeps: list[Any] = []
        for sweep_name, entry in sweeps_spec.items():
            kind = entry.get("kind", "matrix")
            seeds = _resolve_seeds(entry.get("seeds"), default_seeds)
            if kind == "matrix":
                unknown = set(entry) - {"kind", "attacks", "stacks", "seeds"}
                if unknown:
                    raise ValueError(f"sweep {sweep_name!r}: unknown keys "
                                     f"{sorted(unknown)}")
                sweeps.append(MatrixSweep(
                    name=str(sweep_name),
                    attacks=_resolve_attacks(entry.get("attacks", "default")),
                    stacks=_resolve_stacks(entry.get("stacks", "default")),
                    seeds=seeds))
            elif kind == "grid":
                unknown = set(entry) - {"kind", "scenario", "base_params",
                                        "grid", "seeds"}
                if unknown:
                    raise ValueError(f"sweep {sweep_name!r}: unknown keys "
                                     f"{sorted(unknown)}")
                scenario = entry.get("scenario")
                if not scenario:
                    raise ValueError(f"grid sweep {sweep_name!r} needs a 'scenario'")
                _require_scenario(scenario)
                grid = entry.get("grid", {})
                if not isinstance(grid, Mapping):
                    raise ValueError(f"grid sweep {sweep_name!r}: 'grid' must "
                                     f"map params to value lists")
                sweeps.append(GridSweep(
                    name=str(sweep_name),
                    scenario=str(scenario),
                    base_params=_freeze(dict(entry.get("base_params", {}))),
                    grid=_freeze({k: list(v) for k, v in grid.items()}),
                    seeds=seeds))
            else:
                raise ValueError(f"sweep {sweep_name!r}: unknown kind {kind!r} "
                                 f"(one of {SWEEP_KINDS})")
        by_name = {sweep.name: sweep for sweep in sweeps}

        analyses: list[AnalysisSpec] = []
        for analysis_name, entry in (spec.get("analyses") or {}).items():
            kind = entry.get("kind")
            if kind not in ANALYSIS_KINDS:
                raise ValueError(f"analysis {analysis_name!r}: unknown kind "
                                 f"{kind!r} (one of {ANALYSIS_KINDS})")
            sweep = _require_sweep(by_name, entry.get("sweep"), analysis_name)
            if not isinstance(sweep, MatrixSweep):
                raise ValueError(f"analysis {analysis_name!r} needs a matrix "
                                 f"sweep, got {sweep.kind!r}")
            if kind == "section5":
                _validate_section5_cells(sweep, analysis_name)
            analyses.append(AnalysisSpec(name=str(analysis_name), kind=kind,
                                         sweep=sweep.name))

        figures: list[FigureSpec] = []
        for figure_name, entry in (spec.get("figures") or {}).items():
            kind = entry.get("kind")
            if kind not in FIGURE_KINDS:
                raise ValueError(f"figure {figure_name!r}: unknown kind "
                                 f"{kind!r} (one of {FIGURE_KINDS})")
            sweep = _require_sweep(by_name, entry.get("sweep"), figure_name)
            if kind == "heatmap":
                if not isinstance(sweep, MatrixSweep):
                    raise ValueError(f"figure {figure_name!r}: heatmaps need a "
                                     f"matrix sweep, got {sweep.kind!r}")
                figures.append(FigureSpec(name=str(figure_name), kind=kind,
                                          sweep=sweep.name,
                                          title=str(entry.get("title", ""))))
            else:  # curve
                if not isinstance(sweep, GridSweep):
                    raise ValueError(f"figure {figure_name!r}: curves need a "
                                     f"grid sweep, got {sweep.kind!r}")
                x, y = entry.get("x"), entry.get("y")
                if not x or not y:
                    raise ValueError(f"figure {figure_name!r}: curves need "
                                     f"'x' (a grid param) and 'y' (a metric)")
                if x not in sweep.grid_dict:
                    raise ValueError(f"figure {figure_name!r}: x={x!r} is not "
                                     f"a grid param of sweep {sweep.name!r} "
                                     f"({sorted(sweep.grid_dict)})")
                figures.append(FigureSpec(name=str(figure_name), kind=kind,
                                          sweep=sweep.name, x=str(x), y=str(y),
                                          title=str(entry.get("title", ""))))

        expected = spec.get("expected_digests") or {}
        if not isinstance(expected, Mapping):
            raise ValueError("'expected_digests' must map step names to digests")
        return cls(name=name, sweeps=tuple(sweeps), analyses=tuple(analyses),
                   figures=tuple(figures),
                   expected_digests=_freeze(dict(expected)))

    # -- canonical encoding --------------------------------------------------
    def to_spec(self) -> dict[str, Any]:
        """The canonical plain-dict form (round-trips via :meth:`from_spec`)."""
        spec: dict[str, Any] = {
            "name": self.name,
            "sweeps": {sweep.name: sweep.to_spec() for sweep in self.sweeps},
        }
        if self.analyses:
            spec["analyses"] = {a.name: a.to_spec() for a in self.analyses}
        if self.figures:
            spec["figures"] = {f.name: f.to_spec() for f in self.figures}
        expected = _thaw(self.expected_digests) if self.expected_digests else {}
        if expected:
            spec["expected_digests"] = expected
        return spec

    def fingerprint(self) -> str:
        """SHA-256 of the canonical spec — the checkpoint compatibility key.

        Any change to the study (a new stack, a grown seed budget, a
        reworded figure) moves the fingerprint; the state journal notices
        and recomputes affected steps through the cache instead of trusting
        stale checkpoints.  ``expected_digests`` is excluded: pinning an
        expectation must not invalidate the work it pins.
        """
        spec = self.to_spec()
        spec.pop("expected_digests", None)
        return hashlib.sha256(canonical_json(spec).encode()).hexdigest()

    # -- compilation ---------------------------------------------------------
    def sweep(self, name: str) -> Any:
        for sweep in self.sweeps:
            if sweep.name == name:
                return sweep
        raise KeyError(f"no sweep named {name!r}")

    def steps(self) -> list[Step]:
        """The dependency-ordered execution plan, report last."""
        steps = [Step(name=f"sweep:{sweep.name}", kind="sweep", depends=(),
                      payload=sweep)
                 for sweep in self.sweeps]
        steps += [Step(name=f"analysis:{analysis.name}", kind="analysis",
                       depends=(f"sweep:{analysis.sweep}",), payload=analysis)
                  for analysis in self.analyses]
        steps += [Step(name=f"figure:{figure.name}", kind="figure",
                       depends=(f"sweep:{figure.sweep}",), payload=figure)
                  for figure in self.figures]
        steps.append(Step(name=STEP_REPORT, kind=STEP_REPORT,
                          depends=tuple(step.name for step in steps)))
        return dependency_order(steps)

    def expected_digest(self, step_name: str) -> Optional[str]:
        for key, value in (self.expected_digests or ()):
            if key == step_name:
                return value
        return None

    @property
    def cell_count(self) -> int:
        return sum(sweep.cell_count for sweep in self.sweeps)


def _require_sweep(by_name: Mapping[str, Any], ref: Any, owner: str) -> Any:
    if not ref or ref not in by_name:
        raise ValueError(f"{owner!r} references unknown sweep {ref!r}; "
                         f"known: {sorted(by_name)}")
    return by_name[ref]


def _validate_section5_cells(sweep: MatrixSweep, owner: str) -> None:
    """§V comparison needs specific rows/columns; fail at compile time."""
    attacks = {attack.label for attack in sweep.attacks}
    stacks = {stack.name for stack in sweep.stacks}
    for _, (attack, stack) in SECTION5_MATRIX_CELLS:
        if attack not in attacks or stack not in stacks:
            raise ValueError(
                f"analysis {owner!r}: section5 needs cell ({attack!r}, "
                f"{stack!r}); the sweep has attacks {sorted(attacks)} and "
                f"stacks {sorted(stacks)}")
