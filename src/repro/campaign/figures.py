"""Zero-dependency SVG figures for campaign reports.

Everything here is deterministic string assembly: no matplotlib, no
randomized element ids, no timestamps — the same data always yields the
same bytes, so figure digests participate in the campaign's byte-identity
guarantee.

Color choices follow a validated palette: sequential magnitude (the attack
success heatmap) uses a single blue ramp light→dark, so "near zero"
recedes toward the surface and "attack succeeds" reads darkest; curves use
the categorical order (blue, orange, aqua) with 2px strokes.  Cell values
and point labels are printed directly in text ink — magnitude is never
encoded by color alone.
"""

from __future__ import annotations

import hashlib
from typing import Optional

#: Sequential blue ramp, steps 100..700 (light surface, light→dark).
SEQUENTIAL_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Categorical series colors, fixed order (never cycled past three here).
CATEGORICAL = ("#2a78d6", "#eb6834", "#1baf7a")

SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
TEXT_MUTED = "#898781"
GRIDLINE = "#e1e0d9"
AXIS = "#c3c2b7"

_FONT = 'font-family="system-ui, sans-serif"'


def sequential_color(value: float) -> str:
    """Ramp step for a magnitude in [0, 1] (clamped)."""
    clamped = min(max(value, 0.0), 1.0)
    index = min(int(clamped * len(SEQUENTIAL_RAMP)), len(SEQUENTIAL_RAMP) - 1)
    return SEQUENTIAL_RAMP[index]


def _cell_text_color(value: float) -> str:
    """Dark ink on light cells, white on the dark end of the ramp."""
    return "#ffffff" if value >= 0.55 else TEXT_PRIMARY


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (deterministic bytes)."""
    return f"{value:.2f}"


def svg_digest(svg: str) -> str:
    return hashlib.sha256(svg.encode("utf-8")).hexdigest()


def render_heatmap_svg(title: str, row_labels: list[str],
                       col_labels: list[str],
                       values: list[list[Optional[float]]]) -> str:
    """Attack × defense success-rate heatmap as a self-contained SVG.

    ``values[row][col]`` in [0, 1] or ``None`` for an absent cell.  Each
    cell prints its value directly so the figure survives grayscale and
    CVD viewing; the ramp only adds the at-a-glance gradient.
    """
    cell_w, cell_h, gap = 64, 30, 2
    left = 16 + max((len(label) for label in row_labels), default=0) * 7
    top = 64
    width = left + len(col_labels) * (cell_w + gap) + 16
    height = top + len(row_labels) * (cell_h + gap) + 40
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_esc(title)}">',
        f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="16" y="28" {_FONT} font-size="15" font-weight="600" '
        f'fill="{TEXT_PRIMARY}">{_esc(title)}</text>',
        f'<text x="16" y="46" {_FONT} font-size="11" '
        f'fill="{TEXT_SECONDARY}">attack success rate per defense stack '
        f'(0.00 light &#8594; 1.00 dark)</text>',
    ]
    for col, label in enumerate(col_labels):
        x = left + col * (cell_w + gap) + cell_w / 2
        parts.append(
            f'<text x="{_fmt(x)}" y="{top - 8}" {_FONT} font-size="10" '
            f'fill="{TEXT_MUTED}" text-anchor="middle">{_esc(label)}</text>')
    for row, label in enumerate(row_labels):
        y = top + row * (cell_h + gap)
        parts.append(
            f'<text x="{left - 8}" y="{_fmt(y + cell_h / 2 + 3.5)}" {_FONT} '
            f'font-size="11" fill="{TEXT_SECONDARY}" '
            f'text-anchor="end">{_esc(label)}</text>')
        for col in range(len(col_labels)):
            x = left + col * (cell_w + gap)
            value = values[row][col] if col < len(values[row]) else None
            if value is None:
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{cell_w}" '
                    f'height="{cell_h}" rx="4" fill="none" '
                    f'stroke="{GRIDLINE}"/>')
                continue
            fill = sequential_color(value)
            ink = _cell_text_color(value)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_w}" height="{cell_h}" '
                f'rx="4" fill="{fill}"/>')
            parts.append(
                f'<text x="{_fmt(x + cell_w / 2)}" '
                f'y="{_fmt(y + cell_h / 2 + 3.5)}" {_FONT} font-size="11" '
                f'fill="{ink}" text-anchor="middle">{value:.2f}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def render_heatmap_markdown(row_labels: list[str], col_labels: list[str],
                            values: list[list[Optional[float]]]) -> str:
    """The same grid as a GitHub-flavored markdown table (the text view)."""
    header = "| attack \\ stack | " + " | ".join(col_labels) + " |"
    rule = "|---" * (len(col_labels) + 1) + "|"
    lines = [header, rule]
    for row, label in enumerate(row_labels):
        cells = []
        for col in range(len(col_labels)):
            value = values[row][col] if col < len(values[row]) else None
            cells.append("--" if value is None else f"{value:.2f}")
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_curve_svg(title: str, x_label: str, y_label: str,
                     series: list[tuple[str, list[tuple[str, float]]]]) -> str:
    """Line chart over an ordinal x axis (grid parameter values).

    ``series`` is ``[(name, [(x_tick_label, y_value), ...]), ...]`` with
    every series sharing the tick order.  Points are direct-labeled with
    their values; series identity comes from color plus an end-of-line
    label, so no separate legend box is needed for the small series counts
    campaigns produce.
    """
    if not series or not series[0][1]:
        raise ValueError("a curve figure needs at least one non-empty series")
    ticks = [x for x, _ in series[0][1]]
    width, height = 560, 300
    left, right, top, bottom = 72, 96, 56, 48
    plot_w, plot_h = width - left - right, height - top - bottom
    y_values = [y for _, points in series for _, y in points]
    y_max = max(max(y_values), 1e-9)
    y_min = min(min(y_values), 0.0)
    span = y_max - y_min or 1.0

    def sx(index: int) -> float:
        if len(ticks) == 1:
            return left + plot_w / 2
        return left + plot_w * index / (len(ticks) - 1)

    def sy(value: float) -> float:
        return top + plot_h * (1.0 - (value - y_min) / span)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_esc(title)}">',
        f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="16" y="28" {_FONT} font-size="15" font-weight="600" '
        f'fill="{TEXT_PRIMARY}">{_esc(title)}</text>',
        f'<text x="16" y="44" {_FONT} font-size="11" '
        f'fill="{TEXT_SECONDARY}">{_esc(y_label)} by {_esc(x_label)}</text>',
    ]
    for fraction in (0.0, 0.5, 1.0):
        gy = top + plot_h * fraction
        gv = y_min + span * (1.0 - fraction)
        parts.append(
            f'<line x1="{left}" y1="{_fmt(gy)}" x2="{left + plot_w}" '
            f'y2="{_fmt(gy)}" stroke="{GRIDLINE}" stroke-width="1"/>')
        parts.append(
            f'<text x="{left - 8}" y="{_fmt(gy + 3.5)}" {_FONT} '
            f'font-size="10" fill="{TEXT_MUTED}" '
            f'text-anchor="end">{gv:.2f}</text>')
    parts.append(
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="{AXIS}" stroke-width="1"/>')
    for index, tick in enumerate(ticks):
        parts.append(
            f'<text x="{_fmt(sx(index))}" y="{top + plot_h + 18}" {_FONT} '
            f'font-size="10" fill="{TEXT_MUTED}" '
            f'text-anchor="middle">{_esc(tick)}</text>')
    for series_index, (name, points) in enumerate(series):
        color = CATEGORICAL[series_index % len(CATEGORICAL)]
        coords = " ".join(f"{_fmt(sx(i))},{_fmt(sy(y))}"
                          for i, (_, y) in enumerate(points))
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>')
        for i, (_, y) in enumerate(points):
            parts.append(
                f'<circle cx="{_fmt(sx(i))}" cy="{_fmt(sy(y))}" r="4" '
                f'fill="{color}" stroke="{SURFACE}" stroke-width="2"/>')
            parts.append(
                f'<text x="{_fmt(sx(i))}" y="{_fmt(sy(y) - 10)}" {_FONT} '
                f'font-size="10" fill="{TEXT_SECONDARY}" '
                f'text-anchor="middle">{y:.3g}</text>')
        end_x, end_y = sx(len(points) - 1), sy(points[-1][1])
        parts.append(
            f'<text x="{_fmt(end_x + 10)}" y="{_fmt(end_y + 3.5)}" {_FONT} '
            f'font-size="11" fill="{TEXT_PRIMARY}">{_esc(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
