"""Incremental campaign execution over the scheduler/cache substrate.

The runner walks the manifest's dependency-ordered steps and *always*
re-runs every step — which is cheap, because sweep steps stream their
cells through the shared :class:`~repro.experiments.cache.RunCache`: a
step that already completed replays entirely from cache (verified, not
trusted), a step killed mid-flight re-executes only its missing cells,
and a grown seed budget computes only the new column.  The checkpoint
journal (:class:`~repro.campaign.state.CampaignState`) makes the
progress observable and the digests auditable across runs; the cache
makes the resume *correct*.

Determinism contract: a campaign interrupted at any point and resumed
produces byte-identical step digests, analyses, figures, and report body
to an uninterrupted run.  That holds because records come from the cache
(content-addressed), merged metrics replay from the cache's observability
sidecar in task-stream order, and everything the report derives from is
one of those two.  Wall-clock only ever flows into the journal, the
progress file, and ``telemetry.json`` — never into a digest or the
report body.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..analysis.mitigations import section5_from_matrix
from ..experiments.cache import RunCache
from ..experiments.matrix import DefenseMatrixResult, run_defense_matrix
from ..experiments.runner import ExperimentSpec
from ..experiments.scheduler import SweepScheduler, SweepStats
from .figures import (
    render_curve_svg,
    render_heatmap_markdown,
    render_heatmap_svg,
    svg_digest,
)
from .manifest import CampaignManifest, GridSweep, MatrixSweep, Step
from .report import emit_report
from .state import CampaignState, _atomic_write_json

#: ``on_progress(step_name, done, total)`` — the campaign-level mirror of
#: the scheduler's PR-5 ``(done, total)`` callback.
CampaignProgress = Callable[[str, int, int], None]


class CampaignError(RuntimeError):
    """A step failed; the journal records it and the campaign is resumable."""

    def __init__(self, step: str, cause: BaseException) -> None:
        super().__init__(f"campaign step {step!r} failed: {cause}")
        self.step = step
        self.cause = cause


@dataclass
class StepOutcome:
    """What one step produced in this run (digest + observability)."""

    name: str
    kind: str
    status: str
    digest: str = ""
    previous_digest: Optional[str] = None
    expected_digest: Optional[str] = None
    lines: list[str] = field(default_factory=list)
    artifacts: dict[str, str] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)
    metrics: Optional[dict[str, Any]] = None

    @property
    def drifted(self) -> bool:
        return bool(self.previous_digest) and self.previous_digest != self.digest

    @property
    def pin_ok(self) -> Optional[bool]:
        if self.expected_digest is None:
            return None
        return self.expected_digest == self.digest


@dataclass
class CampaignResult:
    """Everything one campaign run produced, report directory included."""

    manifest: CampaignManifest
    directory: Path
    outcomes: list[StepOutcome]
    report_dir: Optional[Path] = None

    def outcome(self, name: str) -> StepOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no step outcome named {name!r}")

    def step_digests(self) -> dict[str, str]:
        return {outcome.name: outcome.digest for outcome in self.outcomes}

    def formatted(self) -> str:
        lines = [f"campaign {self.manifest.name!r}: "
                 f"{len(self.outcomes)} steps"]
        for outcome in self.outcomes:
            flags = []
            if outcome.drifted:
                flags.append(f"DRIFT (was {outcome.previous_digest[:12]})")
            if outcome.pin_ok is False:
                flags.append(f"PIN MISMATCH (expected "
                             f"{outcome.expected_digest[:12]})")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"  {outcome.name:<28} {outcome.status:<6} "
                         f"{outcome.digest[:12]}{suffix}")
        return "\n".join(lines)


def _text_digest(lines: list[str]) -> str:
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


class CampaignRunner:
    """Drive one campaign directory: state journal, cache, progress file."""

    def __init__(self, manifest: CampaignManifest, directory: Path,
                 workers: int = 1,
                 on_progress: Optional[CampaignProgress] = None,
                 progress_interval: float = 0.2) -> None:
        self.manifest = manifest
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.on_progress = on_progress
        self.progress_interval = progress_interval
        self.steps: list[Step] = manifest.steps()
        self._fingerprint = manifest.fingerprint()
        self.state = CampaignState(self.directory / "state.json",
                                   manifest.name, self._fingerprint,
                                   [step.name for step in self.steps])
        self.cache = RunCache(self.directory / "cache")
        self.progress_path = self.directory / "progress.json"
        self._progress: dict[str, dict[str, int | str]] = {}
        self._last_flush = 0.0

    # -- live progress surface ----------------------------------------------
    def _flush_progress(self, force: bool = False) -> None:
        nowish = time.monotonic()
        if not force and nowish - self._last_flush < self.progress_interval:
            return
        self._last_flush = nowish
        done = sum(int(entry.get("done", 0)) for entry in self._progress.values())
        total = sum(int(entry.get("total", 0)) for entry in self._progress.values())
        _atomic_write_json(self.progress_path, {
            "campaign": self.manifest.name,
            "fingerprint": self._fingerprint,
            "run": self.state.runs,
            "tasks_done": done,
            "tasks_total": total,
            "steps": self._progress,
        })

    def _step_progress(self, step_name: str, done: int, total: int,
                       status: str) -> None:
        self._progress[step_name] = {"status": status, "done": done,
                                     "total": total}
        self._flush_progress(force=status != "running")
        if self.on_progress is not None:
            self.on_progress(step_name, done, total)

    # -- execution -----------------------------------------------------------
    def run(self) -> CampaignResult:
        self.state.begin_run()
        self._progress = {
            step.name: {"status": "pending", "done": 0,
                        "total": step.payload.cell_count
                        if step.kind == "sweep" else 1}
            for step in self.steps
        }
        self._flush_progress(force=True)
        results: dict[str, Any] = {}
        outcomes: list[StepOutcome] = []
        report_dir: Optional[Path] = None
        for step in self.steps:
            started = time.monotonic()
            try:
                if step.kind == "sweep":
                    outcome = self._run_sweep(step, results)
                elif step.kind == "analysis":
                    outcome = self._run_analysis(step, results)
                elif step.kind == "figure":
                    outcome = self._run_figure(step, results)
                else:  # report
                    outcome, report_dir = self._run_report(step, outcomes)
            except Exception as exc:
                self.state.step_failed(step.name, f"{type(exc).__name__}: {exc}")
                self._step_progress(step.name,
                                    int(self._progress[step.name]["done"]),
                                    int(self._progress[step.name]["total"]),
                                    "failed")
                raise CampaignError(step.name, exc) from exc
            outcome.telemetry.setdefault("wall_seconds",
                                         time.monotonic() - started)
            outcome.previous_digest = self.state.previous_digest(step.name)
            outcome.expected_digest = self.manifest.expected_digest(step.name)
            outcomes.append(outcome)
            total = int(self._progress[step.name]["total"])
            self._step_progress(step.name, total, total, "done")
        self._flush_progress(force=True)
        return CampaignResult(manifest=self.manifest, directory=self.directory,
                              outcomes=outcomes, report_dir=report_dir)

    def _run_sweep(self, step: Step, results: dict[str, Any]) -> StepOutcome:
        sweep = step.payload
        total = sweep.cell_count
        self.state.step_started(step.name, total)
        self._step_progress(step.name, 0, total, "running")

        def cell_progress(done: int, _total: int) -> None:
            self._step_progress(step.name, done, total, "running")

        started = time.monotonic()
        if isinstance(sweep, MatrixSweep):
            result: Any = run_defense_matrix(
                attacks=sweep.attacks, stacks=sweep.stacks, seeds=sweep.seeds,
                workers=self.workers, cache=self.cache,
                on_progress=cell_progress, collect_metrics=True)
            stats = result.sweep_stats
        elif isinstance(sweep, GridSweep):
            spec = ExperimentSpec(scenario=sweep.scenario, seeds=sweep.seeds,
                                  base_params=sweep.base_params_dict,
                                  grid=sweep.grid_dict)
            scheduler = SweepScheduler(workers=self.workers, cache=self.cache,
                                       on_progress=cell_progress,
                                       collect_metrics=True)
            spec_results, stats = scheduler.run_specs([spec])
            result = spec_results[0]
        else:  # pragma: no cover - manifest validation prevents this
            raise TypeError(f"unknown sweep payload: {sweep!r}")
        digest = result.digest()
        telemetry = _sweep_telemetry(stats, time.monotonic() - started)
        metrics_dict = (stats.metrics.to_dict()
                        if stats is not None and stats.metrics is not None
                        else None)
        self.state.step_completed(step.name, digest, seeds=list(sweep.seeds),
                                  metrics=metrics_dict, telemetry=telemetry)
        results[step.name] = result
        return StepOutcome(name=step.name, kind="sweep", status="done",
                           digest=digest, telemetry=telemetry,
                           metrics=metrics_dict)

    def _run_analysis(self, step: Step, results: dict[str, Any]) -> StepOutcome:
        analysis = step.payload
        self.state.step_started(step.name, 1)
        self._step_progress(step.name, 0, 1, "running")
        matrix = results[f"sweep:{analysis.sweep}"]
        if analysis.kind == "section5":
            comparisons = section5_from_matrix(matrix)
            lines = [comparison.formatted() for comparison in comparisons]
            agree = all(c.verdict_agrees and c.fraction_agrees
                        for c in comparisons)
            lines.append(f"all rows agree with closed form: {agree}")
        else:  # success_summary
            lines = _success_summary(matrix)
        digest = _text_digest(lines)
        self.state.step_completed(step.name, digest)
        results[step.name] = lines
        return StepOutcome(name=step.name, kind="analysis", status="done",
                           digest=digest, lines=lines)

    def _run_figure(self, step: Step, results: dict[str, Any]) -> StepOutcome:
        figure = step.payload
        self.state.step_started(step.name, 1)
        self._step_progress(step.name, 0, 1, "running")
        sweep = self.manifest.sweep(figure.sweep)
        result = results[f"sweep:{figure.sweep}"]
        artifacts: dict[str, str] = {}
        lines: list[str] = []
        if figure.kind == "heatmap":
            title = figure.title or (f"{self.manifest.name}: attack success "
                                     f"by defense stack")
            rows = [attack.label for attack in sweep.attacks]
            cols = [stack.name for stack in sweep.stacks]
            table = result.success_table()
            values = [[table.get(row, {}).get(col) for col in cols]
                      for row in rows]
            svg = render_heatmap_svg(title, rows, cols, values)
            artifacts[f"{figure.name}.svg"] = svg
            lines = render_heatmap_markdown(rows, cols, values).splitlines()
        else:  # curve
            title = figure.title or f"{figure.y} by {figure.x}"
            ticks = [str(value) for value in sweep.grid_dict[figure.x]]
            groups = result.group_by(figure.x)
            points: list[tuple[str, float]] = []
            for value, tick in zip(sweep.grid_dict[figure.x], ticks):
                group = groups.get((value,))
                numbers = group.numeric_values(figure.y) if group else []
                mean = sum(numbers) / len(numbers) if numbers else 0.0
                points.append((tick, mean))
                lines.append(f"{figure.x}={tick}: mean {figure.y} = {mean:.6g} "
                             f"over {len(numbers)} run(s)")
            svg = render_curve_svg(title, figure.x, figure.y,
                                   [(figure.y, points)])
            artifacts[f"{figure.name}.svg"] = svg
        digest = svg_digest(svg)
        self.state.step_completed(step.name, digest)
        return StepOutcome(name=step.name, kind="figure", status="done",
                           digest=digest, lines=lines, artifacts=artifacts)

    def _run_report(self, step: Step, outcomes: list[StepOutcome]
                    ) -> tuple[StepOutcome, Path]:
        self.state.step_started(step.name, 1)
        self._step_progress(step.name, 0, 1, "running")
        report_dir, report_md = emit_report(self.directory, self.manifest,
                                            outcomes, self.state)
        digest = hashlib.sha256(report_md.encode("utf-8")).hexdigest()
        self.state.step_completed(step.name, digest)
        outcome = StepOutcome(name=step.name, kind="report", status="done",
                              digest=digest)
        return outcome, report_dir


def _sweep_telemetry(stats: Optional[SweepStats],
                     wall_seconds: float) -> dict[str, Any]:
    telemetry: dict[str, Any] = {"wall_seconds": wall_seconds}
    if stats is None:
        return telemetry
    telemetry.update({
        "tasks": stats.tasks_total,
        "cache_hits": stats.cache_hits,
        "executed": stats.executed,
        "chunks": stats.chunks,
        "tasks_retried": stats.tasks_retried,
        "trace_evictions": stats.trace_evictions,
        "cache_write_errors": stats.cache_write_errors,
        "cache_duplicate_lines": stats.cache_duplicate_lines,
        "metrics_missing": stats.metrics_missing,
        "task_seconds_total": stats.task_seconds_total,
    })
    return telemetry


def _success_summary(matrix: DefenseMatrixResult) -> list[str]:
    """Per-attack best stacks and the stacks clearing the whole grid."""
    table = matrix.success_table()
    stack_names = [stack.name for stack in matrix.stacks]
    lines = []
    clear_all = [name for name in stack_names
                 if all(table[attack.label].get(name, 1.0) == 0.0
                        for attack in matrix.attacks)]
    for attack in matrix.attacks:
        row = table[attack.label]
        best_rate = min(row[name] for name in stack_names)
        best = [name for name in stack_names if row[name] == best_rate]
        lines.append(f"{attack.label}: best stacks {', '.join(best)} "
                     f"(success rate {best_rate:.2f})")
    lines.append("stacks clearing every attack: "
                 + (", ".join(clear_all) if clear_all else "none"))
    return lines


def campaign_status(directory: Path) -> str:
    """The ``campaign status`` text view: journal + live progress file.

    Works while a campaign is running in another process (both files are
    written atomically) and after it finished or died.
    """
    directory = Path(directory)
    state_data = CampaignState.load(directory / "state.json")
    if state_data is None:
        return f"no readable campaign state under {directory}"
    lines = [f"campaign {state_data.get('campaign')!r} "
             f"(fingerprint {str(state_data.get('fingerprint', ''))[:12]}, "
             f"runs={state_data.get('runs', 0)})"]
    progress: dict[str, Any] = {}
    try:
        raw = (directory / "progress.json").read_text(encoding="utf-8")
        progress = json.loads(raw).get("steps", {})
    except (OSError, ValueError):
        progress = {}
    for name, entry in state_data.get("steps", {}).items():
        status = entry.get("status", "pending")
        live = progress.get(name) or {}
        parts = [f"  {name:<28} {status:<8}"]
        if live.get("total"):
            parts.append(f"{live.get('done', 0)}/{live['total']} tasks")
        if entry.get("digest"):
            parts.append(f"digest={entry['digest'][:12]}")
        telemetry = entry.get("telemetry") or {}
        if "cache_hits" in telemetry:
            parts.append(f"cache_hits={telemetry['cache_hits']}")
        if "wall_seconds" in telemetry:
            parts.append(f"wall={telemetry['wall_seconds']:.2f}s")
        if entry.get("error"):
            parts.append(f"error={entry['error']}")
        lines.append(" ".join(parts))
    return "\n".join(lines)
