"""Self-contained campaign report artifacts.

Every campaign run ends by emitting ``<dir>/report/``:

``report.md``
    The deterministic study document — manifest summary, the digest
    ledger with drift/pin highlighting, each analysis, each figure's
    markdown/text view, and the merged-metrics appendix.  Contains no
    wall-clock, timestamps, or run counters, so an interrupted-and-resumed
    campaign emits byte-identical bytes to an uninterrupted one.
``<figure>.svg``
    Zero-dependency figures referenced from the markdown, also
    byte-deterministic.
``progress.json``
    A machine-readable completion snapshot (step → status/digest), also
    deterministic.
``telemetry.json``
    The run-specific appendix: per-step wall-clock, cache hits, executed
    counts, run number.  This file is *expected* to differ between runs;
    keeping it out of ``report.md`` is what lets everything else be
    byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..obs.metrics import MetricsSnapshot
from .state import CampaignState, _atomic_write_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .manifest import CampaignManifest
    from .runner import StepOutcome


def _ledger_rows(outcomes: list[StepOutcome]) -> list[str]:
    """Digest ledger: one row per non-report step, drift and pins called out.

    "ok" covers both first-ever completion and a verified re-run — the two
    must render identically or resumed and fresh campaign directories would
    produce different reports.  Only an actual digest *change* (drift) or a
    violated manifest pin gets flagged.
    """
    rows = ["| step | digest | status |", "|---|---|---|"]
    for outcome in outcomes:
        status = "ok"
        if outcome.drifted:
            status = f"**DRIFT** (was `{outcome.previous_digest[:12]}`)"
        if outcome.pin_ok is True:
            status += ", pinned"
        elif outcome.pin_ok is False:
            status = (f"**PIN MISMATCH** (expected "
                      f"`{outcome.expected_digest[:12]}`)")
        rows.append(f"| `{outcome.name}` | `{outcome.digest[:12]}` | {status} |")
    return rows


def build_report_markdown(manifest: CampaignManifest,
                          outcomes: list[StepOutcome]) -> str:
    lines = [f"# Campaign report: {manifest.name}", ""]
    lines.append(f"Manifest fingerprint: `{manifest.fingerprint()[:12]}`")
    lines.append("")

    lines.append("## Study")
    lines.append("")
    for sweep in manifest.sweeps:
        if sweep.kind == "matrix":
            lines.append(f"- sweep `{sweep.name}` (matrix): "
                         f"{len(sweep.attacks)} attacks x "
                         f"{len(sweep.stacks)} stacks x "
                         f"{len(sweep.seeds)} seeds = "
                         f"{sweep.cell_count} cells")
        else:
            lines.append(f"- sweep `{sweep.name}` (grid): scenario "
                         f"`{sweep.scenario}`, "
                         f"{sweep.cell_count} cells over seeds "
                         f"{list(sweep.seeds)}")
    lines.append("")

    lines.append("## Digest ledger")
    lines.append("")
    lines.extend(_ledger_rows([o for o in outcomes if o.kind != "report"]))
    lines.append("")

    for outcome in outcomes:
        if outcome.kind == "analysis":
            lines.append(f"## Analysis: {outcome.name.split(':', 1)[1]}")
            lines.append("")
            lines.append("```")
            lines.extend(outcome.lines)
            lines.append("```")
            lines.append("")
    for outcome in outcomes:
        if outcome.kind == "figure":
            figure_name = outcome.name.split(":", 1)[1]
            lines.append(f"## Figure: {figure_name}")
            lines.append("")
            for filename in sorted(outcome.artifacts):
                lines.append(f"![{figure_name}]({filename})")
            lines.append("")
            if outcome.lines:
                first = outcome.lines[0]
                if first.startswith("|"):
                    lines.extend(outcome.lines)
                else:
                    lines.append("```")
                    lines.extend(outcome.lines)
                    lines.append("```")
                lines.append("")

    metric_outcomes = [o for o in outcomes if o.kind == "sweep" and o.metrics]
    if metric_outcomes:
        lines.append("## Merged metrics appendix")
        lines.append("")
        lines.append("Per-sweep `MetricsSnapshot`s folded in task-stream "
                     "order; replayed from the cache's observability sidecar "
                     "on resumed runs, so these values are "
                     "worker-count- and interruption-independent.")
        lines.append("")
        for outcome in metric_outcomes:
            snapshot = MetricsSnapshot.from_dict(outcome.metrics)
            lines.append(f"### `{outcome.name}`")
            lines.append("")
            lines.append("```")
            lines.extend(snapshot.formatted() or ["(no metrics recorded)"])
            lines.append("```")
            lines.append("")

    lines.append("Per-step wall-clock and cache telemetry: `telemetry.json` "
                 "(run-specific, intentionally outside this document).")
    lines.append("")
    return "\n".join(lines)


def emit_report(directory: Path, manifest: CampaignManifest,
                outcomes: list[StepOutcome],
                state: CampaignState) -> tuple[Path, str]:
    """Write the report directory; returns ``(report_dir, report_md)``."""
    report_dir = Path(directory) / "report"
    report_dir.mkdir(parents=True, exist_ok=True)
    for outcome in outcomes:
        for filename, content in outcome.artifacts.items():
            (report_dir / filename).write_text(content, encoding="utf-8")
    report_md = build_report_markdown(manifest, outcomes)
    (report_dir / "report.md").write_text(report_md, encoding="utf-8")

    completion: dict[str, Any] = {
        "campaign": manifest.name,
        "fingerprint": manifest.fingerprint(),
        "steps": {outcome.name: {"status": outcome.status,
                                 "digest": outcome.digest}
                  for outcome in outcomes},
    }
    _atomic_write_json(report_dir / "progress.json", completion)

    telemetry: dict[str, Any] = {
        "campaign": manifest.name,
        "run": state.runs,
        "steps": {outcome.name: outcome.telemetry for outcome in outcomes},
    }
    (report_dir / "telemetry.json").write_text(
        json.dumps(telemetry, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return report_dir, report_md
