"""CLI for campaigns: ``python -m repro.campaign {run,status} ...``.

``run`` executes (or resumes) a manifest JSON file in a campaign
directory and prints the per-step digest summary; ``status`` renders the
live text view from the checkpoint journal and progress file, usable
while another process is mid-run and after a kill.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import CampaignError, CampaignManifest, CampaignRunner, campaign_status


def _progress_printer(step: str, done: int, total: int) -> None:
    print(f"\r{step}: {done}/{total}", end="", file=sys.stderr, flush=True)
    if done >= total:
        print(file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.campaign",
                                     description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run or resume a campaign")
    run.add_argument("manifest", type=Path, help="manifest JSON file")
    run.add_argument("--dir", type=Path, required=True,
                     help="campaign directory (journal, cache, report)")
    run.add_argument("--workers", type=int, default=1)
    run.add_argument("--quiet", action="store_true",
                     help="suppress live progress on stderr")

    status = commands.add_parser("status", help="show campaign status")
    status.add_argument("--dir", type=Path, required=True)

    options = parser.parse_args(argv)
    if options.command == "status":
        print(campaign_status(options.dir))
        return 0

    try:
        spec = json.loads(options.manifest.read_text(encoding="utf-8"))
        manifest = CampaignManifest.from_spec(spec)
    except (OSError, ValueError) as exc:
        print(f"invalid manifest: {exc}", file=sys.stderr)
        return 2
    runner = CampaignRunner(
        manifest, options.dir, workers=options.workers,
        on_progress=None if options.quiet else _progress_printer)
    try:
        result = runner.run()
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(campaign_status(options.dir))
        return 1
    print(result.formatted())
    print(f"report: {result.report_dir / 'report.md'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
