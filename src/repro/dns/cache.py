"""A TTL-driven DNS cache.

The cache is the piece of DNS state the whole attack pivots on.  The paper's
observation (§IV) is that the attacker sets the TTL of the poisoned records
*above 24 hours*, so that every one of Chronos' subsequent hourly pool
queries is answered from the resolver's cache — the benign nameservers never
get another chance to contribute servers to the pool.

The cache therefore tracks, per entry, the simulated insertion time, the
original TTL and whether the entry was produced by a poisoned response, so
experiments can report exactly which pool members were attacker-controlled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .records import RecordType, ResourceRecord
from .wire import normalise_name


@dataclass
class CacheEntry:
    """All records cached for one (name, type) key, from one response."""

    records: list[ResourceRecord]
    inserted_at: float
    ttl: int
    poisoned: bool = False

    def expires_at(self) -> float:
        return self.inserted_at + self.ttl

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at()

    def remaining_ttl(self, now: float) -> int:
        return max(0, int(self.expires_at() - now))


@dataclass
class CacheStats:
    """Hit/miss/poisoning counters for experiment reporting."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    poisoned_insertions: int = 0
    expirations: int = 0
    #: Lookups answered from an expired entry inside the serve-stale window.
    stale_hits: int = 0


class DNSCache:
    """A per-resolver cache keyed by (normalised name, record type).

    ``max_ttl`` models the TTL cap some resolvers apply (and one of the
    mitigations §V discusses for Chronos itself — a cap below 24 h removes
    the "answer everything from cache" amplification).
    """

    def __init__(self, max_ttl: Optional[int] = None, min_ttl: int = 0,
                 serve_stale_window: float = 0.0) -> None:
        self.max_ttl = max_ttl
        self.min_ttl = min_ttl
        #: RFC 8767: how long past expiry an entry remains retrievable via
        #: :meth:`lookup_stale` (0 = classic immediate-eviction behaviour).
        self.serve_stale_window = serve_stale_window
        self._entries: dict[tuple[str, RecordType], CacheEntry] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, name: str, rtype: RecordType) -> tuple[str, RecordType]:
        return (normalise_name(name), rtype)

    def insert(self, name: str, rtype: RecordType, records: list[ResourceRecord],
               now: float, poisoned: bool = False) -> CacheEntry:
        """Cache the records of one response under (name, rtype).

        The entry TTL is the minimum record TTL, clamped to [min_ttl, max_ttl].
        """
        if not records:
            raise ValueError("cannot cache an empty record set")
        ttl = min(record.ttl for record in records)
        if self.max_ttl is not None:
            ttl = min(ttl, self.max_ttl)
        ttl = max(ttl, self.min_ttl)
        entry = CacheEntry(records=list(records), inserted_at=now, ttl=ttl, poisoned=poisoned)
        self._entries[self._key(name, rtype)] = entry
        self.stats.insertions += 1
        if poisoned:
            self.stats.poisoned_insertions += 1
        return entry

    def lookup(self, name: str, rtype: RecordType, now: float) -> Optional[CacheEntry]:
        """Return the live entry for (name, rtype), or ``None`` on miss/expiry.

        Expired entries are evicted — unless they are still inside the
        serve-stale window, in which case the lookup is a miss (fresh data
        is wanted) but the entry survives for :meth:`lookup_stale`.
        """
        key = self._key(name, rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.is_expired(now):
            if now >= entry.expires_at() + self.serve_stale_window:
                del self._entries[key]
                self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def lookup_stale(self, name: str, rtype: RecordType, now: float) -> Optional[CacheEntry]:
        """An *expired* entry still inside the serve-stale window, or ``None``.

        The RFC 8767 fallback path: callers try :meth:`lookup` first and
        fall back to this when they would otherwise re-resolve.  Entries
        past the window are evicted here exactly as :meth:`lookup` does.
        """
        key = self._key(name, rtype)
        entry = self._entries.get(key)
        if entry is None or not entry.is_expired(now):
            return None
        if now >= entry.expires_at() + self.serve_stale_window:
            del self._entries[key]
            self.stats.expirations += 1
            return None
        self.stats.stale_hits += 1
        return entry

    def peek(self, name: str, rtype: RecordType) -> Optional[CacheEntry]:
        """Return the entry without affecting statistics or expiring it."""
        return self._entries.get(self._key(name, rtype))

    def flush(self) -> None:
        """Drop every entry (resolver restart)."""
        self._entries.clear()

    def evict(self, name: str, rtype: RecordType) -> None:
        """Remove one entry if present."""
        self._entries.pop(self._key(name, rtype), None)

    def poisoned_names(self) -> list[str]:
        """Names currently served from poisoned entries."""
        return [name for (name, _), entry in self._entries.items() if entry.poisoned]
