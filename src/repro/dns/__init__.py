"""DNS substrate: wire format, records, messages, caching resolver, nameservers."""

from .cache import CacheEntry, CacheStats, DNSCache
from .message import (
    CLASSIC_UDP_LIMIT,
    COMPRESSED_A_RECORD_SIZE,
    DNS_HEADER_SIZE,
    MAX_UNFRAGMENTED_UDP_PAYLOAD,
    OPT_RECORD_SIZE,
    DNSMessage,
    Opcode,
    Question,
    ResponseCode,
    max_a_records_for_payload,
    response_size_for_a_records,
)
from .nameserver import (
    DNS_PORT,
    POOL_NTP_ORG_TTL,
    POOL_RECORDS_PER_RESPONSE,
    AuthoritativeNameserver,
    PoolNTPNameserver,
)
from .records import (
    SECONDS_PER_DAY,
    RecordClass,
    RecordType,
    ResourceRecord,
    a_record,
    opt_record,
)
from .resolver import DNSStub, PendingUpstreamQuery, RecursiveResolver, ResolverPolicy
from .wire import WireFormatError, decode_name, encode_name, normalise_name

__all__ = [
    "CacheEntry",
    "CacheStats",
    "DNSCache",
    "CLASSIC_UDP_LIMIT",
    "COMPRESSED_A_RECORD_SIZE",
    "DNS_HEADER_SIZE",
    "MAX_UNFRAGMENTED_UDP_PAYLOAD",
    "OPT_RECORD_SIZE",
    "DNSMessage",
    "Opcode",
    "Question",
    "ResponseCode",
    "max_a_records_for_payload",
    "response_size_for_a_records",
    "DNS_PORT",
    "POOL_NTP_ORG_TTL",
    "POOL_RECORDS_PER_RESPONSE",
    "AuthoritativeNameserver",
    "PoolNTPNameserver",
    "SECONDS_PER_DAY",
    "RecordClass",
    "RecordType",
    "ResourceRecord",
    "a_record",
    "opt_record",
    "DNSStub",
    "PendingUpstreamQuery",
    "RecursiveResolver",
    "ResolverPolicy",
    "WireFormatError",
    "decode_name",
    "encode_name",
    "normalise_name",
]
