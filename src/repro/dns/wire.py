"""DNS wire-format primitives: domain-name encoding and compression.

The reproduction encodes DNS messages to real wire bytes because two of the
paper's quantitative claims are *size* claims:

* a benign pool.ntp.org response (4 A records) is small and unfragmented,
  but the nameservers are willing to fragment larger responses down to an
  MTU of 548 bytes — which is what the poisoning vector needs;
* an attacker can fit "up to 89" A records into a single non-fragmented DNS
  response (§IV), which is what lets a single successful poisoning flood the
  Chronos pool with malicious servers.

Both are computed from the byte layout implemented here, not hard-coded.
"""

from __future__ import annotations

from functools import lru_cache

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
POINTER_FLAG = 0xC0


class WireFormatError(ValueError):
    """Raised when encoding or decoding malformed DNS wire data."""


def normalise_name(name: str) -> str:
    """Lower-case a domain name and strip any trailing dot.

    DNS names are case-insensitive; the cache and the poisoning checks all
    operate on normalised names so ``Pool.NTP.org.`` and ``pool.ntp.org``
    collide as they do in a real resolver.
    """
    return name.rstrip(".").lower()


@lru_cache(maxsize=4096)
def _validated_labels(name: str) -> tuple[str, ...]:
    """Split an already-normalised name into validated labels.

    Cached because experiments encode the same handful of names (the zone
    apex, sub-pools, attacker decoys) millions of times per sweep; splitting
    and re-validating per encode dominated the encode path.
    """
    if not name:
        return ()
    labels = tuple(name.split("."))
    for label in labels:
        if not label:
            raise WireFormatError(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise WireFormatError(f"label too long in {name!r}")
    encoded_length = sum(len(label) + 1 for label in labels) + 1
    if encoded_length > MAX_NAME_LENGTH:
        raise WireFormatError(f"name too long: {name!r}")
    return labels


def name_to_labels(name: str) -> list[str]:
    """Split a domain name into its labels, validating lengths."""
    return list(_validated_labels(normalise_name(name)))


def encode_name(name: str, compression: dict[str, int] = None, offset: int = 0) -> bytes:
    """Encode a domain name, optionally using/updating a compression map.

    ``compression`` maps a (normalised) name suffix to the wire offset where
    it was first written.  When a suffix is already present a 2-byte pointer
    is emitted instead, which is how a real response packs 89 A records whose
    owner name is all the same.
    """
    if compression is None:
        return _plain_name_wire(normalise_name(name))
    labels = name_to_labels(name)
    out = bytearray()
    for index in range(len(labels)):
        suffix = ".".join(labels[index:])
        if suffix in compression:
            pointer = compression[suffix]
            out += bytes([POINTER_FLAG | (pointer >> 8), pointer & 0xFF])
            return bytes(out)
        if offset + len(out) <= 0x3FFF:
            compression[suffix] = offset + len(out)
        label = labels[index]
        out += bytes([len(label)]) + label.encode("ascii")
    out += b"\x00"
    return bytes(out)


@lru_cache(maxsize=4096)
def _plain_name_wire(name: str) -> bytes:
    """Uncompressed wire encoding of an already-normalised name (cached)."""
    out = bytearray()
    for label in _validated_labels(name):
        out += bytes([len(label)]) + label.encode("ascii")
    out += b"\x00"
    return bytes(out)


def encoded_name_length(name: str, compressed: bool) -> int:
    """Length in bytes of an encoded name (2 when a compression pointer is used)."""
    if compressed:
        return 2
    labels = name_to_labels(name)
    return sum(len(label) + 1 for label in labels) + 1


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns ``(name, next_offset)`` where ``next_offset`` is the offset just
    past the name *in the original position* (pointers do not advance it
    beyond the 2 pointer bytes).
    """
    labels: list[str] = []
    position = offset
    jumped = False
    next_offset = offset
    seen_pointers = set()
    while True:
        if position >= len(data):
            raise WireFormatError("truncated name")
        length = data[position]
        if length & POINTER_FLAG == POINTER_FLAG:
            if position + 1 >= len(data):
                raise WireFormatError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[position + 1]
            if pointer in seen_pointers:
                raise WireFormatError("compression pointer loop")
            seen_pointers.add(pointer)
            if not jumped:
                next_offset = position + 2
                jumped = True
            position = pointer
            continue
        if length & POINTER_FLAG:
            raise WireFormatError(f"reserved label type 0x{length:02x}")
        position += 1
        if length == 0:
            if not jumped:
                next_offset = position
            break
        if position + length > len(data):
            raise WireFormatError("truncated label")
        labels.append(data[position:position + length].decode("ascii"))
        position += length
    return ".".join(labels), next_offset


def apply_case_pattern(name_bytes: bytes, nonce: int) -> bytes:
    """Re-case the letters of an encoded (uncompressed) name per ``nonce``.

    Bit *i* of ``nonce`` (LSB first) decides whether the *i*-th alphabetic
    character is upper-cased — the DNS-0x20 encoding: the case pattern rides
    inside the question name itself, so it is covered by the very bytes a
    response must echo.
    """
    out = bytearray(name_bytes)
    position = 0
    bit = 0
    while position < len(out):
        length = out[position]
        if length == 0 or length & POINTER_FLAG:
            break
        position += 1
        for index in range(position, position + length):
            char = out[index]
            if 65 <= char <= 90 or 97 <= char <= 122:
                out[index] = (char & ~0x20) if (nonce >> bit) & 1 else (char | 0x20)
                bit += 1
        position += length
    return bytes(out)


def extract_case_pattern(name_bytes: bytes) -> tuple[int, int]:
    """Recover ``(nonce, letter_count)`` from an encoded name's letter cases."""
    nonce = 0
    bit = 0
    position = 0
    while position < len(name_bytes):
        length = name_bytes[position]
        if length == 0 or length & POINTER_FLAG:
            break
        position += 1
        for index in range(position, position + length):
            char = name_bytes[index]
            if 65 <= char <= 90:
                nonce |= 1 << bit
                bit += 1
            elif 97 <= char <= 122:
                bit += 1
        position += length
    return nonce, bit


def letter_count(name: str) -> int:
    """Number of alphabetic characters in a name (the 0x20 entropy in bits)."""
    return sum(1 for char in normalise_name(name) if char.isalpha())


def pack_uint16(value: int) -> bytes:
    if not 0 <= value <= 0xFFFF:
        raise WireFormatError(f"uint16 out of range: {value}")
    return value.to_bytes(2, "big")


def pack_uint32(value: int) -> bytes:
    if not 0 <= value <= 0xFFFFFFFF:
        raise WireFormatError(f"uint32 out of range: {value}")
    return value.to_bytes(4, "big")


def unpack_uint16(data: bytes, offset: int) -> int:
    if offset + 2 > len(data):
        raise WireFormatError("truncated uint16")
    return int.from_bytes(data[offset:offset + 2], "big")


def unpack_uint32(data: bytes, offset: int) -> int:
    if offset + 4 > len(data):
        raise WireFormatError("truncated uint32")
    return int.from_bytes(data[offset:offset + 4], "big")
