"""Recursive resolver and stub-resolver components.

The recursive resolver is the victim of the cache-poisoning attack.  Its
protections are a :class:`~repro.defenses.stack.DefenseStack`: the classic
off-path defences — random transaction id, random source port, and
source-address/question matching on responses — form the policy-derived
prefix of the stack, and experiments append hardening defenses (DNS-0x20,
cookies, signing validation, vantage cross-checks) on top.  The paper's
attacker goes *around* the classic set: the spoofed content arrives in the
second IPv4 fragment while all the validated fields live in the genuine
first fragment sent by the real nameserver (fragmentation vector), or the
attacker simply receives the query itself after a BGP hijack.

The resolver is also deliberately *shared*: the paper notes that resolvers
are typically shared by many systems, which lets the attacker trigger the DNS
query and run the poisoning race via a third-party protocol (SMTP, open
resolvers) independent of the Chronos client's own schedule.

Upstream queries travel over plaintext UDP unless a
:class:`~repro.dns.transport.ResolverUpstreamTransport` is attached (by the
``encrypted_transport`` defense, or lazily for the RFC 7766 retry of a
TC-truncated response) — truncated responses are never cached and never
answer a query on their own.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import Optional

from ..defenses.base import QueryContext, ResponseContext
from ..defenses.classic import default_resolver_defenses
from ..defenses.stack import DefenseStack
from ..netsim.network import Host, Network
from ..netsim.packets import UDPDatagram
from .cache import DNSCache
from .message import DNSMessage, ResponseCode
from .nameserver import DNS_PORT
from .records import RecordType
from .wire import normalise_name

#: Callback invoked with the answer addresses (possibly empty on failure).
LookupCallback = Callable[[list[str]], None]

#: TTL stamped on answers served from expired (stale) cache entries, per
#: RFC 8767 §4's recommendation that stale data be served with a TTL low
#: enough that clients re-ask soon.
STALE_ANSWER_TTL = 30


@dataclass
class PendingUpstreamQuery:
    """State for one query the resolver has forwarded upstream."""

    upstream_query: DNSMessage
    nameserver_address: str
    source_port: int
    client_address: Optional[str]
    client_port: Optional[int]
    client_query: Optional[DNSMessage]
    sent_at: float
    timeout_handle: object = None
    #: Retransmissions already spent on this query (see
    #: ``ResolverPolicy.query_retries``).
    attempts: int = 0
    #: The defense-stack context carrying per-query verification state.
    context: Optional[QueryContext] = None
    #: Whether a truncated UDP response already triggered the one-shot
    #: stream retry (RFC 7766 fallback) for this query.
    stream_retry: bool = False
    #: How the query most recently left the resolver: ``"udp"`` or
    #: ``"stream"``.  A query on a stream transport accepts no datagram
    #: answers — the check that keeps strict encrypted policies strict.
    sent_via: str = "udp"
    #: Times a pooled stream died with this query in flight and the
    #: transport re-sent it over a fresh connection (bounded; see
    #: :meth:`ResolverUpstreamTransport._connection_gone`).
    pool_redispatches: int = 0


@dataclass
class ResolverPolicy:
    """Validation and caching policy knobs relevant to the experiments."""

    #: Drop responses whose UDP source address is not the queried nameserver.
    check_source_address: bool = True
    #: Randomise the resolver's source port per query (RFC 5452).
    randomise_source_port: bool = True
    #: Accept reassembled (fragmented) responses at all.  The companion
    #: measurement found 90% of resolvers do; hardened ones do not.
    accept_fragmented_responses: bool = True
    #: Cap applied to TTLs of cached entries (None = no cap).  A cap below
    #: 24 h is one of the §V mitigations.
    max_cache_ttl: Optional[int] = None
    #: Maximum number of A records accepted from a single response
    #: (None = unlimited).  Limiting to 4 is the other §V mitigation.
    max_records_per_response: Optional[int] = None
    #: Whether this resolver answers queries from any client (an "open
    #: resolver"), which is one of the query-triggering avenues in §II.
    open_resolver: bool = False
    #: Query timeout in seconds before reporting failure to the client.
    query_timeout: float = 5.0
    #: Upstream retransmissions after a query timeout (0 = the classic
    #: fail-fast resolver every pinned experiment was run against).
    query_retries: int = 0
    #: Backoff before the first retransmission; doubles (by default) per
    #: subsequent retry.
    retry_backoff: float = 0.5
    retry_backoff_factor: float = 2.0
    #: Upper bound of uniform jitter added to each backoff.  Drawn from the
    #: simulator's RNG, so retry schedules stay deterministic per seed while
    #: still decorrelating concurrent queries.
    retry_jitter: float = 0.0
    #: Resolver-wide cap on total retransmissions (``None`` = unlimited) —
    #: the budget that keeps a long upstream outage from turning every
    #: client query into a retry storm.
    retry_budget: Optional[int] = None
    #: RFC 8767 serve-stale: on a cache miss whose entry merely *expired*,
    #: answer with the stale records (TTL-clamped) and refresh in the
    #: background.  Deliberately double-edged — stale poisoned records are
    #: prolonged exactly the same way.
    serve_stale: bool = False
    #: How long past expiry an entry stays servable (RFC 8767 suggests
    #: 1-3 days; an hour keeps experiments snappy).
    serve_stale_window: float = 3600.0


class RecursiveResolver(Host):
    """A caching recursive resolver whose validation is a defense stack.

    The stack is composed deterministically: the policy-derived classic
    defenses first (so legacy :class:`ResolverPolicy` configurations behave
    exactly as before the refactor), then whatever extra defenses the
    experiment supplied via ``defenses``.
    """

    def __init__(self, network: Network, address: str,
                 nameserver_map: dict[str, str],
                 policy: Optional[ResolverPolicy] = None,
                 name: Optional[str] = None,
                 allowed_clients: Optional[list[str]] = None,
                 defenses: Optional[DefenseStack] = None) -> None:
        super().__init__(network, address, name=name or f"resolver-{address}")
        #: Observability facade, cached off the simulator (response handling
        #: is the hottest application-layer path in a poisoning sweep).
        self._obs = network.simulator.obs
        #: zone suffix (normalised) -> authoritative nameserver address
        self.nameserver_map = {normalise_name(zone): ns for zone, ns in nameserver_map.items()}
        self.policy = policy or ResolverPolicy()
        self.cache = DNSCache(
            max_ttl=self.policy.max_cache_ttl,
            serve_stale_window=(self.policy.serve_stale_window
                                if self.policy.serve_stale else 0.0),
        )
        self.allowed_clients = set(allowed_clients) if allowed_clients else None
        extra = list(defenses) if defenses is not None else []
        self.defenses = DefenseStack([*default_resolver_defenses(self.policy), *extra])
        self._pending: dict[tuple[int, str], PendingUpstreamQuery] = {}
        self._next_txid = 1
        #: Stream/encrypted upstream transport manager; ``None`` until the
        #: first truncated response (lazy plain-TCP fallback) or until the
        #: ``encrypted_transport`` defense attaches a policy-bearing one.
        self.upstream_transport = None
        self.queries_answered_from_cache = 0
        self.queries_forwarded = 0
        self.responses_rejected = 0
        self.poisoned_responses_accepted = 0
        self.truncated_responses = 0
        self.timeouts = 0
        self.retries = 0
        self.stale_answers = 0

    # -- helpers ---------------------------------------------------------------
    def nameserver_for(self, qname: str) -> Optional[str]:
        """Longest-suffix match of ``qname`` against the nameserver map."""
        qname = normalise_name(qname)
        best: Optional[str] = None
        best_len = -1
        for zone, ns_address in self.nameserver_map.items():
            if (qname == zone or qname.endswith("." + zone)) and len(zone) > best_len:
                best, best_len = ns_address, len(zone)
        return best

    def _allocate_txid(self) -> int:
        """Transaction id for a synthetic client query (see trigger_lookup).

        Upstream queries get their id from the defense stack; this mirrors
        the same randomise-or-sequential behaviour for the synthetic query a
        triggered lookup wraps, keeping the RNG stream identical to the
        pre-stack resolver.
        """
        if self.policy.randomise_source_port:
            return self.network.simulator.rng.randrange(0, 0x10000)
        return self._next_sequential_txid()

    def _next_sequential_txid(self) -> int:
        txid = self._next_txid
        self._next_txid = (self._next_txid + 1) & 0xFFFF
        return txid

    def use_upstream_transport(self, transport) -> None:
        """Attach a :class:`~repro.dns.transport.ResolverUpstreamTransport`.

        Called by the ``encrypted_transport`` defense's ``attach_testbed``
        hook; with no attached transport the resolver behaves exactly as the
        datagram-only resolver it always was.
        """
        self.upstream_transport = transport

    def _stream_transport(self):
        """The upstream transport, created lazily for the TC-bit retry."""
        if self.upstream_transport is None:
            from .transport import ResolverUpstreamTransport

            self.upstream_transport = ResolverUpstreamTransport(self)
        return self.upstream_transport

    def _record_rejection(self, key: tuple[int, str], defense: str, reason: str,
                          poisoned: bool = False, spoofed: bool = False) -> None:
        """Tag a rejected candidate with the defense verdict (obs enabled)."""
        self._obs.metrics.counter("dns.responses_rejected", defense=defense).inc()
        self._obs.trace.instant("dns.response.rejected", category="dns",
                                qname=key[1], txid=key[0], defense=defense,
                                reason=reason, poisoned=poisoned, spoofed=spoofed)

    # -- datagram dispatch --------------------------------------------------------
    def handle_datagram(self, datagram: UDPDatagram) -> None:
        try:
            message = DNSMessage.decode(datagram.payload)
        except Exception:
            return
        if message.is_response:
            self._handle_upstream_response(datagram, message)
        elif datagram.dst_port == DNS_PORT:
            self._handle_client_query(datagram, message)

    # -- client side -------------------------------------------------------------
    def _handle_client_query(self, datagram: UDPDatagram, query: DNSMessage) -> None:
        if (self.allowed_clients is not None and not self.policy.open_resolver
                and datagram.src_ip not in self.allowed_clients):
            response = query.make_response([], rcode=ResponseCode.REFUSED)
            self._reply_to_client(datagram.src_ip, datagram.src_port, response)
            return
        cached = self.cache.lookup(query.question.name, query.question.qtype,
                                   self.network.simulator.now)
        if cached is not None:
            self.queries_answered_from_cache += 1
            if self._obs.enabled:
                self._obs.metrics.counter("dns.cache_hits").inc()
            now = self.network.simulator.now
            answers = [record.with_ttl(cached.remaining_ttl(now)) for record in cached.records]
            response = query.make_response(answers, authoritative=False)
            self._reply_to_client(datagram.src_ip, datagram.src_port, response)
            return
        if self.policy.serve_stale:
            stale = self.cache.lookup_stale(query.question.name, query.question.qtype,
                                            self.network.simulator.now)
            if stale is not None:
                # RFC 8767: answer now from the expired entry (clamped TTL),
                # refresh in the background.  The poisoning tension is
                # deliberate — a stale *poisoned* entry is prolonged too.
                self.stale_answers += 1
                if self._obs.enabled:
                    self._obs.metrics.counter("dns.stale_answers",
                                              poisoned=stale.poisoned).inc()
                    self._obs.trace.instant("dns.cache.stale_answer", category="dns",
                                            qname=query.question.name,
                                            poisoned=stale.poisoned)
                answers = [record.with_ttl(STALE_ANSWER_TTL) for record in stale.records]
                response = query.make_response(answers, authoritative=False)
                self._reply_to_client(datagram.src_ip, datagram.src_port, response)
                self._refresh_if_idle(query.question.name, query.question.qtype)
                return
        self._forward_upstream(query, datagram.src_ip, datagram.src_port)

    def _refresh_if_idle(self, name: str, qtype: RecordType) -> None:
        """Start a background refresh unless one is already in flight."""
        qname = normalise_name(name)
        if any(pending_name == qname for _, pending_name in self._pending):
            return
        synthetic = DNSMessage.query(self._allocate_txid(), name, qtype)
        self._forward_upstream(synthetic, None, None)

    def _reply_to_client(self, client_address: str, client_port: int, response: DNSMessage) -> None:
        self.send_datagram(
            UDPDatagram(
                src_ip=self.address,
                dst_ip=client_address,
                src_port=DNS_PORT,
                dst_port=client_port,
                payload=response.encode(),
            )
        )

    # -- upstream side -------------------------------------------------------------
    def _forward_upstream(self, client_query: DNSMessage, client_address: Optional[str],
                          client_port: Optional[int]) -> None:
        nameserver = self.nameserver_for(client_query.question.name)
        if nameserver is None:
            if client_address is not None:
                response = client_query.make_response([], rcode=ResponseCode.SERVFAIL)
                self._reply_to_client(client_address, client_port, response)
            return
        # Defaults an entirely defense-less resolver would use: sequential
        # transaction ids and a fixed source port.  The stack's hardening
        # hooks (random txid/port, 0x20 case, cookies) then rewrite them.
        txid = self._next_sequential_txid()
        context = QueryContext(
            query=DNSMessage.query(txid, client_query.question.name,
                                   client_query.question.qtype),
            transaction_id=txid,
            source_port=33333,
            nameserver_address=nameserver,
            rng=self.network.simulator.rng,
        )
        self.defenses.on_outgoing_query(context)
        if context.query.transaction_id != context.transaction_id:
            context.query = replace(context.query, transaction_id=context.transaction_id)
        pending = PendingUpstreamQuery(
            upstream_query=context.query,
            nameserver_address=nameserver,
            source_port=context.source_port,
            client_address=client_address,
            client_port=client_port,
            client_query=client_query,
            sent_at=self.network.simulator.now,
            context=context,
        )
        key = (context.transaction_id, normalise_name(client_query.question.name))
        self._pending[key] = pending
        pending.timeout_handle = self.network.simulator.schedule(
            self.policy.query_timeout, lambda k=key: self._on_timeout(k))
        self.queries_forwarded += 1
        if self._obs.enabled:
            self._obs.metrics.counter("dns.queries_forwarded").inc()
            self._obs.trace.instant("dns.query.sent", category="dns",
                                    qname=key[1], txid=key[0],
                                    nameserver=nameserver,
                                    port=context.source_port)
        if self.upstream_transport is not None:
            self.upstream_transport.dispatch(key, pending)
        else:
            self._send_upstream_datagram(pending)

    def _send_upstream_datagram(self, pending: PendingUpstreamQuery) -> None:
        """The classic plaintext-UDP upstream query (the attack surface)."""
        pending.sent_via = "udp"
        self.send_datagram(
            UDPDatagram(
                src_ip=self.address,
                dst_ip=pending.nameserver_address,
                src_port=pending.source_port,
                dst_port=DNS_PORT,
                payload=pending.upstream_query.encode(),
            )
        )

    def _on_timeout(self, key: tuple[int, str]) -> None:
        pending = self._pending.get(key)
        if pending is None:
            return
        self.timeouts += 1
        if self._obs.enabled:
            self._obs.metrics.counter("dns.query_timeouts").inc()
            self._obs.trace.instant("dns.query.timeout", category="dns",
                                    qname=key[1], txid=key[0])
        policy = self.policy
        if (pending.attempts < policy.query_retries and pending.sent_via == "udp"
                and (policy.retry_budget is None or self.retries < policy.retry_budget)):
            # Exponential backoff with deterministic jitter, then re-send the
            # *same* query (same txid, same source port): the pending entry
            # stays keyed so a slow genuine answer arriving during the
            # backoff still resolves the query.
            pending.attempts += 1
            self.retries += 1
            delay = (policy.retry_backoff
                     * policy.retry_backoff_factor ** (pending.attempts - 1))
            if policy.retry_jitter > 0:
                delay += self.network.simulator.rng.uniform(0, policy.retry_jitter)
            if self._obs.enabled:
                self._obs.metrics.counter("dns.query_retries").inc()
                self._obs.trace.instant("dns.query.retry", category="dns",
                                        qname=key[1], txid=key[0],
                                        attempt=pending.attempts, backoff=delay)
            pending.timeout_handle = self.network.simulator.schedule(
                delay, lambda k=key: self._retransmit(k))
            return
        del self._pending[key]
        if pending.client_address is not None and pending.client_query is not None:
            response = pending.client_query.make_response([], rcode=ResponseCode.SERVFAIL)
            self._reply_to_client(pending.client_address, pending.client_port, response)

    def _retransmit(self, key: tuple[int, str]) -> None:
        pending = self._pending.get(key)
        if pending is None:  # answered during the backoff
            return
        pending.timeout_handle = self.network.simulator.schedule(
            self.policy.query_timeout, lambda k=key: self._on_timeout(k))
        self._send_upstream_datagram(pending)

    def _handle_upstream_response(self, datagram: UDPDatagram, response: DNSMessage,
                                  via: str = "udp") -> None:
        obs = self._obs
        key = (response.transaction_id, normalise_name(response.question.name))
        pending = self._pending.get(key)
        if pending is None:
            self.responses_rejected += 1
            if obs.enabled:
                obs.metrics.counter("dns.responses_unmatched").inc()
                obs.trace.instant("dns.response.unmatched", category="dns",
                                  qname=key[1], txid=key[0], src=datagram.src_ip)
            return
        if obs.enabled:
            obs.trace.instant("dns.response.candidate", category="dns",
                              qname=key[1], txid=key[0], src=datagram.src_ip,
                              via=via, poisoned=self.last_datagram_poisoned,
                              truncated=response.truncated)
        if via == "udp" and pending.sent_via == "stream":
            # The query is out on an (authenticated) stream transport: no
            # datagram can legitimately answer it.  Without this check a
            # spoofed UDP response would bypass the strict encrypted policy
            # entirely — the resolver would be DoT on the wire and
            # poisonable by datagram.
            self.responses_rejected += 1
            if obs.enabled:
                self._record_rejection(key, "transport-policy",
                                       "datagram answer to a stream query",
                                       poisoned=self.last_datagram_poisoned)
            return
        if response.truncated and via == "udp":
            # TC=1: the response is an incomplete stub, never answer data.
            # It is not cached and does not resolve the query; instead the
            # resolver re-asks once over the stream transport (RFC 7766).
            # If that retry cannot complete either, the query runs into its
            # own timeout — a truncated response alone never produces an
            # answer.  The stub must still prove the classic provenance
            # (source address + destination port) before it is honoured:
            # otherwise a blind spoofer could burn the one-shot retry — or
            # force plaintext TCP — knowing only the 16-bit transaction id.
            if ((self.policy.check_source_address
                 and datagram.src_ip != pending.nameserver_address)
                    or datagram.dst_port != pending.source_port):
                self.responses_rejected += 1
                if obs.enabled:
                    self._record_rejection(key, "classic-provenance",
                                           "truncated stub failed provenance",
                                           poisoned=self.last_datagram_poisoned,
                                           spoofed=True)
                return
            self.truncated_responses += 1
            if obs.enabled:
                obs.metrics.counter("dns.responses_truncated").inc()
                obs.trace.instant("dns.response.truncated", category="dns",
                                  qname=key[1], txid=key[0],
                                  retry=not pending.stream_retry)
            if not pending.stream_retry:
                pending.stream_retry = True
                self._stream_transport().retry_over_tcp(key, pending)
            return
        context = ResponseContext(
            response=response,
            datagram=datagram,
            query=pending.context,
            poisoned=self.last_datagram_poisoned,
            answers=[record for record in response.answers
                     if record.rtype == response.question.qtype],
        )
        # First rejection wins; a rejected response leaves the query pending
        # so the genuine answer (or the timeout) still resolves it.
        verdict = self.defenses.on_incoming_response(context)
        if verdict is not None:
            self.responses_rejected += 1
            if obs.enabled:
                self._record_rejection(key, verdict[0], verdict[1],
                                       poisoned=context.poisoned)
            return
        del self._pending[key]
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        if obs.enabled:
            obs.metrics.counter("dns.responses_accepted",
                                poisoned=context.poisoned).inc()
            obs.trace.instant("dns.response.accepted", category="dns",
                              qname=key[1], txid=key[0], via=via,
                              poisoned=context.poisoned,
                              answers=len(context.answers))

        answers = context.answers
        if answers:
            self.cache.insert(response.question.name, response.question.qtype, answers,
                              self.network.simulator.now, poisoned=context.poisoned)
            if context.poisoned:
                self.poisoned_responses_accepted += 1
            if obs.enabled:
                obs.metrics.counter("dns.cache_writes",
                                    poisoned=context.poisoned).inc()
                obs.trace.instant("dns.cache.write", category="dns",
                                  qname=key[1], txid=key[0],
                                  poisoned=context.poisoned,
                                  records=len(answers))
        if pending.client_address is not None and pending.client_query is not None:
            client_response = pending.client_query.make_response(list(answers),
                                                                 rcode=response.rcode,
                                                                 authoritative=False)
            self._reply_to_client(pending.client_address, pending.client_port, client_response)

    # -- direct (attacker/trigger) entry point --------------------------------------
    def trigger_lookup(self, name: str, qtype: RecordType = RecordType.A) -> None:
        """Start an upstream lookup with no client waiting for the answer.

        This models third-party query triggering (§II): an attacker makes a
        shared resolver issue the pool.ntp.org query — e.g. via an SMTP
        server's reverse lookup or an open-resolver query — so the poisoning
        race can be run at a moment of the attacker's choosing.
        """
        synthetic = DNSMessage.query(self._allocate_txid(), name, qtype)
        self._forward_upstream(synthetic, None, None)


class DNSStub:
    """Client-side DNS component attached to a host (Chronos / NTP client).

    It sends queries to a configured recursive resolver and invokes the
    caller's callback with the list of answer addresses.  The owning host
    must offer incoming datagrams via :meth:`handle_datagram`.
    """

    def __init__(self, host: Host, resolver_address: str, query_timeout: float = 10.0) -> None:
        self.host = host
        self.resolver_address = resolver_address
        self.query_timeout = query_timeout
        self._pending: dict[tuple[int, int], tuple[DNSMessage, Callable, object, bool]] = {}
        self.lookups_issued = 0
        self.lookups_failed = 0

    def lookup(self, name: str, callback: LookupCallback,
               qtype: RecordType = RecordType.A) -> None:
        """Resolve ``name`` asynchronously; ``callback`` gets the addresses."""
        self._send_query(name, callback, qtype, wants_message=False)

    def lookup_message(self, name: str, callback: Callable[[Optional[DNSMessage]], None],
                       qtype: RecordType = RecordType.A) -> None:
        """Resolve ``name``; ``callback`` gets the full response message.

        The Chronos client uses this variant so it can see record TTLs — the
        §V mitigation of discarding high-TTL responses needs them.
        """
        self._send_query(name, callback, qtype, wants_message=True)

    def _send_query(self, name: str, callback: Callable, qtype: RecordType,
                    wants_message: bool) -> None:
        rng = self.host.network.simulator.rng
        txid = rng.randrange(0, 0x10000)
        port = rng.randrange(20000, 60000)
        query = DNSMessage.query(txid, name, qtype)
        handle = self.host.network.simulator.schedule(
            self.query_timeout, lambda key=(txid, port): self._on_timeout(key))
        self._pending[(txid, port)] = (query, callback, handle, wants_message)
        self.lookups_issued += 1
        self.host.send_datagram(
            UDPDatagram(
                src_ip=self.host.address,
                dst_ip=self.resolver_address,
                src_port=port,
                dst_port=DNS_PORT,
                payload=query.encode(),
            )
        )

    def _on_timeout(self, key: tuple[int, int]) -> None:
        entry = self._pending.pop(key, None)
        if entry is None:
            return
        _, callback, _, wants_message = entry
        self.lookups_failed += 1
        callback(None if wants_message else [])

    def handle_datagram(self, datagram: UDPDatagram) -> bool:
        """Offer an incoming datagram; returns True when it was a DNS answer."""
        if datagram.src_port != DNS_PORT:
            return False
        try:
            response = DNSMessage.decode(datagram.payload)
        except Exception:
            return False
        if not response.is_response:
            return False
        key = (response.transaction_id, datagram.dst_port)
        entry = self._pending.pop(key, None)
        if entry is None:
            return True
        query, callback, handle, wants_message = entry
        if handle is not None:
            handle.cancel()
        if not response.matches_query(query):
            self.lookups_failed += 1
            callback(None if wants_message else [])
            return True
        callback(response if wants_message else response.answer_addresses)
        return True
