"""DNS resource records and record types.

Only the record types the reproduction actually touches are implemented
(A, NS, CNAME, TXT, OPT), but they use the genuine wire encodings so that
message sizes are exact.
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

from ..netsim.addresses import int_to_ip, ip_to_int
from .wire import (
    WireFormatError,
    decode_name,
    encode_name,
    normalise_name,
    pack_uint16,
    pack_uint32,
    unpack_uint16,
    unpack_uint32,
)


class RecordType(enum.IntEnum):
    """DNS RR TYPE values (subset)."""

    A = 1
    NS = 2
    CNAME = 5
    TXT = 16
    AAAA = 28
    OPT = 41


class RecordClass(enum.IntEnum):
    """DNS RR CLASS values (IN only, plus the EDNS payload-size overload)."""

    IN = 1


#: Seconds in a day; the attack sets TTLs *above* this so that every
#: subsequent hourly Chronos query is served from cache.
SECONDS_PER_DAY = 86400


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record.

    ``rdata`` is type-specific structured data:

    * ``A`` — dotted-quad address string;
    * ``NS`` / ``CNAME`` — target domain name;
    * ``TXT`` — text string;
    * ``OPT`` — ignored (EDNS uses the class/ttl fields for its payload).
    """

    name: str
    rtype: RecordType
    ttl: int
    rdata: str
    rclass: int = RecordClass.IN

    def __post_init__(self) -> None:
        if self.ttl < 0 or self.ttl > 0x7FFFFFFF:
            raise WireFormatError(f"TTL out of range: {self.ttl}")
        object.__setattr__(self, "name", normalise_name(self.name))

    # -- helpers -----------------------------------------------------------
    @property
    def is_address(self) -> bool:
        return self.rtype == RecordType.A

    def with_ttl(self, ttl: int) -> ResourceRecord:
        """Copy of this record with a different TTL (cache decrementing)."""
        return ResourceRecord(self.name, self.rtype, ttl, self.rdata, self.rclass)

    # -- wire format -------------------------------------------------------
    def rdata_bytes(self) -> bytes:
        """Encode the RDATA portion for this record type."""
        if self.rtype == RecordType.A:
            return ip_to_int(self.rdata).to_bytes(4, "big")
        if self.rtype in (RecordType.NS, RecordType.CNAME):
            # Name compression inside RDATA is legal but not used here; the
            # size impact is irrelevant for the experiments (NS answers are
            # never the large ones).
            return encode_name(self.rdata)
        if self.rtype == RecordType.TXT:
            text = self.rdata.encode("ascii")
            if len(text) > 255:
                raise WireFormatError("TXT string too long")
            return bytes([len(text)]) + text
        if self.rtype == RecordType.OPT:
            return b""
        raise WireFormatError(f"unsupported record type {self.rtype}")

    def encode(self, compression: dict, offset: int) -> bytes:
        """Encode the full RR, updating the compression map."""
        out = bytearray()
        out += encode_name(self.name, compression, offset)
        out += pack_uint16(int(self.rtype))
        out += pack_uint16(int(self.rclass))
        out += pack_uint32(self.ttl)
        rdata = self.rdata_bytes()
        out += pack_uint16(len(rdata))
        out += rdata
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["ResourceRecord", int]:
        """Decode one RR starting at ``offset``; returns (record, next_offset)."""
        name, offset = decode_name(data, offset)
        rtype = RecordType(unpack_uint16(data, offset))
        rclass = unpack_uint16(data, offset + 2)
        ttl = unpack_uint32(data, offset + 4)
        rdlength = unpack_uint16(data, offset + 8)
        rdata_start = offset + 10
        rdata_end = rdata_start + rdlength
        if rdata_end > len(data):
            raise WireFormatError("truncated RDATA")
        raw = data[rdata_start:rdata_end]
        if rtype == RecordType.A:
            if rdlength != 4:
                raise WireFormatError("A record RDATA must be 4 bytes")
            rdata = int_to_ip(int.from_bytes(raw, "big"))
        elif rtype in (RecordType.NS, RecordType.CNAME):
            rdata, _ = decode_name(data, rdata_start)
        elif rtype == RecordType.TXT:
            rdata = raw[1:1 + raw[0]].decode("ascii") if raw else ""
        elif rtype == RecordType.OPT:
            rdata = ""
        else:
            raise WireFormatError(f"unsupported record type {rtype}")
        record = cls(name=name or ".", rtype=rtype, ttl=ttl, rdata=rdata, rclass=rclass)
        return record, rdata_end


def rrset_signature(zone_key: str, name: str, records: Sequence[ResourceRecord]) -> str:
    """Deterministic signature over an A RRset (the DNSSEC-style model).

    A real RRSIG is a public-key signature over the canonical RRset; the
    simulation models it as a keyed digest — only code holding ``zone_key``
    can produce it, and the off-path attacker never does.  The digest covers
    owner name, record data *and TTLs*, so a spliced or forged answer (whose
    records or TTLs differ) cannot reuse a genuine signature.
    """
    payload = "|".join([zone_key, normalise_name(name)]
                       + sorted(f"{r.rdata}/{r.ttl}" for r in records if r.rtype == RecordType.A))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def signature_record(zone_key: str, name: str,
                     records: Sequence[ResourceRecord]) -> ResourceRecord:
    """The signature as a TXT record appended to the answer section.

    Like a real RRSIG it travels at the end of the answers — i.e. in the
    *trailing* fragment of a fragmented response, which is exactly the part a
    defragmentation-cache attacker substitutes.  Resolvers only cache records
    matching the question type, so the TXT never leaks into answers.
    """
    return ResourceRecord(name=name, rtype=RecordType.TXT, ttl=0,
                          rdata=rrset_signature(zone_key, name, records))


def a_record(name: str, address: str, ttl: int) -> ResourceRecord:
    """Convenience constructor for an A record."""
    return ResourceRecord(name=name, rtype=RecordType.A, ttl=ttl, rdata=address)


def opt_record(payload_size: int = 4096) -> ResourceRecord:
    """EDNS0 OPT pseudo-record advertising ``payload_size`` bytes.

    EDNS is what allows UDP DNS responses larger than 512 bytes in the first
    place — both the fragmented benign responses the poisoning vector needs
    and the attacker's jumbo 89-record response depend on it, so responses in
    the simulation carry the OPT record and pay its 11 bytes.
    """
    return ResourceRecord(name=".", rtype=RecordType.OPT, ttl=0, rdata="", rclass=payload_size)
